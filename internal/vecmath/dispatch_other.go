//go:build !amd64 && !arm64

package vecmath

// archKernels on architectures without an assembly port: the portable
// scalar kernels are the only implementation. To add a new architecture,
// provide kernels_<arch>.s + dispatch_<arch>.go exporting archKernels (see
// DESIGN.md, "Kernel layer") and exclude the arch from this build tag.
func archKernels() (kernels, bool) { return kernels{}, false }
