package core

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/vecmath"
)

// Partitioner is one trained USP model together with the lookup table of
// Algorithm 1 step 3: for every bin, the indices of the dataset points
// assigned to it.
//
// The lookup table is stored in CSR form — one flat id array plus per-bin
// offsets — instead of a [][]int32 slice-of-slices: probing a bin appends one
// contiguous range (a single memmove) rather than chasing a pointer per bin,
// and the whole table lives in two allocations regardless of m. Points routed
// in by Insert after the table is built land in small per-bin spill lists
// that are scanned after the CSR range.
type Partitioner struct {
	Model *nn.Sequential
	M     int
	// Assign maps point index → bin.
	Assign []int32

	// binIDs holds the point ids of every bin back to back; bin b occupies
	// binIDs[binOff[b]:binOff[b+1]]. binOff has length M+1.
	binIDs []int32
	binOff []int32
	// spill[b] lists ids Insert routed to bin b since the CSR table was
	// built (nil until the first insert).
	spill [][]int32
}

// setBinLists builds the CSR table from explicit per-bin id lists, clearing
// any spill state. It is the bridge from the [][]int32 form used by
// serialization snapshots and offline training code.
func (p *Partitioner) setBinLists(lists [][]int32) {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	p.binIDs = make([]int32, 0, total)
	p.binOff = make([]int32, len(lists)+1)
	for b, l := range lists {
		p.binIDs = append(p.binIDs, l...)
		p.binOff[b+1] = int32(len(p.binIDs))
	}
	p.spill = nil
}

// buildCSRFromAssign fills the CSR table from Assign by counting sort,
// preserving ascending id order within each bin.
func (p *Partitioner) buildCSRFromAssign() {
	p.binOff = make([]int32, p.M+1)
	for _, b := range p.Assign {
		p.binOff[b+1]++
	}
	for b := 0; b < p.M; b++ {
		p.binOff[b+1] += p.binOff[b]
	}
	p.binIDs = make([]int32, len(p.Assign))
	cursor := make([]int32, p.M)
	copy(cursor, p.binOff[:p.M])
	for i, b := range p.Assign {
		p.binIDs[cursor[b]] = int32(i)
		cursor[b]++
	}
	p.spill = nil
}

// BinLen returns the number of points in bin b (CSR range plus spill).
func (p *Partitioner) BinLen(b int) int {
	n := int(p.binOff[b+1] - p.binOff[b])
	if p.spill != nil {
		n += len(p.spill[b])
	}
	return n
}

// AppendBin appends the ids of bin b to dst: the contiguous CSR range first,
// then any inserted spill ids. It allocates only when dst must grow.
func (p *Partitioner) AppendBin(dst []int32, b int) []int32 {
	dst = append(dst, p.binIDs[p.binOff[b]:p.binOff[b+1]]...)
	if p.spill != nil {
		dst = append(dst, p.spill[b]...)
	}
	return dst
}

// BinList returns the ids of bin b. When no inserts are pending this is a
// zero-copy view of the CSR range; otherwise a fresh concatenation.
func (p *Partitioner) BinList(b int) []int32 {
	csr := p.binIDs[p.binOff[b]:p.binOff[b+1]:p.binOff[b+1]]
	if p.spill == nil || len(p.spill[b]) == 0 {
		return csr
	}
	return append(append(make([]int32, 0, len(csr)+len(p.spill[b])), csr...), p.spill[b]...)
}

// BinLists materializes the lookup table as per-bin id lists (the
// serialization snapshot form). The returned lists are freshly allocated.
func (p *Partitioner) BinLists() [][]int32 {
	out := make([][]int32, p.M)
	for b := 0; b < p.M; b++ {
		out[b] = append(make([]int32, 0, p.BinLen(b)), p.BinList(b)...)
	}
	return out
}

// TrainStats reports offline-phase metrics (the quantities of Tables 2–3).
type TrainStats struct {
	Duration  time.Duration
	FinalLoss float64
	Quality   float64
	Balance   float64
	Params    int
}

// Train learns a partition of ds into cfg.Bins bins using the unsupervised
// loss. knnMat must be the k′-NN matrix of ds with K ≥ cfg.KPrime (only the
// first cfg.KPrime columns are consulted). weights are the optional ensemble
// point weights of Eq. 14 (nil = uniform).
//
// Following the reference implementation, the neighbor bin assignments that
// define the quality-loss targets (Eq. 9) are refreshed once per epoch from
// a full-dataset inference snapshot rather than recomputed per batch; the
// targets are treated as constants (stop-gradient), so the per-batch
// gradient is exactly that of nn.USPLoss.
func Train(ds *dataset.Dataset, knnMat *knn.Matrix, cfg Config, weights []float32) (*Partitioner, TrainStats, error) {
	if err := cfg.validate(ds.N); err != nil {
		return nil, TrainStats{}, err
	}
	cfg = cfg.withDefaults(ds.N)
	if knnMat == nil || len(knnMat.Neighbors) != ds.N {
		return nil, TrainStats{}, fmt.Errorf("core: k'-NN matrix missing or wrong size")
	}
	if knnMat.K < cfg.KPrime {
		return nil, TrainStats{}, fmt.Errorf("core: k'-NN matrix has K=%d < KPrime=%d", knnMat.K, cfg.KPrime)
	}
	if weights != nil && len(weights) != ds.N {
		return nil, TrainStats{}, fmt.Errorf("core: weights length %d != n=%d", len(weights), ds.N)
	}

	rng := cfg.rng()
	var model *nn.Sequential
	if len(cfg.Hidden) == 0 {
		model = nn.NewLogistic(ds.Dim, cfg.Bins, rng)
	} else {
		model = nn.NewMLP(ds.Dim, cfg.Hidden, cfg.Bins, cfg.Dropout, rng)
	}
	opt := nn.NewAdam(cfg.LR)

	start := time.Now()
	if cfg.TargetGrad {
		if err := trainTargetGrad(ds, knnMat, cfg, weights, model, opt, rng); err != nil {
			return nil, TrainStats{}, err
		}
		p := &Partitioner{Model: model, M: cfg.Bins}
		p.buildLookup(ds)
		return p, TrainStats{
			Duration: time.Since(start),
			Params:   model.NumParams(),
		}, nil
	}
	n, m := ds.N, cfg.Bins

	var last nn.LossResult
	snapshot := make([]int32, n)       // bin assignment of every point, refreshed per epoch
	probsSnap := (*tensor.Matrix)(nil) // soft-target mode keeps full probability rows

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Refresh the assignment snapshot used for quality targets.
		probs := predictBatched(model, ds, 4096)
		if cfg.SoftTargets {
			probsSnap = probs
		}
		for i := 0; i < n; i++ {
			snapshot[i] = int32(vecmath.ArgMax(probs.Row(i)))
		}

		perm := rng.Perm(n)
		var epochLoss, epochQ, epochB float64
		batches := 0
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			idx := perm[lo:hi]
			b := len(idx)
			if b < 2 {
				continue // balance term degenerate on singleton batches
			}
			x := tensor.New(b, ds.Dim)
			targets := tensor.New(b, m)
			var w []float32
			if weights != nil {
				w = make([]float32, b)
			}
			for bi, pi := range idx {
				copy(x.Row(bi), ds.Row(pi))
				if weights != nil {
					w[bi] = weights[pi]
				}
				trow := targets.Row(bi)
				nbrs := knnMat.Neighbors[pi][:cfg.KPrime]
				if cfg.SoftTargets {
					for _, nj := range nbrs {
						prow := probsSnap.Row(int(nj))
						for j := range trow {
							trow[j] += prow[j]
						}
					}
				} else {
					for _, nj := range nbrs {
						trow[snapshot[nj]]++
					}
				}
				inv := 1 / float32(len(nbrs))
				for j := range trow {
					trow[j] *= inv
				}
			}

			model.ZeroGrads()
			logits := model.Forward(x, true)
			var res nn.LossResult
			if cfg.EntropyBalance {
				res = nn.USPLossEntropy(logits, targets, w, cfg.Eta)
			} else {
				res = nn.USPLoss(logits, targets, w, cfg.Eta)
			}
			model.Backward(res.Grad)
			opt.Step(model.Params())

			epochLoss += res.Loss
			epochQ += res.Quality
			epochB += res.Balance
			batches++
			last = res
		}
		if cfg.Logf != nil && batches > 0 {
			cfg.Logf("epoch %3d: loss=%.4f quality=%.4f balance=%.4f",
				epoch, epochLoss/float64(batches), epochQ/float64(batches), epochB/float64(batches))
		}
	}

	p := &Partitioner{Model: model, M: m}
	p.buildLookup(ds)
	stats := TrainStats{
		Duration:  time.Since(start),
		FinalLoss: last.Loss,
		Quality:   last.Quality,
		Balance:   last.Balance,
		Params:    model.NumParams(),
	}
	return p, stats, nil
}

// buildLookup runs inference over the whole dataset and fills Assign and the
// CSR lookup table (Algorithm 1, step 3).
func (p *Partitioner) buildLookup(ds *dataset.Dataset) {
	probs := predictBatched(p.Model, ds, 4096)
	p.Assign = make([]int32, ds.N)
	for i := 0; i < ds.N; i++ {
		p.Assign[i] = int32(vecmath.ArgMax(probs.Row(i)))
	}
	p.buildCSRFromAssign()
}

// predictBatched evaluates the model on every row of ds in chunks, returning
// the n×m probability matrix.
func predictBatched(model *nn.Sequential, ds *dataset.Dataset, chunk int) *tensor.Matrix {
	out := tensor.New(ds.N, model.OutDim())
	for lo := 0; lo < ds.N; lo += chunk {
		hi := lo + chunk
		if hi > ds.N {
			hi = ds.N
		}
		x := tensor.FromSlice(hi-lo, ds.Dim, ds.Data[lo*ds.Dim:hi*ds.Dim])
		p := model.Predict(x)
		copy(out.Data[lo*out.Cols:hi*out.Cols], p.Data)
	}
	return out
}

// Probabilities returns the model's bin distribution for a query point.
func (p *Partitioner) Probabilities(q []float32) []float32 {
	return p.Model.PredictVec(q)
}

// ProbabilitiesInto is the allocation-free Probabilities: the distribution is
// written into dst (grown as needed) through the scratch's inference buffers.
// Results are bit-identical to Probabilities.
func (p *Partitioner) ProbabilitiesInto(dst []float32, q []float32, sc *nn.InferScratch) []float32 {
	return p.Model.PredictVecInto(dst, q, sc)
}

// QueryBins returns the mPrime most probable bins for q (Alg. 2, step 2).
func (p *Partitioner) QueryBins(q []float32, mPrime int) []int {
	return vecmath.TopKIndices(p.Probabilities(q), mPrime)
}

// AppendCandidates appends the candidate set C(q) — the ids in the mPrime
// most probable bins — to dst, using qs for every intermediate. Steady-state
// it allocates nothing beyond growth of dst.
func (p *Partitioner) AppendCandidates(dst []int32, q []float32, mPrime int, qs *QueryScratch) []int32 {
	qs.probs = p.ProbabilitiesInto(qs.probs, q, &qs.Infer)
	qs.bins = vecmath.TopKIndicesInto(qs.bins, qs.probs, mPrime)
	for _, b := range qs.bins {
		dst = p.AppendBin(dst, b)
	}
	return dst
}

// CandidatesWith returns the candidate set C(q) as a fresh []int while
// reusing the caller's scratch across queries.
func (p *Partitioner) CandidatesWith(qs *QueryScratch, q []float32, mPrime int) []int {
	qs.cands = p.AppendCandidates(qs.cands[:0], q, mPrime, qs)
	return ToInts(qs.cands)
}

// Candidates returns the candidate set C(q): the union of the lookup-table
// lists of the mPrime most probable bins. It is a thin allocating wrapper
// over AppendCandidates kept for one-shot offline callers; loops should
// prefer CandidatesWith.
func (p *Partitioner) Candidates(q []float32, mPrime int) []int {
	var qs QueryScratch
	return p.CandidatesWith(&qs, q, mPrime)
}

// BinSizes returns the number of points per bin (partition balance
// diagnostics).
func (p *Partitioner) BinSizes() []int {
	out := make([]int, p.M)
	for b := range out {
		out[b] = p.BinLen(b)
	}
	return out
}

// SeparatedNeighbors returns, for every point i, the number of its first
// kPrime neighbors assigned to a different bin than i — the per-point
// quality cost of Eq. 2 and the raw ensemble weight update of Algorithm 3.
func (p *Partitioner) SeparatedNeighbors(knnMat *knn.Matrix, kPrime int) []int {
	if kPrime > knnMat.K {
		kPrime = knnMat.K
	}
	out := make([]int, len(p.Assign))
	for i := range p.Assign {
		cnt := 0
		for _, nj := range knnMat.Neighbors[i][:kPrime] {
			if p.Assign[nj] != p.Assign[i] {
				cnt++
			}
		}
		out[i] = cnt
	}
	return out
}
