package graphpart

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// ringOfCliques builds c cliques of size s connected in a ring by single
// edges: the canonical easy-partitioning graph with known optimal cuts.
func ringOfCliques(c, s int) *Graph {
	g := NewGraph(c * s)
	for ci := 0; ci < c; ci++ {
		base := ci * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.AddEdge(int32(base+i), int32(base+j), 1)
			}
		}
		next := ((ci + 1) % c) * s
		g.AddEdge(int32(base), int32(next), 1)
	}
	return g
}

func sideWeights(g *Graph, part []int32, parts int) []int64 {
	w := make([]int64, parts)
	for v := 0; v < g.N; v++ {
		w[part[v]] += int64(g.NodeW[v])
	}
	return w
}

func TestBisectRingOfCliques(t *testing.T) {
	g := ringOfCliques(4, 25) // 100 vertices; optimal bisection cut = 2
	part := Partition(g, 2, 0.05, 1)
	w := sideWeights(g, part, 2)
	if w[0] < 45 || w[0] > 55 {
		t.Fatalf("imbalanced bisection: %v", w)
	}
	cut := CutWeight(g, part)
	if cut > 4 { // optimum 2; allow slight slack
		t.Fatalf("cut = %v, want ≤ 4", cut)
	}
	// No clique should be split: all members of a clique share a side.
	for ci := 0; ci < 4; ci++ {
		side := part[ci*25]
		for i := 1; i < 25; i++ {
			if part[ci*25+i] != side {
				t.Fatalf("clique %d split by partition", ci)
			}
		}
	}
}

func TestPartitionFourWay(t *testing.T) {
	g := ringOfCliques(8, 20) // 160 vertices → 4 parts of 40
	part := Partition(g, 4, 0.1, 2)
	w := sideWeights(g, part, 4)
	for p, pw := range w {
		if pw < 30 || pw > 50 {
			t.Fatalf("part %d weight %d: %v", p, pw, w)
		}
	}
	if cut := CutWeight(g, part); cut > 16 {
		t.Fatalf("4-way cut %v too large", cut)
	}
}

func TestPartitionNonPowerOfTwo(t *testing.T) {
	g := ringOfCliques(6, 15) // 90 vertices, 3 parts of 30
	part := Partition(g, 3, 0.1, 3)
	w := sideWeights(g, part, 3)
	for p, pw := range w {
		if pw < 20 || pw > 40 {
			t.Fatalf("part %d weight %d: %v", p, pw, w)
		}
	}
}

func TestPartitionTrivialCases(t *testing.T) {
	g := ringOfCliques(2, 10)
	one := Partition(g, 1, 0.1, 4)
	for _, p := range one {
		if p != 0 {
			t.Fatal("parts=1 must map everything to 0")
		}
	}
	empty := Partition(NewGraph(0), 4, 0.1, 5)
	if len(empty) != 0 {
		t.Fatal("empty graph should give empty partition")
	}
}

func TestPartitionDisconnectedGraph(t *testing.T) {
	// Two components of unequal size with no edges between them.
	g := NewGraph(60)
	for i := int32(0); i < 40; i++ {
		g.AddEdge(i, (i+1)%40, 1)
	}
	for i := int32(40); i < 60; i++ {
		g.AddEdge(i, 40+((i-40+1)%20), 1)
	}
	part := Partition(g, 2, 0.1, 6)
	w := sideWeights(g, part, 2)
	if w[0] < 24 || w[0] > 36 {
		t.Fatalf("disconnected graph imbalance: %v", w)
	}
}

func TestFromKNNSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 200, Dim: 4, Clusters: 4, ClusterStd: 0.1, CenterBox: 5,
	}, rng)
	mat := knn.BuildMatrix(l.Dataset, 5)
	g := FromKNN(mat.Neighbors)
	if g.N != 200 {
		t.Fatalf("N = %d", g.N)
	}
	// Adjacency symmetry: u lists v iff v lists u, same weight.
	for u := 0; u < g.N; u++ {
		for _, e := range g.Adj[u] {
			found := false
			for _, back := range g.Adj[e.To] {
				if back.To == int32(u) && back.W == e.W {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no symmetric twin", u, e.To)
			}
		}
	}
}

func TestPartitionKNNGraphRespectsClusters(t *testing.T) {
	// Partitioning the k-NN graph of 4 separated blobs into 4 parts should
	// essentially recover the blobs.
	rng := rand.New(rand.NewSource(8))
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 400, Dim: 4, Clusters: 4, ClusterStd: 0.05, CenterBox: 5,
	}, rng)
	mat := knn.BuildMatrix(l.Dataset, 8)
	g := FromKNN(mat.Neighbors)
	part := Partition(g, 4, 0.15, 9)
	// Purity: each part dominated by one true cluster.
	agree := 0
	for p := 0; p < 4; p++ {
		counts := map[int]int{}
		for v := 0; v < g.N; v++ {
			if part[v] == int32(p) {
				counts[l.Labels[v]]++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		agree += best
	}
	if purity := float64(agree) / float64(g.N); purity < 0.9 {
		t.Fatalf("partition purity %.3f", purity)
	}
}

func TestCutWeightCountsEachEdgeOnce(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 3)
	if cut := CutWeight(g, []int32{0, 1}); cut != 3 {
		t.Fatalf("cut = %v, want 3", cut)
	}
	if cut := CutWeight(g, []int32{0, 0}); cut != 0 {
		t.Fatalf("cut = %v, want 0", cut)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0, 5)
	if len(g.Adj[0]) != 0 {
		t.Fatal("self loop should be ignored")
	}
}
