package graphpart

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a connected-ish random graph: a Hamiltonian path plus
// extra random edges, with random vertex weights.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(int32(v-1), int32(v), float32(1+rng.Intn(3)))
	}
	extra := n * 2
	for e := 0; e < extra; e++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, float32(1+rng.Intn(3)))
		}
	}
	return g
}

// Every vertex gets a part id in [0, parts), and every part is non-empty
// for graphs comfortably larger than the part count.
func TestPartitionCoverageProperty(t *testing.T) {
	check := func(seed int64, partsRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := int(partsRaw)%6 + 2
		n := parts*20 + int(nRaw)%100
		g := randomGraph(rng, n)
		part := Partition(g, parts, 0.15, seed)
		if len(part) != n {
			return false
		}
		counts := make([]int, parts)
		for _, p := range part {
			if p < 0 || int(p) >= parts {
				return false
			}
			counts[p]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The FM refinement must never worsen the cut produced by the initial
// region growing: refining a random bisection again is a no-op or better.
func TestRefinementMonotoneProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(200)
		g := randomGraph(rng, n)
		part := Partition(g, 2, 0.1, seed)
		before := CutWeight(g, part)
		cp := append([]int32(nil), part...)
		fmRefine(g, cp, 0.5, 0.1, 3)
		return CutWeight(g, cp) <= before+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Partition balance: each side of a bisection stays within the epsilon
// bound the refinement enforces (plus the slack the initial growing allows
// on pathological graphs).
func TestBisectionBalanceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		g := randomGraph(rng, n)
		part := Partition(g, 2, 0.1, seed)
		var w0, total int64
		for v := 0; v < g.N; v++ {
			total += int64(g.NodeW[v])
			if part[v] == 0 {
				w0 += int64(g.NodeW[v])
			}
		}
		frac := float64(w0) / float64(total)
		return frac > 0.3 && frac < 0.7
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
