// Package trees implements the hyperplane-partitioning tree baselines of
// Fig. 6: a shared recursive binary-tree index parameterized by a Splitter
// (2-means, PCA, random projection, learned KD axis, or an externally
// supplied learner such as Regression LSH), plus the Boosted Search Forest
// of Li et al. (2011).
//
// All trees share one multi-probe protocol mirroring the learned methods':
// each node exposes a soft routing probability, a leaf's score is the
// product of edge probabilities on its root path, and a query probes the
// mPrime highest-scoring leaves.
package trees

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// Splitter is a fitted binary space split.
type Splitter interface {
	// Side routes a vector to subtree 0 or 1.
	Side(q []float32) int
	// Score returns the soft probability of side 1, in [0, 1]; it drives
	// multi-probe leaf ranking and must be consistent with Side
	// (Score ≥ 0.5 ⇔ Side == 1) away from the boundary.
	Score(q []float32) float32
}

// Fitter learns a Splitter for a subset of the dataset. Returning nil
// declares the subset unsplittable (degenerate), making it a leaf.
type Fitter interface {
	Fit(ds *dataset.Dataset, idx []int32, rng *rand.Rand) Splitter
	Name() string
}

// AssigningSplitter is an optional Splitter extension for supervised
// splitters (e.g. Regression LSH) where the *training points* must follow
// externally computed labels rather than the splitter's own routing:
// Assignments returns the side of each subset point, aligned with the idx
// slice passed to Fit. Queries still route through Side/Score.
type AssigningSplitter interface {
	Splitter
	Assignments() []int32
}

// Tree is a fitted binary partitioning tree.
type Tree struct {
	// Leaves[l] lists the dataset indices in leaf l.
	Leaves [][]int32
	root   *tnode
}

type tnode struct {
	split    Splitter
	children [2]*tnode
	leafID   int // valid when split == nil
}

// Build fits a tree of at most the given depth over ds. Subsets smaller than
// two points, or ones the fitter declares unsplittable, become leaves early.
func Build(ds *dataset.Dataset, depth int, f Fitter, seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	t := &Tree{}
	all := make([]int32, ds.N)
	for i := range all {
		all[i] = int32(i)
	}
	t.root = t.build(ds, all, depth, f, rng)
	return t
}

func (t *Tree) build(ds *dataset.Dataset, idx []int32, depth int, f Fitter, rng *rand.Rand) *tnode {
	makeLeaf := func() *tnode {
		n := &tnode{leafID: len(t.Leaves)}
		t.Leaves = append(t.Leaves, idx)
		return n
	}
	if depth == 0 || len(idx) < 2 {
		return makeLeaf()
	}
	sp := f.Fit(ds, idx, rng)
	if sp == nil {
		return makeLeaf()
	}
	var left, right []int32
	if as, ok := sp.(AssigningSplitter); ok {
		sides := as.Assignments()
		for pos, i := range idx {
			if sides[pos] == 0 {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
	} else {
		for _, i := range idx {
			if sp.Side(ds.Row(int(i))) == 0 {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return makeLeaf()
	}
	n := &tnode{split: sp}
	n.children[0] = t.build(ds, left, depth-1, f, rng)
	n.children[1] = t.build(ds, right, depth-1, f, rng)
	return n
}

// NumLeaves reports the number of leaf bins.
func (t *Tree) NumLeaves() int { return len(t.Leaves) }

// LeafScores returns the query's probability mass for every leaf: products
// of soft routing probabilities along root→leaf paths.
func (t *Tree) LeafScores(q []float32) []float32 {
	out := make([]float32, len(t.Leaves))
	var walk func(n *tnode, p float32)
	walk = func(n *tnode, p float32) {
		if n.split == nil {
			out[n.leafID] = p
			return
		}
		s := n.split.Score(q)
		if s < 0 {
			s = 0
		} else if s > 1 {
			s = 1
		}
		walk(n.children[0], p*(1-s))
		walk(n.children[1], p*s)
	}
	walk(t.root, 1)
	return out
}

// Candidates returns the union of the points in the mPrime highest-scoring
// leaves for q.
func (t *Tree) Candidates(q []float32, mPrime int) []int {
	leaves := vecmath.TopKIndices(t.LeafScores(q), mPrime)
	var out []int
	for _, l := range leaves {
		for _, i := range t.Leaves[l] {
			out = append(out, int(i))
		}
	}
	return out
}

// Route returns the leaf id reached by hard routing.
func (t *Tree) Route(q []float32) int {
	n := t.root
	for n.split != nil {
		n = n.children[n.split.Side(q)]
	}
	return n.leafID
}

// LeafSizes returns per-leaf point counts.
func (t *Tree) LeafSizes() []int {
	out := make([]int, len(t.Leaves))
	for i, l := range t.Leaves {
		out[i] = len(l)
	}
	return out
}
