package vecmath

import (
	"slices"
	"sort"
)

// Neighbor pairs an item index with a distance (or score). It is the unit of
// currency for all top-k selection in the library.
type Neighbor struct {
	Index int
	Dist  float32
}

// TopK maintains the k smallest-distance neighbors seen so far using a
// bounded max-heap: the root is the current worst retained neighbor, so a new
// candidate is admitted in O(log k) only when it beats the root.
//
// The zero value is not usable; construct with NewTopK.
type TopK struct {
	k    int
	heap []Neighbor // max-heap on Dist
}

// NewTopK returns a selector retaining the k nearest neighbors.
// k must be positive.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("vecmath: NewTopK requires k > 0")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// Len reports how many neighbors are currently retained (≤ k).
func (t *TopK) Len() int { return len(t.heap) }

// Worst returns the largest retained distance, or +Inf semantics via ok=false
// when fewer than k neighbors have been pushed (meaning any candidate will be
// admitted).
func (t *TopK) Worst() (d float32, ok bool) {
	if len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Dist, true
}

// Push offers a candidate neighbor.
func (t *TopK) Push(index int, dist float32) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Neighbor{index, dist})
		t.siftUp(len(t.heap) - 1)
		return
	}
	if dist >= t.heap[0].Dist {
		return
	}
	t.heap[0] = Neighbor{index, dist}
	t.siftDown(0)
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

// Sorted drains the selector and returns the retained neighbors ordered by
// ascending distance (ties broken by ascending index for determinism).
// The selector is empty afterwards and may be reused.
func (t *TopK) Sorted() []Neighbor {
	out := t.heap
	t.heap = make([]Neighbor, 0, t.k)
	sortNeighbors(out)
	return out
}

// AppendSorted appends the retained neighbors to dst ordered by ascending
// distance (ties broken by ascending index) and resets the selector, keeping
// its buffer. Unlike Sorted it performs no allocation beyond growing dst, so
// a selector + destination pair can be reused across queries allocation-free.
func (t *TopK) AppendSorted(dst []Neighbor) []Neighbor {
	slices.SortFunc(t.heap, compareNeighbors)
	dst = append(dst, t.heap...)
	t.heap = t.heap[:0]
	return dst
}

// Reset discards all retained neighbors, keeping capacity.
func (t *TopK) Reset() { t.heap = t.heap[:0] }

// SetK changes the retention count for subsequent pushes, discarding any
// currently retained neighbors but keeping the buffer when it is large
// enough. k must be positive.
func (t *TopK) SetK(k int) {
	if k <= 0 {
		panic("vecmath: TopK.SetK requires k > 0")
	}
	t.k = k
	if cap(t.heap) < k {
		t.heap = make([]Neighbor, 0, k)
	} else {
		t.heap = t.heap[:0]
	}
}

func compareNeighbors(a, b Neighbor) int {
	switch {
	case a.Dist < b.Dist:
		return -1
	case a.Dist > b.Dist:
		return 1
	case a.Index < b.Index:
		return -1
	case a.Index > b.Index:
		return 1
	}
	return 0
}

func sortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, compareNeighbors)
}

// MergeSortedNeighbors appends to dst the k best neighbors across the given
// lists and returns it. Every list must already be sorted by (Dist asc,
// Index asc) — the order TopK.AppendSorted and Sorted emit — and the output
// preserves exactly that ordering, so merging the per-shard top-k lists of a
// fanned-out query is bit-identical to running one TopK over the union of
// the shards' candidates: ties at the cut are broken by ascending Index, the
// same rule compareNeighbors applies everywhere else in the library. The
// merge is bounded: it performs at most k selection steps over len(lists)
// cursors and allocates nothing beyond growth of dst.
func MergeSortedNeighbors(dst []Neighbor, k int, lists ...[]Neighbor) []Neighbor {
	if k <= 0 {
		return dst
	}
	// Cursor state lives in a small stack array for the common fan-out
	// widths; fall back to an allocation only for very wide merges.
	var curArr [16]int
	var cur []int
	if len(lists) <= len(curArr) {
		cur = curArr[:len(lists)]
	} else {
		cur = make([]int, len(lists))
	}
	for taken := 0; taken < k; taken++ {
		best := -1
		for li, l := range lists {
			if cur[li] >= len(l) {
				continue
			}
			if best < 0 || compareNeighbors(l[cur[li]], lists[best][cur[best]]) < 0 {
				best = li
			}
		}
		if best < 0 {
			break // all lists exhausted
		}
		dst = append(dst, lists[best][cur[best]])
		cur[best]++
	}
	return dst
}

// TopKIndices returns the indices of the k largest values of x in descending
// value order (ties broken by ascending index). If k exceeds len(x), all
// indices are returned. Used to pick the m′ most probable bins from a model's
// probability vector.
func TopKIndices(x []float32, k int) []int {
	n := len(x)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Full sort is fine: bin counts are small (m ≤ a few thousand).
	sort.Slice(idx, func(a, b int) bool {
		if x[idx[a]] != x[idx[b]] {
			return x[idx[a]] > x[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// TopKIndicesInto is TopKIndices writing into dst (reusing its capacity):
// the indices of the k largest values of x in descending value order, ties
// broken by ascending index. It allocates nothing once dst has capacity k,
// making it suitable for the per-query bin selection of the online phase.
// The two functions return identical orderings for identical inputs.
func TopKIndicesInto(dst []int, x []float32, k int) []int {
	n := len(x)
	if k > n {
		k = n
	}
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	// Partial insertion selection: dst is kept sorted by (value desc, index
	// asc). Scanning indices in ascending order with strict comparisons
	// reproduces TopKIndices' tie-breaking exactly. m′ and m are small, so
	// the O(n·k) shifts are cheaper than maintaining a heap.
	for i, v := range x {
		if len(dst) < k {
			j := len(dst)
			for j > 0 && x[dst[j-1]] < v {
				j--
			}
			dst = append(dst, 0)
			copy(dst[j+1:], dst[j:])
			dst[j] = i
		} else if x[dst[k-1]] < v {
			j := k - 1
			for j > 0 && x[dst[j-1]] < v {
				j--
			}
			copy(dst[j+1:k], dst[j:k-1])
			dst[j] = i
		}
	}
	return dst
}

// SelectKthLargest returns the k-th largest value of x (1-based: k=1 is the
// maximum) using an in-place quickselect over a copy. It is used by the
// balance loss to find the per-column probability window threshold in O(n).
func SelectKthLargest(x []float32, k int) float32 {
	if k <= 0 || k > len(x) {
		panic("vecmath: SelectKthLargest k out of range")
	}
	buf := make([]float32, len(x))
	copy(buf, x)
	lo, hi := 0, len(buf)-1
	target := k - 1 // index in descending order
	for {
		if lo == hi {
			return buf[lo]
		}
		// Median-of-three pivot for resistance to sorted inputs.
		mid := lo + (hi-lo)/2
		if buf[mid] > buf[lo] {
			buf[mid], buf[lo] = buf[lo], buf[mid]
		}
		if buf[hi] > buf[lo] {
			buf[hi], buf[lo] = buf[lo], buf[hi]
		}
		if buf[mid] > buf[hi] {
			buf[mid], buf[hi] = buf[hi], buf[mid]
		}
		pivot := buf[hi]
		i := lo
		for j := lo; j < hi; j++ {
			if buf[j] > pivot { // descending partition
				buf[i], buf[j] = buf[j], buf[i]
				i++
			}
		}
		buf[i], buf[hi] = buf[hi], buf[i]
		switch {
		case target == i:
			return buf[i]
		case target < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
}
