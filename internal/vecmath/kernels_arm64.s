// NEON float32 microkernels, selected at init by dispatch_arm64.go (AdvSIMD
// is mandatory on AArch64, so there is no feature check). The portable
// scalar kernels (kernels_scalar.go) remain reachable via USP_FORCE_SCALAR.
//
// Reduction order is fixed and deterministic per kernel: two 4-lane FMLA
// accumulators over 8-element blocks, a lane-ordered horizontal sum
// (V0[0..3] then V1[0..3]), then a scalar-FMA tail. Like the AVX2 port,
// results may differ from the scalar kernels by normal float32 rounding
// (fused contractions, different lane split); equivalence_test.go bounds
// the divergence on both architectures.
//
// The Go assembler has no mnemonic for the vector FSUB, so the two
// subtractions in sqL2NEON are WORD-encoded (FSUB Vd.4S, Vn.4S, Vm.4S =
// 0x4EA0D400 | Rm<<16 | Rn<<5 | Rd); the comments carry the decoding and
// CI disassembles the object to keep them honest.

#include "textflag.h"

// func dotNEON(a, b []float32) float32
TEXT ·dotNEON(SB), NOSPLIT, $0-52
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R1
	MOVD a_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3            // 8-element blocks
	CBZ  R3, dotreduce
dot8:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1.P 32(R1), [V4.S4, V5.S4]
	VFMLA V4.S4, V2.S4, V0.S4  // V0 += a[0:4] * b[0:4]
	VFMLA V5.S4, V3.S4, V1.S4  // V1 += a[4:8] * b[4:8]
	SUB  $1, R3, R3
	CBNZ R3, dot8
dotreduce:
	// Lane-ordered horizontal sum into F0 (= V0.S[0]). V1's lanes are
	// pulled into GPRs first so F1..F3 are free as scratch.
	VMOV V0.S[1], R4
	VMOV V0.S[2], R5
	VMOV V0.S[3], R6
	VMOV V1.S[0], R7
	VMOV V1.S[1], R8
	VMOV V1.S[2], R9
	VMOV V1.S[3], R10
	FMOVS R4, F1
	FADDS F1, F0, F0
	FMOVS R5, F1
	FADDS F1, F0, F0
	FMOVS R6, F1
	FADDS F1, F0, F0
	FMOVS R7, F1
	FADDS F1, F0, F0
	FMOVS R8, F1
	FADDS F1, F0, F0
	FMOVS R9, F1
	FADDS F1, F0, F0
	FMOVS R10, F1
	FADDS F1, F0, F0
	AND  $7, R2, R3
	CBZ  R3, dotdone
dottail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FMADDS F2, F0, F3, F0      // F0 = F0 + F3*F2
	SUB  $1, R3, R3
	CBNZ R3, dottail
dotdone:
	FMOVS F0, ret+48(FP)
	RET

// func sqL2NEON(a, b []float32) float32
TEXT ·sqL2NEON(SB), NOSPLIT, $0-52
	MOVD a_base+0(FP), R0
	MOVD b_base+24(FP), R1
	MOVD a_len+8(FP), R2
	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	LSR  $3, R2, R3
	CBZ  R3, sqreduce
sq8:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1.P 32(R1), [V4.S4, V5.S4]
	WORD $0x4ea4d442           // FSUB V2.4S, V2.4S, V4.4S
	WORD $0x4ea5d463           // FSUB V3.4S, V3.4S, V5.4S
	VFMLA V2.S4, V2.S4, V0.S4  // V0 += d*d
	VFMLA V3.S4, V3.S4, V1.S4
	SUB  $1, R3, R3
	CBNZ R3, sq8
sqreduce:
	VMOV V0.S[1], R4
	VMOV V0.S[2], R5
	VMOV V0.S[3], R6
	VMOV V1.S[0], R7
	VMOV V1.S[1], R8
	VMOV V1.S[2], R9
	VMOV V1.S[3], R10
	FMOVS R4, F1
	FADDS F1, F0, F0
	FMOVS R5, F1
	FADDS F1, F0, F0
	FMOVS R6, F1
	FADDS F1, F0, F0
	FMOVS R7, F1
	FADDS F1, F0, F0
	FMOVS R8, F1
	FADDS F1, F0, F0
	FMOVS R9, F1
	FADDS F1, F0, F0
	FMOVS R10, F1
	FADDS F1, F0, F0
	AND  $7, R2, R3
	CBZ  R3, sqdone
sqtail:
	FMOVS.P 4(R0), F2
	FMOVS.P 4(R1), F3
	FSUBS F3, F2, F2           // F2 = a[i] - b[i]
	FMADDS F2, F0, F2, F0      // F0 = F0 + F2*F2
	SUB  $1, R3, R3
	CBNZ R3, sqtail
sqdone:
	FMOVS F0, ret+48(FP)
	RET

// func lutSumNEON(lut []float32, k int, code []uint8) float32
//
// ADC lookup-table sum: Σ_s lut[s*k + code[s]]. AArch64 NEON has no
// gather instruction, so this is a 4-accumulator scalar-register loop
// whose accumulation order exactly matches lutSumScalar's 4-way unroll —
// the NEON result is bit-identical to the scalar reference. The win over
// compiled Go is tighter address generation (shifted-register adds,
// post-increment byte loads), not vectorization.
TEXT ·lutSumNEON(SB), NOSPLIT, $0-60
	MOVD lut_base+0(FP), R0
	MOVD k+24(FP), R1
	MOVD code_base+32(FP), R2
	MOVD code_len+40(FP), R3
	FMOVS ZR, F0
	FMOVS ZR, F1
	FMOVS ZR, F2
	FMOVS ZR, F3
	MOVD $0, R6                // j = row offset in floats (i*k)
	LSR  $2, R3, R4            // 4-code blocks
	CBZ  R4, luttailcnt
lut4:
	MOVBU.P 1(R2), R7
	ADD  R6, R7, R7            // j + code[i]
	ADD  R7<<2, R0, R8
	FMOVS (R8), F4
	FADDS F4, F0, F0
	ADD  R1, R6, R6            // j += k
	MOVBU.P 1(R2), R7
	ADD  R6, R7, R7
	ADD  R7<<2, R0, R8
	FMOVS (R8), F4
	FADDS F4, F1, F1
	ADD  R1, R6, R6
	MOVBU.P 1(R2), R7
	ADD  R6, R7, R7
	ADD  R7<<2, R0, R8
	FMOVS (R8), F4
	FADDS F4, F2, F2
	ADD  R1, R6, R6
	MOVBU.P 1(R2), R7
	ADD  R6, R7, R7
	ADD  R7<<2, R0, R8
	FMOVS (R8), F4
	FADDS F4, F3, F3
	ADD  R1, R6, R6
	SUB  $1, R4, R4
	CBNZ R4, lut4
luttailcnt:
	AND  $3, R3, R4
	CBZ  R4, lutreduce
luttail:
	MOVBU.P 1(R2), R7
	ADD  R6, R7, R7
	ADD  R7<<2, R0, R8
	FMOVS (R8), F4
	FADDS F4, F0, F0
	ADD  R1, R6, R6
	SUB  $1, R4, R4
	CBNZ R4, luttail
lutreduce:
	FADDS F1, F0, F0           // ((s0+s1)+s2)+s3, matching the scalar return
	FADDS F2, F0, F0
	FADDS F3, F0, F0
	FMOVS F0, ret+56(FP)
	RET

// func axpyNEON(alpha float32, x, y []float32)
TEXT ·axpyNEON(SB), NOSPLIT, $0-56
	FMOVS alpha+0(FP), F6
	VDUP V6.S[0], V6.S4
	MOVD x_base+8(FP), R0
	MOVD y_base+32(FP), R1
	MOVD x_len+16(FP), R2
	LSR  $3, R2, R3
	CBZ  R3, axtail
ax8:
	VLD1.P 32(R0), [V2.S4, V3.S4]
	VLD1 (R1), [V4.S4, V5.S4]
	VFMLA V2.S4, V6.S4, V4.S4  // y += alpha * x
	VFMLA V3.S4, V6.S4, V5.S4
	VST1.P [V4.S4, V5.S4], 32(R1)
	SUB  $1, R3, R3
	CBNZ R3, ax8
axtail:
	AND  $7, R2, R3
	CBZ  R3, axdone
axtail1:
	FMOVS.P 4(R0), F2
	FMOVS (R1), F4
	FMADDS F2, F4, F6, F4      // F4 = F4 + F6*F2
	FMOVS.P F4, 4(R1)
	SUB  $1, R3, R3
	CBNZ R3, axtail1
axdone:
	RET
