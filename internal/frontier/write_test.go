package frontier

import (
	"net/http"
	"testing"

	"repro/internal/serve"
)

// TestAddRoutesLeastRows: /add lands on the group with the fewest rows,
// assigns the backend's next local id, and a wrong-width vector comes
// back as the backend's own 400.
func TestAddRoutesLeastRows(t *testing.T) {
	vecs := corpusRows(t, 149, 500, 8)
	small := buildIndex(t, vecs[:200])
	big := buildIndex(t, vecs[200:])
	smallSrv, bigSrv := backendFor(t, small), backendFor(t, big)
	f, front := frontFor(t, Config{Shards: [][]string{{bigSrv.URL}, {smallSrv.URL}}})

	for i := 0; i < 3; i++ {
		ar := decode[serve.AddResponse](t, postJSON(t, front.URL+"/add", serve.AddRequest{Vector: vecs[i]}))
		if ar.ID != 200+i {
			t.Fatalf("add %d: assigned id %d, want %d (the smaller shard's next id)", i, ar.ID, 200+i)
		}
	}
	hz := decode[serve.HealthzResponse](t, mustGet(t, smallSrv.URL+"/healthz"))
	if hz.Vectors != 203 {
		t.Fatalf("small shard has %d vectors, want 203", hz.Vectors)
	}
	hz = decode[serve.HealthzResponse](t, mustGet(t, bigSrv.URL+"/healthz"))
	if hz.Vectors != 300 {
		t.Fatalf("big shard has %d vectors, want 300 (no adds should land here)", hz.Vectors)
	}

	// Backend 4xx verdicts pass through verbatim; nothing is retried.
	resp := postJSON(t, front.URL+"/add", serve.AddRequest{Vector: vecs[0][:4]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim mismatch add: HTTP %d, want 400", resp.StatusCode)
	}
	if f.retries.Value() != 0 {
		t.Fatalf("a failed write was retried %d times", f.retries.Value())
	}
}

// TestAddReplicatedToAllSiblings: a routed add reaches every replica of
// the target group, keeping siblings row-identical.
func TestAddReplicatedToAllSiblings(t *testing.T) {
	vecs := corpusRows(t, 151, 300, 8)
	r1, r2 := buildIndex(t, vecs), buildIndex(t, vecs)
	s1, s2 := backendFor(t, r1), backendFor(t, r2)
	_, front := frontFor(t, Config{Shards: [][]string{{s1.URL, s2.URL}}})

	ar := decode[serve.AddResponse](t, postJSON(t, front.URL+"/add", serve.AddRequest{Vector: vecs[0]}))
	if ar.ID != 300 || ar.IDOffset != 0 {
		t.Fatalf("add assigned %d@%d, want 300@0", ar.ID, ar.IDOffset)
	}
	for _, srv := range []string{s1.URL, s2.URL} {
		hz := decode[serve.HealthzResponse](t, mustGet(t, srv+"/healthz"))
		if hz.Vectors != 301 {
			t.Fatalf("replica %s has %d vectors, want 301 (write must reach every sibling)", srv, hz.Vectors)
		}
	}
}

// TestDeleteRoutesByOffset: /delete takes a global id and forwards the
// offset-corrected local id to the shard whose id range owns it.
func TestDeleteRoutesByOffset(t *testing.T) {
	vecs := corpusRows(t, 157, 600, 8)
	union := buildIndex(t, vecs)
	shards, err := union.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	f, front := frontFor(t, Config{Shards: [][]string{
		{backendFor(t, shards[0]).URL},
		{backendFor(t, shards[1]).URL},
	}})

	// Sanity: exact self-queries resolve to their own global ids.
	for _, id := range []int{10, 450} {
		sr := decode[serve.SearchResponse](t, postJSON(t, front.URL+"/search",
			serve.SearchRequest{Vector: vecs[id], K: 1, Probes: 2}))
		if len(sr.IDs) != 1 || sr.IDs[0] != id {
			t.Fatalf("pre-delete query for %d answered %v", id, sr.IDs)
		}
	}
	for _, id := range []int{10, 450} {
		dr := decode[serve.DeleteResponse](t, postJSON(t, front.URL+"/delete", serve.DeleteRequest{ID: id}))
		if !dr.Deleted {
			t.Fatalf("delete %d not acknowledged", id)
		}
		sr := decode[serve.SearchResponse](t, postJSON(t, front.URL+"/search",
			serve.SearchRequest{Vector: vecs[id], K: 1, Probes: 2}))
		if len(sr.IDs) == 1 && sr.IDs[0] == id {
			t.Fatalf("global id %d still served after routed delete", id)
		}
	}

	// Out-of-range local id after routing → the backend's 404, verbatim.
	resp := postJSON(t, front.URL+"/delete", serve.DeleteRequest{ID: 99999})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range delete: HTTP %d, want the backend's 404", resp.StatusCode)
	}
	// Negative ids are rejected at the front with zero backend traffic.
	before := f.fanout.Value()
	resp = postJSON(t, front.URL+"/delete", serve.DeleteRequest{ID: -1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative delete: HTTP %d, want 400", resp.StatusCode)
	}
	if f.fanout.Value() != before {
		t.Fatal("negative id reached a backend")
	}
}

// TestAddAvoidsIDCollisionAcrossShardRanges: with Shard-produced packed
// id ranges, least-rows placement alone would put an add on an interior
// shard and mint a global id already owned by the next shard — a routed
// delete of that id would then destroy the wrong vector. Adds must land
// on the only group with id headroom (the tail shard) so global ids stay
// unique and delete routing stays sound.
func TestAddAvoidsIDCollisionAcrossShardRanges(t *testing.T) {
	vecs := corpusRows(t, 163, 600, 8)
	union := buildIndex(t, vecs)
	shards, err := union.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	_, front := frontFor(t, Config{Shards: [][]string{
		{backendFor(t, shards[0]).URL},
		{backendFor(t, shards[1]).URL},
	}})

	// Both shards hold 300 rows; naive least-rows ties to shard 0, whose
	// next global id (300) collides with shard 1's range [300, 600).
	added := make([]float32, 8)
	for i := range added {
		added[i] = 0.137
	}
	ar := decode[serve.AddResponse](t, postJSON(t, front.URL+"/add", serve.AddRequest{Vector: added}))
	gid := ar.ID + ar.IDOffset
	if ar.IDOffset != 300 || gid != 600 {
		t.Fatalf("add landed at id %d@%d (global %d), want the tail shard: 300@300 (global 600)",
			ar.ID, ar.IDOffset, gid)
	}

	// Deleting the new global id must remove the added vector...
	dr := decode[serve.DeleteResponse](t, postJSON(t, front.URL+"/delete", serve.DeleteRequest{ID: gid}))
	if !dr.Deleted {
		t.Fatalf("delete of added id %d not acknowledged", gid)
	}
	sr := decode[serve.SearchResponse](t, postJSON(t, front.URL+"/search",
		serve.SearchRequest{Vector: added, K: 1, Probes: 2}))
	if len(sr.IDs) == 1 && sr.IDs[0] == gid {
		t.Fatalf("added vector still served as %v after its delete", sr.IDs)
	}
	// ...and the vector that owns the colliding-range id (shard 1's first
	// row, global id 300) must be untouched.
	sr = decode[serve.SearchResponse](t, postJSON(t, front.URL+"/search",
		serve.SearchRequest{Vector: vecs[300], K: 1, Probes: 2}))
	if len(sr.IDs) != 1 || sr.IDs[0] != 300 {
		t.Fatalf("global id 300 answered %v after deleting the added id; the wrong vector was deleted", sr.IDs)
	}
}
