package usp

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// churn applies adds and deletes so an index carries live spill lists and
// tombstones — the states a snapshot must capture faithfully.
func churn(t testing.TB, ix *Index, vecs [][]float32, adds, deletes int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < adds; i++ {
		nv := append([]float32(nil), vecs[rng.Intn(len(vecs))]...)
		nv[0] += float32(rng.NormFloat64()) * 0.02
		if _, err := ix.Add(nv); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < deletes; {
		if err := ix.Delete(rng.Intn(len(vecs) + adds)); err == nil {
			i++
		}
	}
}

// requireIdentical asserts two indexes answer a query set bit-identically:
// same ids, same order, same float bits, across probe configurations.
func requireIdentical(t *testing.T, a, b *Index, queries [][]float32, label string) {
	t.Helper()
	for _, opt := range []SearchOptions{
		{Probes: 1},
		{Probes: 2},
		{Probes: 2, UnionEnsemble: true},
	} {
		for qi, q := range queries {
			ra, err := a.Search(q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := b.Search(q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(ra) != len(rb) {
				t.Fatalf("%s %v q%d: %d vs %d results", label, opt, qi, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("%s %v q%d result %d: %+v vs %+v", label, opt, qi, i, ra[i], rb[i])
				}
			}
		}
	}
}

// TestSnapshotRoundTripServesIdentically is the acceptance test for the
// snapshot format: save → load must serve bit-identical results, including
// from an index carrying post-Insert spill lists and tombstones, for both
// ensemble and hierarchy architectures.
func TestSnapshotRoundTripServesIdentically(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"ensemble", Options{Bins: 4, Ensemble: 2, Epochs: 25, Hidden: []int{16}, Seed: 7, CompactAfter: -1}},
		{"hierarchy", Options{Hierarchy: []int{2, 2}, Epochs: 15, Hidden: []int{8}, Seed: 7, CompactAfter: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vecs, _ := clusteredVectors(103, 500, 8, 4)
			ix, err := Build(vecs, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			churn(t, ix, vecs, 90, 60, 104)

			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}

			if loaded.Len() != ix.Len() || loaded.Dim() != ix.Dim() {
				t.Fatalf("Len/Dim mismatch: %d/%d vs %d/%d",
					loaded.Len(), loaded.Dim(), ix.Len(), ix.Dim())
			}
			if loaded.Stats() != ix.Stats() {
				t.Fatalf("stats mismatch: %+v vs %+v", loaded.Stats(), ix.Stats())
			}
			requireIdentical(t, ix, loaded, vecs[:60], "live-vs-loaded")

			// The loaded index is fully live: it accepts further churn, a
			// compaction, and a second snapshot generation.
			churn(t, loaded, vecs, 20, 10, 105)
			loaded.Compact()
			var buf2 bytes.Buffer
			if err := loaded.Save(&buf2); err != nil {
				t.Fatal(err)
			}
			second, err := Load(bytes.NewReader(buf2.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, loaded, second, vecs[:30], "second-generation")
		})
	}
}

// TestSnapshotCompactionCommutes pins the merge-order contract: saving a
// churned index and saving its compacted self produce indexes that serve
// identically (compaction never reorders surviving candidates).
func TestSnapshotCompactionCommutes(t *testing.T) {
	vecs, _ := clusteredVectors(107, 500, 8, 4)
	ix, err := Build(vecs, Options{Bins: 4, Ensemble: 2, Epochs: 25, Hidden: []int{16}, Seed: 9, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	churn(t, ix, vecs, 70, 40, 108)

	var pre bytes.Buffer
	if err := ix.Save(&pre); err != nil {
		t.Fatal(err)
	}
	ix.Compact()
	var post bytes.Buffer
	if err := ix.Save(&post); err != nil {
		t.Fatal(err)
	}
	a, err := Load(bytes.NewReader(pre.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(bytes.NewReader(post.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, a, b, vecs[:50], "precompact-vs-postcompact")
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	vecs, _ := clusteredVectors(109, 400, 8, 4)
	ix, err := Build(vecs, Options{Bins: 4, Epochs: 20, Hidden: []int{16}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.usps")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if !IsSnapshotFile(path) {
		t.Fatal("snapshot file not recognized")
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, ix, loaded, vecs[:40], "file")
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); err == nil {
		t.Fatal("garbage must not load")
	}
	// Truncation anywhere must error, not panic or hang.
	vecs, _ := clusteredVectors(113, 200, 4, 2)
	ix, err := Build(vecs, Options{Bins: 2, Epochs: 5, Logistic: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 15, 40, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) loaded", cut, len(full))
		}
	}
	if IsSnapshotFile(filepath.Join(t.TempDir(), "missing")) {
		t.Fatal("missing file reported as snapshot")
	}
}

// TestSnapshotRestoresLifecycleState is the regression test for dead-id
// accounting across save/load: an id compacted away before the save must
// still be rejected by Delete on the loaded index, the epoch sequence
// number must survive, and Len/Dead must not drift through a further
// compaction cycle.
func TestSnapshotRestoresLifecycleState(t *testing.T) {
	vecs, _ := clusteredVectors(137, 300, 6, 3)
	ix, err := Build(vecs, Options{Bins: 3, Epochs: 10, Hidden: []int{8}, Seed: 23, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(5); err != nil {
		t.Fatal(err)
	}
	ix.Compact() // id 5 leaves the tables: tombstone folded into the dead set
	if err := ix.Delete(9); err != nil {
		t.Fatal(err) // a live tombstone travels alongside the dead set
	}
	want := ix.Lifecycle()
	if want.Dead != 1 || want.Tombstones != 1 {
		t.Fatalf("precondition lifecycle %+v", want)
	}

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Lifecycle(); got != want {
		t.Fatalf("lifecycle not restored: %+v, want %+v", got, want)
	}
	if err := loaded.Delete(5); err == nil {
		t.Fatal("compacted-dead id re-deleted after load")
	}
	if err := loaded.Delete(9); err == nil {
		t.Fatal("tombstoned id re-deleted after load")
	}
	if loaded.Len() != 298 {
		t.Fatalf("Len = %d, want 298", loaded.Len())
	}
	loaded.Compact()
	if got := loaded.Lifecycle(); got.Dead != 2 || got.Tombstones != 0 || loaded.Len() != 298 {
		t.Fatalf("post-load compaction drifted: %+v, Len %d", got, loaded.Len())
	}
}

// TestSaveDuringConcurrentMutation exercises snapshot isolation of Save:
// a save racing adds/deletes must produce a loadable, internally
// consistent snapshot (some prefix of the mutation stream).
func TestSaveDuringConcurrentMutation(t *testing.T) {
	vecs, _ := clusteredVectors(127, 500, 8, 4)
	ix, err := Build(vecs, Options{Bins: 4, Epochs: 20, Hidden: []int{16}, Seed: 17, CompactAfter: 48})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(128))
		for i := 0; ; i++ {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if i%3 == 0 {
				if err := ix.Delete(rng.Intn(500)); err != nil {
					continue // duplicate delete is fine here
				}
			} else {
				nv := append([]float32(nil), vecs[rng.Intn(len(vecs))]...)
				nv[0] += 0.01
				if _, err := ix.Add(nv); err != nil {
					done <- err
					return
				}
			}
		}
	}()
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		lc := loaded.Lifecycle()
		if lc.Live != loaded.Len() || lc.Rows < 500 {
			t.Fatalf("inconsistent loaded lifecycle %+v", lc)
		}
		if _, err := loaded.Search(vecs[0], 5, SearchOptions{Probes: 2}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestLegacySaveIndexFileStillWorks covers the retained model-only format
// (and its close-once fix): an ensemble written through SaveIndexFile must
// reload through LoadIndexFile.
func TestLegacySaveIndexFileStillWorks(t *testing.T) {
	// The legacy path lives in internal/core; exercised through usptrain's
	// -legacy mode equivalent. Covered here via the snapshot sniffing
	// boundary: a legacy file must NOT be detected as a snapshot.
	vecs, _ := clusteredVectors(131, 300, 6, 3)
	ix, err := Build(vecs, Options{Bins: 3, Epochs: 10, Hidden: []int{8}, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.usp")
	ep := ix.live.Load()
	if err := core.SaveIndexFile(path, ep.ens, ep.hier); err != nil {
		t.Fatal(err)
	}
	ens, hier, err := core.LoadIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ens == nil || hier != nil {
		t.Fatalf("legacy reload wrong: ens=%v hier=%v", ens != nil, hier != nil)
	}
	if got, want := len(ens.Parts), len(ep.ens.Parts); got != want {
		t.Fatalf("legacy reload lost members: %d vs %d", got, want)
	}
	if IsSnapshotFile(path) {
		t.Fatal("legacy file misdetected as snapshot")
	}
	if _, err := Load(bytes.NewReader([]byte(fmt.Sprintf("%d", 42)))); err == nil {
		t.Fatal("non-snapshot stream must fail to load")
	}
}
