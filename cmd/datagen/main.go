// Command datagen generates the synthetic datasets used throughout the
// reproduction and writes them in fvecs format (the interchange format of
// the ann-benchmarks suite), so they can be inspected, reused, or replaced
// by the real SIFT/MNIST files.
//
// Usage:
//
//	datagen -kind sift -n 10000 -o sift.fvecs
//	datagen -kind moons -n 400 -o moons.fvecs
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		kind = flag.String("kind", "sift", "sift | mnist | moons | circles | blobs4 | uniform")
		n    = flag.Int("n", 10000, "number of vectors")
		dim  = flag.Int("dim", 32, "dimensions (uniform only)")
		seed = flag.Int64("seed", 1, "RNG seed")
		out  = flag.String("o", "", "output fvecs path (required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))

	var ds *dataset.Dataset
	switch *kind {
	case "sift":
		ds = dataset.SIFTLike(*n, rng)
	case "mnist":
		ds = dataset.MNISTLike(*n, rng)
	case "moons":
		ds = dataset.Moons(*n, 0.05, rng).Dataset
	case "circles":
		ds = dataset.Circles(*n, 0.5, 0.02, rng).Dataset
	case "blobs4":
		ds = dataset.Classification4(*n, rng).Dataset
	case "uniform":
		ds = dataset.Uniform(*n, *dim, rng)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err := dataset.SaveFvecsFile(*out, ds); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %d vectors of dim %d to %s\n", ds.N, ds.Dim, *out)
}
