package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// trainedMLP returns a small MLP whose batch-norm running statistics have
// been moved off their initial values by a few training steps, so the
// inference fast path is exercised against non-trivial state.
func trainedMLP(t *testing.T, inDim, outDim int) *Sequential {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	model := NewMLP(inDim, []int{9}, outDim, 0.1, rng)
	opt := NewAdam(1e-3)
	x := tensor.New(32, inDim)
	targets := tensor.New(32, outDim)
	for step := 0; step < 5; step++ {
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		for i := 0; i < targets.Rows; i++ {
			row := targets.Row(i)
			for j := range row {
				row[j] = 0
			}
			row[rng.Intn(outDim)] = 1
		}
		model.ZeroGrads()
		logits := model.Forward(x, true)
		res := USPLoss(logits, targets, nil, 1)
		model.Backward(res.Grad)
		opt.Step(model.Params())
	}
	return model
}

func TestPredictVecIntoMatchesPredictVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, build := range []func() *Sequential{
		func() *Sequential { return trainedMLP(t, 11, 5) },
		func() *Sequential { return NewLogistic(11, 5, rand.New(rand.NewSource(5))) },
	} {
		model := build()
		var sc InferScratch
		var dst []float32
		for trial := 0; trial < 50; trial++ {
			v := make([]float32, 11)
			for i := range v {
				v[i] = float32(rng.NormFloat64())
			}
			if trial%7 == 0 {
				v[trial%11] = 0 // exercise MatMul's zero-input skip
			}
			want := model.PredictVec(v)
			dst = model.PredictVecInto(dst, v, &sc)
			if len(want) != len(dst) {
				t.Fatalf("width %d vs %d", len(dst), len(want))
			}
			for j := range want {
				if want[j] != dst[j] {
					t.Fatalf("trial %d: prob[%d] = %v, want %v (must be bit-identical)",
						trial, j, dst[j], want[j])
				}
			}
		}
	}
}

func TestPredictVecIntoAllocs(t *testing.T) {
	model := trainedMLP(t, 16, 8)
	var sc InferScratch
	v := make([]float32, 16)
	for i := range v {
		v[i] = float32(i) * 0.1
	}
	dst := make([]float32, 0, 8)
	dst = model.PredictVecInto(dst, v, &sc) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		dst = model.PredictVecInto(dst[:0], v, &sc)
	})
	if allocs != 0 {
		t.Fatalf("PredictVecInto allocates %v per run", allocs)
	}
}
