package knn

import (
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/vecmath"
)

// ApproxConfig controls BuildMatrixApprox.
type ApproxConfig struct {
	// Trees is the number of random-projection trees used to seed
	// neighbor lists (default 8).
	Trees int
	// LeafSize bounds RP-tree leaves; all pairs within a leaf are
	// examined (default 32).
	LeafSize int
	// Iters bounds NN-descent refinement rounds (default 10; rounds stop
	// early once updates dry up).
	Iters int
	// Seed drives tree projections and sampling.
	Seed int64
}

func (c ApproxConfig) withDefaults() ApproxConfig {
	if c.Trees == 0 {
		c.Trees = 8
	}
	if c.LeafSize == 0 {
		c.LeafSize = 32
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	return c
}

// BuildMatrixApprox computes an approximate k′-NN matrix in roughly
// O(n·(T·log n + k²·iters)) distance evaluations instead of BuildMatrix's
// exact O(n²): random-projection trees seed each point's neighbor list with
// its leaf-mates, and NN-descent (Dong, Moses & Li 2011) refines the lists
// by repeatedly examining neighbors-of-neighbors. The paper reports ~30
// minutes of exact preprocessing on SIFT1M; this is the standard device for
// cutting that cost while keeping the training targets accurate (recall of
// the produced lists is measured in the tests and is ≳0.9 on clustered
// data).
func BuildMatrixApprox(base *dataset.Dataset, k int, cfg ApproxConfig) *Matrix {
	if k <= 0 || k >= base.N {
		panic("knn: BuildMatrixApprox k out of range")
	}
	cfg = cfg.withDefaults()
	n := base.N
	heaps := make([]*vecmath.TopK, n)
	for i := range heaps {
		heaps[i] = vecmath.NewTopK(k)
	}
	// Guard against duplicate pushes of the same pair within one heap:
	// a simple per-point member set.
	members := make([]map[int32]struct{}, n)
	for i := range members {
		members[i] = make(map[int32]struct{}, 2*k)
	}
	var push = func(i int, j int32, d float32) bool {
		if int32(i) == j {
			return false
		}
		if _, ok := members[i][j]; ok {
			return false
		}
		if worst, full := heaps[i].Worst(); full && d >= worst {
			return false
		}
		members[i][j] = struct{}{}
		heaps[i].Push(int(j), d)
		return true
	}

	// --- Phase 1: RP-tree seeding. ---
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	for t := 0; t < cfg.Trees; t++ {
		treeRng := rand.New(rand.NewSource(rng.Int63()))
		perm := append([]int32(nil), idx...)
		rpLeaves(base, perm, cfg.LeafSize, treeRng, func(leaf []int32) {
			for a := 0; a < len(leaf); a++ {
				ra := base.Row(int(leaf[a]))
				for b := a + 1; b < len(leaf); b++ {
					d := vecmath.SquaredL2(ra, base.Row(int(leaf[b])))
					push(int(leaf[a]), leaf[b], d)
					push(int(leaf[b]), leaf[a], d)
				}
			}
		})
	}

	// --- Phase 2: NN-descent refinement. ---
	current := func(i int) []int32 {
		// Snapshot the heap non-destructively via the member set.
		out := make([]int32, 0, len(members[i]))
		for j := range members[i] {
			out = append(out, j)
		}
		return out
	}
	for it := 0; it < cfg.Iters; it++ {
		updates := 0
		snapshots := make([][]int32, n)
		par.ForChunks(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				snapshots[i] = current(i)
			}
		})
		for i := 0; i < n; i++ {
			ri := base.Row(i)
			for _, j := range snapshots[i] {
				for _, jj := range snapshots[j] {
					if jj == int32(i) {
						continue
					}
					d := vecmath.SquaredL2(ri, base.Row(int(jj)))
					if push(i, jj, d) {
						updates++
					}
					if push(int(jj), int32(i), d) {
						updates++
					}
				}
			}
		}
		if updates < n/50 {
			break
		}
	}

	// Extract sorted neighbor lists. Heaps may hold fewer than k entries
	// for isolated points; top up from exact scan in that (rare) case.
	nbrs := make([][]int32, n)
	par.ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sorted := heaps[i].Sorted()
			if len(sorted) < k {
				sorted = Search(base, base.Row(i), k+1)
				filtered := sorted[:0]
				for _, nb := range sorted {
					if nb.Index != i {
						filtered = append(filtered, nb)
					}
				}
				sorted = filtered
				if len(sorted) > k {
					sorted = sorted[:k]
				}
			}
			row := make([]int32, len(sorted))
			for x, nb := range sorted {
				row[x] = int32(nb.Index)
			}
			nbrs[i] = row
		}
	})
	return &Matrix{K: k, Neighbors: nbrs}
}

// rpLeaves recursively splits idx along random projections at the median
// and invokes fn on every leaf. idx is reordered in place.
func rpLeaves(base *dataset.Dataset, idx []int32, leafSize int, rng *rand.Rand, fn func([]int32)) {
	if len(idx) <= leafSize {
		fn(idx)
		return
	}
	dir := make([]float32, base.Dim)
	for j := range dir {
		dir[j] = float32(rng.NormFloat64())
	}
	projs := make([]float32, len(idx))
	for i, id := range idx {
		projs[i] = vecmath.Dot(dir, base.Row(int(id)))
	}
	order := make([]int, len(idx))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return projs[order[a]] < projs[order[b]] })
	reordered := make([]int32, len(idx))
	for i, o := range order {
		reordered[i] = idx[o]
	}
	copy(idx, reordered)
	mid := len(idx) / 2
	if projs[order[0]] == projs[order[len(order)-1]] {
		fn(idx) // no spread along this direction: give up splitting
		return
	}
	rpLeaves(base, idx[:mid], leafSize, rng, fn)
	rpLeaves(base, idx[mid:], leafSize, rng, fn)
}
