package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/vecmath"
)

// Batched routing: the micro-batching pipeline's engine stage. A worker
// stages a chunk of queries into one row-major matrix, runs every router
// model's forward pass once for the whole chunk (RouteBatch — one dispatched
// MatMul per Dense layer instead of a row of AXPY loops per query), then
// gathers each query's candidate set from the precomputed distributions
// (AppendCandidatesRowBatch). Every per-row result is bit-identical to the
// single-query AppendCandidates path: batch and single-row inference share
// the same dispatched microkernels and accumulation order, and the
// selection/dedup arithmetic below mirrors the single-row code line for
// line.

// BatchScratch owns every buffer batched routing needs for one worker: the
// staged query matrix, the batched-inference buffers, per-member (or
// per-tree-depth) probability matrices, the per-row bin selection, and the
// generation-stamped visited set for union probing. One scratch serves one
// goroutine; after warm-up, routing a chunk performs no allocation beyond
// growth of the caller's candidate slice.
//
// The zero value is ready to use. Buffers grow on demand and are retained.
type BatchScratch struct {
	// Infer backs batched model inference (nn.PredictBatchInto).
	Infer nn.BatchInferScratch

	q tensor.Matrix // staged query rows (filled by the caller via Stage)

	memberProbs [][]float32 // per ensemble member: rows×M distributions, flat row-major
	bestIdx     []int       // best-confidence member per row (-1: none selected)

	leaf     []float32   // hierarchy: rows×NumBins leaf distributions, flat
	nodeProb [][]float32 // hierarchy: per-depth node distributions, flat rows×m
	pathProb [][]float32 // hierarchy: per-depth per-row accumulated path products

	bins []int // selected top-m′ bins for the row being appended

	// seen/gen implement the same O(1)-reset visited set as QueryScratch
	// for UnionProbe dedup.
	seen []uint32
	gen  uint32
}

func growFloats(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// Stage prepares the scratch for a batch of n queries of width dim and
// returns the row-major backing buffer (n*dim floats) for the caller to
// fill before calling RouteBatch.
func (bs *BatchScratch) Stage(n, dim int) []float32 {
	bs.q.Rows, bs.q.Cols = n, dim
	bs.q.Data = growFloats(bs.q.Data, n*dim)
	return bs.q.Data
}

// Rows reports the number of staged queries.
func (bs *BatchScratch) Rows() int { return bs.q.Rows }

func (bs *BatchScratch) beginSeen(n int) uint32 {
	if len(bs.seen) < n {
		bs.seen = make([]uint32, n)
		bs.gen = 0
	}
	bs.gen++
	if bs.gen == 0 {
		for i := range bs.seen {
			bs.seen[i] = 0
		}
		bs.gen = 1
	}
	return bs.gen
}

// pathBuf returns the per-row path-product buffer for tree depth d, sized
// to n rows.
func (bs *BatchScratch) pathBuf(d, n int) []float32 {
	for len(bs.pathProb) <= d {
		bs.pathProb = append(bs.pathProb, nil)
	}
	bs.pathProb[d] = growFloats(bs.pathProb[d], n)
	return bs.pathProb[d]
}

// nodeBufB returns the node-distribution buffer for tree depth d.
func (bs *BatchScratch) nodeBufB(d int) []float32 {
	for len(bs.nodeProb) <= d {
		bs.nodeProb = append(bs.nodeProb, nil)
	}
	return bs.nodeProb[d]
}

// RouteBatch runs the partitioner's forward pass over the staged batch.
// After it returns, AppendCandidatesRowBatch serves any staged row.
func (p *Partitioner) RouteBatch(bs *BatchScratch) {
	if len(bs.memberProbs) == 0 {
		bs.memberProbs = append(bs.memberProbs, nil)
	}
	bs.memberProbs[0] = p.Model.PredictBatchInto(bs.memberProbs[0], &bs.q, &bs.Infer)
}

// AppendCandidatesRowBatch appends staged row i's candidate set — the ids
// in its mPrime most probable bins — to dst, bit-identical to
// AppendCandidates on the same query.
func (p *Partitioner) AppendCandidatesRowBatch(dst []int32, i, mPrime int, bs *BatchScratch) []int32 {
	row := bs.memberProbs[0][i*p.M : (i+1)*p.M]
	bs.bins = vecmath.TopKIndicesInto(bs.bins, row, mPrime)
	for _, b := range bs.bins {
		dst = p.AppendBin(dst, b)
	}
	return dst
}

// RouteBatch runs every ensemble member's forward pass over the staged
// batch — the whole chunk's routing inference in len(Parts) dispatched
// batched passes — and, in best-confidence mode, records each row's
// highest-confidence member. Algorithm 4's member selection compares the
// same top-probability values in the same member order as the single-row
// path, so the selected member (and therefore the candidate set) is
// identical; a row whose distributions are all NaN selects no member,
// matching the single-row path's empty candidate set.
func (e *Ensemble) RouteBatch(bs *BatchScratch, mode ProbeMode) {
	n := bs.q.Rows
	for len(bs.memberProbs) < len(e.Parts) {
		bs.memberProbs = append(bs.memberProbs, nil)
	}
	for m, p := range e.Parts {
		bs.memberProbs[m] = p.Model.PredictBatchInto(bs.memberProbs[m], &bs.q, &bs.Infer)
	}
	if mode != BestConfidence {
		return
	}
	if cap(bs.bestIdx) < n {
		bs.bestIdx = make([]int, n)
	}
	bs.bestIdx = bs.bestIdx[:n]
	for i := 0; i < n; i++ {
		bestIdx := -1
		bestConf := float32(-1)
		for m, p := range e.Parts {
			row := bs.memberProbs[m][i*p.M : (i+1)*p.M]
			if c := row[vecmath.ArgMax(row)]; c > bestConf {
				bestConf = c
				bestIdx = m
			}
		}
		bs.bestIdx[i] = bestIdx
	}
}

// AppendCandidatesRowBatch appends staged row i's ensemble candidate set to
// dst using the distributions RouteBatch computed, bit-identical to
// AppendCandidatesExtra on the same query (same top-k selection on the same
// probability bits, same append order, same first-occurrence dedup).
func (e *Ensemble) AppendCandidatesRowBatch(dst []int32, i, mPrime int, mode ProbeMode, bs *BatchScratch, n int, extra ExtraBins) []int32 {
	switch mode {
	case BestConfidence:
		m := bs.bestIdx[i]
		if m < 0 {
			return dst
		}
		p := e.Parts[m]
		row := bs.memberProbs[m][i*p.M : (i+1)*p.M]
		bs.bins = vecmath.TopKIndicesInto(bs.bins, row, mPrime)
		for _, b := range bs.bins {
			dst = p.AppendBin(dst, b)
			if extra != nil {
				dst = extra.AppendExtra(dst, m, b)
			}
		}
		return dst
	case UnionProbe:
		gen := bs.beginSeen(n)
		for m, p := range e.Parts {
			row := bs.memberProbs[m][i*p.M : (i+1)*p.M]
			bs.bins = vecmath.TopKIndicesInto(bs.bins, row, mPrime)
			for _, b := range bs.bins {
				mark := len(dst)
				dst = p.AppendBin(dst, b)
				if extra != nil {
					dst = extra.AppendExtra(dst, m, b)
				}
				w := mark
				for _, id := range dst[mark:] {
					if bs.seen[id] != gen {
						bs.seen[id] = gen
						dst[w] = id
						w++
					}
				}
				dst = dst[:w]
			}
		}
		return dst
	default:
		panic(fmt.Sprintf("core: unknown probe mode %d", mode))
	}
}

// RouteBatch walks the tree once for the whole staged batch: each node's
// model runs a single batched forward pass, and the per-row root→leaf
// probability products accumulate through per-depth buffers in the same
// multiplication order as the single-row walk, filling the rows×NumBins
// leaf distribution.
func (h *Hierarchy) RouteBatch(bs *BatchScratch) {
	n := bs.q.Rows
	bs.leaf = growFloats(bs.leaf, n*h.NumBins)
	root := bs.pathBuf(0, n)
	for i := range root {
		root[i] = 1
	}
	h.walkNodeBatch(bs, h.root, 0, n)
}

// walkNodeBatch is walkNode over a staged batch. Each depth owns one node
// buffer and one path buffer: a parent's distribution and path products
// stay live while its children recurse, but siblings at the same depth can
// share — the same per-depth discipline as the single-row walk.
func (h *Hierarchy) walkNodeBatch(bs *BatchScratch, nd *hnode, depth, n int) {
	w := nd.part.M
	probs := nd.part.Model.PredictBatchInto(bs.nodeBufB(depth), &bs.q, &bs.Infer)
	bs.nodeProb[depth] = probs // retain the grown buffer
	if h.ProbeTemp > 1 {
		for i := 0; i < n; i++ {
			soften(probs[i*w:(i+1)*w], h.ProbeTemp)
		}
	}
	path := bs.pathProb[depth]
	if nd.children == nil {
		for i := 0; i < n; i++ {
			row := probs[i*w : (i+1)*w]
			out := bs.leaf[i*h.NumBins+nd.leafBase:]
			pi := path[i]
			for b, pb := range row {
				out[b] = pi * pb
			}
		}
		return
	}
	for b, child := range nd.children {
		cp := bs.pathBuf(depth+1, n)
		for i := 0; i < n; i++ {
			cp[i] = path[i] * probs[i*w+b]
		}
		h.walkNodeBatch(bs, child, depth+1, n)
	}
}

// AppendCandidatesRowBatch appends staged row i's hierarchy candidate set —
// the lookup lists of its mPrime most probable leaf bins plus any
// post-epoch inserts from extra — to dst, bit-identical to
// AppendCandidatesExtra on the same query.
func (h *Hierarchy) AppendCandidatesRowBatch(dst []int32, i, mPrime int, bs *BatchScratch, extra ExtraBins) []int32 {
	row := bs.leaf[i*h.NumBins : (i+1)*h.NumBins]
	bs.bins = vecmath.TopKIndicesInto(bs.bins, row, mPrime)
	for _, b := range bs.bins {
		dst = append(dst, h.Bins[b]...)
		if extra != nil {
			dst = extra.AppendExtra(dst, 0, b)
		}
	}
	return dst
}
