package lsh

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func uniform(seed int64, n, d int) *dataset.Dataset {
	return dataset.Uniform(n, d, rand.New(rand.NewSource(seed)))
}

func TestCrossPolytopeCoverage(t *testing.T) {
	ds := uniform(1, 500, 16)
	cp, err := NewCrossPolytope(ds, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range cp.BinSizes() {
		total += s
	}
	if total != ds.N {
		t.Fatalf("bins hold %d points, want %d", total, ds.N)
	}
	// Probing all bins returns everything exactly once.
	all := cp.Candidates(ds.Row(0), 8)
	if len(all) != ds.N {
		t.Fatalf("|C| = %d", len(all))
	}
	seen := map[int]bool{}
	for _, i := range all {
		if seen[i] {
			t.Fatalf("duplicate %d", i)
		}
		seen[i] = true
	}
}

func TestCrossPolytopeFirstProbeIsHomeBin(t *testing.T) {
	ds := uniform(3, 300, 8)
	cp, err := NewCrossPolytope(ds, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A dataset point's single-probe candidates must include itself.
	for i := 0; i < 50; i++ {
		got := cp.Candidates(ds.Row(i), 1)
		found := false
		for _, c := range got {
			if c == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("point %d not in its own home bin probe", i)
		}
	}
}

func TestCrossPolytopeValidation(t *testing.T) {
	ds := uniform(5, 10, 4)
	if _, err := NewCrossPolytope(ds, 3, 1); err == nil {
		t.Fatal("odd m should fail")
	}
	if _, err := NewCrossPolytope(ds, 0, 1); err == nil {
		t.Fatal("m=0 should fail")
	}
}

func TestCrossPolytopeDeterministicForSeed(t *testing.T) {
	ds := uniform(6, 100, 8)
	a, _ := NewCrossPolytope(ds, 4, 7)
	b, _ := NewCrossPolytope(ds, 4, 7)
	for i := range a.Bins {
		if len(a.Bins[i]) != len(b.Bins[i]) {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestHyperplaneCoverageAndProbe(t *testing.T) {
	ds := uniform(8, 400, 12)
	h, err := NewHyperplane(ds, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range h.BinSizes() {
		total += s
	}
	if total != ds.N {
		t.Fatalf("coverage %d", total)
	}
	all := h.Candidates(ds.Row(0), 16)
	if len(all) != ds.N {
		t.Fatalf("|C| = %d probing all bins", len(all))
	}
	// Monotone candidate growth with more probes.
	prev := 0
	for mp := 1; mp <= 16; mp *= 2 {
		c := len(h.Candidates(ds.Row(1), mp))
		if c < prev {
			t.Fatalf("candidates shrank: %d -> %d", prev, c)
		}
		prev = c
	}
	// First probe contains the query's own bin.
	for i := 0; i < 30; i++ {
		got := h.Candidates(ds.Row(i), 1)
		found := false
		for _, c := range got {
			if c == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("point %d missing from home bin", i)
		}
	}
}

func TestHyperplaneValidation(t *testing.T) {
	ds := uniform(10, 20, 4)
	if _, err := NewHyperplane(ds, 3, 1); err == nil {
		t.Fatal("non-power-of-two should fail")
	}
	if _, err := NewHyperplane(ds, 1, 1); err == nil {
		t.Fatal("m=1 should fail")
	}
}

func TestHyperplaneProbeClamps(t *testing.T) {
	ds := uniform(11, 50, 4)
	h, _ := NewHyperplane(ds, 4, 12)
	if got := h.Candidates(ds.Row(0), 99); len(got) != ds.N {
		t.Fatalf("clamped probe returned %d", len(got))
	}
}
