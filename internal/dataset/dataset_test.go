package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestNewAndRowViews(t *testing.T) {
	d := New(3, 2)
	d.Row(1)[0] = 42
	if d.Data[2] != 42 {
		t.Fatal("Row is not a view")
	}
	rows := d.Rows()
	if len(rows) != 3 || rows[1][0] != 42 {
		t.Fatal("Rows mismatch")
	}
}

func TestSubsetAndClone(t *testing.T) {
	d := New(4, 1)
	for i := 0; i < 4; i++ {
		d.Row(i)[0] = float32(i)
	}
	s := d.Subset([]int{3, 1})
	if s.N != 2 || s.Row(0)[0] != 3 || s.Row(1)[0] != 1 {
		t.Fatalf("Subset got %+v", s)
	}
	c := d.Clone()
	c.Row(0)[0] = 99
	if d.Row(0)[0] == 99 {
		t.Fatal("Clone aliases")
	}
}

func TestAppend(t *testing.T) {
	d := New(0, 3)
	d.Append([]float32{1, 2, 3})
	if d.N != 1 || d.Row(0)[2] != 3 {
		t.Fatal("Append failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch must panic")
		}
	}()
	d.Append([]float32{1})
}

func TestSplitQueriesDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Uniform(100, 4, rng)
	// Tag each vector with a unique first coordinate to track identity.
	for i := 0; i < d.N; i++ {
		d.Row(i)[0] = float32(i)
	}
	train, queries := SplitQueries(d, 20, rng)
	if train.N != 80 || queries.N != 20 {
		t.Fatalf("split sizes %d/%d", train.N, queries.N)
	}
	seen := map[float32]int{}
	for i := 0; i < train.N; i++ {
		seen[train.Row(i)[0]]++
	}
	for i := 0; i < queries.N; i++ {
		seen[queries.Row(i)[0]]++
	}
	if len(seen) != 100 {
		t.Fatalf("split lost or duplicated points: %d unique", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("point %v appears %d times", id, c)
		}
	}
}

func TestGaussianMixtureLabelsAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := GaussianMixture(GaussianMixtureConfig{
		N: 500, Dim: 8, Clusters: 5, ClusterStd: 0.1, CenterBox: 10, NoiseFrac: 0.1,
	}, rng)
	if l.N != 500 || l.Dim != 8 || len(l.Labels) != 500 {
		t.Fatal("shape mismatch")
	}
	counts := map[int]int{}
	for _, lab := range l.Labels {
		if lab < 0 || lab > 5 {
			t.Fatalf("label %d out of range", lab)
		}
		counts[lab]++
	}
	if counts[5] == 0 {
		t.Fatal("expected some noise points with label=Clusters")
	}
	// Cluster members must be near each other relative to the box size:
	// points sharing a label should be far closer than random pairs.
	var intra, cross float64
	ni, nc := 0, 0
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			if l.Labels[i] == 5 || l.Labels[j] == 5 {
				continue
			}
			var d2 float64
			for x := 0; x < 8; x++ {
				dd := float64(l.Row(i)[x] - l.Row(j)[x])
				d2 += dd * dd
			}
			if l.Labels[i] == l.Labels[j] {
				intra += d2
				ni++
			} else {
				cross += d2
				nc++
			}
		}
	}
	if ni == 0 || nc == 0 || intra/float64(ni) > cross/float64(nc)/4 {
		t.Fatalf("intra/cross separation too weak: %v vs %v", intra/float64(ni), cross/float64(nc))
	}
}

func TestSIFTLikeNonNegative128D(t *testing.T) {
	d := SIFTLike(200, rand.New(rand.NewSource(3)))
	if d.Dim != 128 || d.N != 200 {
		t.Fatalf("shape %dx%d", d.N, d.Dim)
	}
	for _, v := range d.Data {
		if v < 0 {
			t.Fatal("SIFTLike produced negative component")
		}
	}
}

func TestMNISTLikeSparseNonNegative(t *testing.T) {
	d := MNISTLike(100, rand.New(rand.NewSource(4)))
	if d.Dim != 784 {
		t.Fatalf("dim %d", d.Dim)
	}
	zeros := 0
	for _, v := range d.Data {
		if v == 0 {
			zeros++
		}
		if v < 0 {
			t.Fatal("negative pixel")
		}
	}
	if frac := float64(zeros) / float64(len(d.Data)); frac < 0.7 {
		t.Fatalf("expected sparse data, zero fraction %v", frac)
	}
}

func TestMoonsGeometry(t *testing.T) {
	l := Moons(400, 0, rand.New(rand.NewSource(5)))
	for i := 0; i < l.N; i++ {
		x, y := float64(l.Row(i)[0]), float64(l.Row(i)[1])
		if l.Labels[i] == 0 {
			// Upper moon: on unit circle centered at origin, y ≥ 0.
			r := math.Hypot(x, y)
			if math.Abs(r-1) > 1e-5 || y < -1e-6 {
				t.Fatalf("moon0 point (%v,%v) off circle", x, y)
			}
		} else {
			r := math.Hypot(x-1, y-0.5)
			if math.Abs(r-1) > 1e-5 || y > 0.5+1e-6 {
				t.Fatalf("moon1 point (%v,%v) off circle", x, y)
			}
		}
	}
}

func TestCirclesRadii(t *testing.T) {
	l := Circles(300, 0.5, 0, rand.New(rand.NewSource(6)))
	for i := 0; i < l.N; i++ {
		r := math.Hypot(float64(l.Row(i)[0]), float64(l.Row(i)[1]))
		want := 1.0
		if l.Labels[i] == 1 {
			want = 0.5
		}
		if math.Abs(r-want) > 1e-5 {
			t.Fatalf("radius %v, want %v", r, want)
		}
	}
}

func TestCirclesBadFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Circles(10, 1.5, 0, rand.New(rand.NewSource(1)))
}

func TestClassification4HasFourClasses(t *testing.T) {
	l := Classification4(400, rand.New(rand.NewSource(7)))
	seen := map[int]bool{}
	for _, lab := range l.Labels {
		seen[lab] = true
	}
	for c := 0; c < 4; c++ {
		if !seen[c] {
			t.Fatalf("class %d missing", c)
		}
	}
}

func TestNormalizeRows(t *testing.T) {
	d := New(3, 2)
	d.Row(0)[0], d.Row(0)[1] = 3, 4
	d.Row(1)[0] = -2
	// Row 2 stays zero.
	if got := NormalizeRows(d); got != 2 {
		t.Fatalf("normalized %d rows, want 2", got)
	}
	if math.Abs(float64(d.Row(0)[0])-0.6) > 1e-6 || math.Abs(float64(d.Row(0)[1])-0.8) > 1e-6 {
		t.Fatalf("row 0 = %v", d.Row(0))
	}
	if d.Row(1)[0] != -1 {
		t.Fatalf("row 1 = %v", d.Row(1))
	}
	if d.Row(2)[0] != 0 || d.Row(2)[1] != 0 {
		t.Fatalf("zero row modified: %v", d.Row(2))
	}
}

func TestFvecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := Uniform(17, 5, rng)
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != d.N || got.Dim != d.Dim {
		t.Fatalf("shape %dx%d", got.N, got.Dim)
	}
	for i, v := range got.Data {
		if v != d.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	rows := [][]int32{{1, 2, 3}, {4, 5, 6}, {}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1][2] != 6 || len(got[2]) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestReadFvecsErrors(t *testing.T) {
	// Truncated vector body.
	var buf bytes.Buffer
	buf.Write([]byte{4, 0, 0, 0, 1, 2})
	if _, err := ReadFvecs(&buf); err == nil {
		t.Fatal("expected truncation error")
	}
	// Empty stream.
	if _, err := ReadFvecs(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected empty stream error")
	}
	// Implausible dimension.
	var buf2 bytes.Buffer
	buf2.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFvecs(&buf2); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestFvecsFileHelpers(t *testing.T) {
	dir := t.TempDir()
	d := Uniform(5, 3, rand.New(rand.NewSource(9)))
	path := dir + "/x.fvecs"
	if err := SaveFvecsFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFvecsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 5 || got.Dim != 3 {
		t.Fatal("file round trip shape mismatch")
	}
	if _, err := LoadFvecsFile(dir + "/missing.fvecs"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
