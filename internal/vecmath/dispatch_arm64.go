package vecmath

// arm64 kernel selection. No feature detection is needed: floating-point
// NEON (AdvSIMD) is an architecturally mandatory part of AArch64, so the
// assembly kernels are always usable. USP_FORCE_SCALAR still pins the
// scalar fallback (dispatch.go).

// The assembly kernels (kernels_arm64.s). Marked noescape so passing slice
// arguments never forces the backing arrays to the heap — the query engine's
// zero-allocation guarantee depends on it.

//go:noescape
func dotNEON(a, b []float32) float32

//go:noescape
func sqL2NEON(a, b []float32) float32

//go:noescape
func axpyNEON(alpha float32, x, y []float32)

//go:noescape
func lutSumNEON(lut []float32, k int, code []uint8) float32

var neonKernels = kernels{
	name:   "neon",
	dot:    dotNEON,
	sqL2:   sqL2NEON,
	axpy:   axpyNEON,
	lutSum: lutSumNEON,
}

// archKernels returns the best kernel set this CPU supports.
func archKernels() (kernels, bool) {
	return neonKernels, true
}
