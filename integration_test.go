package usp

// End-to-end integration tests across module boundaries: the full public
// pipeline on high-dimensional sparse data, determinism of seeded builds,
// and cross-method sanity (the learned index must beat random candidate
// sets of equal size on clustered data).

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

func TestPipelineOnHighDimSparseData(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration test")
	}
	// MNIST-like: 784-d sparse vectors — exercises the BatchNorm path on
	// mostly-zero columns and wide input layers.
	rng := rand.New(rand.NewSource(1))
	full := dataset.MNISTLike(700, rng)
	base, queries := dataset.SplitQueries(full, 50, rng)
	gt := knn.GroundTruth(base, queries, 10)

	ix, err := Build(base.Rows(), Options{
		Bins: 8, Epochs: 25, Hidden: []int{32}, Seed: 2, Eta: Float(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	var recall, cands float64
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		c, err := ix.CandidateSet(q, SearchOptions{Probes: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ix.Search(q, 10, SearchOptions{Probes: 2})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		recall += knn.Recall(ids, gt[qi])
		cands += float64(len(c))
	}
	recall /= float64(queries.N)
	cands /= float64(queries.N)
	if cands >= float64(base.N) {
		t.Fatalf("candidate sets did not shrink: %v of %d", cands, base.N)
	}
	// With 2 of 8 bins probed (~25% of points), clustered data should
	// deliver far more than 25% recall.
	if recall < 0.5 {
		t.Fatalf("recall %.3f scanning %.0f/%d points", recall, cands, base.N)
	}
}

func TestSeededBuildIsDeterministic(t *testing.T) {
	vecs, _ := clusteredVectors(31, 400, 8, 4)
	build := func() *Index {
		ix, err := Build(vecs, Options{Bins: 4, Epochs: 20, Hidden: []int{16}, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	a, b := build(), build()
	for qi := 0; qi < 30; qi++ {
		ca, _ := a.CandidateSet(vecs[qi], SearchOptions{Probes: 1})
		cb, _ := b.CandidateSet(vecs[qi], SearchOptions{Probes: 1})
		if len(ca) != len(cb) {
			t.Fatalf("query %d: candidate sizes differ (%d vs %d)", qi, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("query %d: candidates diverge at %d", qi, i)
			}
		}
	}
}

func TestLearnedIndexBeatsRandomSubsets(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration test")
	}
	rng := rand.New(rand.NewSource(5))
	full := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 1300, Dim: 32, Clusters: 12, ClusterStd: 0.8, CenterBox: 3,
	}, rng)
	base, queries := dataset.SplitQueries(full.Dataset, 100, rng)
	gt := knn.GroundTruth(base, queries, 10)
	ix, err := Build(base.Rows(), Options{Bins: 12, Epochs: 30, Hidden: []int{32}, Seed: 6, Eta: Float(7)})
	if err != nil {
		t.Fatal(err)
	}
	var uspRecall, randRecall float64
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		c, _ := ix.CandidateSet(q, SearchOptions{Probes: 1})
		res, _ := ix.Search(q, 10, SearchOptions{Probes: 1})
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		uspRecall += knn.Recall(ids, gt[qi])
		perm := rng.Perm(base.N)[:len(c)]
		randRecall += knn.RecallNeighbors(knn.SearchSubset(base, perm, q, 10), gt[qi])
	}
	if uspRecall < randRecall*1.5 {
		t.Fatalf("USP recall %.3f not clearly above size-matched random %.3f",
			uspRecall/float64(queries.N), randRecall/float64(queries.N))
	}
}
