package core

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/vecmath"
)

// trainTargetGrad is the Eq. 8 training path: each mini-batch forwards the
// sampled points *and* their k′ neighbors through the model in one training
// graph, and the quality loss
//
//	L = Σ_i w_i Σ_{j ∈ N_k′(i)} CE(P_j, P_i) / (k′ Σw)
//
// backpropagates through both sides — the P_i side gets the usual
// soft-target cross-entropy gradient (P_i − P_j), and the P_j (target) side
// gets the softmax-Jacobian pull P_j ⊙ (v − <v, P_j>) with v = −log P_i —
// so neighborhoods drag each other toward shared bins. The balance term of
// Eqs. 12–13 is computed over all forwarded rows.
func trainTargetGrad(ds *dataset.Dataset, knnMat *knn.Matrix, cfg Config,
	weights []float32, model *nn.Sequential, opt nn.Optimizer, rng *rand.Rand) error {

	n, m := ds.N, cfg.Bins
	kp := cfg.KPrime
	const logFloor = -18.4 // log(1e-8): caps the target-side pull

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		for lo := 0; lo < n; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > n {
				hi = n
			}
			batch := perm[lo:hi]
			if len(batch) < 2 {
				continue
			}
			// Dedup batch ∪ neighbors into one forward set.
			pos := make(map[int32]int, len(batch)*(kp+1))
			var ids []int32
			add := func(id int32) int {
				if p, ok := pos[id]; ok {
					return p
				}
				p := len(ids)
				pos[id] = p
				ids = append(ids, id)
				return p
			}
			type edge struct {
				pi, pj int // row positions
				w      float32
			}
			var edges []edge
			var wsum float64
			for _, bi := range batch {
				w := float32(1)
				if weights != nil {
					w = weights[bi]
				}
				wsum += float64(w)
				rowI := add(int32(bi))
				for _, nj := range knnMat.Neighbors[bi][:kp] {
					edges = append(edges, edge{rowI, add(nj), w})
				}
			}
			if wsum <= 0 {
				wsum = 1
			}

			x := tensor.New(len(ids), ds.Dim)
			for r, id := range ids {
				copy(x.Row(r), ds.Row(int(id)))
			}
			model.ZeroGrads()
			logits := model.Forward(x, true)
			probs := logits.Clone()
			nn.SoftmaxRows(probs)

			grad := tensor.New(len(ids), m)
			escale := 1 / (float64(kp) * wsum)
			for _, e := range edges {
				pi, pj := probs.Row(e.pi), probs.Row(e.pj)
				gi, gj := grad.Row(e.pi), grad.Row(e.pj)
				we := float32(float64(e.w) * escale)
				// Prediction side: CE(P_j as target, logits_i).
				for b := 0; b < m; b++ {
					gi[b] += we * (pi[b] - pj[b])
				}
				// Target side: v = −log P_i, chained through softmax of j.
				var dot float32
				v := make([]float32, m)
				for b := 0; b < m; b++ {
					lp := math.Log(float64(pi[b]) + 1e-12)
					if lp < logFloor {
						lp = logFloor
					}
					v[b] = float32(-lp)
					dot += v[b] * pj[b]
				}
				for b := 0; b < m; b++ {
					gj[b] += we * pj[b] * (v[b] - dot)
				}
			}

			// Balance term over every forwarded row.
			if cfg.Eta != 0 {
				addBalanceGrad(probs, grad, cfg.Eta)
			}
			model.Backward(grad)
			opt.Step(model.Params())
		}
	}
	return nil
}

// addBalanceGrad accumulates the gradient of η·S(R) (Eqs. 12–13) over the
// probability matrix into grad (both R×m), chaining through softmax.
func addBalanceGrad(probs, grad *tensor.Matrix, eta float64) {
	rows, m := probs.Rows, probs.Cols
	win := rows / m
	if win < 1 {
		win = 1
	}
	dP := tensor.New(rows, m)
	col := make([]float32, rows)
	for j := 0; j < m; j++ {
		for i := 0; i < rows; i++ {
			col[i] = probs.At(i, j)
		}
		tau := vecmath.SelectKthLargest(col, win)
		remaining := win
		for i := 0; i < rows && remaining > 0; i++ {
			if col[i] > tau {
				dP.Set(i, j, -1)
				remaining--
			}
		}
		for i := 0; i < rows && remaining > 0; i++ {
			if col[i] == tau {
				dP.Set(i, j, -1)
				remaining--
			}
		}
	}
	invR := float32(1.0 / float64(rows))
	scale := float32(eta)
	for i := 0; i < rows; i++ {
		prow, dprow, grow := probs.Row(i), dP.Row(i), grad.Row(i)
		var dot float32
		for b := range prow {
			dprow[b] *= invR
			dot += dprow[b] * prow[b]
		}
		for b := range grow {
			grow[b] += scale * prow[b] * (dprow[b] - dot)
		}
	}
}
