package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/tensor"
)

// layerSpec is the gob-encodable snapshot of one layer. Only the fields
// relevant to the layer's Kind are populated.
type layerSpec struct {
	Kind string // "dense", "relu", "batchnorm", "dropout"

	// dense
	In, Out int
	W, B    []float32

	// batchnorm
	Dim                          int
	Gamma, Beta, RunMean, RunVar []float32
	Momentum, Eps                float64

	// dropout
	P float64
}

type modelSpec struct {
	InDim  int
	Layers []layerSpec
}

// Save serializes the model's architecture and weights to w in a stable
// binary format (encoding/gob over explicit snapshots).
func (s *Sequential) Save(w io.Writer) error {
	spec := modelSpec{InDim: s.InDim}
	for _, l := range s.Layers {
		switch t := l.(type) {
		case *Dense:
			spec.Layers = append(spec.Layers, layerSpec{
				Kind: "dense",
				In:   t.W.Value.Rows, Out: t.W.Value.Cols,
				W: t.W.Value.Data, B: t.B.Value.Data,
			})
		case *ReLU:
			spec.Layers = append(spec.Layers, layerSpec{Kind: "relu"})
		case *BatchNorm:
			spec.Layers = append(spec.Layers, layerSpec{
				Kind:  "batchnorm",
				Dim:   t.Gamma.Value.Cols,
				Gamma: t.Gamma.Value.Data, Beta: t.Beta.Value.Data,
				RunMean: t.RunningMean.Data, RunVar: t.RunningVar.Data,
				Momentum: t.Momentum, Eps: t.Eps,
			})
		case *Dropout:
			spec.Layers = append(spec.Layers, layerSpec{Kind: "dropout", P: t.P})
		default:
			return fmt.Errorf("nn: cannot serialize layer type %T", l)
		}
	}
	return gob.NewEncoder(w).Encode(spec)
}

// Load reconstructs a model previously written by Save. rng seeds any
// stochastic layers (dropout); it may be nil if the model will only be used
// for inference.
func Load(r io.Reader, rng *rand.Rand) (*Sequential, error) {
	var spec modelSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	model := &Sequential{InDim: spec.InDim}
	for _, ls := range spec.Layers {
		switch ls.Kind {
		case "dense":
			d := &Dense{W: newParam("W", ls.In, ls.Out), B: newParam("b", 1, ls.Out)}
			copy(d.W.Value.Data, ls.W)
			copy(d.B.Value.Data, ls.B)
			model.Layers = append(model.Layers, d)
		case "relu":
			model.Layers = append(model.Layers, NewReLU())
		case "batchnorm":
			bn := NewBatchNorm(ls.Dim)
			copy(bn.Gamma.Value.Data, ls.Gamma)
			copy(bn.Beta.Value.Data, ls.Beta)
			bn.RunningMean = tensor.FromSlice(1, ls.Dim, append([]float32(nil), ls.RunMean...))
			bn.RunningVar = tensor.FromSlice(1, ls.Dim, append([]float32(nil), ls.RunVar...))
			bn.Momentum, bn.Eps = ls.Momentum, ls.Eps
			model.Layers = append(model.Layers, bn)
		case "dropout":
			if rng == nil {
				rng = rand.New(rand.NewSource(1))
			}
			model.Layers = append(model.Layers, NewDropout(ls.P, rng))
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q", ls.Kind)
		}
	}
	return model, nil
}
