// uspfront is the stateless fan-out query front of the sharded serving
// tier: it spreads /search and /search/batch over a fleet of uspserve
// backends (disjoint shards, each optionally replicated) and merges the
// per-shard top-k into answers bit-identical to a single process serving
// the union dataset. See internal/frontier for the semantics — health
// ejection, bounded sibling retry on 5xx, per-request timeouts, and 429
// backpressure.
//
// The topology is given as shard groups separated by ';', with sibling
// replica URLs inside a group separated by ',':
//
//	go run ./cmd/uspfront -addr :8090 \
//	    -backends 'http://h1:8080,http://h1b:8080;http://h2:8080'
//
// declares two shards: the first served by two replicas, the second by
// one. The front learns each shard's id offset from its /healthz.
//
// Identical in-flight queries are coalesced into one backend fan-out,
// and -cache-size enables a small LRU over merged answers, invalidated
// whenever any backend reloads or a write is routed. Writes route too:
// /add goes to the least-loaded shard (every replica of it), /delete to
// the shard whose id range owns the global id.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/frontier"
)

func parseTopology(spec string) [][]string {
	var groups [][]string
	for _, g := range strings.Split(spec, ";") {
		var urls []string
		for _, u := range strings.Split(g, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		if len(urls) > 0 {
			groups = append(groups, urls)
		}
	}
	return groups
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	backends := flag.String("backends", "", "shard topology: groups separated by ';', replica URLs by ',' (required)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-backend request timeout")
	maxInFlight := flag.Int("max-in-flight", 256, "concurrent front requests before shedding with 429")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "backend health probe period")
	cacheSize := flag.Int("cache-size", 0, "LRU result-cache capacity in merged answers (0 disables; invalidated on any backend reload or routed write)")
	flag.Parse()

	groups := parseTopology(*backends)
	if len(groups) == 0 {
		flag.Usage()
		log.Fatal("uspfront: -backends is required")
	}
	f, err := frontier.New(frontier.Config{
		Shards:         groups,
		Timeout:        *timeout,
		MaxInFlight:    *maxInFlight,
		HealthInterval: *healthEvery,
		CacheSize:      *cacheSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Learn id offsets and rotation state before taking traffic.
	f.ProbeHealth(context.Background())
	f.Start()
	defer f.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	log.Printf("fronting %d shards (%d backends) on %s", len(groups), total, ln.Addr())
	srv := &http.Server{
		Handler:           f.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining in-flight requests...")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		log.Printf("drained; bye")
	}
}
