// Package dataset provides the vector collections the experiments run on:
// a compact flat storage type, synthetic generators standing in for the
// paper's SIFT1M and MNIST benchmarks (see DESIGN.md for the substitution
// rationale), the 2-D clustering toys of Table 5, and fvecs/ivecs file IO so
// the real ann-benchmarks files can be dropped in when available.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vecmath"
)

// Dataset is a collection of n vectors of equal dimension stored row-major
// in one contiguous allocation.
type Dataset struct {
	N, Dim int
	Data   []float32 // len == N*Dim
	// SqNorms caches ‖row‖² per row once EnsureSqNorms has been called; it
	// feeds the fused distance kernel (vecmath.SquaredL2Fused) on the query
	// hot path. Append keeps it extended; mutating rows in place after the
	// cache is built invalidates it — call EnsureSqNorms(true) to rebuild.
	SqNorms []float32
}

// New allocates a zeroed dataset of n vectors with dim dimensions.
func New(n, dim int) *Dataset {
	if n < 0 || dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid shape n=%d dim=%d", n, dim))
	}
	return &Dataset{N: n, Dim: dim, Data: make([]float32, n*dim)}
}

// Row returns a mutable view of vector i.
func (d *Dataset) Row(i int) []float32 {
	return d.Data[i*d.Dim : (i+1)*d.Dim : (i+1)*d.Dim]
}

// Rows materializes all vectors as a slice of views (no copying).
func (d *Dataset) Rows() [][]float32 {
	out := make([][]float32, d.N)
	for i := range out {
		out[i] = d.Row(i)
	}
	return out
}

// Subset copies the selected rows into a new Dataset.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := New(len(indices), d.Dim)
	for i, idx := range indices {
		copy(out.Row(i), d.Row(idx))
	}
	return out
}

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	out := New(d.N, d.Dim)
	copy(out.Data, d.Data)
	return out
}

// Append adds a copy of vec (which must have length Dim) to the dataset,
// extending the squared-norm cache when one has been built.
func (d *Dataset) Append(vec []float32) {
	if len(vec) != d.Dim {
		panic("dataset: Append dimension mismatch")
	}
	d.Data = append(d.Data, vec...)
	d.N++
	if d.SqNorms != nil {
		d.SqNorms = append(d.SqNorms, sqNorm(vec))
	}
}

// EnsureSqNorms builds the per-row squared-norm cache if absent (or
// unconditionally when rebuild is true, after in-place row mutation).
func (d *Dataset) EnsureSqNorms(rebuild bool) {
	if d.SqNorms != nil && !rebuild && len(d.SqNorms) == d.N {
		return
	}
	if cap(d.SqNorms) < d.N {
		d.SqNorms = make([]float32, d.N)
	}
	d.SqNorms = d.SqNorms[:d.N]
	for i := 0; i < d.N; i++ {
		d.SqNorms[i] = sqNorm(d.Row(i))
	}
}

// sqNorm computes ‖v‖² via vecmath.Dot(v, v) — the same kernel the fused
// distance uses for the query side — so cached norms are bit-identical to
// the query-side norm for equal vectors and self-distance is exactly zero.
func sqNorm(v []float32) float32 {
	return vecmath.Dot(v, v)
}

// FromRowsCopy copies a slice of equal-length vectors into a new Dataset.
func FromRowsCopy(rows [][]float32) *Dataset {
	if len(rows) == 0 {
		panic("dataset: FromRowsCopy needs at least one row")
	}
	out := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != out.Dim {
			panic("dataset: FromRowsCopy ragged rows")
		}
		copy(out.Row(i), r)
	}
	return out
}

// Labeled couples a dataset with integer class labels, used by the
// clustering experiments (Table 5) where synthetic ground truth exists.
type Labeled struct {
	*Dataset
	Labels []int
}

// SplitQueries removes nq random vectors from d to act as out-of-sample
// queries (the ann-benchmarks datasets ship disjoint query sets; synthetic
// data reproduces that by withholding). It returns the reduced training set
// and the query set.
func SplitQueries(d *Dataset, nq int, rng *rand.Rand) (train, queries *Dataset) {
	if nq <= 0 || nq >= d.N {
		panic(fmt.Sprintf("dataset: cannot split %d queries from %d points", nq, d.N))
	}
	perm := rng.Perm(d.N)
	queries = d.Subset(perm[:nq])
	train = d.Subset(perm[nq:])
	return train, queries
}

// GaussianMixtureConfig controls the synthetic clustered generator.
type GaussianMixtureConfig struct {
	N, Dim   int
	Clusters int
	// ClusterStd is the average per-axis standard deviation within a
	// cluster; each cluster gets anisotropic per-axis scales in
	// [0.25, 1.75]×ClusterStd so clusters are ellipsoidal, not spherical
	// (the regime where learned partitions beat K-means).
	ClusterStd float64
	// CenterBox is the half-width of the uniform cube cluster centers are
	// drawn from.
	CenterBox float64
	// NoiseFrac is the fraction of points drawn uniformly from the center
	// box instead of from a cluster (background clutter).
	NoiseFrac float64
}

// GaussianMixture draws a labeled sample from an anisotropic Gaussian
// mixture. Labels identify the generating cluster (noise points get label
// Clusters).
func GaussianMixture(cfg GaussianMixtureConfig, rng *rand.Rand) *Labeled {
	if cfg.Clusters <= 0 || cfg.N <= 0 {
		panic("dataset: GaussianMixture requires positive N and Clusters")
	}
	centers := New(cfg.Clusters, cfg.Dim)
	scales := make([][]float32, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		row := centers.Row(c)
		scales[c] = make([]float32, cfg.Dim)
		for j := 0; j < cfg.Dim; j++ {
			row[j] = float32((rng.Float64()*2 - 1) * cfg.CenterBox)
			scales[c][j] = float32((0.25 + 1.5*rng.Float64()) * cfg.ClusterStd)
		}
	}
	out := New(cfg.N, cfg.Dim)
	labels := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		row := out.Row(i)
		if rng.Float64() < cfg.NoiseFrac {
			labels[i] = cfg.Clusters
			for j := range row {
				row[j] = float32((rng.Float64()*2 - 1) * cfg.CenterBox)
			}
			continue
		}
		c := rng.Intn(cfg.Clusters)
		labels[i] = c
		center := centers.Row(c)
		for j := range row {
			row[j] = center[j] + float32(rng.NormFloat64())*scales[c][j]
		}
	}
	return &Labeled{Dataset: out, Labels: labels}
}

// SIFTLike generates the stand-in for the SIFT1M benchmark: 128-dimensional
// vectors with multi-modal cluster structure and light background noise,
// shifted to the non-negative range like real SIFT descriptors.
func SIFTLike(n int, rng *rand.Rand) *Dataset {
	l := GaussianMixture(GaussianMixtureConfig{
		N: n, Dim: 128, Clusters: 64,
		ClusterStd: 2.2, CenterBox: 3, NoiseFrac: 0.1,
	}, rng)
	// Shift into the non-negative quadrant (SIFT descriptors are counts).
	for i := range l.Data {
		l.Data[i] += 3
		if l.Data[i] < 0 {
			l.Data[i] = 0
		}
	}
	return l.Dataset
}

// MNISTLike generates the stand-in for the MNIST benchmark: 784-dimensional
// sparse non-negative vectors where each of 10 classes occupies a distinct
// low-dimensional subspace (as digit images do).
func MNISTLike(n int, rng *rand.Rand) *Dataset {
	const dim, classes, active = 784, 10, 120
	// Each class activates a random subset of pixels with a class-specific
	// template plus per-sample variation.
	templates := make([][]float32, classes)
	supports := make([][]int, classes)
	for c := 0; c < classes; c++ {
		perm := rng.Perm(dim)
		supports[c] = perm[:active]
		templates[c] = make([]float32, active)
		for j := range templates[c] {
			templates[c][j] = float32(0.3 + 0.7*rng.Float64())
		}
	}
	out := New(n, dim)
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		row := out.Row(i)
		for j, px := range supports[c] {
			v := templates[c][j] + float32(rng.NormFloat64())*0.15
			if v < 0 {
				v = 0
			}
			row[px] = v
		}
	}
	return out
}

// Moons generates scikit-learn's two interleaved half-circles, the standard
// non-convex clustering stress test used in Table 5.
func Moons(n int, noise float64, rng *rand.Rand) *Labeled {
	out := New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		theta := rng.Float64() * math.Pi
		if i%2 == 0 {
			labels[i] = 0
			row[0] = float32(math.Cos(theta))
			row[1] = float32(math.Sin(theta))
		} else {
			labels[i] = 1
			row[0] = float32(1 - math.Cos(theta))
			row[1] = float32(0.5 - math.Sin(theta))
		}
		row[0] += float32(rng.NormFloat64() * noise)
		row[1] += float32(rng.NormFloat64() * noise)
	}
	return &Labeled{Dataset: out, Labels: labels}
}

// Circles generates scikit-learn's two concentric circles. factor is the
// radius ratio of the inner circle (0 < factor < 1).
func Circles(n int, factor, noise float64, rng *rand.Rand) *Labeled {
	if factor <= 0 || factor >= 1 {
		panic("dataset: Circles factor must be in (0,1)")
	}
	out := New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		theta := rng.Float64() * 2 * math.Pi
		r := 1.0
		if i%2 == 1 {
			r = factor
			labels[i] = 1
		}
		row[0] = float32(r*math.Cos(theta) + rng.NormFloat64()*noise)
		row[1] = float32(r*math.Sin(theta) + rng.NormFloat64()*noise)
	}
	return &Labeled{Dataset: out, Labels: labels}
}

// Classification4 generates the 4-cluster variant of scikit-learn's
// make_classification used in Table 5: anisotropic, partially overlapping
// Gaussian clusters in 2-D.
func Classification4(n int, rng *rand.Rand) *Labeled {
	return GaussianMixture(GaussianMixtureConfig{
		N: n, Dim: 2, Clusters: 4,
		ClusterStd: 0.5, CenterBox: 3, NoiseFrac: 0,
	}, rng)
}

// NormalizeRows scales every vector to unit Euclidean norm in place
// (zero vectors are left unchanged) and reports how many were normalized.
// Nearest-neighbor search under cosine distance reduces to Euclidean search
// over normalized vectors, which is how the library supports the paper's
// "any distance function D" with the single L2 kernel set.
func NormalizeRows(d *Dataset) int {
	// Rows are about to change: drop any squared-norm cache rather than
	// leave stale values feeding the fused distance kernel.
	d.SqNorms = nil
	count := 0
	for i := 0; i < d.N; i++ {
		row := d.Row(i)
		var s float64
		for _, v := range row {
			s += float64(v) * float64(v)
		}
		if s == 0 {
			continue
		}
		inv := float32(1 / math.Sqrt(s))
		for j := range row {
			row[j] *= inv
		}
		count++
	}
	return count
}

// Uniform generates n points uniformly from [-1, 1]^dim (a worst case for
// any data-dependent partitioner; used in ablations).
func Uniform(n, dim int, rng *rand.Rand) *Dataset {
	out := New(n, dim)
	for i := range out.Data {
		out.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return out
}
