package bitset

import "testing"

func TestNilSetIsEmpty(t *testing.T) {
	var s *Set
	if s.Has(0) || s.Has(1000) {
		t.Fatal("nil set has members")
	}
	if s.Count() != 0 {
		t.Fatalf("nil count %d", s.Count())
	}
	if s.Words() != nil {
		t.Fatal("nil set has words")
	}
}

func TestWithIsCopyOnWrite(t *testing.T) {
	var s *Set
	a := s.With(5)
	b := a.With(130)
	if !a.Has(5) || a.Has(130) {
		t.Fatalf("a wrong: has5=%v has130=%v", a.Has(5), a.Has(130))
	}
	if !b.Has(5) || !b.Has(130) || b.Count() != 2 {
		t.Fatalf("b wrong: %v %v count=%d", b.Has(5), b.Has(130), b.Count())
	}
	// Setting a present bit keeps the count stable and leaves the original
	// untouched.
	c := b.With(5)
	if c.Count() != 2 || b.Count() != 2 {
		t.Fatalf("idempotent set changed counts: %d %d", c.Count(), b.Count())
	}
	if s.Count() != 0 || a.Count() != 1 {
		t.Fatal("ancestors mutated")
	}
}

func TestDiff(t *testing.T) {
	var s *Set
	a := s.With(1).With(64).With(200)
	b := s.With(64)
	d := Diff(a, b)
	if d == nil || d.Count() != 2 || !d.Has(1) || !d.Has(200) || d.Has(64) {
		t.Fatalf("diff wrong: %+v", d)
	}
	if Diff(b, a) != nil {
		t.Fatal("subset diff should be nil")
	}
	if Diff(nil, a) != nil || Diff(a, nil) != a {
		t.Fatal("nil-arg diffs wrong")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	var s *Set
	a := s.With(3).With(77).With(1023)
	back := FromWords(a.Words())
	if back.Count() != 3 || !back.Has(3) || !back.Has(77) || !back.Has(1023) {
		t.Fatalf("round trip wrong: %+v", back)
	}
	if FromWords(nil) != nil || FromWords(make([]uint64, 4)) != nil {
		t.Fatal("empty bitmaps must map to nil")
	}
}
