// uspserve is one USP search backend: it trains a demo index at startup
// (or loads a snapshot via -index), then serves JSON k-NN queries over
// HTTP — the distributed-serving setting §2.2.2 argues space partitioning
// is naturally suited to. It is the unit the sharded serving tier scales
// horizontally: cmd/uspshard splits a snapshot into disjoint shard
// snapshots, one uspserve process serves each, and cmd/uspfront fans
// queries out over them.
//
// The endpoint surface lives in internal/serve; highlights:
//
//	/search, /search/batch  k-NN queries (strict validation, 400 on bad
//	                        parameters, 500 only for server-side faults);
//	                        -batch-window enables the micro-batch
//	                        scheduler that aggregates concurrent /search
//	                        requests into staged SearchBatch calls
//	/add, /delete, /compact index mutations
//	/save                   snapshot to disk, confined to -data-dir
//	/reload                 atomically swap in a snapshot from -data-dir
//	                        without dropping in-flight queries
//	/metrics, /healthz      observability (healthz carries the shard's
//	                        id_offset and the reload generation)
//
//	go run ./cmd/uspserve -addr :8080
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/search \
//	     -d '{"vector": [ ...64 floats... ], "k": 5, "probes": 2}'
//	curl -s -X POST localhost:8080/save -d '{"path": "index.usps"}'
//	curl -s -X POST localhost:8080/reload -d '{"path": "index.usps"}'
//
// Run with -demo to start, fire a few requests through the full HTTP
// stack, and exit (used by the repository's smoke tests).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "serve this snapshot instead of training a demo corpus")
	dataDir := flag.String("data-dir", ".", "directory /save and /reload snapshots are confined to")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	quantized := flag.Bool("quantized", false, "train the demo corpus with PQ codebooks and serve via the quantized (ADC) scan")
	rerankK := flag.Int("rerank-k", 0, "default exact re-rank depth for quantized searches (0 = engine default, -1 = ADC only)")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch collection window for concurrent /search requests (0 disables the scheduler)")
	batchMax := flag.Int("batch-max", 0, "max requests per micro-batch flush (0 = 64; only with -batch-window)")
	demo := flag.Bool("demo", false, "self-test: start, query, exit")
	flag.Parse()

	var ix *usp.Index
	var corpus *dataset.Labeled
	if *indexPath != "" {
		log.Printf("loading snapshot %s...", *indexPath)
		loaded, err := usp.LoadFile(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		ix = loaded
		log.Printf("loaded %d vectors of dim %d (id offset %d)", ix.Len(), ix.Dim(), ix.IDOffset())
	} else {
		log.Println("generating corpus and training index...")
		rng := rand.New(rand.NewSource(9))
		corpus = dataset.GaussianMixture(dataset.GaussianMixtureConfig{
			N: 3000, Dim: 64, Clusters: 24, ClusterStd: 0.8, CenterBox: 3,
		}, rng)
		var err error
		ix, err = usp.Build(corpus.Rows(), usp.Options{
			Bins: 16, Ensemble: 2, Epochs: 30, Hidden: []int{64}, Seed: 1,
			Quantize: usp.Quantization{Enabled: *quantized},
		})
		if err != nil {
			log.Fatal(err)
		}
		if *quantized {
			log.Println("serving via the quantized (ADC) candidate scan")
		}
	}
	// The demo saves into (and reloads from) a throwaway directory.
	if *demo {
		demoDir, err := os.MkdirTemp("", "uspserve-demo")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(demoDir)
		*dataDir = demoDir
	}
	s := serve.New(ix, serve.Config{
		DataDir: *dataDir, RerankK: *rerankK, Pprof: *withPprof,
		BatchWindow: *batchWindow, BatchMax: *batchMax,
	})
	defer s.Close()
	if *batchWindow > 0 {
		log.Printf("micro-batch scheduler on: window %s, max %d requests/flush", *batchWindow, *batchMax)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s", ln.Addr())
	srv := &http.Server{
		Handler:           s.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	if !*demo {
		// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
		// drains in-flight requests (queries resolve their epoch and finish)
		// instead of killing them mid-response.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-ctx.Done():
			stop()
			log.Printf("signal received; draining in-flight requests...")
			sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				log.Fatalf("shutdown: %v", err)
			}
			log.Printf("drained; bye")
			return
		}
	}
	if corpus == nil {
		log.Fatal("-demo requires the built-in training corpus (omit -index)")
	}
	runDemo(srv, ln, ix, corpus, *dataDir)
}

// runDemo exercises the full HTTP stack end to end and exits non-zero on
// any contract violation; CI runs it as the serving smoke test.
func runDemo(srv *http.Server, ln net.Listener, ix *usp.Index, corpus *dataset.Labeled, dataDir string) {
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("server: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	post := func(path string, req, resp any) {
		body, _ := json.Marshal(req)
		r, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(r.Body)
			log.Fatalf("%s: HTTP %d: %s", path, r.StatusCode, msg)
		}
		if resp != nil {
			if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
				log.Fatal(err)
			}
		}
	}
	postStatus := func(path string, req any) int {
		body, _ := json.Marshal(req)
		r, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: %v\n", stats)

	var sr serve.SearchResponse
	post("/search", serve.SearchRequest{Vector: corpus.Row(3), K: 5, Probes: 2}, &sr)
	fmt.Printf("search: ids=%v scanned=%d elapsed=%s\n", sr.IDs, sr.Scanned, sr.Elapsed)
	if len(sr.IDs) != 5 || sr.IDs[0] != 3 {
		log.Fatalf("demo self-check failed: %+v", sr)
	}

	// Request validation: omitted/invalid parameters are 400, not silently
	// defaulted — a fan-out front must be able to trust the status class.
	for _, bad := range []struct {
		name string
		req  serve.SearchRequest
	}{
		{"k omitted", serve.SearchRequest{Vector: corpus.Row(3)}},
		{"k negative", serve.SearchRequest{Vector: corpus.Row(3), K: -2}},
		{"probes negative", serve.SearchRequest{Vector: corpus.Row(3), K: 5, Probes: -1}},
		{"rerank_k invalid", serve.SearchRequest{Vector: corpus.Row(3), K: 5, RerankK: -2}},
		{"dim mismatch", serve.SearchRequest{Vector: corpus.Row(3)[:8], K: 5}},
	} {
		if code := postStatus("/search", bad.req); code != http.StatusBadRequest {
			log.Fatalf("validation self-check failed: %s got HTTP %d, want 400", bad.name, code)
		}
	}
	fmt.Println("validation: invalid k/probes/rerank_k/dim all rejected with 400")

	// Batch search: rows 3, 7, 11 must each be their own nearest neighbor.
	var br serve.BatchSearchResponse
	post("/search/batch", serve.BatchSearchRequest{
		Vectors: [][]float32{corpus.Row(3), corpus.Row(7), corpus.Row(11)},
		K:       3, Probes: 2,
	}, &br)
	fmt.Printf("batch search: ids=%v elapsed=%s\n", br.IDs, br.Elapsed)
	if len(br.IDs) != 3 || br.IDs[0][0] != 3 || br.IDs[1][0] != 7 || br.IDs[2][0] != 11 {
		log.Fatalf("batch demo self-check failed: %+v", br)
	}

	// Add a vector, then find it.
	nv := append([]float32(nil), corpus.Row(5)...)
	nv[0] += 0.01
	var ar serve.AddResponse
	post("/add", serve.AddRequest{Vector: nv}, &ar)
	post("/search", serve.SearchRequest{Vector: nv, K: 1, Probes: 2}, &sr)
	fmt.Printf("add+search: id=%d found=%v\n", ar.ID, sr.IDs)
	if len(sr.IDs) != 1 || sr.IDs[0] != ar.ID {
		log.Fatalf("add demo self-check failed: added %d, found %v", ar.ID, sr.IDs)
	}

	// Delete it again: it must vanish from results immediately, and a
	// repeat delete must be 404 (not found), not 400 or 500.
	var dr serve.DeleteResponse
	post("/delete", serve.DeleteRequest{ID: ar.ID}, &dr)
	post("/search", serve.SearchRequest{Vector: nv, K: 3, Probes: 2}, &sr)
	for _, id := range sr.IDs {
		if id == ar.ID {
			log.Fatalf("delete demo self-check failed: %d still served", ar.ID)
		}
	}
	if code := postStatus("/delete", serve.DeleteRequest{ID: ar.ID}); code != http.StatusNotFound {
		log.Fatalf("repeat delete got HTTP %d, want 404", code)
	}
	fmt.Printf("delete: id=%d now absent from %v\n", ar.ID, sr.IDs)

	// Compact, then snapshot to disk (confined to -data-dir) and reload it
	// through the rolling-swap endpoint.
	post("/compact", nil, nil)
	var sv serve.SaveResponse
	post("/save", serve.SaveRequest{Path: "index.usps"}, &sv)
	fmt.Printf("save: %d bytes in %s\n", sv.Bytes, sv.Elapsed)
	if want := filepath.Join(dataDir, "index.usps"); sv.Path != want {
		log.Fatalf("save landed at %s, want %s", sv.Path, want)
	}
	var rr serve.ReloadResponse
	post("/reload", serve.ReloadRequest{Path: "index.usps"}, &rr)
	fmt.Printf("reload: %d vectors, generation %d in %s\n", rr.Vectors, rr.Generation, rr.Elapsed)
	if rr.Generation != 1 || rr.Vectors != ix.Len() {
		log.Fatalf("reload self-check failed: %+v (live index holds %d)", rr, ix.Len())
	}
	post("/search", serve.SearchRequest{Vector: corpus.Row(3), K: 5, Probes: 2}, &sr)
	if len(sr.IDs) != 5 || sr.IDs[0] != 3 {
		log.Fatalf("post-reload search self-check failed: %+v", sr)
	}
	// Escaping paths must be rejected on both snapshot endpoints.
	if code := postStatus("/save", serve.SaveRequest{Path: "../escape.usps"}); code != http.StatusBadRequest {
		log.Fatalf("escaping /save path not rejected: HTTP %d", code)
	}
	if code := postStatus("/reload", serve.ReloadRequest{Path: "../escape.usps"}); code != http.StatusBadRequest {
		log.Fatalf("escaping /reload path not rejected: HTTP %d", code)
	}

	// Health: the index is loaded, the epoch is fresh, and the reload
	// generation is visible.
	r3, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var hz serve.HealthzResponse
	if err := json.NewDecoder(r3.Body).Decode(&hz); err != nil {
		log.Fatal(err)
	}
	r3.Body.Close()
	fmt.Printf("healthz: status=%s epoch=%d generation=%d age=%.3fs\n", hz.Status, hz.Epoch, hz.Generation, hz.EpochAgeSeconds)
	if hz.Status != "ok" || !hz.IndexLoaded || hz.Generation != 1 || hz.EpochAgeSeconds > 60 {
		log.Fatalf("healthz demo self-check failed: %+v", hz)
	}

	// Metrics: the scrape must carry the core query, lifecycle, and HTTP
	// series, with samples from the traffic just generated. The reload
	// swapped in a fresh index registry, so only post-reload query counts
	// are asserted alongside the server's cumulative HTTP series.
	r4, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	promText, err := io.ReadAll(r4.Body)
	r4.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, series := range []string{
		"usp_query_latency_seconds_bucket",
		"usp_query_latency_seconds_count",
		"usp_query_candidates_total",
		"usp_query_bins_probed_total",
		"usp_epoch ",
		"usp_live_vectors",
		`http_requests_total{endpoint="/search"}`,
		`http_requests_total{endpoint="/reload"}`,
		`http_request_latency_seconds_bucket{endpoint="/search",le="+Inf"}`,
	} {
		if !strings.Contains(string(promText), series) {
			log.Fatalf("metrics demo self-check failed: %q missing from scrape:\n%s", series, promText)
		}
	}
	fmt.Printf("metrics: %d bytes of Prometheus text, core series present\n", len(promText))

	fmt.Println("demo OK")
	_ = srv.Close()
}
