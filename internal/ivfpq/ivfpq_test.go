package ivfpq

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/quant"
)

func blobs(seed int64, n, dim int) *dataset.Dataset {
	return dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: 10, ClusterStd: 0.2, CenterBox: 3,
	}, rand.New(rand.NewSource(seed))).Dataset
}

func TestIVFFlatExactWithinProbedLists(t *testing.T) {
	ds := blobs(1, 600, 16)
	ix, err := Build(ds, Config{NList: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Probing all lists makes IVF-Flat exact.
	gt := knn.GroundTruth(ds, ds, 10)
	for qi := 0; qi < 30; qi++ {
		ns := ix.Search(ds.Row(qi), 10, 8)
		if r := knn.RecallNeighbors(ns, gt[qi]); r != 1 {
			t.Fatalf("query %d: full-probe recall %v", qi, r)
		}
	}
}

func TestIVFFlatRecallGrowsWithProbes(t *testing.T) {
	ds := blobs(3, 800, 16)
	ix, err := Build(ds, Config{NList: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := blobs(5, 40, 16)
	gt := knn.GroundTruth(ds, queries, 10)
	recallAt := func(np int) float64 {
		var r float64
		for qi := 0; qi < queries.N; qi++ {
			r += knn.RecallNeighbors(ix.Search(queries.Row(qi), 10, np), gt[qi])
		}
		return r / float64(queries.N)
	}
	r1, r8 := recallAt(1), recallAt(8)
	if r8 < r1 {
		t.Fatalf("recall fell with more probes: %.3f -> %.3f", r1, r8)
	}
	if r8 < 0.85 {
		t.Fatalf("recall@8 probes = %.3f", r8)
	}
}

func TestIVFPQReasonableRecallWithRerank(t *testing.T) {
	ds := blobs(6, 800, 16)
	ix, err := Build(ds, Config{
		NList: 8, UsePQ: true, Seed: 7,
		PQ: quant.Config{Subspaces: 4, K: 16, Seed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds, ds, 10)
	var recall float64
	for qi := 0; qi < 40; qi++ {
		ns := ix.Search(ds.Row(qi), 10, 4)
		recall += knn.RecallNeighbors(ns, gt[qi])
	}
	recall /= 40
	if recall < 0.7 {
		t.Fatalf("IVF-PQ recall %.3f", recall)
	}
}

func TestCandidateCount(t *testing.T) {
	ds := blobs(9, 300, 8)
	ix, err := Build(ds, Config{NList: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Row(0)
	if got := ix.CandidateCount(q, 4); got != ds.N {
		t.Fatalf("all-list candidate count %d, want %d", got, ds.N)
	}
	c1, c2 := ix.CandidateCount(q, 1), ix.CandidateCount(q, 2)
	if c2 < c1 {
		t.Fatal("candidate count must grow with probes")
	}
}

func TestBuildValidation(t *testing.T) {
	ds := blobs(11, 50, 8)
	if _, err := Build(ds, Config{NList: 0}); err == nil {
		t.Fatal("NList=0 should fail")
	}
	if _, err := Build(ds, Config{NList: 4, UsePQ: true, PQ: quant.Config{Subspaces: 0}}); err == nil {
		t.Fatal("bad PQ config should fail")
	}
}
