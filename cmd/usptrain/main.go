// Command usptrain trains a USP partitioning index over an fvecs dataset
// and writes it to disk for cmd/uspquery or cmd/uspserve to serve.
//
// By default it writes a self-contained versioned snapshot (models, lookup
// tables, dataset rows, norm cache, tombstones — see DESIGN.md) that serves
// queries on its own. -legacy writes the old model-only format, which needs
// the original dataset file alongside it at query time.
//
// Usage:
//
//	usptrain -data sift.fvecs -bins 16 -ensemble 3 -o index.usps
//	usptrain -data sift.fvecs -hierarchy 16,16 -o index.usps
//	usptrain -data sift.fvecs -legacy -o index.usp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	usp "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

func main() {
	var (
		dataPath = flag.String("data", "", "input fvecs dataset (required)")
		out      = flag.String("o", "", "output index path (required)")
		bins     = flag.Int("bins", 16, "number of partition bins m")
		ensemble = flag.Int("ensemble", 1, "ensemble size e")
		hier     = flag.String("hierarchy", "", "comma-separated branching factors (e.g. 16,16); overrides -bins/-ensemble")
		kPrime   = flag.Int("kprime", 10, "k'-NN matrix width")
		eta      = flag.Float64("eta", 10, "balance weight (0 disables the balance term)")
		epochs   = flag.Int("epochs", 60, "training epochs")
		hidden   = flag.Int("hidden", 128, "hidden width (0 = logistic regression)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		legacy   = flag.Bool("legacy", false, "write the legacy model-only format instead of a full snapshot")
		verbose  = flag.Bool("v", false, "log per-epoch losses")
	)
	flag.Parse()
	if *dataPath == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, err := dataset.LoadFvecsFile(*dataPath)
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	fmt.Printf("loaded %d vectors of dim %d\n", ds.N, ds.Dim)

	var levels []int
	if *hier != "" {
		for _, part := range strings.Split(*hier, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 2 {
				log.Fatalf("bad -hierarchy element %q", part)
			}
			levels = append(levels, v)
		}
	}

	if *legacy {
		trainLegacy(ds, levels, *bins, *ensemble, *kPrime, *eta, *epochs, *hidden, *seed, *verbose, *out)
		return
	}

	opt := usp.Options{
		Bins: *bins, Ensemble: *ensemble, Hierarchy: levels,
		KPrime: *kPrime, Eta: usp.Float(*eta), Epochs: *epochs, Seed: *seed,
	}
	if *hidden > 0 {
		opt.Hidden = []int{*hidden}
	} else {
		opt.Logistic = true
	}
	if *verbose {
		opt.Logf = log.Printf
	}

	start := time.Now()
	ix, err := usp.Build(ds.Rows(), opt)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	st := ix.Stats()
	fmt.Printf("trained %d model(s), %d bins, %d params total, in %s\n",
		st.Models, st.Bins, st.Params, time.Since(start).Round(time.Millisecond))
	if err := ix.SaveFile(*out); err != nil {
		log.Fatalf("writing snapshot: %v", err)
	}
	if info, err := os.Stat(*out); err == nil {
		fmt.Printf("wrote self-contained snapshot to %s (%d bytes)\n", *out, info.Size())
	} else {
		fmt.Printf("wrote self-contained snapshot to %s\n", *out)
	}
}

// trainLegacy preserves the original model-only pipeline for users with
// existing uspquery -data workflows.
func trainLegacy(ds *dataset.Dataset, levels []int, bins, ensemble, kPrime int,
	eta float64, epochs, hidden int, seed int64, verbose bool, out string) {

	kp := kPrime
	if kp >= ds.N {
		kp = ds.N - 1
	}
	cfg := core.Config{
		Bins: bins, KPrime: kp, Eta: eta, Epochs: epochs, Seed: seed,
	}
	if hidden > 0 {
		cfg.Hidden = []int{hidden}
		cfg.Dropout = 0.1
	}
	if verbose {
		cfg.Logf = log.Printf
	}

	if len(levels) > 0 {
		start := time.Now()
		h, stats, err := core.TrainHierarchy(ds, levels, cfg)
		if err != nil {
			log.Fatalf("training hierarchy: %v", err)
		}
		fmt.Printf("trained hierarchy of %d models (%d leaf bins, %d params) in %s\n",
			len(stats), h.NumBins, h.TotalParams(), time.Since(start).Round(time.Millisecond))
		if err := core.SaveIndexFile(out, nil, h); err != nil {
			log.Fatalf("writing index: %v", err)
		}
		fmt.Printf("wrote legacy hierarchical index to %s\n", out)
		return
	}

	start := time.Now()
	mat := knn.BuildMatrix(ds, kp)
	fmt.Printf("k'-NN matrix (k'=%d) built in %s\n", kp, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	ens, stats, err := core.TrainEnsemble(ds, mat, cfg, ensemble)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained %d model(s), %d params total, in %s\n",
		ens.Size(), stats.TotalParams(), time.Since(start).Round(time.Millisecond))
	if err := core.SaveIndexFile(out, ens, nil); err != nil {
		log.Fatalf("writing index: %v", err)
	}
	fmt.Printf("wrote legacy index to %s\n", out)
}
