package knn

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/vecmath"
)

func TestSearchSubsetIntoMatchesSearchSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 400, Dim: 16, Clusters: 8, ClusterStd: 0.5, CenterBox: 3,
	}, rng).Dataset

	for _, withNorms := range []bool{false, true} {
		if withNorms {
			base.EnsureSqNorms(true)
		} else {
			base.SqNorms = nil
		}
		tk := vecmath.NewTopK(1)
		var dst []vecmath.Neighbor
		for trial := 0; trial < 50; trial++ {
			q := base.Row(rng.Intn(base.N))
			nsub := 1 + rng.Intn(base.N)
			subset := make([]int, 0, nsub)
			subset32 := make([]int32, 0, nsub)
			for _, i := range rng.Perm(base.N)[:nsub] {
				subset = append(subset, i)
				subset32 = append(subset32, int32(i))
			}
			k := 1 + rng.Intn(12)
			want := SearchSubset(base, subset, q, k)
			dst = SearchSubsetInto(dst[:0], base, subset32, q, k, tk, nil)
			if len(want) != len(dst) {
				t.Fatalf("norms=%v trial %d: %d vs %d results", withNorms, trial, len(dst), len(want))
			}
			for i := range want {
				if want[i].Index != dst[i].Index {
					t.Fatalf("norms=%v trial %d: result[%d] id %d, want %d",
						withNorms, trial, i, dst[i].Index, want[i].Index)
				}
				diff := float64(want[i].Dist - dst[i].Dist)
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-3*float64(want[i].Dist)+1e-4 {
					t.Fatalf("norms=%v trial %d: result[%d] dist %v, want %v",
						withNorms, trial, i, dst[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestSearchSubsetIntoSelfQueryIsExactZero(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := dataset.Uniform(100, 32, rng)
	base.EnsureSqNorms(false)
	tk := vecmath.NewTopK(1)
	subset := make([]int32, base.N)
	for i := range subset {
		subset[i] = int32(i)
	}
	for qi := 0; qi < base.N; qi += 7 {
		ns := SearchSubsetInto(nil, base, subset, base.Row(qi), 1, tk, nil)
		if ns[0].Index != qi || ns[0].Dist != 0 {
			t.Fatalf("self query %d returned %+v (fused self-distance must be exactly 0)", qi, ns[0])
		}
	}
}

// TestSearchSubsetIntoSkipsTombstones checks the epoch-lifecycle contract:
// ids in the skip set never appear in results, the survivors match a scan of
// the manually filtered subset, and both kernel paths (fused-norm and
// direct) honor the filter identically.
func TestSearchSubsetIntoSkipsTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base := dataset.Uniform(300, 8, rng)
	for _, withNorms := range []bool{false, true} {
		if withNorms {
			base.EnsureSqNorms(true)
		} else {
			base.SqNorms = nil
		}
		tk := vecmath.NewTopK(1)
		var dst []vecmath.Neighbor
		for trial := 0; trial < 30; trial++ {
			var skip *bitset.Set
			kept := make([]int32, 0, base.N)
			for i := 0; i < base.N; i++ {
				if rng.Float64() < 0.3 {
					skip = skip.With(i)
				} else {
					kept = append(kept, int32(i))
				}
			}
			all := make([]int32, base.N)
			for i := range all {
				all[i] = int32(i)
			}
			q := base.Row(rng.Intn(base.N))
			dst = SearchSubsetInto(dst[:0], base, all, q, 10, tk, skip)
			want := SearchSubsetInto(nil, base, kept, q, 10, tk, nil)
			if len(dst) != len(want) {
				t.Fatalf("norms=%v trial %d: %d vs %d results", withNorms, trial, len(dst), len(want))
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("norms=%v trial %d: result[%d] %+v, want %+v",
						withNorms, trial, i, dst[i], want[i])
				}
				if skip.Has(dst[i].Index) {
					t.Fatalf("tombstoned id %d returned", dst[i].Index)
				}
			}
		}
	}
}

// TestSearchSubsetIntoCountedSkipAccounting: the counted variant must
// report exactly the number of subset entries present in the skip set
// (duplicates counted per occurrence), on both kernel paths, and zero when
// no skip set is given.
func TestSearchSubsetIntoCountedSkipAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := dataset.Uniform(200, 8, rng)
	for _, withNorms := range []bool{false, true} {
		if withNorms {
			base.EnsureSqNorms(true)
		} else {
			base.SqNorms = nil
		}
		tk := vecmath.NewTopK(1)
		for trial := 0; trial < 20; trial++ {
			var skip *bitset.Set
			for i := 0; i < base.N; i++ {
				if rng.Float64() < 0.25 {
					skip = skip.With(i)
				}
			}
			// Subset with duplicates: each occurrence of a tombstoned id is
			// separately gathered work, so each occurrence counts.
			subset := make([]int32, 0, 300)
			wantSkipped := 0
			for j := 0; j < 300; j++ {
				id := rng.Intn(base.N)
				subset = append(subset, int32(id))
				if skip.Has(id) {
					wantSkipped++
				}
			}
			q := base.Row(rng.Intn(base.N))
			_, skipped := SearchSubsetIntoCounted(nil, base, subset, q, 5, tk, skip)
			if skipped != wantSkipped {
				t.Fatalf("norms=%v trial %d: skipped %d, want %d", withNorms, trial, skipped, wantSkipped)
			}
			_, skipped = SearchSubsetIntoCounted(nil, base, subset, q, 5, tk, nil)
			if skipped != 0 {
				t.Fatalf("norms=%v trial %d: nil skip set reported %d skipped", withNorms, trial, skipped)
			}
		}
	}
}

func TestSearchSubsetIntoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := dataset.Uniform(500, 32, rng)
	base.EnsureSqNorms(false)
	subset := make([]int32, base.N)
	for i := range subset {
		subset[i] = int32(i)
	}
	q := base.Row(0)
	tk := vecmath.NewTopK(10)
	dst := make([]vecmath.Neighbor, 0, 10)
	dst = SearchSubsetInto(dst[:0], base, subset, q, 10, tk, nil) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		dst = SearchSubsetInto(dst[:0], base, subset, q, 10, tk, nil)
	})
	if allocs != 0 {
		t.Fatalf("SearchSubsetInto allocates %v per run", allocs)
	}
}
