package vecmath

import (
	"math/rand"
	"testing"
)

func TestSquaredL2FusedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(130)
		q := make([]float32, dim)
		x := make([]float32, dim)
		for i := range q {
			q[i] = float32(rng.NormFloat64() * 3)
			x[i] = float32(rng.NormFloat64() * 3)
		}
		direct := SquaredL2(q, x)
		fused := SquaredL2Fused(q, x, Dot(q, q), Dot(x, x))
		diff := float64(direct - fused)
		if diff < 0 {
			diff = -diff
		}
		// The expansion loses precision under cancellation; allow a small
		// relative error against the magnitude of the norms involved.
		scale := float64(Dot(q, q) + Dot(x, x))
		if diff > 1e-4*scale+1e-4 {
			t.Fatalf("trial %d: direct %v fused %v (dim %d)", trial, direct, fused, dim)
		}
	}
}

func TestSquaredL2FusedIdenticalVectorsIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := make([]float32, 64)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	n := Dot(q, q)
	if d := SquaredL2Fused(q, q, n, n); d != 0 {
		t.Fatalf("self distance = %v, want exactly 0", d)
	}
}

func TestSquaredL2FusedClampsNegative(t *testing.T) {
	// Force cancellation: nearly identical large-magnitude vectors.
	q := []float32{1e6, 1e6, 1e6, 1e6}
	x := []float32{1e6, 1e6, 1e6, 1.0000001e6}
	if d := SquaredL2Fused(q, x, Dot(q, q), Dot(x, x)); d < 0 {
		t.Fatalf("fused distance went negative: %v", d)
	}
}

func TestTopKIndicesIntoMatchesTopKIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var scratch []int
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Intn(12)) // duplicates on purpose: exercise ties
		}
		k := rng.Intn(n + 3) // occasionally k > n and k == 0
		want := TopKIndices(x, k)
		scratch = TopKIndicesInto(scratch, x, k)
		if len(want) != len(scratch) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(scratch), len(want))
		}
		for i := range want {
			if want[i] != scratch[i] {
				t.Fatalf("trial %d (n=%d k=%d): got %v want %v (x=%v)",
					trial, n, k, scratch, want, x)
			}
		}
	}
}

func TestTopKIndicesIntoAllocs(t *testing.T) {
	x := make([]float32, 256)
	rng := rand.New(rand.NewSource(10))
	for i := range x {
		x[i] = rng.Float32()
	}
	scratch := make([]int, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = TopKIndicesInto(scratch, x, 8)
	})
	if allocs != 0 {
		t.Fatalf("TopKIndicesInto allocates %v per run", allocs)
	}
}

func TestAppendSortedMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(12)
		a, b := NewTopK(k), NewTopK(k)
		for i := 0; i < n; i++ {
			d := float32(rng.Intn(8)) // ties on purpose
			a.Push(i, d)
			b.Push(i, d)
		}
		want := a.Sorted()
		got := b.AppendSorted(nil)
		if len(want) != len(got) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
		if b.Len() != 0 {
			t.Fatal("AppendSorted must reset the selector")
		}
	}
}

func TestAppendSortedReusesBuffer(t *testing.T) {
	tk := NewTopK(16)
	dst := make([]Neighbor, 0, 16)
	rng := rand.New(rand.NewSource(12))
	xs := make([]float32, 512)
	for i := range xs {
		xs[i] = rng.Float32()
	}
	allocs := testing.AllocsPerRun(100, func() {
		tk.Reset()
		for i, v := range xs {
			tk.Push(i, v)
		}
		dst = tk.AppendSorted(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("push+AppendSorted allocates %v per run", allocs)
	}
}

func TestTopKSetK(t *testing.T) {
	tk := NewTopK(3)
	for i := 0; i < 10; i++ {
		tk.Push(i, float32(10-i))
	}
	tk.SetK(5)
	if tk.Len() != 0 {
		t.Fatal("SetK must discard retained neighbors")
	}
	for i := 0; i < 10; i++ {
		tk.Push(i, float32(10-i))
	}
	ns := tk.Sorted()
	if len(ns) != 5 {
		t.Fatalf("retained %d, want 5", len(ns))
	}
	if ns[0].Index != 9 {
		t.Fatalf("nearest = %+v", ns[0])
	}
}
