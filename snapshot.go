package usp

// The versioned full-index snapshot format. Unlike the legacy model-only
// files of internal/core (which persist models and bin tables but not the
// vectors, so a loaded index cannot serve queries), a snapshot is fully
// self-contained: one file holds everything needed to serve — options,
// models, merged lookup tables, dataset rows, the squared-norm cache, and
// tombstones — and a loaded index returns bit-identical results to the
// live one it was saved from, including results involving vectors that
// were still in spill lists or already tombstoned at save time.
//
// Layout (all integers little-endian):
//
//	[8]  magic "USPSNAP1"
//	[4]  format version (currently 1)
//	[4]  section count
//	per section: [4] id  [4] reserved  [8] offset  [8] length
//	section payloads, in ascending offset order
//
// Sections: options (gob), model (kind byte + the core gob payload with
// spill lists merged in), dataset (row count, dim, raw float32 rows),
// sqnorms (raw float32 cache), tombstones and the compacted dead set
// (bitmap words). Readers skip unknown section ids, so the format can
// grow without a version bump; offsets are explicit so future writers
// may reorder or align sections.
//
// Save streams: small sections are staged in memory, but the dataset — the
// dominant payload — is written straight from the epoch's row storage
// through a buffered writer, never copied whole. Save operates on one
// published epoch, so it is safe (and consistent) concurrently with
// queries, Add, Delete, and compaction.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/quant"
)

const (
	snapMagic   = "USPSNAP1"
	snapVersion = 1

	secOptions    = 1
	secModel      = 2
	secDataset    = 3
	secSqNorms    = 4
	secTombstones = 5
	secDeadSet    = 6
	secQuant      = 7

	modelKindEnsemble  = 1
	modelKindHierarchy = 2

	snapHeaderFixed  = 16 // magic + version + count
	snapSectionEntry = 24 // id + reserved + offset + length
)

// snapOptions is the gob payload of the options section: the resolved
// build options plus the lifecycle state a servable index needs restored.
type snapOptions struct {
	Bins, KPrime, Epochs, BatchSize, Ensemble int
	Eta, Dropout                              float64
	Hidden                                    []int
	Logistic                                  bool
	Hierarchy                                 []int
	Seed                                      int64
	Shards, CompactAfter                      int
	Stats                                     BuildStats
	Dead                                      int
	Epoch                                     uint64
	// Quant is the resolved quantization config (zero value — disabled —
	// when decoding snapshots written before the quant section existed).
	Quant Quantization
	// IDOffset is the shard's global id base (see Index.IDOffset); zero for
	// unsharded indexes and for snapshots written before sharding existed.
	IDOffset int
}

// Save writes a self-contained snapshot of the index to w. It snapshots
// one published epoch, so concurrent mutations neither block nor tear it.
func (ix *Index) Save(w io.Writer) error {
	ep := ix.live.Load()
	o := ix.opt
	if ep.quant != nil && ep.quant.tight {
		return fmt.Errorf("usp: cannot snapshot a memory-tight index (float rows were dropped)")
	}

	var optBuf bytes.Buffer
	so := snapOptions{
		Bins: o.Bins, KPrime: o.KPrime, Epochs: o.Epochs, BatchSize: o.BatchSize,
		Ensemble: o.Ensemble, Eta: *o.Eta, Dropout: *o.Dropout, Hidden: o.Hidden,
		Logistic: o.Logistic, Hierarchy: o.Hierarchy, Seed: o.Seed,
		Shards: o.Shards, CompactAfter: o.CompactAfter,
		Stats: ix.stats, Dead: ep.dead(), Epoch: ep.seq,
		Quant: o.Quantize, IDOffset: ix.idOffset,
	}
	if err := gob.NewEncoder(&optBuf).Encode(so); err != nil {
		return fmt.Errorf("usp: encoding options: %w", err)
	}

	// Models with the epoch's spill lists merged into the bin tables: the
	// loaded index starts with clean CSR state yet serves candidates in
	// exactly the order the live spill-aware read path does.
	var modelBuf bytes.Buffer
	if ep.hier != nil {
		modelBuf.WriteByte(modelKindHierarchy)
		if err := core.SaveHierarchyWith(&modelBuf, ep.hier, ep.extra()); err != nil {
			return err
		}
	} else {
		modelBuf.WriteByte(modelKindEnsemble)
		if err := core.SaveEnsembleWith(&modelBuf, ep.ens, ep.data.N, ep.extra()); err != nil {
			return err
		}
	}

	tombBuf := encodeBitmap(ep.tombs)
	deadBuf := encodeBitmap(ep.deadSet)

	var u8 [8]byte
	n := ep.data.N
	sections := []struct {
		id  uint32
		len uint64
	}{
		{secOptions, uint64(optBuf.Len())},
		{secModel, uint64(modelBuf.Len())},
		{secDataset, uint64(16 + 4*n*ix.dim)},
		{secSqNorms, uint64(8 + 4*n)},
		{secTombstones, uint64(tombBuf.Len())},
		{secDeadSet, uint64(deadBuf.Len())},
	}
	// The quant section holds the codebooks plus the flat per-row codes; the
	// header is staged (it is tiny next to the code payload, which streams
	// straight from the epoch's view). Readers that predate the section skip
	// it by id, so quantized snapshots stay loadable as float-only indexes.
	var quantHdr *bytes.Buffer
	if qv := ep.quant; qv != nil {
		quantHdr = encodeQuantHeader(qv.pq, n)
		sections = append(sections, struct {
			id  uint32
			len uint64
		}{secQuant, uint64(quantHdr.Len() + len(qv.codes))})
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], snapVersion)
	bw.Write(u4[:])
	binary.LittleEndian.PutUint32(u4[:], uint32(len(sections)))
	bw.Write(u4[:])
	off := uint64(snapHeaderFixed + snapSectionEntry*len(sections))
	for _, s := range sections {
		binary.LittleEndian.PutUint32(u4[:], s.id)
		bw.Write(u4[:])
		binary.LittleEndian.PutUint32(u4[:], 0)
		bw.Write(u4[:])
		binary.LittleEndian.PutUint64(u8[:], off)
		bw.Write(u8[:])
		binary.LittleEndian.PutUint64(u8[:], s.len)
		bw.Write(u8[:])
		off += s.len
	}

	bw.Write(optBuf.Bytes())
	bw.Write(modelBuf.Bytes())

	binary.LittleEndian.PutUint64(u8[:], uint64(n))
	bw.Write(u8[:])
	binary.LittleEndian.PutUint32(u4[:], uint32(ix.dim))
	bw.Write(u4[:])
	binary.LittleEndian.PutUint32(u4[:], 0)
	bw.Write(u4[:])
	if err := writeFloats(bw, ep.data.Data); err != nil {
		return err
	}

	binary.LittleEndian.PutUint64(u8[:], uint64(n))
	bw.Write(u8[:])
	if err := writeFloats(bw, ep.data.SqNorms); err != nil {
		return err
	}

	bw.Write(tombBuf.Bytes())
	bw.Write(deadBuf.Bytes())
	if quantHdr != nil {
		bw.Write(quantHdr.Bytes())
		if _, err := bw.Write(ep.quant.codes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeQuantHeader stages everything of the quant section except the code
// payload: flags, shape, subspace bounds, and the centroid tables.
//
//	[4] flags (reserved; currently 0)
//	[4] M (subspaces)  [4] K  [4] dim  [8] rows
//	(M+1)×[4] bounds
//	per subspace: [4] centroid count  [4] subDim  count·subDim float32s
//	rows·M code bytes (streamed by the caller)
//
// The section is deliberately pure fixed-layout binary — a gob decoder
// buffers past its payload, which would corrupt the strictly-forward
// section walk in Load.
func encodeQuantHeader(pq *quant.PQ, rows int) *bytes.Buffer {
	var buf bytes.Buffer
	var u4 [4]byte
	var u8 [8]byte
	put4 := func(v uint32) {
		binary.LittleEndian.PutUint32(u4[:], v)
		buf.Write(u4[:])
	}
	put4(0) // flags
	put4(uint32(pq.Subspaces))
	put4(uint32(pq.K))
	put4(uint32(pq.Dim))
	binary.LittleEndian.PutUint64(u8[:], uint64(rows))
	buf.Write(u8[:])
	for _, b := range pq.Bounds {
		put4(uint32(b))
	}
	for _, cb := range pq.Codebooks {
		put4(uint32(cb.N))
		put4(uint32(cb.Dim))
		for _, v := range cb.Data {
			binary.LittleEndian.PutUint32(u4[:], math.Float32bits(v))
			buf.Write(u4[:])
		}
	}
	return &buf
}

// readQuantSection parses the payload encodeQuantHeader + codes wrote.
func readQuantSection(r io.Reader) (*quant.PQ, []uint8, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("reading quant header: %w", err)
	}
	m := binary.LittleEndian.Uint32(hdr[4:8])
	k := binary.LittleEndian.Uint32(hdr[8:12])
	dim := binary.LittleEndian.Uint32(hdr[12:16])
	rows := binary.LittleEndian.Uint64(hdr[16:24])
	if m == 0 || m > dim || k == 0 || k > 256 || dim > 1<<20 || rows > 1<<40 {
		return nil, nil, fmt.Errorf("implausible quant shape m=%d k=%d dim=%d rows=%d", m, k, dim, rows)
	}
	pq := &quant.PQ{Dim: int(dim), Subspaces: int(m), K: int(k)}
	pq.Bounds = make([]int, m+1)
	var u4 [4]byte
	for i := range pq.Bounds {
		if _, err := io.ReadFull(r, u4[:]); err != nil {
			return nil, nil, fmt.Errorf("reading quant bounds: %w", err)
		}
		pq.Bounds[i] = int(binary.LittleEndian.Uint32(u4[:]))
	}
	if pq.Bounds[0] != 0 || pq.Bounds[m] != int(dim) {
		return nil, nil, fmt.Errorf("implausible quant bounds [%d..%d] for dim %d", pq.Bounds[0], pq.Bounds[m], dim)
	}
	pq.Codebooks = make([]*dataset.Dataset, m)
	var cb8 [8]byte
	for s := range pq.Codebooks {
		if _, err := io.ReadFull(r, cb8[:]); err != nil {
			return nil, nil, fmt.Errorf("reading quant codebook %d header: %w", s, err)
		}
		cn := binary.LittleEndian.Uint32(cb8[0:4])
		cd := binary.LittleEndian.Uint32(cb8[4:8])
		if cn == 0 || cn > k || int(cd) != pq.Bounds[s+1]-pq.Bounds[s] {
			return nil, nil, fmt.Errorf("implausible quant codebook %d shape %dx%d", s, cn, cd)
		}
		data, err := readFloats(r, int(cn)*int(cd))
		if err != nil {
			return nil, nil, fmt.Errorf("reading quant codebook %d: %w", s, err)
		}
		pq.Codebooks[s] = &dataset.Dataset{N: int(cn), Dim: int(cd), Data: data}
	}
	codes := make([]uint8, int(rows)*int(m))
	if _, err := io.ReadFull(r, codes); err != nil {
		return nil, nil, fmt.Errorf("reading quant codes: %w", err)
	}
	return pq, codes, nil
}

// encodeBitmap serializes a bitset as a word count plus its words.
func encodeBitmap(s *bitset.Set) *bytes.Buffer {
	words := s.Words()
	var buf bytes.Buffer
	var u8 [8]byte
	binary.LittleEndian.PutUint64(u8[:], uint64(len(words)))
	buf.Write(u8[:])
	for _, wd := range words {
		binary.LittleEndian.PutUint64(u8[:], wd)
		buf.Write(u8[:])
	}
	return &buf
}

// writeFloats streams vals in 64 KB staging chunks (mirroring readFloats);
// the dataset payload dominates a snapshot, so per-element Write calls
// would be the bottleneck.
func writeFloats(bw *bufio.Writer, vals []float32) error {
	buf := make([]byte, 1<<16)
	for len(vals) > 0 {
		span := len(vals)
		if span > len(buf)/4 {
			span = len(buf) / 4
		}
		for j := 0; j < span; j++ {
			binary.LittleEndian.PutUint32(buf[j*4:], math.Float32bits(vals[j]))
		}
		if _, err := bw.Write(buf[:span*4]); err != nil {
			return err
		}
		vals = vals[span:]
	}
	return nil
}

// SaveFile writes a snapshot to path. The file is closed exactly once, and
// a close error (where buffered data is actually written on many
// filesystems) surfaces when no earlier write failed.
func (ix *Index) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return ix.Save(f)
}

// Load reads a snapshot written by Save and returns a servable index. The
// stream is consumed strictly forward (sections are stored in offset
// order; unknown sections are skipped), so r needs no seeking.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [snapHeaderFixed]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("usp: reading snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapMagic {
		return nil, fmt.Errorf("usp: not a snapshot file (magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != snapVersion {
		return nil, fmt.Errorf("usp: unsupported snapshot version %d", v)
	}
	count := binary.LittleEndian.Uint32(hdr[12:16])
	if count == 0 || count > 1024 {
		return nil, fmt.Errorf("usp: implausible section count %d", count)
	}
	type entry struct {
		id       uint32
		off, len uint64
	}
	entries := make([]entry, count)
	var eb [snapSectionEntry]byte
	for i := range entries {
		if _, err := io.ReadFull(br, eb[:]); err != nil {
			return nil, fmt.Errorf("usp: reading section table: %w", err)
		}
		entries[i] = entry{
			id:  binary.LittleEndian.Uint32(eb[0:4]),
			off: binary.LittleEndian.Uint64(eb[8:16]),
			len: binary.LittleEndian.Uint64(eb[16:24]),
		}
	}

	var (
		so      *snapOptions
		ens     *core.Ensemble
		hier    *core.Hierarchy
		ds      *dataset.Dataset
		norms   []float32
		tombs   *bitset.Set
		deadSet *bitset.Set
		pq      *quant.PQ
		codes   []uint8
	)
	pos := uint64(snapHeaderFixed) + uint64(snapSectionEntry)*uint64(count)
	for _, e := range entries {
		if e.off < pos {
			return nil, fmt.Errorf("usp: section %d overlaps (offset %d < position %d)", e.id, e.off, pos)
		}
		if _, err := io.CopyN(io.Discard, br, int64(e.off-pos)); err != nil {
			return nil, fmt.Errorf("usp: seeking section %d: %w", e.id, err)
		}
		lr := io.LimitReader(br, int64(e.len))
		var err error
		switch e.id {
		case secOptions:
			so = &snapOptions{}
			err = gob.NewDecoder(lr).Decode(so)
		case secModel:
			ens, hier, err = readModelSection(lr)
		case secDataset:
			ds, err = readDatasetSection(lr)
		case secSqNorms:
			norms, err = readNormsSection(lr)
		case secTombstones:
			tombs, err = readBitmapSection(lr)
		case secDeadSet:
			deadSet, err = readBitmapSection(lr)
		case secQuant:
			pq, codes, err = readQuantSection(lr)
		}
		if err != nil {
			return nil, fmt.Errorf("usp: section %d: %w", e.id, err)
		}
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("usp: draining section %d: %w", e.id, err)
		}
		pos = e.off + e.len
	}

	if so == nil || ds == nil || (ens == nil && hier == nil) {
		return nil, fmt.Errorf("usp: snapshot missing a required section (options/model/dataset)")
	}
	if len(norms) == int(ds.N) {
		ds.SqNorms = norms
	} else {
		ds.EnsureSqNorms(true)
	}

	if deadSet.Count() != so.Dead {
		return nil, fmt.Errorf("usp: dead-set section (%d ids) disagrees with options (%d)",
			deadSet.Count(), so.Dead)
	}
	if pq != nil {
		if pq.Dim != ds.Dim || len(codes) != ds.N*pq.Subspaces {
			return nil, fmt.Errorf("usp: quant section (dim %d, %d codes) disagrees with dataset (dim %d, %d rows)",
				pq.Dim, len(codes), ds.Dim, ds.N)
		}
	}
	opt := Options{
		Bins: so.Bins, KPrime: so.KPrime, Epochs: so.Epochs, BatchSize: so.BatchSize,
		Ensemble: so.Ensemble, Eta: Float(so.Eta), Dropout: Float(so.Dropout),
		Hidden: so.Hidden, Logistic: so.Logistic, Hierarchy: so.Hierarchy,
		Seed: so.Seed, Shards: so.Shards, CompactAfter: so.CompactAfter,
	}.withDefaults()
	opt.Quantize = so.Quant
	// A snapshot whose quant section was dropped (or written by a future
	// format this reader skips) degrades to a float-only index: leaving
	// Enabled set with no codebooks would promise a scan we cannot run.
	if pq == nil {
		opt.Quantize.Enabled = false
	}
	ix := newIndex(ds, ens, hier, opt, so.Stats, so.Epoch, tombs, deadSet, pq, codes)
	ix.idOffset = so.IDOffset
	return ix, nil
}

// LoadFile reads a snapshot file written by SaveFile.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// IsSnapshotFile sniffs whether path starts with the snapshot magic —
// how cmd/uspquery distinguishes self-contained snapshots from legacy
// model-only index files.
func IsSnapshotFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false
	}
	return string(m[:]) == snapMagic
}

func readModelSection(r io.Reader) (*core.Ensemble, *core.Hierarchy, error) {
	var kind [1]byte
	if _, err := io.ReadFull(r, kind[:]); err != nil {
		return nil, nil, fmt.Errorf("reading model kind: %w", err)
	}
	switch kind[0] {
	case modelKindEnsemble:
		ens, err := core.LoadEnsemble(r)
		return ens, nil, err
	case modelKindHierarchy:
		hier, err := core.LoadHierarchy(r)
		return nil, hier, err
	default:
		return nil, nil, fmt.Errorf("unknown model kind %d", kind[0])
	}
}

func readDatasetSection(r io.Reader) (*dataset.Dataset, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("reading dataset header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	dim := binary.LittleEndian.Uint32(hdr[8:12])
	if dim == 0 || dim > 1<<20 || n > 1<<40 {
		return nil, fmt.Errorf("implausible dataset shape n=%d dim=%d", n, dim)
	}
	data, err := readFloats(r, int(n)*int(dim))
	if err != nil {
		return nil, fmt.Errorf("reading rows: %w", err)
	}
	return &dataset.Dataset{N: int(n), Dim: int(dim), Data: data}, nil
}

func readNormsSection(r io.Reader) ([]float32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("reading norm header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > 1<<40 {
		return nil, fmt.Errorf("implausible norm count %d", n)
	}
	return readFloats(r, int(n))
}

func readBitmapSection(r io.Reader) (*bitset.Set, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("reading bitmap header: %w", err)
	}
	nw := binary.LittleEndian.Uint64(hdr[:])
	if nw > 1<<34 {
		return nil, fmt.Errorf("implausible bitmap word count %d", nw)
	}
	words := make([]uint64, nw)
	buf := make([]byte, 1<<14)
	for i := 0; i < len(words); {
		span := len(words) - i
		if span > len(buf)/8 {
			span = len(buf) / 8
		}
		if _, err := io.ReadFull(r, buf[:span*8]); err != nil {
			return nil, fmt.Errorf("reading bitmap words: %w", err)
		}
		for j := 0; j < span; j++ {
			words[i+j] = binary.LittleEndian.Uint64(buf[j*8:])
		}
		i += span
	}
	return bitset.FromWords(words), nil
}

func readFloats(r io.Reader, n int) ([]float32, error) {
	out := make([]float32, n)
	buf := make([]byte, 1<<16)
	for i := 0; i < n; {
		span := n - i
		if span > len(buf)/4 {
			span = len(buf) / 4
		}
		if _, err := io.ReadFull(r, buf[:span*4]); err != nil {
			return nil, err
		}
		for j := 0; j < span; j++ {
			out[i+j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
		i += span
	}
	return out, nil
}
