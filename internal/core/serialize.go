package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/nn"
)

// ensembleSpec is the gob-encodable snapshot of an Ensemble: each member's
// serialized network plus its lookup table.
type ensembleSpec struct {
	Parts []partSpec
}

type partSpec struct {
	Model  []byte
	M      int
	Assign []int32
	Bins   [][]int32
}

// SaveEnsemble writes a trained ensemble (models and lookup tables) to w.
func SaveEnsemble(w io.Writer, e *Ensemble) error {
	return SaveEnsembleWith(w, e, len(e.Parts[0].Assign), nil)
}

// SaveEnsembleWith is SaveEnsemble for epoch-snapshotted indexes: each bin
// list is written as its CSR range followed by the bin's post-epoch inserts
// from extra (nil when none are pending) — the same merge order the live
// read path and the compactor use — and Assign is extended to n entries with
// the extra ids' routed bins, so a reloaded index serves results
// bit-identical to the live one without a compaction first.
func SaveEnsembleWith(w io.Writer, e *Ensemble, n int, extra ExtraBins) error {
	var spec ensembleSpec
	for m, p := range e.Parts {
		var buf bytes.Buffer
		if err := p.Model.Save(&buf); err != nil {
			return fmt.Errorf("core: serializing model: %w", err)
		}
		spec.Parts = append(spec.Parts, partSpec{
			Model: buf.Bytes(), M: p.M,
			Assign: mergedAssign(p.Assign, n, m, p.M, extra),
			Bins:   mergedBinLists(p, n, m, extra),
		})
	}
	return gob.NewEncoder(w).Encode(spec)
}

// mergedBinLists materializes per-bin id lists as CSR range + extra inserts.
func mergedBinLists(p *Partitioner, n, member int, extra ExtraBins) [][]int32 {
	out := make([][]int32, p.M)
	for b := 0; b < p.M; b++ {
		list := p.AppendBin(make([]int32, 0, p.BinLen(b)), b)
		if extra != nil {
			list = extra.AppendExtra(list, member, b)
		}
		out[b] = list
	}
	return out
}

// mergedAssign extends assign to n entries, scattering the extra ids' routed
// bins; ids with no assignment (possible only transiently) are marked -1.
func mergedAssign(assign []int32, n, member, m int, extra ExtraBins) []int32 {
	if extra == nil && len(assign) == n {
		return assign
	}
	out := make([]int32, n)
	copy(out, assign)
	for i := len(assign); i < n; i++ {
		out[i] = -1
	}
	if extra != nil {
		var scratch []int32
		for b := 0; b < m; b++ {
			scratch = extra.AppendExtra(scratch[:0], member, b)
			for _, id := range scratch {
				out[id] = int32(b)
			}
		}
	}
	return out
}

// Index files written by cmd/usptrain start with a magic line identifying
// the index kind, followed by the gob payload.
const (
	magicEnsemble  = "usp-index:ensemble\n"
	magicHierarchy = "usp-index:hierarchy\n"
)

// SaveIndexFile writes either an ensemble or a hierarchy (exactly one must
// be non-nil) to path with a kind header for LoadIndexFile. The file is
// closed exactly once; a close error (the write path for buffered data on
// many filesystems) surfaces through the returned error when no earlier
// write failed.
func SaveIndexFile(path string, ens *Ensemble, hier *Hierarchy) (err error) {
	if (ens == nil) == (hier == nil) {
		return fmt.Errorf("core: SaveIndexFile needs exactly one of ensemble/hierarchy")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if ens != nil {
		if _, err := io.WriteString(f, magicEnsemble); err != nil {
			return err
		}
		return SaveEnsemble(f, ens)
	}
	if _, err := io.WriteString(f, magicHierarchy); err != nil {
		return err
	}
	return SaveHierarchy(f, hier)
}

// LoadIndexFile reads an index written by SaveIndexFile; exactly one of the
// returned pointers is non-nil.
func LoadIndexFile(path string) (*Ensemble, *Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.ReadString('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading index header: %w", err)
	}
	switch magic {
	case magicEnsemble:
		ens, err := LoadEnsemble(br)
		return ens, nil, err
	case magicHierarchy:
		hier, err := LoadHierarchy(br)
		return nil, hier, err
	default:
		return nil, nil, fmt.Errorf("core: unrecognized index header %q", magic)
	}
}

// hierSpec snapshots a Hierarchy: the node tree with serialized models plus
// the global leaf table.
type hierSpec struct {
	Levels    []int
	NumBins   int
	Bins      [][]int32
	ProbeTemp float64
	Root      hnodeSpec
}

type hnodeSpec struct {
	Model    []byte
	M        int
	Assign   []int32
	Bins     [][]int32
	LeafBase int
	Children []hnodeSpec
}

// SaveHierarchy writes a trained hierarchy to w.
func SaveHierarchy(w io.Writer, h *Hierarchy) error {
	return SaveHierarchyWith(w, h, nil)
}

// SaveHierarchyWith is SaveHierarchy for epoch-snapshotted indexes: each
// global leaf list is written as its frozen range followed by the leaf's
// post-epoch inserts from extra (nil when none are pending), matching the
// live read order so reloaded indexes serve bit-identical results.
func SaveHierarchyWith(w io.Writer, h *Hierarchy, extra ExtraBins) error {
	bins := h.Bins
	if extra != nil {
		bins = make([][]int32, h.NumBins)
		for g := range bins {
			bins[g] = extra.AppendExtra(append([]int32(nil), h.Bins[g]...), 0, g)
		}
	}
	spec := hierSpec{
		Levels: h.Levels, NumBins: h.NumBins, Bins: bins, ProbeTemp: h.ProbeTemp,
	}
	var snap func(n *hnode) (hnodeSpec, error)
	snap = func(n *hnode) (hnodeSpec, error) {
		var buf bytes.Buffer
		if err := n.part.Model.Save(&buf); err != nil {
			return hnodeSpec{}, fmt.Errorf("core: serializing hierarchy model: %w", err)
		}
		ns := hnodeSpec{
			Model: buf.Bytes(), M: n.part.M,
			Assign: n.part.Assign, Bins: n.part.BinLists(), LeafBase: n.leafBase,
		}
		for _, c := range n.children {
			cs, err := snap(c)
			if err != nil {
				return hnodeSpec{}, err
			}
			ns.Children = append(ns.Children, cs)
		}
		return ns, nil
	}
	root, err := snap(h.root)
	if err != nil {
		return err
	}
	spec.Root = root
	return gob.NewEncoder(w).Encode(spec)
}

// LoadHierarchy reads a hierarchy previously written by SaveHierarchy.
func LoadHierarchy(r io.Reader) (*Hierarchy, error) {
	var spec hierSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decoding hierarchy: %w", err)
	}
	if spec.NumBins == 0 {
		return nil, fmt.Errorf("core: hierarchy snapshot is empty")
	}
	var restore func(ns hnodeSpec, depth int) (*hnode, error)
	restore = func(ns hnodeSpec, depth int) (*hnode, error) {
		model, err := nn.Load(bytes.NewReader(ns.Model), rand.New(rand.NewSource(int64(ns.LeafBase))))
		if err != nil {
			return nil, fmt.Errorf("core: decoding hierarchy model: %w", err)
		}
		part := &Partitioner{Model: model, M: ns.M, Assign: ns.Assign}
		part.setBinLists(ns.Bins)
		n := &hnode{part: part, leafBase: ns.LeafBase}
		for _, cs := range ns.Children {
			c, err := restore(cs, depth+1)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
		}
		return n, nil
	}
	root, err := restore(spec.Root, 0)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		Levels: spec.Levels, NumBins: spec.NumBins, Bins: spec.Bins,
		ProbeTemp: spec.ProbeTemp, root: root,
	}, nil
}

// LoadEnsemble reads an ensemble previously written by SaveEnsemble.
func LoadEnsemble(r io.Reader) (*Ensemble, error) {
	var spec ensembleSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decoding ensemble: %w", err)
	}
	if len(spec.Parts) == 0 {
		return nil, fmt.Errorf("core: ensemble snapshot holds no models")
	}
	e := &Ensemble{}
	for i, ps := range spec.Parts {
		model, err := nn.Load(bytes.NewReader(ps.Model), rand.New(rand.NewSource(int64(i))))
		if err != nil {
			return nil, fmt.Errorf("core: decoding model %d: %w", i, err)
		}
		p := &Partitioner{Model: model, M: ps.M, Assign: ps.Assign}
		p.setBinLists(ps.Bins)
		e.Parts = append(e.Parts, p)
	}
	return e, nil
}
