package usp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// searchIDs returns the result ids of a fresh search.
func searchIDs(t testing.TB, ix *Index, q []float32, k int, opt SearchOptions) []int {
	t.Helper()
	res, err := ix.Search(q, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	return ids
}

func TestDeleteHidesVector(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 71, 2)
	// Row 3 is its own nearest neighbor; delete it and it must vanish from
	// results, candidates, and Len, while other vectors stay findable.
	pre := searchIDs(t, ix, vecs[3], 1, SearchOptions{Probes: 2})
	if len(pre) != 1 || pre[0] != 3 {
		t.Fatalf("pre-delete self query: %v", pre)
	}
	if err := ix.Delete(3); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 599 {
		t.Fatalf("Len after delete = %d", ix.Len())
	}
	for _, opt := range []SearchOptions{
		{Probes: 4},
		{Probes: 4, UnionEnsemble: true},
	} {
		for _, id := range searchIDs(t, ix, vecs[3], 10, opt) {
			if id == 3 {
				t.Fatalf("deleted id returned (%+v)", opt)
			}
		}
		cands, err := ix.CandidateSet(vecs[3], opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range cands {
			if id == 3 {
				t.Fatalf("deleted id in candidate set (%+v)", opt)
			}
		}
	}
	// Double delete and out-of-range ids are errors.
	if err := ix.Delete(3); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := ix.Delete(-1); err == nil {
		t.Fatal("negative id must fail")
	}
	if err := ix.Delete(ix.live.Load().data.N); err == nil {
		t.Fatal("out-of-range id must fail")
	}
}

func TestDeleteAddedVector(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 73, 1)
	nv := append([]float32(nil), vecs[7]...)
	nv[0] += 0.01
	id, err := ix.Add(nv)
	if err != nil {
		t.Fatal(err)
	}
	got := searchIDs(t, ix, nv, 1, SearchOptions{Probes: 2})
	if len(got) != 1 || got[0] != id {
		t.Fatalf("added vector not found: %v", got)
	}
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	for _, r := range searchIDs(t, ix, nv, 5, SearchOptions{Probes: 4}) {
		if r == id {
			t.Fatal("deleted spill id still served")
		}
	}
}

// TestCompactionPreservesResults is the core compaction invariant: folding
// spill lists and tombstones into fresh CSR tables must not change a single
// query result, and afterwards the pending counters are clean.
func TestCompactionPreservesResults(t *testing.T) {
	for _, hier := range []bool{false, true} {
		t.Run(fmt.Sprintf("hier=%v", hier), func(t *testing.T) {
			vecs, _ := clusteredVectors(79, 600, 8, 4)
			opts := Options{Bins: 4, Ensemble: 2, Epochs: 25, Hidden: []int{16}, Seed: 80, CompactAfter: -1}
			if hier {
				opts = Options{Hierarchy: []int{2, 2}, Epochs: 15, Hidden: []int{8}, Seed: 80, CompactAfter: -1}
			}
			ix, err := Build(vecs, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(81))
			// Churn: adds (spill) and deletes (tombstones), interleaved.
			for i := 0; i < 120; i++ {
				nv := append([]float32(nil), vecs[rng.Intn(len(vecs))]...)
				nv[0] += float32(rng.NormFloat64()) * 0.02
				if _, err := ix.Add(nv); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 80; i++ {
				if err := ix.Delete(rng.Intn(600 + 120)); err != nil {
					i-- // collision with an earlier delete; pick again
				}
			}
			lc := ix.Lifecycle()
			if lc.PendingInserts != 120 || lc.Tombstones != 80 {
				t.Fatalf("pre-compaction lifecycle %+v", lc)
			}

			queries := vecs[:60]
			type snap struct{ ids []int }
			before := make([]snap, len(queries))
			for qi, q := range queries {
				before[qi] = snap{ids: searchIDs(t, ix, q, 10, SearchOptions{Probes: 2})}
			}
			ix.Compact()
			lc = ix.Lifecycle()
			if lc.PendingInserts != 0 || lc.Tombstones != 0 || lc.Dead != 80 {
				t.Fatalf("post-compaction lifecycle %+v", lc)
			}
			if ix.Len() != 600+120-80 {
				t.Fatalf("Len after compaction = %d", ix.Len())
			}
			for qi, q := range queries {
				after := searchIDs(t, ix, q, 10, SearchOptions{Probes: 2})
				if len(after) != len(before[qi].ids) {
					t.Fatalf("query %d: %d results after compaction, %d before", qi, len(after), len(before[qi].ids))
				}
				for i := range after {
					if after[i] != before[qi].ids[i] {
						t.Fatalf("query %d result %d changed: %d → %d", qi, i, before[qi].ids[i], after[i])
					}
				}
			}
			// Compaction with nothing pending is a published no-op.
			seq := ix.Lifecycle().Epoch
			ix.Compact()
			if ix.Lifecycle().Epoch != seq {
				t.Fatal("empty compaction should not publish")
			}
		})
	}
}

// TestEpochSnapshotIsolation pins the lifecycle's isolation guarantee: a
// query that resolved an epoch before a delete still sees the old state,
// because epochs are immutable.
func TestEpochSnapshotIsolation(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 83, 1)
	old := ix.live.Load()
	if err := ix.Delete(3); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(vecs[3]); err != nil {
		t.Fatal(err)
	}
	// The historical epoch still contains id 3 and not the new row.
	if old.tombs.Has(3) {
		t.Fatal("old epoch saw the delete")
	}
	if old.data.N != 600 {
		t.Fatalf("old epoch saw the append: N=%d", old.data.N)
	}
	cur := ix.live.Load()
	if !cur.tombs.Has(3) || cur.data.N != 601 {
		t.Fatalf("new epoch missing mutations: tombs=%v N=%d", cur.tombs.Has(3), cur.data.N)
	}
}

// TestAutoCompaction checks the background compactor fires once the
// pending-mutation threshold is crossed and folds the state in.
func TestAutoCompaction(t *testing.T) {
	vecs, _ := clusteredVectors(89, 500, 8, 4)
	ix, err := Build(vecs, Options{
		Bins: 4, Epochs: 20, Hidden: []int{16}, Seed: 90, CompactAfter: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		nv := append([]float32(nil), vecs[i]...)
		nv[0] += 0.01
		if _, err := ix.Add(nv); err != nil {
			t.Fatal(err)
		}
	}
	// The trigger is asynchronous; Compact() blocks behind any in-flight
	// cycle, so after it returns everything pending at its start is folded.
	ix.Compact()
	lc := ix.Lifecycle()
	if lc.PendingInserts != 0 {
		t.Fatalf("pending inserts after compaction: %+v", lc)
	}
	if ix.Len() != 564 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

// TestConcurrentLifecycle is the -race acceptance test: readers hammer
// Search/SearchBatch/CandidateSet lock-free while writers stream Adds and
// Deletes and compactions run both automatically (small CompactAfter) and
// explicitly. Results must stay internally consistent throughout, and the
// final state must reconcile exactly.
func TestConcurrentLifecycle(t *testing.T) {
	vecs, _ := clusteredVectors(97, 600, 8, 4)
	ix, err := Build(vecs, Options{
		Bins: 4, Ensemble: 2, Epochs: 25, Hidden: []int{16}, Seed: 98, CompactAfter: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		readers    = 4
		queriesPer = 120
		adds       = 240
		deletes    = 150
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+3)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := ix.NewSearcher()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < queriesPer; i++ {
				q := vecs[rng.Intn(len(vecs))]
				switch i % 3 {
				case 0:
					res, err := s.Search(q, 5, SearchOptions{Probes: 2})
					if err != nil {
						errs <- err
						return
					}
					for j := 1; j < len(res); j++ {
						if res[j].Distance < res[j-1].Distance {
							errs <- fmt.Errorf("reader %d: unsorted results", r)
							return
						}
					}
				case 1:
					if _, err := ix.SearchBatch(vecs[:8], 3, SearchOptions{Probes: 1}); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := ix.CandidateSet(q, SearchOptions{Probes: 1, UnionEnsemble: true}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() { // writer: adds
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		for i := 0; i < adds; i++ {
			base := vecs[rng.Intn(len(vecs))]
			nv := make([]float32, len(base))
			copy(nv, base)
			nv[0] += float32(rng.NormFloat64()) * 0.01
			if _, err := ix.Add(nv); err != nil {
				errs <- err
				return
			}
		}
	}()

	deleted := make(map[int]bool)
	wg.Add(1)
	go func() { // writer: deletes over the initial id range
		defer wg.Done()
		rng := rand.New(rand.NewSource(1001))
		for len(deleted) < deletes {
			id := rng.Intn(600)
			if deleted[id] {
				continue
			}
			if err := ix.Delete(id); err != nil {
				errs <- err
				return
			}
			deleted[id] = true
		}
	}()

	wg.Add(1)
	go func() { // explicit compactions racing the automatic ones
		defer wg.Done()
		for i := 0; i < 5; i++ {
			ix.Compact()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got, want := ix.Len(), 600+adds-deletes; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// Quiesced: no deleted id may be served, every surviving original and a
	// spot-check of late adds must be reachable with enough probes.
	ix.Compact()
	s := ix.NewSearcher()
	for id := range deleted {
		for _, r := range searchIDs(t, ix, vecs[id], 10, SearchOptions{Probes: 4}) {
			if deleted[r] {
				t.Fatalf("deleted id %d served after quiesce", r)
			}
		}
	}
	hits := 0
	for id := 0; id < 600; id++ {
		if deleted[id] {
			continue
		}
		res, err := s.Search(vecs[id], 1, SearchOptions{Probes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) == 1 && res[0].ID == id && res[0].Distance == 0 {
			hits++
		}
	}
	if hits != 600-deletes {
		t.Fatalf("only %d/%d survivors self-findable", hits, 600-deletes)
	}
}

// TestLockFreeReadsUnderWriterStall would deadlock (and fails fast via
// timeout) if queries ever took the writer lock: a goroutine holds wmu
// while reads proceed.
func TestLockFreeReadsUnderWriterStall(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 101, 1)
	ix.wmu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := ix.Search(vecs[i], 5, SearchOptions{Probes: 2}); err != nil {
				t.Error(err)
				return
			}
			if _, err := ix.CandidateSet(vecs[i], SearchOptions{Probes: 1}); err != nil {
				t.Error(err)
				return
			}
			_ = ix.Len()
			_ = ix.Lifecycle()
		}
	}()
	<-done
	ix.wmu.Unlock()
}

// TestOptionsWithDefaultsPreservesExplicitZeros is the regression test for
// the zero-value clobbering bug: Eta: Float(0) and Dropout: Float(0) must
// survive default resolution, while nil still selects the documented
// defaults.
func TestOptionsWithDefaultsPreservesExplicitZeros(t *testing.T) {
	d := Options{}.withDefaults()
	if *d.Eta != 10 {
		t.Fatalf("default Eta = %v, want 10", *d.Eta)
	}
	if *d.Dropout != 0.1 {
		t.Fatalf("default Dropout = %v, want 0.1 (MLP default)", *d.Dropout)
	}
	if d.Shards != 8 || d.CompactAfter != 1024 {
		t.Fatalf("lifecycle defaults wrong: %+v", d)
	}

	z := Options{Eta: Float(0), Dropout: Float(0)}.withDefaults()
	if *z.Eta != 0 {
		t.Fatalf("explicit Eta=0 rewritten to %v", *z.Eta)
	}
	if *z.Dropout != 0 {
		t.Fatalf("explicit Dropout=0 rewritten to %v", *z.Dropout)
	}

	lg := Options{Logistic: true}.withDefaults()
	if *lg.Dropout != 0 {
		t.Fatalf("logistic Dropout = %v, want 0 (no hidden layers)", *lg.Dropout)
	}
	if neg := (Options{CompactAfter: -1}).withDefaults(); neg.CompactAfter != -1 {
		t.Fatalf("CompactAfter=-1 rewritten to %d", neg.CompactAfter)
	}

	// An explicitly zeroed balance term must actually reach training: the
	// build succeeds and the config carries η = 0.
	if cfg := z.coreConfig(); cfg.Eta != 0 || cfg.Dropout != 0 {
		t.Fatalf("coreConfig lost explicit zeros: %+v", cfg)
	}
}
