// Command uspbench runs the paper-reproduction experiments (every table and
// figure of the evaluation section, plus ablations) and prints their
// reports. See DESIGN.md for the experiment index.
//
// Usage:
//
//	uspbench -exp fig5a                 # one experiment at default scale
//	uspbench -exp all                   # everything
//	uspbench -exp fig5a -sift-n 20000   # scale the SIFT stand-in up
//	uspbench -list                      # list experiment ids
//	uspbench -bench-json BENCH_1.json   # serving benchmark → JSON report
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id, or 'all'")
		benchJSON = flag.String("bench-json", "", "run the serving benchmark and write a JSON report to this path")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		siftN     = flag.Int("sift-n", 0, "override SIFT-like dataset size")
		mnistN    = flag.Int("mnist-n", 0, "override MNIST-like dataset size")
		queries   = flag.Int("queries", 0, "override query count")
		epochs    = flag.Int("epochs", 0, "override training epochs")
		ensemble  = flag.Int("ensemble", 0, "override USP ensemble size")
		seed      = flag.Int64("seed", 0, "override RNG seed")
		quantized = flag.Bool("quantized", false, "with -bench-json: also run the quantized (ADC) serving benchmark")
		quantN    = flag.Int("quant-n", 0, "quantized benchmark row count (default 1000000)")
		rerankK   = flag.Int("rerank-k", 0, "quantized benchmark re-rank depth (0 = engine default, -1 = ADC only)")
		fanout    = flag.Int("fanout", 0, "with -bench-json: also benchmark the sharded serving tier over this many shards (>= 2)")
		verbose   = flag.Bool("v", false, "log per-step progress")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *benchJSON != "" {
		logf := func(string, ...any) {}
		if *verbose {
			logf = log.Printf
		}
		cfg := servingBenchConfig{
			N: *siftN, Queries: *queries, Epochs: *epochs,
			Ensemble: *ensemble, Seed: *seed,
			Quantized: *quantized, QuantN: *quantN, RerankK: *rerankK,
			Fanout: *fanout,
		}
		if err := runServingBench(*benchJSON, cfg, logf); err != nil {
			log.Fatalf("serving benchmark: %v", err)
		}
		if *exp == "" {
			return
		}
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	sc := experiments.DefaultScale()
	if *siftN > 0 {
		sc.SIFTN = *siftN
	}
	if *mnistN > 0 {
		sc.MNISTN = *mnistN
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *epochs > 0 {
		sc.Epochs = *epochs
	}
	if *ensemble > 0 {
		sc.Ensemble = *ensemble
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, sc, logf)
		if err != nil {
			log.Fatalf("experiment %s: %v", id, err)
		}
		fmt.Println(rep.Text)
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
