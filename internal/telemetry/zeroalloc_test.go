package telemetry

import (
	"testing"
	"time"
)

// Recording must be allocation-free: these metrics sit inside the query
// engine's 0 allocs/op steady state, so any allocation here would show up
// as a per-query regression.
func TestRecordingAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("z_total", "", "")
	g := r.Gauge("z_gauge", "", "")
	h := r.Histogram("z_lat_seconds", "", "", NanosToSeconds)
	start := time.Now()

	if a := testing.AllocsPerRun(1000, func() { c.Add(3) }); a != 0 {
		t.Errorf("Counter.Add allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(1000, func() { g.Set(1.25) }); a != 0 {
		t.Errorf("Gauge.Set allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(1000, func() { h.Observe(123_456) }); a != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(1000, func() { h.ObserveDuration(time.Since(start)) }); a != 0 {
		t.Errorf("Histogram.ObserveDuration allocates %v/op", a)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("b_total", "", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("b_lat_seconds", "", "", NanosToSeconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i)*2654435761 + 17)
	}
}
