package vecmath

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

// Cross-implementation equivalence: the SIMD kernels accumulate in a
// different order than the scalar ones and contract multiply-add pairs into
// FMAs, so they are NOT bit-identical to scalar — they agree up to float32
// rounding. These tests bound the divergence with a standard forward error
// model: for a length-n reduction the accumulated rounding error is at most
// ~n·ε times the sum of absolute terms. Within one process only one
// implementation is ever dispatched (dispatch.go), so the bit-identity
// guarantees of the query engine (batch vs single-row inference, cached vs
// query-side norms) are unaffected by the tolerance here.

// equivDims covers the vector-width boundaries of both ports: below one
// lane, exact multiples of the 4/8/16-element block sizes, and every odd
// tail around them.
var equivDims = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33,
	63, 64, 65, 127, 128, 129, 255, 256, 257, 511, 512, 513, 1023, 1024, 1025}

// reductionTol returns the allowed absolute divergence between two float32
// reductions of the given per-term absolute mass.
func reductionTol(n int, absMass float64) float64 {
	const eps = 1.1920929e-7 // 2^-23
	return float64(n+16)*eps*absMass + 1e-12
}

func skewedVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		// Mixed signs and magnitudes spanning ~6 decades, so cancellation
		// and absorption both occur.
		v[i] = float32(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3)))
	}
	return v
}

func TestSIMDDotMatchesScalar(t *testing.T) {
	arch, ok := archKernels()
	if !ok {
		t.Skip("no SIMD kernels on this architecture")
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range equivDims {
		for trial := 0; trial < 20; trial++ {
			a, b := skewedVec(rng, n), skewedVec(rng, n)
			var mass float64
			for i := range a {
				mass += math.Abs(float64(a[i]) * float64(b[i]))
			}
			got := float64(arch.dot(a, b))
			want := float64(dotScalar(a, b))
			if d := math.Abs(got - want); d > reductionTol(n, mass) {
				t.Fatalf("n=%d %s dot=%v scalar=%v |diff|=%v > tol=%v",
					n, arch.name, got, want, d, reductionTol(n, mass))
			}
		}
	}
}

func TestSIMDSquaredL2MatchesScalar(t *testing.T) {
	arch, ok := archKernels()
	if !ok {
		t.Skip("no SIMD kernels on this architecture")
	}
	rng := rand.New(rand.NewSource(12))
	for _, n := range equivDims {
		for trial := 0; trial < 20; trial++ {
			a, b := skewedVec(rng, n), skewedVec(rng, n)
			var mass float64
			for i := range a {
				d := float64(a[i]) - float64(b[i])
				mass += d * d
			}
			got := float64(arch.sqL2(a, b))
			want := float64(squaredL2Scalar(a, b))
			if d := math.Abs(got - want); d > reductionTol(n, mass) {
				t.Fatalf("n=%d %s sqL2=%v scalar=%v |diff|=%v > tol=%v",
					n, arch.name, got, want, d, reductionTol(n, mass))
			}
		}
	}
}

// TestSIMDSquaredL2Exactness pins the properties the engine relies on
// exactly, not just within tolerance: d(a,a) == 0 (subtract-then-square is
// exact for equal inputs, FMA or not) and bitwise symmetry ((-x)² == x²).
func TestSIMDSquaredL2Exactness(t *testing.T) {
	arch, ok := archKernels()
	if !ok {
		t.Skip("no SIMD kernels on this architecture")
	}
	rng := rand.New(rand.NewSource(13))
	for _, n := range equivDims {
		a, b := skewedVec(rng, n), skewedVec(rng, n)
		if d := arch.sqL2(a, a); d != 0 {
			t.Fatalf("n=%d %s d(a,a)=%v, want exactly 0", n, arch.name, d)
		}
		if dab, dba := arch.sqL2(a, b), arch.sqL2(b, a); dab != dba {
			t.Fatalf("n=%d %s asymmetric: %v vs %v", n, arch.name, dab, dba)
		}
	}
}

func TestSIMDAXPYMatchesScalar(t *testing.T) {
	arch, ok := archKernels()
	if !ok {
		t.Skip("no SIMD kernels on this architecture")
	}
	rng := rand.New(rand.NewSource(14))
	const eps = 1.1920929e-7
	for _, n := range equivDims {
		for _, alpha := range []float32{0, 1, -1, 0.37, -2.5e3} {
			x := skewedVec(rng, n)
			y1 := skewedVec(rng, n)
			y2 := append([]float32(nil), y1...)
			axpyScalar(alpha, x, y1)
			arch.axpy(alpha, x, y2)
			// AXPY is elementwise: the only divergence is one FMA
			// contraction per element.
			for i := range y1 {
				tol := 4*eps*(math.Abs(float64(y1[i]))+math.Abs(float64(alpha)*float64(x[i]))) + 1e-12
				if d := math.Abs(float64(y1[i]) - float64(y2[i])); d > tol {
					t.Fatalf("n=%d alpha=%v %s y[%d]=%v scalar=%v |diff|=%v > tol=%v",
						n, alpha, arch.name, i, y2[i], y1[i], d, tol)
				}
			}
		}
	}
}

// TestSIMDLUTSumMatchesScalar drives the ADC gather kernel across subspace
// counts covering every vector-block boundary and the full range of table
// widths (k=1 degenerate rows through k=256, the uint8 code ceiling), with
// random in-range codes. The AVX2 port reduces 8 gathered lanes in a
// different order than the scalar 4-way unroll, so the shared forward-error
// tolerance applies (the NEON port matches scalar accumulation exactly, and
// passes trivially).
func TestSIMDLUTSumMatchesScalar(t *testing.T) {
	arch, ok := archKernels()
	if !ok {
		t.Skip("no SIMD kernels on this architecture")
	}
	rng := rand.New(rand.NewSource(17))
	for _, m := range equivDims {
		for _, k := range []int{1, 3, 4, 16, 255, 256} {
			for trial := 0; trial < 5; trial++ {
				lut := skewedVec(rng, m*k)
				code := make([]uint8, m)
				for i := range code {
					code[i] = uint8(rng.Intn(k))
				}
				var mass float64
				for s, c := range code {
					mass += math.Abs(float64(lut[s*k+int(c)]))
				}
				got := float64(arch.lutSum(lut, k, code))
				want := float64(lutSumScalar(lut, k, code))
				if d := math.Abs(got - want); d > reductionTol(m, mass) {
					t.Fatalf("m=%d k=%d %s lutSum=%v scalar=%v |diff|=%v > tol=%v",
						m, k, arch.name, got, want, d, reductionTol(m, mass))
				}
			}
		}
	}
}

// TestSIMDLUTSumUnalignedSlices walks the gather kernel across every
// byte-level misalignment of both the table and the code slice.
func TestSIMDLUTSumUnalignedSlices(t *testing.T) {
	arch, ok := archKernels()
	if !ok {
		t.Skip("no SIMD kernels on this architecture")
	}
	rng := rand.New(rand.NewSource(18))
	const m, k = 33, 16
	lutBacking := skewedVec(rng, m*k+16)
	codeBacking := make([]uint8, m+16)
	for i := range codeBacking {
		codeBacking[i] = uint8(rng.Intn(k))
	}
	for off := 0; off < 16; off++ {
		lut := lutBacking[off : off+m*k]
		code := codeBacking[off : off+m]
		var mass float64
		for s, c := range code {
			mass += math.Abs(float64(lut[s*k+int(c)]))
		}
		got := float64(arch.lutSum(lut, k, code))
		want := float64(lutSumScalar(lut, k, code))
		if d := math.Abs(got - want); d > reductionTol(m, mass) {
			t.Fatalf("offset %d: lutSum=%v scalar=%v", off, got, want)
		}
	}
}

// TestSIMDUnalignedSlices drives the assembly through every possible slice
// misalignment (the kernels must use unaligned loads — Go slices carry no
// alignment guarantee beyond the element size).
func TestSIMDUnalignedSlices(t *testing.T) {
	arch, ok := archKernels()
	if !ok {
		t.Skip("no SIMD kernels on this architecture")
	}
	rng := rand.New(rand.NewSource(15))
	backing := skewedVec(rng, 256)
	for off := 0; off < 16; off++ {
		a := backing[off : off+100]
		b := backing[off+101 : off+201]
		var mass float64
		for i := range a {
			mass += math.Abs(float64(a[i]) * float64(b[i]))
		}
		got := float64(arch.dot(a, b))
		want := float64(dotScalar(a, b))
		if d := math.Abs(got - want); d > reductionTol(100, mass) {
			t.Fatalf("offset %d: dot=%v scalar=%v", off, got, want)
		}
	}
}

// TestDispatchHonorsForceScalar pins the env override contract: when
// USP_FORCE_SCALAR is set the process must be running the scalar kernels
// (this is what the forced-scalar CI leg asserts); when it is not set, a
// SIMD-capable host must have selected its assembly port.
func TestDispatchHonorsForceScalar(t *testing.T) {
	if os.Getenv(ForceScalarEnv) != "" {
		if Impl() != "scalar" {
			t.Fatalf("%s set but Impl() = %q", ForceScalarEnv, Impl())
		}
		return
	}
	if arch, ok := archKernels(); ok && Impl() != arch.name {
		t.Fatalf("SIMD kernels available (%s) but Impl() = %q", arch.name, Impl())
	}
}

// TestPublicKernelsUseActiveImpl asserts the public wrappers and the raw
// active kernel set agree bitwise — i.e. the wrappers add bounds adaptation
// only, no arithmetic.
func TestPublicKernelsUseActiveImpl(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a, b := skewedVec(rng, 129), skewedVec(rng, 129)
	if Dot(a, b) != active.dot(a, b) {
		t.Fatal("Dot does not match active kernel")
	}
	if SquaredL2(a, b) != active.sqL2(a, b) {
		t.Fatal("SquaredL2 does not match active kernel")
	}
	y1 := append([]float32(nil), b...)
	y2 := append([]float32(nil), b...)
	AXPY(0.5, a, y1)
	active.axpy(0.5, a, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("AXPY diverges from active kernel at %d", i)
		}
	}
	const k = 8
	lut := skewedVec(rng, 12*k)
	code := make([]uint8, 12)
	for i := range code {
		code[i] = uint8(rng.Intn(k))
	}
	if LUTSum(lut, k, code) != active.lutSum(lut, k, code) {
		t.Fatal("LUTSum does not match active kernel")
	}
}
