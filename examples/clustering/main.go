// Clustering: the paper's §5.5 claim that the unsupervised partitioner is a
// general clustering method. Reproduces the Table 5 comparison on the
// scikit-learn toys (moons, circles, 4-blob classification) against
// K-means, DBSCAN, and spectral clustering, scoring each with the Adjusted
// Rand Index against the generating labels, and renders the USP assignment
// of the moons dataset as ASCII art.
package main

import (
	"fmt"
	"log"
	"math/rand"

	usp "repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/kmeans"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	toys := []struct {
		name   string
		data   *dataset.Labeled
		k      int
		eps    float64
		minPts int
	}{
		{"moons", dataset.Moons(400, 0.04, rng), 2, 0.18, 5},
		{"circles", dataset.Circles(400, 0.5, 0.02, rng), 2, 0.15, 4},
		{"blobs4", dataset.Classification4(400, rng), 4, 0.3, 5},
	}

	fmt.Printf("%-10s %-12s %8s\n", "dataset", "method", "ARI")
	var moonLabels []int
	for _, toy := range toys {
		uspLabels, err := usp.Cluster(toy.data.Rows(), toy.k, usp.Options{
			Epochs: 150, Hidden: []int{32}, Seed: 5, KPrime: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		if toy.name == "moons" {
			moonLabels = uspLabels
		}
		km, err := kmeans.Run(toy.data.Dataset, toy.k, kmeans.Options{Seed: 5, Restarts: 5})
		if err != nil {
			log.Fatal(err)
		}
		kmLabels := make([]int, toy.data.N)
		for i, a := range km.Assign {
			kmLabels[i] = int(a)
		}
		db := cluster.DBSCAN(toy.data.Dataset, toy.eps, toy.minPts)
		sp, err := cluster.Spectral(toy.data.Dataset, cluster.SpectralConfig{
			K: toy.k, Neighbors: 10, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []struct {
			name   string
			labels []int
		}{
			{"USP", uspLabels}, {"K-means", kmLabels}, {"DBSCAN", db}, {"Spectral", sp},
		} {
			fmt.Printf("%-10s %-12s %8.3f\n", toy.name, m.name,
				cluster.ARI(m.labels, toy.data.Labels))
		}
	}

	// ASCII rendering of the learned moons partition (the paper's Table 5
	// shows the same thing as scatter plots).
	fmt.Println("\nUSP partition of the moons dataset:")
	moons := toys[0].data
	const W, H = 64, 20
	grid := make([][]byte, H)
	for r := range grid {
		grid[r] = make([]byte, W)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	var minX, maxX, minY, maxY float32 = 1e9, -1e9, 1e9, -1e9
	for i := 0; i < moons.N; i++ {
		x, y := moons.Row(i)[0], moons.Row(i)[1]
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	glyphs := []byte{'o', '#'}
	for i := 0; i < moons.N; i++ {
		x, y := moons.Row(i)[0], moons.Row(i)[1]
		c := int(float32(W-1) * (x - minX) / (maxX - minX))
		r := int(float32(H-1) * (maxY - y) / (maxY - minY))
		grid[r][c] = glyphs[moonLabels[i]%2]
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
