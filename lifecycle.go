package usp

// The index lifecycle: epoch-snapshotted reads, sharded mutation staging,
// tombstoned deletes, and background compaction.
//
// Every query resolves one *epoch — an immutable bundle of (dataset view,
// lookup tables, pending-insert spill lists, tombstone bitmap) — via a
// single atomic pointer load, and touches nothing else. Writers construct a
// successor epoch that shares all unchanged storage with its predecessor
// (copy-on-write at the slice-header level) and publish it with an atomic
// store; the store's release ordering makes every byte the writer staged
// visible to readers that load the new epoch, while readers still holding
// an older epoch keep a consistent historical view. That is the whole
// synchronization story for the read path: no RWMutex, no reader-side
// atomics beyond the one load, full snapshot isolation.
//
// Mutation state is sharded: pending inserts land in the spill slot table
// of shard id%S, so publishing after Add copies only that shard's slot
// headers (the other S−1 shards are shared structurally) and the compactor
// can treat shards as independent merge inputs. The dataset itself grows
// in place — epochs hold length-capped views, so rows appended after an
// epoch was published are invisible to it even when the backing array is
// shared.
//
// Compaction folds the spill lists and tombstones of a snapshot back into
// contiguous CSR tables. The merge runs against the immutable snapshot with
// no locks held — it is pure id-list surgery and never touches vector
// data — and only the final swap (carrying over mutations that raced the
// merge) briefly takes the writer lock.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/quant"
)

// epoch is one immutable, atomically published snapshot of the index. All
// fields, and everything reachable from them, are frozen: readers use an
// epoch without synchronization for as long as they hold it.
type epoch struct {
	seq  uint64
	data *dataset.Dataset // length-capped view of the row storage
	ens  *core.Ensemble   // exactly one of ens/hier is non-nil
	hier *core.Hierarchy
	// spill holds ids routed in by Add since the tables above were built
	// (nil when none are pending); probes scan it after the CSR ranges.
	spill *spillSet
	// tombs marks ids deleted since the last compaction (nil when none).
	// Candidate scans filter against it; compaction folds it away.
	tombs *bitset.Set
	// deadSet accumulates every id ever removed from the lookup tables by
	// compaction (their dataset rows remain so ids stay stable). Queries
	// never consult it — dead ids are in no bin list — but Delete uses it
	// to reject re-deletes, and snapshots persist it so a loaded index
	// keeps rejecting them too.
	deadSet *bitset.Set
	// quant is the epoch's quantized view (nil on float-only indexes):
	// the trained codebooks plus a length-capped slice of the flat code
	// buffer, frozen the same way data is.
	quant *quantView
}

// quantView is an epoch's immutable quantization snapshot.
type quantView struct {
	pq    *quant.PQ
	codes []uint8 // length- and capacity-capped at N*Subspaces
	// tight means the float rows were dropped: queries must serve
	// pure-ADC results and never touch ep.data.Data.
	tight bool
}

// dead counts rows removed from the lookup tables by past compactions.
func (ep *epoch) dead() int { return ep.deadSet.Count() }

// spillSet is an epoch's view of the per-shard pending-insert state. It
// implements core.ExtraBins: slot (member, bin) of every shard is scanned
// after the bin's CSR range, in shard order — the same order compaction
// and serialization merge in, which keeps all three views bit-identical.
type spillSet struct {
	perMember int
	shards    []spillShard
	total     int // pending inserts (each id occupies one slot per member)
}

// spillShard is one shard's slot table: slots[member*perMember+bin] lists
// the ids this shard staged for that bin, in insertion order.
type spillShard struct {
	slots [][]int32
}

// AppendExtra implements core.ExtraBins.
func (sp *spillSet) AppendExtra(dst []int32, member, bin int) []int32 {
	slot := member*sp.perMember + bin
	for i := range sp.shards {
		dst = append(dst, sp.shards[i].slots[slot]...)
	}
	return dst
}

// extra returns the epoch's spill as a core.ExtraBins, or a nil interface
// when nothing is pending (a typed-nil interface would defeat the == nil
// fast path in core).
func (ep *epoch) extra() core.ExtraBins {
	if ep.spill == nil {
		return nil
	}
	return ep.spill
}

// newIndex assembles a servable Index around trained structures and
// publishes its first epoch. seq/tombs/deadSet restore a snapshot's
// lifecycle state; Build passes 0/nil/nil. pq/codes carry the quantized
// state (nil/nil for float-only indexes).
func newIndex(ds *dataset.Dataset, ens *core.Ensemble, hier *core.Hierarchy,
	opt Options, stats BuildStats, seq uint64, tombs, deadSet *bitset.Set,
	pq *quant.PQ, codes []uint8) *Index {

	ix := &Index{dim: ds.Dim, opt: opt, stats: stats, data: ds,
		pq: pq, codes: codes, qTrainedN: ds.N}
	if hier != nil {
		ix.members, ix.slotsPerMember = 1, hier.NumBins
	} else {
		ix.members, ix.slotsPerMember = ens.Size(), ens.Parts[0].M
	}
	ix.shards = make([]spillShard, opt.Shards)
	for i := range ix.shards {
		ix.shards[i].slots = make([][]int32, ix.members*ix.slotsPerMember)
	}
	ix.tel = newIndexMetrics(ix)
	ix.publish(&epoch{
		seq: seq, data: ix.frozenView(), ens: ens, hier: hier,
		tombs: tombs, deadSet: deadSet, quant: ix.quantSnapshot(ds.N),
	})
	return ix
}

// frozenView returns an immutable snapshot header over the current rows.
// The backing arrays are shared with the growing dataset; the view's
// length caps (and capacity caps, so no append can alias through it) make
// rows added later invisible. In memory-tight mode the float storage and
// norm cache are gone — the view keeps the row count (bin tables and ADC
// codes still reference every id) with nil payloads. Callers must hold
// wmu or be the only writer.
func (ix *Index) frozenView() *dataset.Dataset {
	n := ix.data.N
	v := &dataset.Dataset{N: n, Dim: ix.dim}
	if ix.data.Data != nil {
		v.Data = ix.data.Data[: n*ix.dim : n*ix.dim]
	}
	if ix.data.SqNorms != nil {
		v.SqNorms = ix.data.SqNorms[:n:n]
	}
	return v
}

// quantSnapshot freezes the quantization state for publication with a
// length-capped view over the first n rows' codes. Callers must hold wmu
// or be the only writer.
func (ix *Index) quantSnapshot(n int) *quantView {
	if ix.pq == nil {
		return nil
	}
	m := ix.pq.Subspaces
	return &quantView{pq: ix.pq, codes: ix.codes[: n*m : n*m], tight: ix.qtight}
}

// spillSnapshot freezes the current per-shard spill state for publication.
// Callers must hold wmu.
func (ix *Index) spillSnapshot(total int) *spillSet {
	if total == 0 {
		return nil
	}
	shards := make([]spillShard, len(ix.shards))
	copy(shards, ix.shards)
	return &spillSet{perMember: ix.slotsPerMember, shards: shards, total: total}
}

// Add inserts a new vector into the index without retraining: the trained
// model routes it to its most probable bin(s), the same decision rule
// queries use, so it is immediately findable — the publishing store makes
// it visible to every query that starts afterwards. Returns the new
// vector's id. Safe to call concurrently with queries, Delete, and
// compaction. Heavy drift from the training distribution degrades
// partition quality; rebuild periodically under churn.
func (ix *Index) Add(vec []float32) (int, error) {
	if len(vec) != ix.dim {
		return 0, fmt.Errorf("%w: vector dim %d, index dim %d", ErrInvalid, len(vec), ix.dim)
	}
	// Route before taking the writer lock: the trained models are immutable,
	// so the forward passes need no exclusivity. Only the appends (dataset
	// row, spill slots) and the epoch publication run under the lock,
	// keeping concurrent mutators unblocked during inference. A pooled
	// Searcher's scratch backs the forward passes, so a sustained Add
	// stream allocates only the appended storage and the epoch header.
	s := ix.getSearcher()
	defer ix.putSearcher(s)
	prev := ix.live.Load()
	if prev.quant != nil && prev.quant.tight {
		return 0, errors.New("usp: Add is unavailable in memory-tight mode (float rows were dropped)")
	}
	var leaf int
	if prev.hier != nil {
		leaf = prev.hier.RouteLeafWith(&s.qs, vec)
	} else {
		s.routeBins = prev.ens.RouteBinsWith(&s.qs, vec, s.routeBins[:0])
	}
	// Encode outside the lock too: the code depends only on the codebooks,
	// not the assigned id. If a compaction retrains the codebooks between
	// here and the locked append (rare), re-encode under the lock.
	var codedWith *quant.PQ
	if qv := prev.quant; qv != nil {
		codedWith = qv.pq
		s.codeBuf = qv.pq.AppendCode(s.codeBuf[:0], vec)
	}

	ix.wmu.Lock()
	prev = ix.live.Load() // re-resolve under the lock: models are shared anyway
	if prev.quant != nil && prev.quant.tight {
		ix.wmu.Unlock()
		return 0, errors.New("usp: Add is unavailable in memory-tight mode (float rows were dropped)")
	}
	id := ix.data.N
	ix.data.Append(vec)
	if ix.pq != nil {
		if ix.pq != codedWith {
			s.codeBuf = ix.pq.AppendCode(s.codeBuf[:0], vec)
		}
		ix.codes = append(ix.codes, s.codeBuf...)
	}

	// Copy-on-write the touched shard's slot table; published epochs keep
	// the old headers. Appending to an inner slice is safe even when it
	// grows in place: older epochs hold shorter length caps.
	sh := id % len(ix.shards)
	slots := make([][]int32, len(ix.shards[sh].slots))
	copy(slots, ix.shards[sh].slots)
	if prev.hier != nil {
		slots[leaf] = append(slots[leaf], int32(id))
	} else {
		for m, b := range s.routeBins {
			slot := m*ix.slotsPerMember + b
			slots[slot] = append(slots[slot], int32(id))
		}
	}
	ix.shards[sh] = spillShard{slots: slots}

	total := 0
	if prev.spill != nil {
		total = prev.spill.total
	}
	ix.publish(&epoch{
		seq: prev.seq + 1, data: ix.frozenView(), ens: prev.ens, hier: prev.hier,
		spill: ix.spillSnapshot(total + 1), tombs: prev.tombs, deadSet: prev.deadSet,
		quant: ix.quantSnapshot(ix.data.N),
	})
	ix.pendingOps.Add(1)
	ix.wmu.Unlock()
	ix.tel.adds.Inc()

	ix.maybeCompact()
	return id, nil
}

// Delete tombstones the vector with the given id: it stops appearing in
// any query result immediately (queries that already resolved an older
// epoch still see it — snapshot isolation), and the next compaction
// removes it from the lookup tables. The dataset row is retained so ids
// stay stable. Deleting an unknown or already-deleted id is an error.
// Safe to call concurrently with queries, Add, and compaction.
func (ix *Index) Delete(id int) error {
	ix.wmu.Lock()
	if id < 0 || id >= ix.data.N {
		ix.wmu.Unlock()
		return fmt.Errorf("%w: delete id %d out of range [0, %d)", ErrNotFound, id, ix.data.N)
	}
	prev := ix.live.Load()
	if prev.tombs.Has(id) || prev.deadSet.Has(id) {
		ix.wmu.Unlock()
		return fmt.Errorf("%w: id %d already deleted", ErrNotFound, id)
	}
	ix.publish(&epoch{
		seq: prev.seq + 1, data: prev.data, ens: prev.ens, hier: prev.hier,
		spill: prev.spill, tombs: prev.tombs.With(id), deadSet: prev.deadSet,
		quant: prev.quant,
	})
	ix.pendingOps.Add(1)
	ix.wmu.Unlock()
	ix.tel.deletes.Inc()

	ix.maybeCompact()
	return nil
}

// Compact synchronously folds pending inserts and tombstones into fresh
// contiguous CSR tables and publishes the compacted epoch. Queries and
// mutations proceed concurrently throughout: the merge works on an
// immutable snapshot with no locks held, and only the final bookkeeping
// (carrying over mutations that raced the merge) runs under the writer
// lock. Compaction never moves surviving ids — results before and after
// are identical. It is a no-op when nothing is pending.
func (ix *Index) Compact() {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()
	ix.compactOnce()
}

// compactOnce performs one compaction cycle. Callers must hold compactMu.
func (ix *Index) compactOnce() {
	start := time.Now()
	snap := ix.live.Load()
	if snap.spill == nil && snap.tombs.Count() == 0 {
		ix.tel.compactionNoops.Inc()
		return
	}

	// Heavy phase, lock-free: merge the snapshot's spill and tombstones
	// into fresh tables. The snapshot is immutable, so concurrent Add and
	// Delete cannot disturb the merge; their effects are carried over in
	// the swap phase below.
	var mergedEns *core.Ensemble
	var mergedHier *core.Hierarchy
	if snap.hier != nil {
		mergedHier = snap.hier.Rebuild(snap.extra(), snap.tombs)
	} else {
		mergedEns = snap.ens.Rebuild(snap.data.N, snap.extra(), snap.tombs)
	}
	// Retrain codebooks in the same lock-free phase when the dataset has
	// grown enough that build-time centroids misrepresent the data. Only
	// compactOnce ever writes pq/qTrainedN (compactMu is held), so reading
	// them here without wmu is safe. Memory-tight indexes have no floats
	// to retrain from.
	newPQ, newCodes := ix.maybeRetrainQuant(snap)

	ix.wmu.Lock()
	cur := ix.live.Load()
	if newPQ != nil {
		// Rows appended while we retrained were encoded with the old
		// codebooks; re-encode them before the swap makes newPQ live.
		for id := snap.data.N; id < ix.data.N; id++ {
			newCodes = newPQ.AppendCode(newCodes, ix.data.Row(id))
		}
		ix.pq, ix.codes, ix.qTrainedN = newPQ, newCodes, snap.data.N
	}
	// Spill entries staged after the snapshot stay pending: slice each
	// slot past the snapshot's length. The remainders share backing arrays
	// with the live slots, which is safe — writers only ever append past
	// every published length cap.
	shards := make([]spillShard, len(ix.shards))
	for si := range ix.shards {
		curSlots := ix.shards[si].slots
		slots := make([][]int32, len(curSlots))
		for slot := range curSlots {
			snapLen := 0
			if snap.spill != nil {
				snapLen = len(snap.spill.shards[si].slots[slot])
			}
			if rem := curSlots[slot][snapLen:]; len(rem) > 0 {
				slots[slot] = rem
			}
		}
		shards[si] = spillShard{slots: slots}
	}
	ix.shards = shards
	remAdds := cur.data.N - snap.data.N // every id ≥ snap rows arrived mid-merge
	remTombs := bitset.Diff(cur.tombs, snap.tombs)
	ix.pendingOps.Store(int64(remAdds + remTombs.Count()))
	ix.publish(&epoch{
		seq: cur.seq + 1, data: ix.frozenView(), ens: mergedEns, hier: mergedHier,
		spill: ix.spillSnapshot(remAdds), tombs: remTombs,
		deadSet: bitset.Union(cur.deadSet, snap.tombs),
		quant:   ix.quantSnapshot(ix.data.N),
	})
	ix.wmu.Unlock()
	ix.tel.compactions.Inc()
	ix.tel.compactionLatency.ObserveDuration(time.Since(start))
}

// maybeRetrainQuant decides whether this compaction should refresh the PQ
// codebooks and, if so, trains them on the immutable snapshot and encodes
// all of its rows — the expensive part, done with no locks held. Callers
// must hold compactMu (the only writer of pq/qTrainedN).
func (ix *Index) maybeRetrainQuant(snap *epoch) (*quant.PQ, []uint8) {
	qv := snap.quant
	q := ix.opt.Quantize
	if qv == nil || qv.tight || q.RetrainGrowth < 0 {
		return nil, nil
	}
	grown := snap.data.N - ix.qTrainedN
	if float64(grown) < q.RetrainGrowth*float64(ix.qTrainedN) {
		return nil, nil
	}
	pq, codes, err := trainQuantizer(snap.data, q, ix.opt.Seed+int64(snap.seq), ix.opt.Logf)
	if err != nil {
		// Training can only fail on degenerate data shapes; keep serving
		// the old codebooks rather than failing the compaction.
		if ix.opt.Logf != nil {
			ix.opt.Logf("usp: codebook retrain skipped: %v", err)
		}
		return nil, nil
	}
	return pq, codes
}

// DropFloats switches a quantized index into memory-tight mode: the float
// rows and norm cache are released (≈4·dim bytes/vector reclaimed, leaving
// ~Subspaces bytes/vector of codes), and every subsequent query serves
// pure-ADC results — RerankK is ignored since there is nothing to re-rank
// against. The switch is one-way and trades recall for memory. Add and
// Save return errors afterwards (they need the float rows); Delete,
// Compact and queries keep working. Safe to call concurrently with
// everything; returns an error on float-only indexes.
func (ix *Index) DropFloats() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	if ix.pq == nil {
		return errors.New("usp: DropFloats requires a quantized index (Options.Quantize)")
	}
	if ix.qtight {
		return nil // already tight
	}
	ix.qtight = true
	ix.data.Data = nil
	ix.data.SqNorms = nil
	prev := ix.live.Load()
	ix.publish(&epoch{
		seq: prev.seq + 1, data: ix.frozenView(), ens: prev.ens, hier: prev.hier,
		spill: prev.spill, tombs: prev.tombs, deadSet: prev.deadSet,
		quant: ix.quantSnapshot(ix.data.N),
	})
	return nil
}

// maybeCompact spawns a background compaction when enough mutations are
// pending and none is already queued.
func (ix *Index) maybeCompact() {
	if ix.opt.CompactAfter < 0 || ix.pendingOps.Load() < int64(ix.opt.CompactAfter) {
		return
	}
	if !ix.compactQueued.CompareAndSwap(false, true) {
		return
	}
	go func() {
		ix.compactMu.Lock()
		defer ix.compactMu.Unlock()
		defer ix.compactQueued.Store(false)
		ix.compactOnce()
	}()
}

// LifecycleStats reports the state of the mutation lifecycle at one epoch.
type LifecycleStats struct {
	// Epoch is the published epoch's sequence number (one publication per
	// Add, Delete, or compaction).
	Epoch uint64 `json:"epoch"`
	// Rows is the number of dataset rows, including deleted ones (ids are
	// stable, so rows are never renumbered).
	Rows int `json:"rows"`
	// Live is Rows minus every deletion — the Len of the index.
	Live int `json:"live"`
	// PendingInserts counts ids still served from spill lists (not yet
	// folded into the CSR tables).
	PendingInserts int `json:"pending_inserts"`
	// Tombstones counts deletions not yet folded away by compaction.
	Tombstones int `json:"tombstones"`
	// Dead counts rows removed from the lookup tables by past compactions.
	Dead int `json:"dead"`
}

// Lifecycle returns a consistent snapshot of the lifecycle counters.
// Lock-free.
func (ix *Index) Lifecycle() LifecycleStats {
	ep := ix.live.Load()
	pending := 0
	if ep.spill != nil {
		pending = ep.spill.total
	}
	return LifecycleStats{
		Epoch:          ep.seq,
		Rows:           ep.data.N,
		Live:           ep.data.N - ep.dead() - ep.tombs.Count(),
		PendingInserts: pending,
		Tombstones:     ep.tombs.Count(),
		Dead:           ep.dead(),
	}
}
