package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets: log-linear over uint64 values, the HdrHistogram
// scheme reduced to its atomic essentials. Values below 2^histMinExp get
// one exact bucket each; above that, every power-of-two octave is split
// into 2^histSubBits equal sub-buckets, so the relative quantization error
// is bounded by 2^-histSubBits = 6.25% everywhere. The whole structure is
// one fixed array of atomic counters: recording is a single uncontended
// atomic add at a computed index, histograms merge by bucket-wise addition,
// and quantiles come from a cumulative walk with linear interpolation
// inside the landing bucket.
const (
	histMinExp  = 4 // values < 2^4 = 16 are exact
	histSubBits = 4
	histSub     = 1 << histSubBits
	// Exponents histMinExp..63 each contribute histSub buckets, after the
	// 2^histMinExp exact low buckets. 16 + 60*16 = 976 buckets ≈ 7.8 KB.
	histNumBuckets = histSub + (64-histMinExp)*histSub
)

// bucketIndex maps a recorded value to its bucket. For v < 16 the index is
// v itself; otherwise the octave (bit length) selects a 16-bucket block and
// the 4 bits after the leading one select the sub-bucket. Monotone in v.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // histMinExp..63
	m := int((v >> (uint(e) - histSubBits)) & (histSub - 1))
	return histSub + (e-histMinExp)*histSub + m
}

// bucketBounds returns bucket i's value range [lo, hi). The last bucket's
// hi saturates at MaxUint64 (its true upper bound, 2^64, is unrepresentable).
func bucketBounds(i int) (lo, hi uint64) {
	if i < histSub {
		return uint64(i), uint64(i) + 1
	}
	e := histMinExp + (i-histSub)/histSub
	m := uint64((i - histSub) % histSub)
	width := uint64(1) << (uint(e) - histSubBits)
	lo = 1<<uint(e) + m*width
	if hi = lo + width; hi < lo { // 2^64 overflowed
		hi = math.MaxUint64
	}
	return lo, hi
}

// Histogram is a lock-free log-bucketed histogram of uint64 observations
// (typically nanosecond durations). Observe is one atomic add per field —
// no locks, no allocation — and is safe for any number of concurrent
// writers. Reads (Quantile, exposition) take per-bucket atomic snapshots
// and may be slightly stale under concurrent writes, never blocking them.
//
// The zero Histogram is NOT usable; construct with NewHistogram or register
// through a Registry.
type Histogram struct {
	d       desc
	scale   float64 // recorded units → exported units at exposition
	count   atomic.Uint64
	sum     atomic.Uint64 // sum of recorded values, in recorded units
	buckets [histNumBuckets]atomic.Uint64
}

// NewHistogram returns an unregistered histogram — for callers that want
// percentile tracking without exposition (uspbench, uspquery). scale is
// only used if the histogram is later exposed; NanosToSeconds fits
// duration recording.
func NewHistogram(name, labels, help string, scale float64) *Histogram {
	return newHistogram(desc{name: name, labels: labels, help: help}, scale)
}

func newHistogram(d desc, scale float64) *Histogram {
	if scale <= 0 {
		scale = 1
	}
	return &Histogram{d: d, scale: scale}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values, in recorded units.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Merge adds o's observations into h — the fan-in step for per-worker
// histograms (each goroutine records into its own, contention-free, and the
// coordinator merges). o keeps its counts; h and o may be recorded into
// concurrently, with the usual snapshot-staleness caveat.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// load copies the bucket array. Individual loads are atomic; the array as a
// whole is a monitoring-grade snapshot, not a linearizable one.
func (h *Histogram) load() (bkts [histNumBuckets]uint64, total uint64) {
	for i := range h.buckets {
		bkts[i] = h.buckets[i].Load()
		total += bkts[i]
	}
	return bkts, total
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) of the
// recorded values, in recorded units, with relative error bounded by the
// bucket width (6.25%) plus interpolation. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	bkts, total := h.load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, n := range bkts {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(n)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += n
	}
	// Unreachable: rank ≤ total and the loop covers every count.
	return 0
}

func (h *Histogram) meta() desc   { return h.d }
func (h *Histogram) kind() string { return "histogram" }

// writeSamples emits the Prometheus histogram series: cumulative _bucket
// lines at every octave boundary spanning the observed range (a compact,
// data-driven ladder ≤ 61 lines instead of one per internal bucket), then
// the mandatory +Inf, _sum, and _count.
func (h *Histogram) writeSamples(b []byte) []byte {
	bkts, total := h.load()
	if total > 0 {
		first, last := -1, -1
		for i, n := range bkts {
			if n > 0 {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		// Walk to the end of the octave containing the last observation, so
		// every sample sits under at least one finite le bound.
		end := (last/histSub+1)*histSub - 1
		var cum uint64
		for i := 0; i <= end; i++ {
			cum += bkts[i]
			// Octave upper boundaries sit after bucket 15, 31, 47, ... —
			// every histSub-th index ends an octave (the linear range is
			// one octave too: its boundary is 16 = 2^histMinExp).
			if (i+1)%histSub != 0 || i < first {
				continue
			}
			_, hi := bucketBounds(i)
			le := formatFloat(float64(hi) * h.scale)
			b = appendSample(b, h.d.name+"_bucket", joinLabels(h.d.labels, `le="`+le+`"`), formatUint(cum))
		}
	}
	b = appendSample(b, h.d.name+"_bucket", joinLabels(h.d.labels, `le="+Inf"`), formatUint(total))
	b = appendSample(b, h.d.name+"_sum", h.d.labels, formatFloat(float64(h.sum.Load())*h.scale))
	b = appendSample(b, h.d.name+"_count", h.d.labels, formatUint(total))
	return b
}

// jsonValue summarizes the histogram as count/sum plus the operational
// quantiles, all in exported units.
func (h *Histogram) jsonValue() any {
	return map[string]any{
		"count": h.Count(),
		"sum":   float64(h.Sum()) * h.scale,
		"p50":   h.Quantile(0.50) * h.scale,
		"p95":   h.Quantile(0.95) * h.scale,
		"p99":   h.Quantile(0.99) * h.scale,
	}
}
