package usp

import (
	"time"

	"repro/internal/telemetry"
)

// indexMetrics is the per-index telemetry surface. Every Index owns one:
// query-path counters and the latency histogram are recorded by Searchers
// (a handful of atomic adds per query, allocation-free), lifecycle counters
// by the mutation path, and the gauges are polled from the live epoch at
// exposition time so they cost nothing between scrapes.
type indexMetrics struct {
	reg *telemetry.Registry

	// Query path (recorded in Searcher.SearchInto).
	queries           *telemetry.Counter
	queryErrors       *telemetry.Counter
	queryLatency      *telemetry.Histogram
	candidates        *telemetry.Counter
	binsProbed        *telemetry.Counter
	tombstonesSkipped *telemetry.Counter

	// Lifecycle (recorded in Add/Delete/compaction/publish).
	adds              *telemetry.Counter
	deletes           *telemetry.Counter
	epochPublishes    *telemetry.Counter
	compactions       *telemetry.Counter
	compactionNoops   *telemetry.Counter
	compactionLatency *telemetry.Histogram

	// Quantized query path (recorded only when the epoch carries codes).
	adcQueries       *telemetry.Counter
	rerankCandidates *telemetry.Counter
}

// newIndexMetrics builds the registry for ix. The gauge closures read the
// atomically published epoch, so polling them is lock-free and safe
// concurrently with everything; they must not be polled before the first
// epoch is published (newIndex publishes before returning).
func newIndexMetrics(ix *Index) *indexMetrics {
	reg := telemetry.NewRegistry()
	m := &indexMetrics{
		reg: reg,
		queries: reg.Counter("usp_queries_total", "",
			"Queries answered (Search, SearchInto, SearchBatch)."),
		queryErrors: reg.Counter("usp_query_errors_total", "",
			"Queries rejected by validation (bad k or dimension)."),
		queryLatency: reg.Histogram("usp_query_latency_seconds", "",
			"End-to-end latency of one query through the engine.", telemetry.NanosToSeconds),
		candidates: reg.Counter("usp_query_candidates_total", "",
			"Candidate ids gathered across all queries, including tombstoned ones (the paper's |C(q)| cost metric)."),
		binsProbed: reg.Counter("usp_query_bins_probed_total", "",
			"Partition bins probed across all queries."),
		tombstonesSkipped: reg.Counter("usp_query_tombstones_skipped_total", "",
			"Gathered candidates dropped by the tombstone filter during scans."),
		adds: reg.Counter("usp_adds_total", "",
			"Vectors inserted via Add."),
		deletes: reg.Counter("usp_deletes_total", "",
			"Vectors tombstoned via Delete."),
		epochPublishes: reg.Counter("usp_epoch_publishes_total", "",
			"Epoch publications (one per Add, Delete, and compaction, plus the initial build/load)."),
		compactions: reg.Counter("usp_compactions_total", "",
			"Compaction cycles that merged pending mutations."),
		compactionNoops: reg.Counter("usp_compaction_noops_total", "",
			"Compaction cycles that found nothing pending."),
		compactionLatency: reg.Histogram("usp_compaction_latency_seconds", "",
			"Duration of compaction cycles that performed a merge.", telemetry.NanosToSeconds),
		adcQueries: reg.Counter("usp_adc_queries_total", "",
			"Queries answered through the quantized (ADC) candidate scan."),
		rerankCandidates: reg.Counter("usp_rerank_candidates_total", "",
			"Candidates exactly re-scored from float rows after the ADC pass (0 for ADC-only queries)."),
	}

	reg.GaugeFunc("usp_epoch", "",
		"Sequence number of the live epoch.",
		func() float64 { return float64(ix.live.Load().seq) })
	reg.GaugeFunc("usp_epoch_age_seconds", "",
		"Seconds since the live epoch was published.",
		func() float64 { return ix.EpochAge().Seconds() })
	reg.GaugeFunc("usp_rows", "",
		"Dataset rows, including deleted ones (ids are never renumbered).",
		func() float64 { return float64(ix.live.Load().data.N) })
	reg.GaugeFunc("usp_live_vectors", "",
		"Live (searchable) vectors.",
		func() float64 { return float64(ix.Len()) })
	reg.GaugeFunc("usp_pending_inserts", "",
		"Spill occupancy: inserts still served from spill lists, not yet compacted into the CSR tables.",
		func() float64 {
			if sp := ix.live.Load().spill; sp != nil {
				return float64(sp.total)
			}
			return 0
		})
	reg.GaugeFunc("usp_tombstones", "",
		"Deletions not yet folded away by compaction.",
		func() float64 { return float64(ix.live.Load().tombs.Count()) })
	reg.GaugeFunc("usp_dead_rows", "",
		"Rows removed from the lookup tables by past compactions.",
		func() float64 { return float64(ix.live.Load().dead()) })
	reg.GaugeFunc("usp_quant_bytes_per_vector", "",
		"Bytes stored per vector on the serving path: PQ code bytes, plus the float row unless it was dropped (memory-tight). 0 when quantization is off.",
		func() float64 {
			qv := ix.live.Load().quant
			if qv == nil {
				return 0
			}
			b := float64(qv.pq.Subspaces)
			if !qv.tight {
				b += 4 * float64(ix.dim)
			}
			return b
		})
	reg.GaugeFunc("usp_quant_compression_ratio", "",
		"Raw float row bytes over PQ code bytes — how much smaller the scanned representation is. 0 when quantization is off.",
		func() float64 {
			qv := ix.live.Load().quant
			if qv == nil {
				return 0
			}
			return 4 * float64(ix.dim) / float64(qv.pq.Subspaces)
		})
	return m
}

// Telemetry returns the index's metric registry, for mounting on an
// exposition endpoint (see cmd/uspserve) or programmatic scraping.
func (ix *Index) Telemetry() *telemetry.Registry { return ix.tel.reg }

// EpochAge returns the time since the live epoch was published — how stale
// the serving snapshot is. A healthy mutating index republishes on every
// Add/Delete/compaction; a static one ages from build or load time.
func (ix *Index) EpochAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - ix.publishedAt.Load())
}

// publish makes ep the live epoch and records the publication. Callers must
// hold wmu (or be the only writer, as in newIndex).
func (ix *Index) publish(ep *epoch) {
	ix.live.Store(ep)
	ix.publishedAt.Store(time.Now().UnixNano())
	ix.tel.epochPublishes.Inc()
}
