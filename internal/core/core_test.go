package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

// testData builds a small clustered dataset plus its k'-NN matrix.
func testData(t testing.TB, n, dim, clusters int, seed int64) (*dataset.Dataset, *knn.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: clusters,
		ClusterStd: 0.15, CenterBox: 4, NoiseFrac: 0,
	}, rng)
	return l.Dataset, knn.BuildMatrix(l.Dataset, 10)
}

func smallCfg(bins int) Config {
	return Config{
		Bins: bins, KPrime: 5, Eta: 10, Epochs: 50,
		BatchSize: 128, Hidden: []int{16}, Dropout: 0.1, Seed: 42,
	}
}

func TestTrainPartitionInvariants(t *testing.T) {
	ds, mat := testData(t, 600, 8, 4, 1)
	p, stats, err := Train(ds, mat, smallCfg(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every point appears in exactly one bin and Assign agrees with the
	// CSR lookup table.
	seen := make([]int, ds.N)
	for b := 0; b < p.M; b++ {
		for _, i := range p.BinList(b) {
			seen[i]++
			if p.Assign[i] != int32(b) {
				t.Fatalf("point %d: Assign=%d but in bin %d", i, p.Assign[i], b)
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d appears in %d bins", i, c)
		}
	}
	if stats.Params != p.Model.NumParams() || stats.Params == 0 {
		t.Fatalf("stats.Params = %d", stats.Params)
	}
	if stats.Duration <= 0 {
		t.Fatal("non-positive training duration")
	}
}

func TestTrainBalanceEffect(t *testing.T) {
	// With a healthy eta, no bin should be empty and the largest bin
	// should not swallow the dataset.
	ds, mat := testData(t, 600, 8, 4, 2)
	p, _, err := Train(ds, mat, smallCfg(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := p.BinSizes()
	for b, s := range sizes {
		if s == 0 {
			t.Fatalf("bin %d empty: %v", b, sizes)
		}
		if s > ds.N*3/4 {
			t.Fatalf("bin %d holds %d of %d points (collapsed): %v", b, s, ds.N, sizes)
		}
	}
}

func TestTrainQualityOnSeparatedClusters(t *testing.T) {
	// On well-separated clusters with m = #clusters, most points should
	// share a bin with most of their true neighbors.
	ds, mat := testData(t, 600, 8, 4, 3)
	p, _, err := Train(ds, mat, smallCfg(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	sep := p.SeparatedNeighbors(mat, 5)
	totalSep := 0
	for _, s := range sep {
		totalSep += s
	}
	frac := float64(totalSep) / float64(len(sep)*5)
	if frac > 0.25 {
		t.Fatalf("separated-neighbor fraction %.3f too high for separated clusters", frac)
	}
}

func TestIndexSearchBeatsRandomCandidates(t *testing.T) {
	ds, mat := testData(t, 600, 8, 4, 4)
	p, _, err := Train(ds, mat, smallCfg(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := &Index{Data: ds, Source: p}
	rng := rand.New(rand.NewSource(9))
	queries := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 40, Dim: 8, Clusters: 4, ClusterStd: 0.15, CenterBox: 4,
	}, rand.New(rand.NewSource(4))) // same generator params as base
	gt := knn.GroundTruth(ds, queries.Dataset, 10)

	var uspRecall, randRecall float64
	var candTotal int
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		ns, c := ix.SearchWithStats(q, 10, 1)
		uspRecall += knn.RecallNeighbors(ns, gt[qi])
		candTotal += c
		// Random candidate set of the same size.
		perm := rng.Perm(ds.N)[:c]
		rs := knn.SearchSubset(ds, perm, q, 10)
		randRecall += knn.RecallNeighbors(rs, gt[qi])
	}
	uspRecall /= float64(queries.N)
	randRecall /= float64(queries.N)
	if uspRecall < randRecall+0.2 {
		t.Fatalf("USP recall %.3f not clearly above random %.3f (|C| avg %d)",
			uspRecall, randRecall, candTotal/queries.N)
	}
}

func TestMoreProbesMoreRecall(t *testing.T) {
	ds, mat := testData(t, 600, 8, 4, 5)
	p, _, err := Train(ds, mat, smallCfg(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	ix := &Index{Data: ds, Source: p}
	gt := knn.GroundTruth(ds, ds, 10)
	var r1, rAll float64
	for qi := 0; qi < 50; qi++ {
		q := ds.Row(qi)
		n1, _ := ix.SearchWithStats(q, 10, 1)
		nAll, cAll := ix.SearchWithStats(q, 10, 4)
		r1 += knn.RecallNeighbors(n1, gt[qi])
		rAll += knn.RecallNeighbors(nAll, gt[qi])
		if cAll != ds.N {
			t.Fatalf("probing all bins returned %d candidates, want %d", cAll, ds.N)
		}
	}
	if rAll < r1 {
		t.Fatalf("recall decreased with more probes: %v vs %v", rAll/50, r1/50)
	}
	if math.Abs(rAll/50-1) > 1e-9 {
		t.Fatalf("probing all bins must give perfect recall, got %v", rAll/50)
	}
}

func TestTrainValidation(t *testing.T) {
	ds, mat := testData(t, 100, 4, 2, 6)
	bad := []Config{
		{Bins: 1, KPrime: 5, Epochs: 1},
		{Bins: 200, KPrime: 5, Epochs: 1},
		{Bins: 4, KPrime: 0, Epochs: 1},
		{Bins: 4, KPrime: 5, Epochs: 0},
		{Bins: 4, KPrime: 5, Epochs: 1, Eta: -1},
		{Bins: 4, KPrime: 50, Epochs: 1}, // KPrime > matrix K
	}
	for i, cfg := range bad {
		if _, _, err := Train(ds, mat, cfg, nil); err == nil {
			t.Fatalf("config %d should fail: %+v", i, cfg)
		}
	}
	// Wrong-size weights and nil matrix.
	good := Config{Bins: 4, KPrime: 5, Epochs: 1}
	if _, _, err := Train(ds, mat, good, make([]float32, 3)); err == nil {
		t.Fatal("short weights should fail")
	}
	if _, _, err := Train(ds, nil, good, nil); err == nil {
		t.Fatal("nil matrix should fail")
	}
}

func TestTrainLogisticModel(t *testing.T) {
	ds, mat := testData(t, 300, 4, 2, 7)
	cfg := Config{Bins: 2, KPrime: 5, Eta: 5, Epochs: 20, Seed: 1}
	p, stats, err := Train(ds, mat, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4*2 + 2; stats.Params != want {
		t.Fatalf("logistic params = %d, want %d", stats.Params, want)
	}
	if len(p.BinSizes()) != 2 {
		t.Fatalf("bins = %d", len(p.BinSizes()))
	}
}

func TestSoftTargetsMode(t *testing.T) {
	ds, mat := testData(t, 300, 4, 2, 8)
	cfg := smallCfg(2)
	cfg.SoftTargets = true
	cfg.Epochs = 10
	if _, _, err := Train(ds, mat, cfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleTrainingAndProbing(t *testing.T) {
	ds, mat := testData(t, 600, 8, 4, 9)
	ens, stats, err := TrainEnsemble(ds, mat, smallCfg(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Size() != 3 || len(stats.PerModel) != 3 {
		t.Fatalf("ensemble size %d", ens.Size())
	}
	if stats.TotalParams() != 3*stats.PerModel[0].Params {
		t.Fatal("TotalParams mismatch")
	}
	q := ds.Row(0)
	best := ens.Candidates(q, 1, BestConfidence)
	union := ens.Candidates(q, 1, UnionProbe)
	if len(best) == 0 || len(union) < len(best) {
		t.Fatalf("|best|=%d |union|=%d", len(best), len(union))
	}
	// Union must be duplicate-free.
	seen := map[int]bool{}
	for _, i := range union {
		if seen[i] {
			t.Fatalf("duplicate candidate %d in union", i)
		}
		seen[i] = true
	}
	// EnsembleSource adapter must agree with direct call.
	src := EnsembleSource{Ensemble: ens, Mode: BestConfidence}
	got := src.Candidates(q, 1)
	if len(got) != len(best) {
		t.Fatal("EnsembleSource adapter mismatch")
	}
}

func TestEnsembleImprovesRecallAtFixedProbes(t *testing.T) {
	ds, mat := testData(t, 800, 8, 8, 10)
	cfg := smallCfg(8)
	single, _, err := TrainEnsemble(ds, mat, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	triple, _, err := TrainEnsemble(ds, mat, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds, ds, 10)
	recall := func(e *Ensemble) float64 {
		ix := &Index{Data: ds, Source: EnsembleSource{e, BestConfidence}}
		var r float64
		for qi := 0; qi < 100; qi++ {
			ns := ix.Search(ds.Row(qi), 10, 1)
			r += knn.RecallNeighbors(ns, gt[qi])
		}
		return r / 100
	}
	r1, r3 := recall(single), recall(triple)
	if r3 < r1-0.02 { // allow tiny noise, but ensembling must not hurt
		t.Fatalf("ensemble recall %.3f worse than single %.3f", r3, r1)
	}
}

func TestEnsembleSizeValidation(t *testing.T) {
	ds, mat := testData(t, 100, 4, 2, 11)
	if _, _, err := TrainEnsemble(ds, mat, smallCfg(2), 0); err == nil {
		t.Fatal("e=0 should fail")
	}
}

func TestHierarchyInvariants(t *testing.T) {
	ds, mat := testData(t, 600, 8, 4, 12)
	_ = mat
	cfg := Config{KPrime: 5, Eta: 5, Epochs: 10, BatchSize: 128, Hidden: []int{8}, Seed: 3}
	h, stats, err := TrainHierarchy(ds, []int{2, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBins != 4 || len(h.Bins) != 4 {
		t.Fatalf("NumBins = %d", h.NumBins)
	}
	if len(stats) == 0 {
		t.Fatal("no training stats")
	}
	// Leaf bins must partition the dataset.
	seen := make([]int, ds.N)
	for _, pts := range h.Bins {
		for _, i := range pts {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d in %d leaf bins", i, c)
		}
	}
	// Leaf probabilities sum to 1 (product of distributions over a tree).
	probs := h.LeafProbabilities(ds.Row(0))
	var sum float64
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative leaf probability %v", p)
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("leaf probabilities sum to %v", sum)
	}
	// Probing all leaf bins covers the whole dataset.
	if c := h.Candidates(ds.Row(0), h.NumBins); len(c) != ds.N {
		t.Fatalf("full probe |C| = %d, want %d", len(c), ds.N)
	}
	if h.TotalParams() == 0 {
		t.Fatal("TotalParams = 0")
	}
	// Assignments consistent with Bins.
	asg := h.Assignments(ds.N)
	for g, pts := range h.Bins {
		for _, i := range pts {
			if asg[i] != int32(g) {
				t.Fatalf("assignment mismatch for point %d", i)
			}
		}
	}
	sizes := h.BinSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != ds.N {
		t.Fatalf("bin sizes sum to %d", total)
	}
}

func TestHierarchyProbeTempKeepsDistribution(t *testing.T) {
	ds, _ := testData(t, 300, 4, 2, 33)
	cfg := Config{KPrime: 5, Eta: 5, Epochs: 8, Hidden: []int{8}, Seed: 3}
	h, _, err := TrainHierarchy(ds, []int{2, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.ProbeTemp = 4
	probs := h.LeafProbabilities(ds.Row(0))
	var sum float64
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative prob %v", p)
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("softened leaf probs sum to %v", sum)
	}
	// Softening must not break coverage semantics.
	if c := h.Candidates(ds.Row(0), h.NumBins); len(c) != ds.N {
		t.Fatalf("full probe |C| = %d", len(c))
	}
}

func TestHierarchyDeepBinaryTreeOnTinyData(t *testing.T) {
	// Depth 5 on 80 points forces the degenerate round-robin path.
	ds, _ := testData(t, 80, 4, 2, 13)
	cfg := Config{KPrime: 3, Eta: 3, Epochs: 5, Seed: 5}
	h, _, err := TrainHierarchy(ds, []int{2, 2, 2, 2, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBins != 32 {
		t.Fatalf("NumBins = %d", h.NumBins)
	}
	seen := make([]int, ds.N)
	for _, pts := range h.Bins {
		for _, i := range pts {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d in %d bins", i, c)
		}
	}
}

func TestHierarchyValidation(t *testing.T) {
	ds, _ := testData(t, 100, 4, 2, 14)
	cfg := Config{KPrime: 3, Eta: 3, Epochs: 2, Seed: 1}
	if _, _, err := TrainHierarchy(ds, nil, cfg); err == nil {
		t.Fatal("empty levels should fail")
	}
	if _, _, err := TrainHierarchy(ds, []int{1}, cfg); err == nil {
		t.Fatal("branching 1 should fail")
	}
}

func TestClusterLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 400, Dim: 2, Clusters: 3, ClusterStd: 0.08, CenterBox: 4,
	}, rng)
	labels, err := ClusterLabels(l.Dataset, 3, Config{
		KPrime: 8, Eta: 10, Epochs: 120, Hidden: []int{16}, Seed: 7, BatchSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != l.N {
		t.Fatalf("labels len %d", len(labels))
	}
	// Purity against ground truth should be high on separated blobs.
	purity := clusterPurity(labels, l.Labels, 3)
	if purity < 0.8 {
		t.Fatalf("cluster purity %.3f too low", purity)
	}
}

func clusterPurity(pred, truth []int, k int) float64 {
	counts := map[[2]int]int{}
	for i := range pred {
		counts[[2]int{pred[i], truth[i]}]++
	}
	correct := 0
	for c := 0; c < k; c++ {
		best := 0
		for key, n := range counts {
			if key[0] == c && n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(pred))
}
