// Package neurallsh implements the paper's principal baseline, Neural LSH
// (Dong et al., ICLR 2020), and its tree variant Regression LSH.
//
// Neural LSH is *supervised*: a balanced partition of the dataset's k-NN
// graph (via internal/graphpart, standing in for KaHIP) provides ground-
// truth bin labels; dataset points are bucketed by those labels; a neural
// network is trained with cross-entropy purely to route out-of-sample
// queries to bins. Unlike USP, the network never shapes the partition.
package neurallsh

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/graphpart"
	"repro/internal/knn"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/vecmath"
)

// Config controls Neural LSH training.
type Config struct {
	// Bins is the number of partition cells m.
	Bins int
	// Epsilon is the graph partitioner's balance slack (default 0.1).
	Epsilon float64
	// Hidden lists the classifier's hidden widths (the original uses one
	// hidden layer of 512).
	Hidden []int
	// Dropout on hidden layers (default 0.1 when Hidden is non-empty).
	Dropout float64
	// Epochs of classifier training (default 60).
	Epochs int
	// BatchSize for classifier training (default max(64, n/25)).
	BatchSize int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// Seed drives partitioning and training randomness.
	Seed int64
}

func (c Config) withDefaults(n int) Config {
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.BatchSize == 0 {
		c.BatchSize = n / 25
		if c.BatchSize < 64 {
			c.BatchSize = 64
		}
	}
	if c.BatchSize > n {
		c.BatchSize = n
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Dropout == 0 && len(c.Hidden) > 0 {
		c.Dropout = 0.1
	}
	return c
}

// Model is a trained Neural LSH index.
type Model struct {
	Net *nn.Sequential
	M   int
	// Assign holds the graph-partition bin of every dataset point (the
	// lookup table uses these labels, not the network's own predictions).
	Assign []int32
	Bins   [][]int32
}

// Stats reports offline-phase costs (Table 2/3 comparisons).
type Stats struct {
	PartitionTime time.Duration
	TrainTime     time.Duration
	Params        int
	// TrainAccuracy is the classifier's label accuracy on the dataset.
	TrainAccuracy float64
}

// Train builds the k-NN graph partition and fits the routing classifier.
func Train(ds *dataset.Dataset, knnMat *knn.Matrix, cfg Config) (*Model, Stats, error) {
	if cfg.Bins < 2 {
		return nil, Stats{}, fmt.Errorf("neurallsh: Bins must be ≥ 2, got %d", cfg.Bins)
	}
	if ds.N < cfg.Bins {
		return nil, Stats{}, fmt.Errorf("neurallsh: %d points cannot fill %d bins", ds.N, cfg.Bins)
	}
	cfg = cfg.withDefaults(ds.N)

	t0 := time.Now()
	g := graphpart.FromKNN(knnMat.Neighbors)
	labels32 := graphpart.Partition(g, cfg.Bins, cfg.Epsilon, cfg.Seed)
	partTime := time.Since(t0)

	labels := make([]int, ds.N)
	for i, l := range labels32 {
		labels[i] = int(l)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var net *nn.Sequential
	if len(cfg.Hidden) == 0 {
		net = nn.NewLogistic(ds.Dim, cfg.Bins, rng)
	} else {
		net = nn.NewMLP(ds.Dim, cfg.Hidden, cfg.Bins, cfg.Dropout, rng)
	}
	opt := nn.NewAdam(cfg.LR)

	t1 := time.Now()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(ds.N)
		for lo := 0; lo < ds.N; lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > ds.N {
				hi = ds.N
			}
			idx := perm[lo:hi]
			x := tensor.New(len(idx), ds.Dim)
			y := make([]int, len(idx))
			for bi, pi := range idx {
				copy(x.Row(bi), ds.Row(pi))
				y[bi] = labels[pi]
			}
			net.ZeroGrads()
			logits := net.Forward(x, true)
			_, grad := nn.CrossEntropy(logits, y)
			net.Backward(grad)
			opt.Step(net.Params())
		}
	}
	trainTime := time.Since(t1)

	m := &Model{Net: net, M: cfg.Bins, Assign: labels32, Bins: make([][]int32, cfg.Bins)}
	for i, l := range labels32 {
		m.Bins[l] = append(m.Bins[l], int32(i))
	}

	// Training accuracy of the router against the graph-partition labels.
	correct := 0
	for lo := 0; lo < ds.N; lo += 4096 {
		hi := lo + 4096
		if hi > ds.N {
			hi = ds.N
		}
		x := tensor.FromSlice(hi-lo, ds.Dim, ds.Data[lo*ds.Dim:hi*ds.Dim])
		pred := nn.ArgmaxRows(m.Net.Predict(x))
		for i, p := range pred {
			if p == labels[lo+i] {
				correct++
			}
		}
	}

	return m, Stats{
		PartitionTime: partTime,
		TrainTime:     trainTime,
		Params:        net.NumParams(),
		TrainAccuracy: float64(correct) / float64(ds.N),
	}, nil
}

// Probabilities returns the router's bin distribution for q.
func (m *Model) Probabilities(q []float32) []float32 { return m.Net.PredictVec(q) }

// Candidates returns the union of the mPrime most probable bins' points.
func (m *Model) Candidates(q []float32, mPrime int) []int {
	bins := vecmath.TopKIndices(m.Probabilities(q), mPrime)
	var out []int
	for _, b := range bins {
		for _, i := range m.Bins[b] {
			out = append(out, int(i))
		}
	}
	return out
}

// BinSizes returns per-bin point counts.
func (m *Model) BinSizes() []int {
	out := make([]int, m.M)
	for b, pts := range m.Bins {
		out[b] = len(pts)
	}
	return out
}
