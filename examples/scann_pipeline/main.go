// ScaNN pipeline: the paper's §5.4.3 composition — USP partitions the
// dataset, the trained model routes each query to a candidate set, and a
// ScaNN-style anisotropic product quantizer scores the candidates with ADC
// lookup tables before exact re-ranking. Compares USP+ScaNN against vanilla
// ScaNN (full quantized scan) and K-means+ScaNN on recall and query time,
// the Fig. 7 experiment as a standalone program.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/knn"
	"repro/internal/quant"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	full := dataset.SIFTLike(4200, rng)
	base, queries := dataset.SplitQueries(full, 200, rng)
	gt := knn.GroundTruth(base, queries, 10)
	fmt.Printf("base: %d x %dd, %d queries\n", base.N, base.Dim, queries.N)

	fmt.Println("training anisotropic quantizer (ScaNN)...")
	scann, err := quant.NewScaNN(base, quant.Config{
		Subspaces: 8, K: 16, Anisotropic: true, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training USP partitioner...")
	ix, err := usp.Build(base.Rows(), usp.Options{
		Bins: 16, Ensemble: 3, Epochs: 40, Hidden: []int{64}, Seed: 3, Eta: usp.Float(7),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fitting K-means partitioner...")
	km, err := kmeans.NewIndex(base, 16, kmeans.Options{Seed: 4, Restarts: 3})
	if err != nil {
		log.Fatal(err)
	}

	type pipeline struct {
		name string
		cand func(q []float32) []int // nil = full scan
	}
	pipelines := []pipeline{
		{"vanilla ScaNN (full scan)", nil},
		{"K-means + ScaNN (2 probes)", func(q []float32) []int { return km.Candidates(q, 2) }},
		{"USP + ScaNN (2 probes)", func(q []float32) []int {
			c, err := ix.CandidateSet(q, usp.SearchOptions{Probes: 2})
			if err != nil {
				log.Fatal(err)
			}
			return c
		}},
	}

	fmt.Printf("\n%-30s %10s %12s %12s\n", "pipeline", "recall", "us/query", "avg scored")
	for _, p := range pipelines {
		var recall, scored float64
		start := time.Now()
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			var cands []int
			if p.cand != nil {
				cands = p.cand(q)
				scored += float64(len(cands))
			} else {
				scored += float64(base.N)
			}
			ns := scann.Search(q, 10, cands)
			ids := make([]int, len(ns))
			for i, n := range ns {
				ids[i] = n.Index
			}
			recall += knn.Recall(ids, gt[qi])
		}
		elapsed := time.Since(start)
		fmt.Printf("%-30s %10.4f %12.1f %12.0f\n", p.name,
			recall/float64(queries.N),
			float64(elapsed.Nanoseconds())/float64(queries.N)/1e3,
			scored/float64(queries.N))
	}
	fmt.Println("\nthe paper's Fig. 7 story: partitioning first makes ScaNN several")
	fmt.Println("times faster at matched recall, and USP candidates beat K-means'.")
}
