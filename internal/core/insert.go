package core

import "repro/internal/vecmath"

// Incremental insertion: new points are routed by the trained model to
// their most probable bin, exactly as queries are (Algorithm 2 step 2), and
// appended to the lookup table. The paper trains offline on a static
// dataset; insertion-by-routing is the natural online extension — the
// model's decision boundaries are fixed, so an inserted point lands in the
// bin whose candidates it will later be returned with.

// Routing (the model forward pass) and table mutation are split so callers
// serializing inserts against concurrent queries can compute the routing
// decision outside their critical section: the trained models are immutable,
// only the append needs exclusivity.

// RouteBinWith returns the bin the trained model routes vec to, running the
// forward pass through the caller's scratch (allocation-free when warm).
func (p *Partitioner) RouteBinWith(qs *QueryScratch, vec []float32) int {
	qs.probs = p.ProbabilitiesInto(qs.probs, vec, &qs.Infer)
	return vecmath.ArgMax(qs.probs)
}

// RouteBin returns the bin the trained model routes vec to.
func (p *Partitioner) RouteBin(vec []float32) int {
	var qs QueryScratch
	return p.RouteBinWith(&qs, vec)
}

// InsertAt appends a point (with the given dataset id) to bin b. The CSR
// table is immutable after build, so routed points land in per-bin spill
// lists that candidate probes scan after the contiguous range.
func (p *Partitioner) InsertAt(id, b int) {
	p.Assign = append(p.Assign, int32(b))
	if p.spill == nil {
		p.spill = make([][]int32, p.M)
	}
	p.spill[b] = append(p.spill[b], int32(id))
}

// Insert routes a new point (with the given dataset id) into the partition.
func (p *Partitioner) Insert(id int, vec []float32) {
	p.InsertAt(id, p.RouteBin(vec))
}

// RouteBinsWith appends each member partition's routing decision for vec to
// dst, reusing the caller's scratch for every forward pass.
func (e *Ensemble) RouteBinsWith(qs *QueryScratch, vec []float32, dst []int) []int {
	for _, p := range e.Parts {
		dst = append(dst, p.RouteBinWith(qs, vec))
	}
	return dst
}

// RouteBins returns each member partition's routing decision for vec.
func (e *Ensemble) RouteBins(vec []float32) []int {
	var qs QueryScratch
	return e.RouteBinsWith(&qs, vec, make([]int, 0, len(e.Parts)))
}

// InsertRouted appends a point to every member partition at the bins
// RouteBins chose for it.
func (e *Ensemble) InsertRouted(id int, bins []int) {
	for j, p := range e.Parts {
		p.InsertAt(id, bins[j])
	}
}

// Insert routes a new point into every member partition.
func (e *Ensemble) Insert(id int, vec []float32) {
	e.InsertRouted(id, e.RouteBins(vec))
}

// RouteLeafWith returns the global leaf bin the tree routes vec to, running
// the tree walk through the caller's scratch.
func (h *Hierarchy) RouteLeafWith(qs *QueryScratch, vec []float32) int {
	qs.leaf = h.LeafProbabilitiesInto(qs.leaf, vec, qs)
	return vecmath.ArgMax(qs.leaf)
}

// RouteLeaf returns the global leaf bin the tree routes vec to.
func (h *Hierarchy) RouteLeaf(vec []float32) int {
	var qs QueryScratch
	return h.RouteLeafWith(&qs, vec)
}

// InsertRouted appends a point to the given global leaf bin.
func (h *Hierarchy) InsertRouted(id, g int) {
	h.Bins[g] = append(h.Bins[g], int32(id))
}

// Insert routes a new point to its most probable leaf bin.
func (h *Hierarchy) Insert(id int, vec []float32) {
	h.InsertRouted(id, h.RouteLeaf(vec))
}
