package usp

// This file is the benchmark harness required by DESIGN.md: one testing.B
// benchmark per table and figure of the paper's evaluation (each reruns the
// corresponding experiment end to end at the reduced BenchScale and reports
// recall/candidate metrics via b.ReportMetric), plus micro-benchmarks of the
// hot paths (matmul, k-NN matrix construction, training epochs, queries).
//
// Full-scale experiment runs (the numbers recorded in EXPERIMENTS.md) are
// produced by cmd/uspbench, which shares the same runners.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/knn"
	"repro/internal/tensor"
)

// runExperiment executes a registered experiment b.N times and reports the
// first series' final-point recall so regressions in quality — not just
// speed — show up in benchmark output.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	sc := experiments.BenchScale()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, sc, nil)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Series) > 0 && i == 0 {
			first := rep.Series[0]
			p := first.Points[0]
			b.ReportMetric(p.Recall, "recall@first")
			b.ReportMetric(p.AvgCandidates, "candidates")
		}
	}
}

// --- One benchmark per paper artifact. ---

func BenchmarkFig5(b *testing.B) {
	for _, id := range []string{"fig5a", "fig5b", "fig5c", "fig5d"} {
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}

func BenchmarkFig6(b *testing.B) {
	for _, id := range []string{"fig6a", "fig6b"} {
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}

func BenchmarkFig7(b *testing.B) {
	for _, id := range []string{"fig7a", "fig7b"} {
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}

func BenchmarkTable2ParameterCounts(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3TrainingTime(b *testing.B)    { runExperiment(b, "table3") }
func BenchmarkTable4CandidateReduction(b *testing.B) {
	runExperiment(b, "table4")
}
func BenchmarkTable5Clustering(b *testing.B) { runExperiment(b, "table5") }

// --- Micro-benchmarks of the substrates. ---

func benchVectors(n, dim int) *dataset.Dataset {
	return dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: 16, ClusterStd: 1, CenterBox: 3,
	}, rand.New(rand.NewSource(1))).Dataset
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(128, 128)
	y := tensor.New(128, 128)
	dst := tensor.New(128, 128)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
		y.Data[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, x, y)
	}
	b.SetBytes(128 * 128 * 4)
}

func BenchmarkKNNMatrix(b *testing.B) {
	ds := benchVectors(1000, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.BuildMatrix(ds, 10)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	ds := benchVectors(1000, 64)
	mat := knn.BuildMatrix(ds, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.Train(ds, mat, core.Config{
			Bins: 16, KPrime: 10, Eta: 7, Epochs: 1,
			Hidden: []int{64}, Dropout: 0.1, Seed: int64(i),
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	ds := benchVectors(2000, 64)
	mat := knn.BuildMatrix(ds, 10)
	ens, _, err := core.TrainEnsemble(ds, mat, core.Config{
		Bins: 16, KPrime: 10, Eta: 7, Epochs: 10,
		Hidden: []int{32}, Dropout: 0.1, Seed: 1,
	}, 2)
	if err != nil {
		b.Fatal(err)
	}
	ix := &core.Index{Data: ds, Source: core.EnsembleSource{Ensemble: ens, Mode: core.BestConfidence}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(ds.Row(i%ds.N), 10, 2)
	}
}

// --- Batched query-engine benchmarks. ---
//
// BenchmarkSearcherSingle is the single-goroutine QPS baseline;
// BenchmarkSearchBatch fans the same queries out over the worker pool. On a
// multi-core runner the batch path must beat the single-goroutine baseline
// by roughly the core count (the acceptance target is ≥ 4× on 8 cores);
// on a single-core runner the two coincide.

func benchIndex(b *testing.B) (*Index, [][]float32) {
	b.Helper()
	ds := benchVectors(4000, 64)
	ix, err := Build(ds.Rows(), Options{
		Bins: 16, Ensemble: 2, Epochs: 10, Hidden: []int{32}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float32, 256)
	for i := range queries {
		queries[i] = ds.Row(i % ds.N)
	}
	return ix, queries
}

func BenchmarkSearcherSingle(b *testing.B) {
	ix, queries := benchIndex(b)
	s := ix.NewSearcher()
	dst := make([]Result, 0, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = s.SearchInto(dst[:0], queries[i%len(queries)], 10, SearchOptions{Probes: 2})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexSearch(b *testing.B) {
	// The legacy convenience entry point (pooled Searcher under the hood).
	ix, queries := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(queries[i%len(queries)], 10, SearchOptions{Probes: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchBatch(b *testing.B) {
	ix, queries := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SearchBatch(queries, 10, SearchOptions{Probes: 2}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(queries)), "queries/op")
}

func BenchmarkBruteForceQuery(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			ds := benchVectors(n, 64)
			for i := 0; i < b.N; i++ {
				knn.Search(ds, ds.Row(i%ds.N), 10)
			}
		})
	}
}
