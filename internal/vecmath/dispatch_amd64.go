package vecmath

// amd64 kernel selection. Feature detection is hand-rolled (CPUID + XGETBV,
// cpu_amd64.s) rather than pulled from golang.org/x/sys/cpu to keep the
// module dependency-free; the checks mirror that package's AVX2 logic:
// the CPU must advertise AVX2 and FMA, and the OS must have enabled
// XMM+YMM state saving (OSXSAVE set and XCR0 bits 1-2 on), otherwise
// executing VEX-encoded instructions faults.

// cpuid executes the CPUID instruction for the given leaf/subleaf.
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0.
func xgetbv0() (eax, edx uint32)

// The assembly kernels (kernels_amd64.s). Marked noescape so passing slice
// arguments never forces the backing arrays to the heap — the query engine's
// zero-allocation guarantee depends on it.

//go:noescape
func dotAVX2(a, b []float32) float32

//go:noescape
func sqL2AVX2(a, b []float32) float32

//go:noescape
func axpyAVX2(alpha float32, x, y []float32)

//go:noescape
func lutSumAVX2(lut []float32, k int, code []uint8) float32

var avx2Kernels = kernels{
	name:   "avx2-fma",
	dot:    dotAVX2,
	sqL2:   sqL2AVX2,
	axpy:   axpyAVX2,
	lutSum: lutSumAVX2,
}

// archKernels returns the best kernel set this CPU supports.
func archKernels() (kernels, bool) {
	if !hasAVX2FMA() {
		return kernels{}, false
	}
	return avx2Kernels, true
}

func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		bitFMA     = 1 << 12 // leaf 1 ECX
		bitOSXSAVE = 1 << 27 // leaf 1 ECX
		bitAVX     = 1 << 28 // leaf 1 ECX
		bitAVX2    = 1 << 5  // leaf 7 EBX
	)
	_, _, ecx1, _ := cpuid(1, 0)
	want := uint32(bitFMA | bitOSXSAVE | bitAVX)
	if ecx1&want != want {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&bitAVX2 != 0
}
