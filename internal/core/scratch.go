package core

import "repro/internal/nn"

// QueryScratch owns every intermediate buffer the online phase needs for one
// query: the model forward-pass buffers, a probability row, the best-model
// probability row of Algorithm 4, the selected-bin list, the hierarchy's
// per-depth node distributions and leaf distribution, and a generation-
// stamped visited set for union probing. One scratch serves one goroutine;
// after warm-up a query performs no allocation through any of the
// AppendCandidates entry points.
//
// The zero value is ready to use. Buffers grow on demand and are retained.
type QueryScratch struct {
	// Infer backs single-row model inference (nn.PredictVecInto).
	Infer nn.InferScratch

	probs []float32 // current model's bin distribution
	best  []float32 // best-confidence model's distribution (Algorithm 4)
	bins  []int     // selected top-m′ bin indices
	cands []int32   // candidate staging for the []int-returning wrappers

	leaf      []float32   // hierarchy leaf-bin distribution
	nodeProbs [][]float32 // per-depth node distributions for the tree walk

	// seen/gen implement an O(1)-reset visited set for UnionProbe dedup:
	// seen[i] == gen marks id i as already emitted for the current query.
	seen []uint32
	gen  uint32
}

// ToInts materializes an []int32 id list as a fresh []int — the conversion
// every []int-returning candidate wrapper performs at the boundary between
// the int32 engine and the seed-era []int APIs.
func ToInts(ids []int32) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

// beginSeen prepares the visited set for a dataset of n points and returns
// the generation stamp to mark ids with.
func (qs *QueryScratch) beginSeen(n int) uint32 {
	if len(qs.seen) < n {
		qs.seen = make([]uint32, n)
		qs.gen = 0
	}
	qs.gen++
	if qs.gen == 0 { // wrapped: stamps from 2^32 queries ago could collide
		for i := range qs.seen {
			qs.seen[i] = 0
		}
		qs.gen = 1
	}
	return qs.gen
}

// nodeBuf returns the probability buffer for tree depth d, creating the
// depth slot on first use.
func (qs *QueryScratch) nodeBuf(d int) []float32 {
	for len(qs.nodeProbs) <= d {
		qs.nodeProbs = append(qs.nodeProbs, nil)
	}
	return qs.nodeProbs[d]
}
