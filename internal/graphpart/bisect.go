package graphpart

import (
	"container/heap"
	"math/rand"
)

// bisect splits g into sides 0/1 where side 0 receives ≈ frac of the total
// vertex weight (±eps relative). Multilevel: coarsen by heavy-edge matching,
// bisect the coarsest graph by region growing, then refine with FM at every
// level on the way back up.
func bisect(g *Graph, frac, eps float64, rng *rand.Rand) []int32 {
	const coarsestSize = 160
	// Build the coarsening hierarchy.
	graphs := []*Graph{g}
	var maps [][]int32 // maps[l][v] = coarse id of fine vertex v at level l
	for graphs[len(graphs)-1].N > coarsestSize {
		cur := graphs[len(graphs)-1]
		coarse, m := coarsen(cur, rng)
		if coarse.N >= cur.N*95/100 {
			break // matching stalled (e.g. star graphs); stop coarsening
		}
		graphs = append(graphs, coarse)
		maps = append(maps, m)
	}

	// Initial bisection on the coarsest graph: best of several region
	// growings plus FM polish.
	coarsest := graphs[len(graphs)-1]
	part := bestRegionGrow(coarsest, frac, eps, rng, 8)
	fmRefine(coarsest, part, frac, eps, 6)

	// Uncoarsen and refine.
	for l := len(graphs) - 2; l >= 0; l-- {
		fine := graphs[l]
		finePart := make([]int32, fine.N)
		m := maps[l]
		for v := 0; v < fine.N; v++ {
			finePart[v] = part[m[v]]
		}
		part = finePart
		fmRefine(fine, part, frac, eps, 4)
	}
	return part
}

// coarsen contracts a heavy-edge matching: each vertex merges with its
// unmatched neighbor of maximum edge weight.
func coarsen(g *Graph, rng *rand.Rand) (*Graph, []int32) {
	match := make([]int32, g.N)
	for v := range match {
		match[v] = -1
	}
	order := rng.Perm(g.N)
	coarseID := make([]int32, g.N)
	nCoarse := int32(0)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW float32 = -1
		for _, e := range g.Adj[v] {
			if match[e.To] == -1 && int(e.To) != v && e.W > bestW {
				best, bestW = e.To, e.W
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = int32(v)
			coarseID[v] = nCoarse
			coarseID[best] = nCoarse
		} else {
			match[v] = int32(v)
			coarseID[v] = nCoarse
		}
		nCoarse++
	}
	coarse := NewGraph(int(nCoarse))
	for i := range coarse.NodeW {
		coarse.NodeW[i] = 0
	}
	for v := 0; v < g.N; v++ {
		coarse.NodeW[coarseID[v]] += g.NodeW[v]
	}
	// Aggregate edges between coarse vertices.
	agg := make(map[int64]float32, g.N*4)
	for v := 0; v < g.N; v++ {
		cu := coarseID[v]
		for _, e := range g.Adj[v] {
			cv := coarseID[e.To]
			if cu >= cv { // each unordered coarse pair once (cu<cv), skip internal
				continue
			}
			agg[int64(cu)<<32|int64(cv)] += e.W
		}
	}
	for key, w := range agg {
		coarse.AddEdge(int32(key>>32), int32(key&0xffffffff), w)
	}
	return coarse, coarseID
}

// bestRegionGrow tries several BFS region growings and returns the partition
// with the smallest cut.
func bestRegionGrow(g *Graph, frac, eps float64, rng *rand.Rand, trials int) []int32 {
	total := g.TotalNodeWeight()
	target := int64(float64(total) * frac)
	var best []int32
	bestCut := -1.0
	for t := 0; t < trials; t++ {
		part := regionGrow(g, target, rng)
		cut := CutWeight(g, part)
		if bestCut < 0 || cut < bestCut {
			bestCut, best = cut, part
		}
	}
	_ = eps
	return best
}

// regionGrow BFS-grows side 0 from a random seed until it holds ≈ target
// vertex weight; everything else is side 1.
func regionGrow(g *Graph, target int64, rng *rand.Rand) []int32 {
	part := make([]int32, g.N)
	for v := range part {
		part[v] = 1
	}
	visited := make([]bool, g.N)
	var queue []int32
	var grown int64
	seed := int32(rng.Intn(g.N))
	queue = append(queue, seed)
	visited[seed] = true
	for len(queue) > 0 && grown < target {
		v := queue[0]
		queue = queue[1:]
		part[v] = 0
		grown += int64(g.NodeW[v])
		for _, e := range g.Adj[v] {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
		// Disconnected graph: restart BFS from a fresh vertex.
		if len(queue) == 0 && grown < target {
			for u := 0; u < g.N; u++ {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, int32(u))
					break
				}
			}
		}
	}
	return part
}

// fmItem is a heap entry for FM refinement with lazy invalidation.
type fmItem struct {
	v    int32
	gain float32
	gen  int32
}

type fmHeap []fmItem

func (h fmHeap) Len() int           { return len(h) }
func (h fmHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h fmHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *fmHeap) Push(x any)        { *h = append(*h, x.(fmItem)) }
func (h *fmHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// fmRefine runs up to maxPasses Fiduccia–Mattheyses passes improving the cut
// while keeping both sides within (1+eps) of their weight targets.
func fmRefine(g *Graph, part []int32, frac, eps float64, maxPasses int) {
	total := g.TotalNodeWeight()
	target0 := float64(total) * frac
	target1 := float64(total) - target0
	max0 := int64(target0 * (1 + eps))
	max1 := int64(target1 * (1 + eps))
	if max0 <= 0 {
		max0 = 1
	}
	if max1 <= 0 {
		max1 = 1
	}

	gain := make([]float32, g.N)
	gen := make([]int32, g.N)
	locked := make([]bool, g.N)
	computeGain := func(v int32) float32 {
		var ext, intl float32
		for _, e := range g.Adj[v] {
			if part[e.To] == part[v] {
				intl += e.W
			} else {
				ext += e.W
			}
		}
		return ext - intl
	}

	var side [2]int64
	for v := 0; v < g.N; v++ {
		side[part[v]] += int64(g.NodeW[v])
	}

	for pass := 0; pass < maxPasses; pass++ {
		h := &fmHeap{}
		for v := 0; v < g.N; v++ {
			locked[v] = false
			gain[v] = computeGain(int32(v))
			gen[v]++
			heap.Push(h, fmItem{int32(v), gain[v], gen[v]})
		}
		type move struct {
			v    int32
			from int32
		}
		var moves []move
		var cum, bestCum float32
		bestLen := 0

		for h.Len() > 0 {
			it := heap.Pop(h).(fmItem)
			v := it.v
			if locked[v] || it.gen != gen[v] {
				continue
			}
			from := part[v]
			to := 1 - from
			// Balance check for the prospective move.
			w := int64(g.NodeW[v])
			if (to == 0 && side[0]+w > max0) || (to == 1 && side[1]+w > max1) {
				continue
			}
			locked[v] = true
			part[v] = to
			side[from] -= w
			side[to] += w
			cum += gain[v]
			moves = append(moves, move{v, from})
			if cum > bestCum {
				bestCum = cum
				bestLen = len(moves)
			}
			for _, e := range g.Adj[v] {
				if !locked[e.To] {
					gain[e.To] = computeGain(e.To)
					gen[e.To]++
					heap.Push(h, fmItem{e.To, gain[e.To], gen[e.To]})
				}
			}
		}
		// Revert moves beyond the best prefix.
		for i := len(moves) - 1; i >= bestLen; i-- {
			m := moves[i]
			w := int64(g.NodeW[m.v])
			side[part[m.v]] -= w
			side[m.from] += w
			part[m.v] = m.from
		}
		if bestCum <= 0 {
			break
		}
	}
}
