package nn

import (
	"math"

	"repro/internal/tensor"
	"repro/internal/vecmath"
)

// Single-row, allocation-free inference. The online query path evaluates the
// model on one vector at a time; the generic Forward pipeline allocates a
// fresh tensor per layer per call, which dominates query cost for the small
// models the paper uses. PredictVecInto runs the same arithmetic through a
// caller-owned scratch, producing bit-identical probabilities (each layer's
// eval path mirrors the accumulation order of its batch Forward).

// InferScratch holds the reusable buffers for PredictVecInto. The zero value
// is ready to use; buffers grow on demand and are retained between calls, so
// steady-state inference performs no allocation.
type InferScratch struct {
	cur, nxt []float32
}

func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// PredictVecInto computes the model's bin probability distribution for a
// single vector into dst (grown as needed) and returns it. It is the
// allocation-free equivalent of PredictVec: eval mode, running batch-norm
// statistics, dropout disabled. Results are bit-identical to PredictVec.
//
// The fast path covers the layer types the paper's architectures use
// (Dense, BatchNorm, ReLU, Dropout); a model containing any other layer
// falls back to the allocating pipeline.
func (s *Sequential) PredictVecInto(dst []float32, v []float32, sc *InferScratch) []float32 {
	sc.cur = growF32(sc.cur, len(v))
	copy(sc.cur, v)
	for _, l := range s.Layers {
		switch ly := l.(type) {
		case *Dense:
			sc.nxt = growF32(sc.nxt, ly.W.Value.Cols)
			ly.inferRow(sc.nxt, sc.cur)
			sc.cur, sc.nxt = sc.nxt, sc.cur
		case *BatchNorm:
			ly.inferRow(sc.cur)
		case *ReLU:
			for i, x := range sc.cur {
				if x <= 0 {
					sc.cur[i] = 0
				}
			}
		case *Dropout:
			// Identity at inference.
		default:
			// Unknown layer: fall back to the generic (allocating) path for
			// the whole model to keep semantics exact.
			out := s.Predict(tensor.FromSlice(1, len(v), v)).Row(0)
			dst = append(dst[:0], out...)
			return dst
		}
	}
	softmaxRow(sc.cur)
	dst = append(dst[:0], sc.cur...)
	return dst
}

// inferRow computes dst = x·W + b for a single row, mirroring
// tensor.MatMul's k-major accumulation (the same dispatched vecmath.AXPY
// microkernel, the same skip of zero inputs) followed by the bias add, so
// the result matches the batch path bitwise whichever kernel implementation
// — scalar or SIMD — the process dispatched at init.
func (d *Dense) inferRow(dst, x []float32) {
	w := d.W.Value
	for j := range dst {
		dst[j] = 0
	}
	for k, xv := range x {
		if xv == 0 {
			continue
		}
		vecmath.AXPY(xv, w.Row(k), dst)
	}
	for j, bv := range d.B.Value.Data {
		dst[j] += bv
	}
}

// inferRow standardizes a single row in place with the running statistics,
// matching BatchNorm.Forward's inference branch arithmetic exactly.
func (bn *BatchNorm) inferRow(x []float32) {
	dim := bn.Gamma.Value.Cols
	for j := 0; j < dim; j++ {
		mean := float64(bn.RunningMean.Data[j])
		invStd := 1 / math.Sqrt(float64(bn.RunningVar.Data[j])+bn.Eps)
		g, b := float64(bn.Gamma.Value.Data[j]), float64(bn.Beta.Value.Data[j])
		v := (float64(x[j]) - mean) * invStd
		x[j] = float32(v*g + b)
	}
}

// softmaxRow is SoftmaxRows for a single row without the parallel dispatch,
// with identical arithmetic (max-subtraction, float64 sum).
func softmaxRow(row []float32) {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range row {
		e := math.Exp(float64(v - maxv))
		row[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range row {
		row[j] *= inv
	}
}
