// Package vecmath implements the low-level float32 vector kernels the rest of
// the library is built on: distances, dot products, in-place BLAS-1 style
// updates, and small utilities (argmax, top-k selection).
//
// The three hot kernels — Dot, SquaredL2 and AXPY — dispatch through a
// kernel set selected once at package init: AVX2+FMA assembly on capable
// amd64 CPUs, NEON assembly on arm64, and the portable 4-way-unrolled scalar
// code everywhere else (see dispatch.go). Setting USP_FORCE_SCALAR in the
// environment pins the scalar kernels regardless of CPU features. All other
// helpers are pure Go; float64 accumulation variants are provided where
// reduction precision matters.
package vecmath

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; this is a programmer-error invariant on the hot path, enforced by
// bounds checks rather than an explicit panic.
func Dot(a, b []float32) float32 {
	b = b[:len(a)] // single bounds check; kernels assume equal length
	return active.dot(a, b)
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	b = b[:len(a)]
	return active.sqL2(a, b)
}

// SquaredL2Fused returns the squared Euclidean distance between q and x via
// the expansion ‖x‖² + ‖q‖² − 2·q·x, given the precomputed squared norms of
// both vectors. With per-row norms cached on the dataset (and ‖q‖² computed
// once per query) a candidate scan costs one dot product per row instead of a
// subtract-square pass, and the dot product reads both operands forward —
// the layout ScaNN-style scoring kernels use. The result is clamped at zero:
// the expansion can go slightly negative under float32 cancellation when q
// and x nearly coincide.
func SquaredL2Fused(q, x []float32, qNorm2, xNorm2 float32) float32 {
	d := xNorm2 + qNorm2 - 2*Dot(q, x)
	if d < 0 {
		return 0
	}
	return d
}

// LUTSum evaluates a product-quantization asymmetric distance: it gathers
// one entry per subspace from a flat row-major lookup table and returns
// their sum, Σ_s lut[s*k + code[s]]. lut holds len(code) rows of k floats
// (row s is the query-to-centroid table for subspace s); code holds one
// centroid index per subspace. Callers must guarantee code[s] < k for
// every s — the encoder does by construction — as the kernels gather
// without per-element bounds checks; the slice-length relation
// len(lut) == len(code)*k is enforced here with a single bounds check.
func LUTSum(lut []float32, k int, code []uint8) float32 {
	lut = lut[:len(code)*k] // single bounds check; kernels assume the shape
	return active.lutSum(lut, k, code)
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2(a, b))))
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Cosine returns the cosine distance 1 - <a,b>/(|a||b|). Zero vectors are
// treated as maximally distant (distance 1). All three reductions run
// through the dispatched Dot kernel, and the result is clamped into the
// mathematical range [0, 2]: float32 cancellation can push the raw value
// marginally outside it for (anti-)parallel inputs, which would otherwise
// leak tiny negative distances to callers.
func Cosine(a, b []float32) float32 {
	na2, nb2 := Dot(a, a), Dot(b, b)
	if na2 == 0 || nb2 == 0 {
		return 1
	}
	d := 1 - Dot(a, b)/float32(math.Sqrt(float64(na2)*float64(nb2)))
	if d < 0 {
		return 0
	}
	if d > 2 {
		return 2
	}
	return d
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float32, x, y []float32) {
	y = y[:len(x)]
	active.axpy(alpha, x, y)
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b []float32) {
	n := len(a)
	b, dst = b[:n], dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise. dst may alias a or b.
func Sub(dst, a, b []float32) {
	n := len(a)
	b, dst = b[:n], dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = a[i] - b[i]
	}
}

// Normalize scales x to unit Euclidean norm in place and reports whether it
// succeeded (a zero vector is left unchanged and false is returned).
func Normalize(x []float32) bool {
	n := Norm(x)
	if n == 0 {
		return false
	}
	Scale(1/n, x)
	return true
}

// Mean computes the arithmetic mean of the rows (each a []float32 of equal
// length) into dst using float64 accumulation. dst must have the row length.
func Mean(dst []float32, rows [][]float32) {
	if len(rows) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	acc := make([]float64, len(dst))
	for _, r := range rows {
		for i, v := range r {
			acc[i] += float64(v)
		}
	}
	inv := 1 / float64(len(rows))
	for i := range dst {
		dst[i] = float32(acc[i] * inv)
	}
}

// ArgMax returns the index of the largest element of x, breaking ties toward
// the smallest index. It returns -1 for an empty slice.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}

// ArgMin returns the index of the smallest element of x, breaking ties toward
// the smallest index. It returns -1 for an empty slice.
func ArgMin(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] < best {
			best, bi = x[i], i
		}
	}
	return bi
}

// Sum64 returns the sum of x accumulated in float64.
func Sum64(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}
