package core

import (
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/vecmath"
)

// CandidateSource is anything that can produce a candidate set for a query:
// a single Partitioner, an Ensemble (with a probe mode), or a Hierarchy.
type CandidateSource interface {
	Candidates(q []float32, mPrime int) []int
}

// EnsembleSource adapts an Ensemble plus a ProbeMode to CandidateSource.
type EnsembleSource struct {
	*Ensemble
	Mode ProbeMode
}

// Candidates implements CandidateSource.
func (s EnsembleSource) Candidates(q []float32, mPrime int) []int {
	return s.Ensemble.Candidates(q, mPrime, s.Mode)
}

// Index couples a dataset with a trained candidate source and answers
// k-NN queries via the online phase of Algorithm 2.
type Index struct {
	Data   *dataset.Dataset
	Source CandidateSource
}

// Search returns the k approximate nearest neighbors of q, probing the
// mPrime most probable bins.
func (ix *Index) Search(q []float32, k, mPrime int) []vecmath.Neighbor {
	ns, _ := ix.SearchWithStats(q, k, mPrime)
	return ns
}

// SearchWithStats additionally reports the candidate-set size |C(q)|, the
// computational-cost axis of every figure in the paper.
func (ix *Index) SearchWithStats(q []float32, k, mPrime int) ([]vecmath.Neighbor, int) {
	cands := ix.Source.Candidates(q, mPrime)
	return knn.SearchSubset(ix.Data, cands, q, k), len(cands)
}

// ClusterLabels trains a single USP model with m = k bins and returns each
// point's bin as a cluster label — the paper's §5.5 use of the partitioner
// as a general clustering method.
func ClusterLabels(ds *dataset.Dataset, k int, cfg Config) ([]int, error) {
	cfg.Bins = k
	kp := cfg.KPrime
	if kp <= 0 {
		kp = 10
	}
	if kp >= ds.N {
		kp = ds.N - 1
	}
	cfg.KPrime = kp
	mat := knn.BuildMatrix(ds, kp)
	p, _, err := Train(ds, mat, cfg, nil)
	if err != nil {
		return nil, err
	}
	labels := make([]int, ds.N)
	for i, b := range p.Assign {
		labels[i] = int(b)
	}
	return labels, nil
}
