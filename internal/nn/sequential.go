package nn

import (
	"math"
	"math/rand"

	"repro/internal/par"
	"repro/internal/tensor"
)

// Sequential chains layers into a feed-forward model producing logits.
// Probabilities are obtained by applying Softmax to the logits; training
// losses in this package consume logits directly for numerical stability.
type Sequential struct {
	Layers []Layer
	InDim  int
}

// NewSequential builds a model over inDim-wide inputs from the given layers.
func NewSequential(inDim int, layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, InDim: inDim}
}

// NewMLP builds the paper's neural-network architecture: for each hidden
// width h: Dense(h) → BatchNorm → ReLU → Dropout(p), followed by a final
// Dense(outDim) producing logits over the m bins.
func NewMLP(inDim int, hidden []int, outDim int, dropout float64, rng *rand.Rand) *Sequential {
	var layers []Layer
	prev := inDim
	for _, h := range hidden {
		layers = append(layers,
			NewDense(prev, h, rng),
			NewBatchNorm(h),
			NewReLU(),
		)
		if dropout > 0 {
			layers = append(layers, NewDropout(dropout, rng))
		}
		prev = h
	}
	layers = append(layers, NewDense(prev, outDim, rng))
	return NewSequential(inDim, layers...)
}

// NewLogistic builds the paper's logistic-regression architecture: a single
// Dense layer producing logits (softmax applied downstream). With outDim = 2
// this is the binary splitter used in the tree experiments (Fig. 6).
func NewLogistic(inDim, outDim int, rng *rand.Rand) *Sequential {
	return NewSequential(inDim, NewDense(inDim, outDim, rng))
}

// OutDim returns the model's output width (number of bins).
func (s *Sequential) OutDim() int {
	d := s.InDim
	for _, l := range s.Layers {
		d = l.OutDim(d)
	}
	return d
}

// Forward runs the model on a batch, returning logits. When train is true,
// layers cache activations for a subsequent Backward and apply
// training-only behaviour (dropout, batch statistics).
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient of the loss with respect to the logits
// back through the model, accumulating parameter gradients.
func (s *Sequential) Backward(gradLogits *tensor.Matrix) {
	g := gradLogits
	for i := len(s.Layers) - 1; i >= 0; i-- {
		g = s.Layers[i].Backward(g)
	}
}

// Params returns all trainable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total number of scalar learnable parameters
// (the quantity reported in Table 2 of the paper).
func (s *Sequential) NumParams() int {
	total := 0
	for _, p := range s.Params() {
		total += p.Size()
	}
	return total
}

// ZeroGrads clears all accumulated parameter gradients.
func (s *Sequential) ZeroGrads() {
	for _, p := range s.Params() {
		p.Grad.Zero()
	}
}

// Predict runs inference on a batch and returns bin probabilities
// (softmax over logits). The input is consumed in eval mode, so running
// batch-norm statistics are used and dropout is disabled.
func (s *Sequential) Predict(x *tensor.Matrix) *tensor.Matrix {
	logits := s.Forward(x, false)
	SoftmaxRows(logits)
	return logits
}

// PredictVec runs inference on a single vector and returns its bin
// probability distribution.
func (s *Sequential) PredictVec(v []float32) []float32 {
	x := tensor.FromSlice(1, len(v), v)
	return s.Predict(x).Row(0)
}

// SoftmaxRows converts each row of logits to a probability distribution in
// place using the max-subtraction trick for stability.
func SoftmaxRows(m *tensor.Matrix) {
	par.ForChunks(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for j, v := range row {
				e := math.Exp(float64(v - maxv))
				row[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := range row {
				row[j] *= inv
			}
		}
	})
}

// LogSoftmaxRow computes log-softmax of one logits row into dst (float64 for
// downstream loss accumulation).
func LogSoftmaxRow(dst []float64, row []float32) {
	maxv := row[0]
	for _, v := range row[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range row {
		sum += math.Exp(float64(v - maxv))
	}
	logSum := math.Log(sum) + float64(maxv)
	for j, v := range row {
		dst[j] = float64(v) - logSum
	}
}
