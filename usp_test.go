package usp

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

func clusteredVectors(seed int64, n, dim, clusters int) ([][]float32, []int) {
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: clusters, ClusterStd: 0.15, CenterBox: 4,
	}, rand.New(rand.NewSource(seed)))
	return l.Rows(), l.Labels
}

func TestBuildAndSearch(t *testing.T) {
	vecs, _ := clusteredVectors(1, 600, 8, 4)
	ix, err := Build(vecs, Options{
		Bins: 4, Epochs: 40, Hidden: []int{16}, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 600 || ix.Dim() != 8 {
		t.Fatalf("Len/Dim = %d/%d", ix.Len(), ix.Dim())
	}
	st := ix.Stats()
	if st.Bins != 4 || st.Models != 1 || st.Params == 0 {
		t.Fatalf("stats %+v", st)
	}
	// Self-query: the vector itself must be the top hit.
	res, err := ix.Search(vecs[0], 5, SearchOptions{Probes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != 0 || res[0].Distance != 0 {
		t.Fatalf("self query returned %+v", res)
	}
	// Results sorted by distance.
	for i := 1; i < len(res); i++ {
		if res[i].Distance < res[i-1].Distance {
			t.Fatal("results not sorted")
		}
	}
}

func TestSearchAllProbesIsExact(t *testing.T) {
	vecs, _ := clusteredVectors(3, 400, 6, 4)
	ix, err := Build(vecs, Options{Bins: 4, Epochs: 30, Hidden: []int{16}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.FromRowsCopy(vecs)
	gt := knn.GroundTruth(ds, ds, 10)
	for qi := 0; qi < 20; qi++ {
		res, err := ix.Search(vecs[qi], 10, SearchOptions{Probes: 4})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, len(res))
		for i, r := range res {
			ids[i] = r.ID
		}
		if r := knn.Recall(ids, gt[qi]); r != 1 {
			t.Fatalf("query %d: recall %v with all probes", qi, r)
		}
	}
}

func TestEnsembleBuild(t *testing.T) {
	vecs, _ := clusteredVectors(5, 500, 8, 4)
	ix, err := Build(vecs, Options{Bins: 4, Ensemble: 2, Epochs: 30, Hidden: []int{16}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Models != 2 {
		t.Fatalf("models = %d", ix.Stats().Models)
	}
	// Union probing yields at least as many candidates as best-confidence.
	best, err := ix.CandidateSet(vecs[0], SearchOptions{Probes: 1})
	if err != nil {
		t.Fatal(err)
	}
	union, err := ix.CandidateSet(vecs[0], SearchOptions{Probes: 1, UnionEnsemble: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(union) < len(best) {
		t.Fatalf("|union|=%d < |best|=%d", len(union), len(best))
	}
}

func TestHierarchicalBuild(t *testing.T) {
	vecs, _ := clusteredVectors(7, 600, 8, 4)
	ix, err := Build(vecs, Options{Hierarchy: []int{2, 2}, Epochs: 15, Hidden: []int{8}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Bins != 4 {
		t.Fatalf("bins = %d", ix.Stats().Bins)
	}
	res, err := ix.Search(vecs[0], 5, SearchOptions{Probes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
}

func TestBuildValidation(t *testing.T) {
	vecs, _ := clusteredVectors(9, 100, 4, 2)
	if _, err := Build(vecs[:2], Options{}); err == nil {
		t.Fatal("too-small input should fail")
	}
	if _, err := Build(vecs, Options{Hierarchy: []int{2}, Ensemble: 3}); err == nil {
		t.Fatal("hierarchy+ensemble should fail")
	}
	ix, err := Build(vecs, Options{Bins: 2, Epochs: 5, Logistic: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(vecs[0], 0, SearchOptions{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := ix.Search(make([]float32, 7), 3, SearchOptions{}); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestLogisticOption(t *testing.T) {
	vecs, _ := clusteredVectors(11, 200, 4, 2)
	ix, err := Build(vecs, Options{Bins: 2, Epochs: 20, Logistic: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4*2 + 2; ix.Stats().Params != want {
		t.Fatalf("logistic params = %d, want %d", ix.Stats().Params, want)
	}
}

func TestAddRoutesAndFinds(t *testing.T) {
	vecs, _ := clusteredVectors(17, 400, 8, 4)
	ix, err := Build(vecs, Options{Bins: 4, Epochs: 30, Hidden: []int{16}, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a copy of an existing vector, slightly perturbed: it must be
	// findable as its own nearest neighbor with a single probe.
	nv := append([]float32(nil), vecs[5]...)
	nv[0] += 0.01
	id, err := ix.Add(nv)
	if err != nil {
		t.Fatal(err)
	}
	if id != 400 {
		t.Fatalf("id = %d", id)
	}
	if ix.Len() != 401 {
		t.Fatalf("Len = %d", ix.Len())
	}
	res, err := ix.Search(nv, 1, SearchOptions{Probes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != id {
		t.Fatalf("inserted vector not found: %+v", res)
	}
	// Dimension mismatch rejected.
	if _, err := ix.Add(make([]float32, 3)); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestAddIntoHierarchy(t *testing.T) {
	vecs, _ := clusteredVectors(19, 400, 8, 4)
	ix, err := Build(vecs, Options{Hierarchy: []int{2, 2}, Epochs: 15, Hidden: []int{8}, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	nv := append([]float32(nil), vecs[9]...)
	id, err := ix.Add(nv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Search(nv, 2, SearchOptions{Probes: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted duplicate not in top-2: %+v", res)
	}
}

func TestClusterFacade(t *testing.T) {
	vecs, truth := clusteredVectors(13, 400, 4, 3)
	labels, err := Cluster(vecs, 3, Options{Epochs: 120, Hidden: []int{16}, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 400 {
		t.Fatalf("labels len %d", len(labels))
	}
	// Majority-map purity must beat chance clearly on separated blobs.
	counts := map[[2]int]int{}
	for i := range labels {
		counts[[2]int{labels[i], truth[i]}]++
	}
	correct := 0
	for c := 0; c < 3; c++ {
		best := 0
		for key, n := range counts {
			if key[0] == c && n > best {
				best = n
			}
		}
		correct += best
	}
	if purity := float64(correct) / 400; purity < 0.8 {
		t.Fatalf("purity %.3f", purity)
	}
	if _, err := Cluster(vecs[:2], 3, Options{}); err == nil {
		t.Fatal("k>n should fail")
	}
}
