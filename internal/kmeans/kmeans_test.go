package kmeans

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

func blobs(seed int64, n, dim, k int) *dataset.Labeled {
	return dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: k, ClusterStd: 0.1, CenterBox: 5,
	}, rand.New(rand.NewSource(seed)))
}

func TestRunRecoversSeparatedClusters(t *testing.T) {
	l := blobs(1, 500, 4, 4)
	res, err := Run(l.Dataset, 4, Options{Seed: 2, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Every fitted cluster should be dominated by one true cluster.
	for c := 0; c < 4; c++ {
		counts := map[int]int{}
		total := 0
		for i, a := range res.Assign {
			if int(a) == c {
				counts[l.Labels[i]]++
				total++
			}
		}
		if total == 0 {
			t.Fatalf("cluster %d empty", c)
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if float64(best)/float64(total) < 0.95 {
			t.Fatalf("cluster %d impure: %v", c, counts)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	l := blobs(3, 300, 4, 4)
	var prev float64 = -1
	for _, k := range []int{1, 2, 4, 8} {
		res, err := Run(l.Dataset, k, Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Inertia > prev*1.01 {
			t.Fatalf("inertia rose from %v to %v at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestAssignConsistentWithNearest(t *testing.T) {
	l := blobs(5, 200, 3, 3)
	res, err := Run(l.Dataset, 3, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.N; i++ {
		want := res.Nearest(l.Row(i))
		if int(res.Assign[i]) != want {
			t.Fatalf("point %d assigned %d, nearest %d", i, res.Assign[i], want)
		}
	}
}

func TestNearestKOrdering(t *testing.T) {
	l := blobs(7, 200, 3, 5)
	res, err := Run(l.Dataset, 5, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := l.Row(0)
	got := res.NearestK(q, 3)
	if len(got) != 3 {
		t.Fatalf("len %d", len(got))
	}
	var prev float32 = -1
	for _, c := range got {
		d := vecmath.SquaredL2(q, res.Centroids.Row(c))
		if d < prev {
			t.Fatal("NearestK not ascending")
		}
		prev = d
	}
	if got[0] != res.Nearest(q) {
		t.Fatal("NearestK[0] != Nearest")
	}
	if len(res.NearestK(q, 99)) != 5 {
		t.Fatal("NearestK should clamp to k")
	}
}

func TestKValidation(t *testing.T) {
	l := blobs(9, 50, 2, 2)
	if _, err := Run(l.Dataset, 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := Run(l.Dataset, 51, Options{}); err == nil {
		t.Fatal("k>n should fail")
	}
	// k == n is legal (each point its own cluster).
	if _, err := Run(l.Dataset, 50, Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMiniBatchMode(t *testing.T) {
	l := blobs(11, 400, 4, 4)
	res, err := Run(l.Dataset, 4, Options{Seed: 12, MiniBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(l.Dataset, 4, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Mini-batch must land within 2x of full Lloyd on easy blobs.
	if res.Inertia > full.Inertia*2+1 {
		t.Fatalf("mini-batch inertia %v vs full %v", res.Inertia, full.Inertia)
	}
}

func TestIndexCandidates(t *testing.T) {
	l := blobs(13, 300, 4, 4)
	ix, err := NewIndex(l.Dataset, 4, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	// Bin sizes must sum to n.
	total := 0
	for _, s := range ix.BinSizes() {
		total += s
	}
	if total != l.N {
		t.Fatalf("bin sizes sum %d", total)
	}
	// Probing all bins returns the whole dataset exactly once.
	all := ix.Candidates(l.Row(0), 4)
	if len(all) != l.N {
		t.Fatalf("|C| = %d", len(all))
	}
	seen := map[int]bool{}
	for _, i := range all {
		if seen[i] {
			t.Fatalf("duplicate %d", i)
		}
		seen[i] = true
	}
	// One probe returns the query point's own bucket.
	one := ix.Candidates(l.Row(0), 1)
	own := ix.Result.Assign[0]
	if len(one) != len(ix.Bins[own]) {
		t.Fatalf("single probe size %d, want %d", len(one), len(ix.Bins[own]))
	}
}

func TestIdenticalPointsDoNotCrash(t *testing.T) {
	d := dataset.New(20, 3)
	// All-zero dataset: every distance ties at 0.
	if _, err := Run(d, 4, Options{Seed: 15}); err != nil {
		t.Fatal(err)
	}
}
