// Package kmeans implements Lloyd's algorithm with k-means++ seeding, an
// optional mini-batch mode for large inputs, and the K-means partitioning
// index used as a baseline throughout the paper's evaluation (it is also the
// partitioner inside ScaNN and FAISS-IVF, which internal/quant and
// internal/ivfpq reuse).
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/vecmath"
)

// Options configures a clustering run.
type Options struct {
	// MaxIters bounds Lloyd iterations (default 25).
	MaxIters int
	// Tol stops early when the relative decrease of the objective falls
	// below it (default 1e-4).
	Tol float64
	// Seed drives seeding and mini-batch sampling.
	Seed int64
	// MiniBatch, when > 0, switches to mini-batch updates with that batch
	// size (Sculley 2010), used for the large hierarchical sweeps.
	MiniBatch int
	// Restarts runs the whole algorithm this many times with different
	// seeds and keeps the lowest-inertia result (default 1).
	Restarts int
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 25
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	return o
}

// Result holds fitted centroids and the assignment of every input point.
type Result struct {
	K         int
	Centroids *dataset.Dataset
	Assign    []int32
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
}

// Run clusters ds into k groups.
func Run(ds *dataset.Dataset, k int, opt Options) (*Result, error) {
	if k <= 0 || k > ds.N {
		return nil, fmt.Errorf("kmeans: k=%d out of range for n=%d", k, ds.N)
	}
	if opt.Restarts > 1 {
		var best *Result
		for r := 0; r < opt.Restarts; r++ {
			o := opt
			o.Restarts = 1
			o.Seed = opt.Seed + int64(r)*6151
			res, err := Run(ds, k, o)
			if err != nil {
				return nil, err
			}
			if best == nil || res.Inertia < best.Inertia {
				best = res
			}
		}
		return best, nil
	}
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	cents := seedPlusPlus(ds, k, rng)
	if opt.MiniBatch > 0 {
		runMiniBatch(ds, cents, k, opt, rng)
	}
	assign := make([]int32, ds.N)
	prev := math.Inf(1)
	var inertia float64
	for iter := 0; iter < opt.MaxIters; iter++ {
		inertia = assignAll(ds, cents, assign)
		updateCentroids(ds, cents, assign, k, rng)
		if prev-inertia <= opt.Tol*prev {
			break
		}
		prev = inertia
	}
	inertia = assignAll(ds, cents, assign)
	return &Result{K: k, Centroids: cents, Assign: assign, Inertia: inertia}, nil
}

// seedPlusPlus performs k-means++ initialization (Arthur & Vassilvitskii).
func seedPlusPlus(ds *dataset.Dataset, k int, rng *rand.Rand) *dataset.Dataset {
	cents := dataset.New(k, ds.Dim)
	first := rng.Intn(ds.N)
	copy(cents.Row(0), ds.Row(first))
	d2 := make([]float64, ds.N)
	for i := range d2 {
		d2[i] = float64(vecmath.SquaredL2(ds.Row(i), cents.Row(0)))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(ds.N) // all points coincide with centroids
		} else {
			r := rng.Float64() * total
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		copy(cents.Row(c), ds.Row(pick))
		par.ForChunks(ds.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if d := float64(vecmath.SquaredL2(ds.Row(i), cents.Row(c))); d < d2[i] {
					d2[i] = d
				}
			}
		})
	}
	return cents
}

// assignAll assigns each point to its nearest centroid and returns the
// objective.
func assignAll(ds *dataset.Dataset, cents *dataset.Dataset, assign []int32) float64 {
	return par.MapReduce(ds.N, func(lo, hi int) float64 {
		var local float64
		for i := lo; i < hi; i++ {
			row := ds.Row(i)
			best, bi := float32(math.MaxFloat32), 0
			for c := 0; c < cents.N; c++ {
				if d := vecmath.SquaredL2(row, cents.Row(c)); d < best {
					best, bi = d, c
				}
			}
			assign[i] = int32(bi)
			local += float64(best)
		}
		return local
	}, func(a, b float64) float64 { return a + b })
}

// updateCentroids recomputes centroids as the means of their members;
// empty clusters are re-seeded at a random point.
func updateCentroids(ds *dataset.Dataset, cents *dataset.Dataset, assign []int32, k int, rng *rand.Rand) {
	acc := make([]float64, k*ds.Dim)
	counts := make([]int, k)
	for i := 0; i < ds.N; i++ {
		c := int(assign[i])
		counts[c]++
		row := ds.Row(i)
		base := c * ds.Dim
		for j, v := range row {
			acc[base+j] += float64(v)
		}
	}
	for c := 0; c < k; c++ {
		crow := cents.Row(c)
		if counts[c] == 0 {
			copy(crow, ds.Row(rng.Intn(ds.N)))
			continue
		}
		inv := 1 / float64(counts[c])
		base := c * ds.Dim
		for j := range crow {
			crow[j] = float32(acc[base+j] * inv)
		}
	}
}

// runMiniBatch refines seeded centroids with mini-batch k-means before the
// full Lloyd polish.
func runMiniBatch(ds *dataset.Dataset, cents *dataset.Dataset, k int, opt Options, rng *rand.Rand) {
	counts := make([]float64, k)
	for iter := 0; iter < opt.MaxIters*4; iter++ {
		for b := 0; b < opt.MiniBatch; b++ {
			i := rng.Intn(ds.N)
			row := ds.Row(i)
			best, bi := float32(math.MaxFloat32), 0
			for c := 0; c < k; c++ {
				if d := vecmath.SquaredL2(row, cents.Row(c)); d < best {
					best, bi = d, c
				}
			}
			counts[bi]++
			lr := float32(1 / counts[bi])
			crow := cents.Row(bi)
			for j, v := range row {
				crow[j] += lr * (v - crow[j])
			}
		}
	}
}

// Nearest returns the index of the centroid closest to q.
func (r *Result) Nearest(q []float32) int {
	best, bi := float32(math.MaxFloat32), 0
	for c := 0; c < r.Centroids.N; c++ {
		if d := vecmath.SquaredL2(q, r.Centroids.Row(c)); d < best {
			best, bi = d, c
		}
	}
	return bi
}

// NearestK returns the indices of the mPrime closest centroids to q in
// ascending distance order.
func (r *Result) NearestK(q []float32, mPrime int) []int {
	tk := vecmath.NewTopK(minInt(mPrime, r.Centroids.N))
	for c := 0; c < r.Centroids.N; c++ {
		tk.Push(c, vecmath.SquaredL2(q, r.Centroids.Row(c)))
	}
	sorted := tk.Sorted()
	out := make([]int, len(sorted))
	for i, nb := range sorted {
		out[i] = nb.Index
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Index is the K-means space-partitioning baseline: points are bucketed by
// nearest centroid and queries probe the mPrime nearest centroids' buckets.
type Index struct {
	Result *Result
	Bins   [][]int32
}

// NewIndex clusters ds and builds the inverted bin lists.
func NewIndex(ds *dataset.Dataset, k int, opt Options) (*Index, error) {
	res, err := Run(ds, k, opt)
	if err != nil {
		return nil, err
	}
	bins := make([][]int32, k)
	for i, c := range res.Assign {
		bins[c] = append(bins[c], int32(i))
	}
	return &Index{Result: res, Bins: bins}, nil
}

// Candidates implements the shared candidate-source contract.
func (ix *Index) Candidates(q []float32, mPrime int) []int {
	var out []int
	for _, c := range ix.Result.NearestK(q, mPrime) {
		for _, i := range ix.Bins[c] {
			out = append(out, int(i))
		}
	}
	return out
}

// BinSizes returns the per-bin point counts.
func (ix *Index) BinSizes() []int {
	out := make([]int, len(ix.Bins))
	for i, b := range ix.Bins {
		out[i] = len(b)
	}
	return out
}
