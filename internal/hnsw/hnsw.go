// Package hnsw implements Hierarchical Navigable Small World graphs
// (Malkov & Yashunin 2018), the graph-based ANNS baseline of Fig. 7:
// exponentially sampled layers, greedy descent through upper layers, beam
// search (ef) at the base layer, and the distance-diversifying neighbor
// selection heuristic of the original paper.
package hnsw

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// Config controls graph construction and search.
type Config struct {
	// M is the maximum out-degree on upper layers; the base layer allows
	// 2M (default 16).
	M int
	// EfConstruction is the construction beam width (default 100).
	EfConstruction int
	// EfSearch is the default query beam width (default 50; overridable
	// per call).
	EfSearch int
	// Seed drives level sampling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 16
	}
	if c.EfConstruction == 0 {
		c.EfConstruction = 100
	}
	if c.EfSearch == 0 {
		c.EfSearch = 50
	}
	return c
}

// Index is a built HNSW graph over a dataset.
type Index struct {
	cfg  Config
	data *dataset.Dataset
	// links[l][v] lists the neighbors of v on layer l (layers above a
	// node's level have no entry for it).
	links     []map[int32][]int32
	entry     int32
	maxLevel  int
	levelMult float64
	rng       *rand.Rand
}

// Build inserts every vector of ds into a fresh index.
func Build(ds *dataset.Dataset, cfg Config) (*Index, error) {
	if ds.N == 0 {
		return nil, fmt.Errorf("hnsw: empty dataset")
	}
	cfg = cfg.withDefaults()
	ix := &Index{
		cfg:       cfg,
		data:      ds,
		levelMult: 1 / math.Log(float64(cfg.M)),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		entry:     -1,
		maxLevel:  -1,
	}
	for i := 0; i < ds.N; i++ {
		ix.insert(int32(i))
	}
	return ix, nil
}

func (ix *Index) dist(a int32, q []float32) float32 {
	return vecmath.SquaredL2(ix.data.Row(int(a)), q)
}

// randomLevel samples a node level with the standard exponential decay.
func (ix *Index) randomLevel() int {
	r := ix.rng.Float64()
	for r == 0 {
		r = ix.rng.Float64()
	}
	return int(-math.Log(r) * ix.levelMult)
}

func (ix *Index) maxDegree(layer int) int {
	if layer == 0 {
		return 2 * ix.cfg.M
	}
	return ix.cfg.M
}

// minQueue is a min-heap of (dist, id) used as the search frontier.
type item struct {
	id int32
	d  float32
}
type minQueue []item

func (h minQueue) Len() int           { return len(h) }
func (h minQueue) Less(i, j int) bool { return h[i].d < h[j].d }
func (h minQueue) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minQueue) Push(x any)        { *h = append(*h, x.(item)) }
func (h *minQueue) Pop() any          { o := *h; n := len(o); it := o[n-1]; *h = o[:n-1]; return it }

// searchLayer is Algorithm 2 of the paper: beam search with width ef on one
// layer starting from the given entry points.
func (ix *Index) searchLayer(q []float32, entries []item, ef, layer int) []item {
	visited := make(map[int32]struct{}, ef*4)
	frontier := &minQueue{}
	results := vecmath.NewTopK(ef)
	for _, e := range entries {
		if _, ok := visited[e.id]; ok {
			continue
		}
		visited[e.id] = struct{}{}
		heap.Push(frontier, e)
		results.Push(int(e.id), e.d)
	}
	for frontier.Len() > 0 {
		cur := heap.Pop(frontier).(item)
		if worst, full := results.Worst(); full && cur.d > worst {
			break
		}
		for _, nb := range ix.links[layer][cur.id] {
			if _, ok := visited[nb]; ok {
				continue
			}
			visited[nb] = struct{}{}
			d := ix.dist(nb, q)
			if worst, full := results.Worst(); !full || d < worst {
				heap.Push(frontier, item{nb, d})
				results.Push(int(nb), d)
			}
		}
	}
	sorted := results.Sorted()
	out := make([]item, len(sorted))
	for i, nb := range sorted {
		out[i] = item{int32(nb.Index), nb.Dist}
	}
	return out
}

// selectNeighbors applies the heuristic of Algorithm 4: keep a candidate
// only if it is closer to the query point than to every already-kept
// neighbor, which diversifies edge directions.
func (ix *Index) selectNeighbors(cands []item, m int) []int32 {
	var kept []item
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		ok := true
		for _, k := range kept {
			if vecmath.SquaredL2(ix.data.Row(int(c.id)), ix.data.Row(int(k.id))) < c.d {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, c)
		}
	}
	// Backfill with the nearest skipped candidates if the heuristic kept
	// too few (keepPrunedConnections in the original).
	if len(kept) < m {
		for _, c := range cands {
			if len(kept) >= m {
				break
			}
			dup := false
			for _, k := range kept {
				if k.id == c.id {
					dup = true
					break
				}
			}
			if !dup {
				kept = append(kept, c)
			}
		}
	}
	out := make([]int32, len(kept))
	for i, k := range kept {
		out[i] = k.id
	}
	return out
}

func (ix *Index) insert(v int32) {
	level := ix.randomLevel()
	for len(ix.links) <= level {
		ix.links = append(ix.links, make(map[int32][]int32))
	}
	q := ix.data.Row(int(v))

	if ix.entry < 0 {
		for l := 0; l <= level; l++ {
			ix.links[l][v] = nil
		}
		ix.entry = v
		ix.maxLevel = level
		return
	}

	// Greedy descent from the top to level+1.
	cur := item{ix.entry, ix.dist(ix.entry, q)}
	for l := ix.maxLevel; l > level; l-- {
		for {
			improved := false
			for _, nb := range ix.links[l][cur.id] {
				if d := ix.dist(nb, q); d < cur.d {
					cur = item{nb, d}
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}

	// Beam insert on layers min(level, maxLevel)..0.
	entries := []item{cur}
	for l := min(level, ix.maxLevel); l >= 0; l-- {
		cands := ix.searchLayer(q, entries, ix.cfg.EfConstruction, l)
		neighbors := ix.selectNeighbors(cands, ix.cfg.M)
		ix.links[l][v] = neighbors
		for _, nb := range neighbors {
			ix.links[l][nb] = append(ix.links[l][nb], v)
			if maxD := ix.maxDegree(l); len(ix.links[l][nb]) > maxD {
				// Re-select to shrink the over-full adjacency.
				nbVec := ix.data.Row(int(nb))
				var all []item
				for _, x := range ix.links[l][nb] {
					all = append(all, item{x, vecmath.SquaredL2(ix.data.Row(int(x)), nbVec)})
				}
				sortItems(all)
				ix.links[l][nb] = ix.selectNeighbors(all, maxD)
			}
		}
		entries = cands
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = v
	}
}

func sortItems(xs []item) {
	// Insertion sort: adjacency lists are short (≤ 2M+1).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].d < xs[j-1].d; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Search returns the k approximate nearest neighbors of q using beam width
// ef (0 uses the configured default). Distances are squared L2.
func (ix *Index) Search(q []float32, k, ef int) []vecmath.Neighbor {
	if ef <= 0 {
		ef = ix.cfg.EfSearch
	}
	if ef < k {
		ef = k
	}
	cur := item{ix.entry, ix.dist(ix.entry, q)}
	for l := ix.maxLevel; l > 0; l-- {
		for {
			improved := false
			for _, nb := range ix.links[l][cur.id] {
				if d := ix.dist(nb, q); d < cur.d {
					cur = item{nb, d}
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}
	res := ix.searchLayer(q, []item{cur}, ef, 0)
	if len(res) > k {
		res = res[:k]
	}
	out := make([]vecmath.Neighbor, len(res))
	for i, r := range res {
		out[i] = vecmath.Neighbor{Index: int(r.id), Dist: r.d}
	}
	return out
}

// Levels reports the number of layers (diagnostics).
func (ix *Index) Levels() int { return ix.maxLevel + 1 }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
