// Package ivfpq implements the FAISS-style inverted-file indexes used as the
// "FAISS" baseline in Fig. 7: a k-means coarse quantizer routes each vector
// to one of nlist inverted lists; queries scan the nprobe nearest lists
// either with exact distances (IVF-Flat) or with a product quantizer over
// residuals and per-list ADC lookup tables (IVF-PQ), followed by exact
// re-ranking.
package ivfpq

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/quant"
	"repro/internal/vecmath"
)

// Config controls index construction.
type Config struct {
	// NList is the number of inverted lists (coarse centroids).
	NList int
	// UsePQ enables residual product quantization (IVF-PQ); otherwise the
	// index stores raw vectors (IVF-Flat).
	UsePQ bool
	// PQ configures the residual quantizer when UsePQ is set.
	PQ quant.Config
	// Rerank is the number of PQ-stage survivors re-scored exactly
	// (default 10·k at query time).
	Rerank int
	// Seed drives coarse clustering.
	Seed int64
}

// Index is a built IVF index.
type Index struct {
	cfg    Config
	data   *dataset.Dataset
	coarse *kmeans.Result
	lists  [][]int32
	pq     *quant.PQ
	codes  [][]uint8 // residual codes, aligned with dataset ids
}

// Build constructs the index over ds.
func Build(ds *dataset.Dataset, cfg Config) (*Index, error) {
	if cfg.NList <= 0 {
		return nil, fmt.Errorf("ivfpq: NList must be positive")
	}
	coarse, err := kmeans.Run(ds, cfg.NList, kmeans.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("ivfpq: coarse quantizer: %w", err)
	}
	ix := &Index{cfg: cfg, data: ds, coarse: coarse, lists: make([][]int32, cfg.NList)}
	for i, c := range coarse.Assign {
		ix.lists[c] = append(ix.lists[c], int32(i))
	}
	if cfg.UsePQ {
		// Train the PQ on residuals r = x − centroid(x).
		resid := dataset.New(ds.N, ds.Dim)
		for i := 0; i < ds.N; i++ {
			vecmath.Sub(resid.Row(i), ds.Row(i), coarse.Centroids.Row(int(coarse.Assign[i])))
		}
		pq, err := quant.Train(resid, cfg.PQ)
		if err != nil {
			return nil, fmt.Errorf("ivfpq: residual quantizer: %w", err)
		}
		ix.pq = pq
		ix.codes = pq.Encode(resid)
	}
	return ix, nil
}

// Search returns the k approximate nearest neighbors of q scanning nprobe
// inverted lists. Distances are squared L2.
func (ix *Index) Search(q []float32, k, nprobe int) []vecmath.Neighbor {
	probes := ix.coarse.NearestK(q, nprobe)
	if ix.pq == nil {
		tk := vecmath.NewTopK(k)
		for _, c := range probes {
			for _, i := range ix.lists[c] {
				tk.Push(int(i), vecmath.SquaredL2(q, ix.data.Row(int(i))))
			}
		}
		return tk.Sorted()
	}
	rerank := ix.cfg.Rerank
	if rerank == 0 {
		rerank = 10 * k
	}
	if rerank < k {
		rerank = k
	}
	stage1 := vecmath.NewTopK(rerank)
	resid := make([]float32, ix.data.Dim)
	for _, c := range probes {
		// Per-list LUT over the query's residual against this centroid.
		vecmath.Sub(resid, q, ix.coarse.Centroids.Row(c))
		lut := ix.pq.BuildLUT(resid)
		for _, i := range ix.lists[c] {
			stage1.Push(int(i), lut.Distance(ix.codes[i]))
		}
	}
	stage2 := vecmath.NewTopK(k)
	for _, nb := range stage1.Sorted() {
		stage2.Push(nb.Index, vecmath.SquaredL2(q, ix.data.Row(nb.Index)))
	}
	return stage2.Sorted()
}

// CandidateCount reports how many stored vectors the nprobe nearest lists
// hold for q (the |C| axis used in the evaluation).
func (ix *Index) CandidateCount(q []float32, nprobe int) int {
	total := 0
	for _, c := range ix.coarse.NearestK(q, nprobe) {
		total += len(ix.lists[c])
	}
	return total
}
