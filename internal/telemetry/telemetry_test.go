package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", `a="b"`, "help")
	c2 := r.Counter("x_total", `a="b"`, "help")
	if c1 != c2 {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c3 := r.Counter("x_total", `a="c"`, "help")
	if c3 == c1 {
		t.Fatal("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a key as a different kind did not panic")
		}
	}()
	r.Gauge("x_total", `a="b"`, "help")
}

// promLine matches one valid Prometheus text-format line: a comment or
// name{labels} value.
var promLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9eE.+\-]+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf)$`)

// validatePrometheus asserts every line is well-formed and that each family
// has exactly one TYPE header appearing before its samples.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			if typed[name] {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			typed[name] = true
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "", "Requests.").Add(7)
	r.Counter("t_requests_by_total", `endpoint="/a"`, "By endpoint.").Add(3)
	r.Counter("t_requests_by_total", `endpoint="/b"`, "By endpoint.").Add(4)
	r.Gauge("t_temp", "", "A gauge.").Set(1.5)
	r.GaugeFunc("t_live", "", "Polled.", func() float64 { return 12 })
	h := r.Histogram("t_latency_seconds", "", "Latency.", NanosToSeconds)
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(50_000 + i*1000)) // 50µs..1.05ms
	}

	text := string(AppendPrometheus(nil, r))
	validatePrometheus(t, text)

	for _, want := range []string{
		"t_requests_total 7",
		`t_requests_by_total{endpoint="/a"} 3`,
		`t_requests_by_total{endpoint="/b"} 4`,
		"t_temp 1.5",
		"t_live 12",
		`t_latency_seconds_bucket{le="+Inf"} 1000`,
		"t_latency_seconds_count 1000",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}

	// Histogram buckets must be cumulative and non-decreasing, and the
	// le bounds must increase.
	prevCount, prevLe := uint64(0), -1.0
	seenBuckets := 0
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "t_latency_seconds_bucket{le=\"") {
			continue
		}
		seenBuckets++
		rest := strings.TrimPrefix(line, "t_latency_seconds_bucket{le=\"")
		leStr, countStr, _ := strings.Cut(rest, "\"} ")
		n, err := strconv.ParseUint(countStr, 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", line, err)
		}
		if n < prevCount {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prevCount)
		}
		prevCount = n
		if leStr != "+Inf" {
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil || le <= prevLe {
				t.Fatalf("le bounds not increasing at %q (prev %g, err %v)", line, prevLe, err)
			}
			prevLe = le
		}
	}
	if seenBuckets < 3 {
		t.Fatalf("expected several bucket lines, got %d", seenBuckets)
	}
}

func TestEmptyHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("t_empty_seconds", "", "Never observed.", NanosToSeconds)
	text := string(AppendPrometheus(nil, r))
	validatePrometheus(t, text)
	for _, want := range []string{
		`t_empty_seconds_bucket{le="+Inf"} 0`,
		"t_empty_seconds_sum 0",
		"t_empty_seconds_count 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("empty histogram missing %q in:\n%s", want, text)
		}
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "", "").Add(5)
	h := r.Histogram("t_lat_seconds", "", "", NanosToSeconds)
	h.Observe(1_000_000) // 1ms
	var buf strings.Builder
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &m); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	if m["t_total"].(float64) != 5 {
		t.Fatalf("t_total = %v", m["t_total"])
	}
	lat := m["t_lat_seconds"].(map[string]any)
	if lat["count"].(float64) != 1 {
		t.Fatalf("histogram count = %v", lat["count"])
	}
	if p50 := lat["p50"].(float64); p50 < 0.0005 || p50 > 0.002 {
		t.Fatalf("p50 = %v, want ≈ 0.001", p50)
	}
}

// TestConcurrentHammer drives counters, gauges, and histograms from many
// goroutines while exposition and quantile extraction run concurrently —
// the -race gate over the whole recording/reading surface.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("h_total", "", "")
	g := r.Gauge("h_gauge", "", "")
	h := r.Histogram("h_lat_seconds", "", "", NanosToSeconds)
	r.GaugeFunc("h_fn", "", "", func() float64 { return float64(c.Value()) })

	const workers, ops = 8, 20_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(uint64(w*1000 + i))
			}
		}(w)
	}
	// Concurrent readers: exposition, JSON, quantiles, and late
	// registration racing the writers.
	var rg sync.WaitGroup
	for rdr := 0; rdr < 4; rdr++ {
		rg.Add(1)
		go func(rdr int) {
			defer rg.Done()
			for i := 0; i < 50; i++ {
				_ = AppendPrometheus(nil, r)
				_ = JSONSnapshot(r)
				_ = h.Quantile(0.99)
				r.Counter("h_late_total", `r="`+strconv.Itoa(rdr)+`"`, "").Inc()
				time.Sleep(time.Microsecond)
			}
		}(rdr)
	}
	wg.Wait()
	rg.Wait()
	if c.Value() != workers*ops {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*ops)
	}
	if h.Count() != workers*ops {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*ops)
	}
}

func TestHTTPMiddlewareAndHandler(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg)
	ok := hm.Wrap("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fine"))
	})
	bad := hm.Wrap("/bad", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok(rec, httptest.NewRequest("GET", "/ok", nil))
	}
	rec := httptest.NewRecorder()
	bad(rec, httptest.NewRequest("GET", "/bad", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("wrapped handler status = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	validatePrometheus(t, text)
	for _, want := range []string{
		`http_requests_total{endpoint="/ok"} 3`,
		`http_requests_total{endpoint="/bad"} 1`,
		`http_request_errors_total{endpoint="/bad"} 1`,
		`http_request_latency_seconds_count{endpoint="/ok"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("middleware metrics missing %q in:\n%s", want, text)
		}
	}
	if strings.Contains(text, `http_request_errors_total{endpoint="/ok"} 1`) {
		t.Error("error counter incremented for a 200 response")
	}

	rec = httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("JSON handler output does not parse: %v", err)
	}
	if m[`http_requests_total{endpoint="/ok"}`].(float64) != 3 {
		t.Fatalf("JSON snapshot wrong: %v", m)
	}
}
