package usp

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/vecmath"
)

// shardSearchMerged fans a query over the shards and merges the per-shard
// top-k exactly the way the serving front does: offset each shard's local
// ids into the global space, then run the bounded (distance, id) merge.
func shardSearchMerged(t *testing.T, shards []*Index, q []float32, k int, opt SearchOptions) []Result {
	t.Helper()
	lists := make([][]vecmath.Neighbor, len(shards))
	for si, sh := range shards {
		rs, err := sh.Search(q, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		ns := make([]vecmath.Neighbor, len(rs))
		for i, r := range rs {
			ns[i] = vecmath.Neighbor{Index: sh.IDOffset() + r.ID, Dist: r.Distance}
		}
		lists[si] = ns
	}
	merged := vecmath.MergeSortedNeighbors(nil, k, lists...)
	out := make([]Result, len(merged))
	for i, n := range merged {
		out[i] = Result{ID: n.Index, Distance: n.Dist}
	}
	return out
}

// requireShardedIdentical asserts that the merged fan-out answer over the
// shards is bit-identical (ids, order, and float distance bits) to the
// parent's single-process answer, across probe configurations.
func requireShardedIdentical(t *testing.T, parent *Index, shards []*Index, queries [][]float32, opts []SearchOptions, label string) {
	t.Helper()
	for _, opt := range opts {
		for qi, q := range queries {
			want, err := parent.Search(q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			got := shardSearchMerged(t, shards, q, 10, opt)
			if len(got) != len(want) {
				t.Fatalf("%s %+v q%d: %d merged results, want %d", label, opt, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s %+v q%d result %d: merged %+v, single-process %+v",
						label, opt, qi, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardMergeBitIdentical is the acceptance test for the sharded serving
// tier: splitting a built index into disjoint shards and merging their
// per-shard top-k must reproduce the single-process answer bit-for-bit —
// including when the source carries pending spill inserts and tombstones,
// for both index architectures and several shard counts.
func TestShardMergeBitIdentical(t *testing.T) {
	probeOpts := []SearchOptions{
		{Probes: 1},
		{Probes: 2},
		{Probes: 2, UnionEnsemble: true},
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"ensemble", Options{Bins: 4, Ensemble: 2, Epochs: 25, Hidden: []int{16}, Seed: 11, CompactAfter: -1}},
		{"hierarchy", Options{Hierarchy: []int{2, 2}, Epochs: 15, Hidden: []int{8}, Seed: 11, CompactAfter: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vecs, _ := clusteredVectors(211, 500, 8, 4)
			ix, err := Build(vecs, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			// Pending inserts and deletes must be folded into the shards.
			churn(t, ix, vecs, 80, 50, 212)

			for _, m := range []int{2, 3} {
				shards, err := ix.Shard(m)
				if err != nil {
					t.Fatal(err)
				}
				total := 0
				for si, sh := range shards {
					if sh.Dim() != ix.Dim() {
						t.Fatalf("shard %d dim %d, want %d", si, sh.Dim(), ix.Dim())
					}
					total += sh.Len()
				}
				if total != ix.Len() {
					t.Fatalf("shards hold %d live rows, parent holds %d", total, ix.Len())
				}
				requireShardedIdentical(t, ix, shards, vecs[:50], probeOpts, tc.name)
			}
		})
	}
}

// TestShardMergeQuantized extends the bit-equality guarantee to quantized
// indexes: shards share the parent's codebooks and inherit its code rows,
// so both the ADC pass and the exact re-rank agree with the parent.
func TestShardMergeQuantized(t *testing.T) {
	vecs, _ := clusteredVectors(223, 600, 16, 4)
	ix, err := Build(vecs, Options{
		Bins: 4, Epochs: 25, Hidden: []int{16}, Seed: 13, CompactAfter: -1,
		Quantize: Quantization{Enabled: true, Subspaces: 8, K: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ix.Shard(3)
	if err != nil {
		t.Fatal(err)
	}

	// Full re-rank: every candidate is exactly re-scored, so the merge is
	// over exact (tie-free) distances — full bit-equality holds.
	requireShardedIdentical(t, ix, shards, vecs[:40],
		[]SearchOptions{{Probes: 2, RerankK: 1 << 20}}, "quantized-full-rerank")

	// Pure ADC: shards inherit the parent's code rows and share its
	// codebooks, so per-candidate ADC distances are identical; ids may swap
	// only where ADC distances collide (rows with equal codes).
	for qi, q := range vecs[:40] {
		opt := SearchOptions{Probes: 2, RerankK: -1}
		want, err := ix.Search(q, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := shardSearchMerged(t, shards, q, 10, opt)
		if len(got) != len(want) {
			t.Fatalf("adc q%d: %d merged results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].Distance != want[i].Distance {
				t.Fatalf("adc q%d rank %d: distance %x, want %x",
					qi, i, got[i].Distance, want[i].Distance)
			}
		}
	}

	// Bounded two-phase re-rank is the one mode that is not bit-decomposable:
	// each shard exactly re-scores its own local ADC top-R, a superset of the
	// parent's global ADC top-R, so the merged answer can only improve — at
	// every rank its exact distance is ≤ the single-process one.
	for qi, q := range vecs[:40] {
		opt := SearchOptions{Probes: 2}
		want, err := ix.Search(q, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := shardSearchMerged(t, shards, q, 10, opt)
		if len(got) != len(want) {
			t.Fatalf("two-phase q%d: %d merged results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].Distance > want[i].Distance {
				t.Fatalf("two-phase q%d rank %d: merged distance %v worse than single-process %v",
					qi, i, got[i].Distance, want[i].Distance)
			}
		}
	}
}

// TestShardLifecycleState verifies the shards are live indexes in their own
// right: ids deleted in the parent stay rejected, surviving rows can still
// be deleted locally, and new rows can be added.
func TestShardLifecycleState(t *testing.T) {
	vecs, _ := clusteredVectors(227, 300, 8, 3)
	ix, err := Build(vecs, Options{Bins: 4, Epochs: 20, Hidden: []int{8}, Seed: 17, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(10); err != nil { // lands in shard 0
		t.Fatal(err)
	}
	if err := ix.Delete(200); err != nil { // lands in shard 1
		t.Fatal(err)
	}
	shards, err := ix.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := shards[0].IDOffset(); got != 0 {
		t.Fatalf("shard 0 IDOffset = %d, want 0", got)
	}
	if got := shards[1].IDOffset(); got != 150 {
		t.Fatalf("shard 1 IDOffset = %d, want 150", got)
	}
	if err := shards[0].Delete(10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("re-delete of parent-deleted id: got %v, want ErrNotFound", err)
	}
	if err := shards[1].Delete(200 - 150); !errors.Is(err, ErrNotFound) {
		t.Fatalf("re-delete in shard 1: got %v, want ErrNotFound", err)
	}
	if err := shards[0].Delete(11); err != nil {
		t.Fatalf("deleting a live row in a shard: %v", err)
	}
	if _, err := shards[1].Add(vecs[0]); err != nil {
		t.Fatalf("adding to a shard: %v", err)
	}
}

// TestShardSnapshotRoundTrip: a shard survives Save/Load with its id offset
// intact and keeps serving bit-identical results.
func TestShardSnapshotRoundTrip(t *testing.T) {
	vecs, _ := clusteredVectors(229, 400, 8, 4)
	ix, err := Build(vecs, Options{Bins: 4, Epochs: 20, Hidden: []int{8}, Seed: 19, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ix.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := shards[1].Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.IDOffset() != shards[1].IDOffset() {
		t.Fatalf("loaded IDOffset = %d, want %d", loaded.IDOffset(), shards[1].IDOffset())
	}
	requireIdentical(t, shards[1], loaded, vecs[:30], "shard-snapshot")

	// Re-sharding a shard composes offsets into the original id space.
	sub, err := loaded.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	if sub[0].IDOffset() != loaded.IDOffset() || sub[1].IDOffset() != loaded.IDOffset()+100 {
		t.Fatalf("composed offsets %d/%d, want %d/%d",
			sub[0].IDOffset(), sub[1].IDOffset(), loaded.IDOffset(), loaded.IDOffset()+100)
	}
}

// TestShardValidation pins the error contract.
func TestShardValidation(t *testing.T) {
	vecs, _ := clusteredVectors(233, 100, 8, 2)
	ix, err := Build(vecs, Options{Bins: 2, Epochs: 10, Hidden: []int{8}, Seed: 23, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Shard(0); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Shard(0): got %v, want ErrInvalid", err)
	}
	if _, err := ix.Shard(101); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Shard(n+1): got %v, want ErrInvalid", err)
	}

	qix, err := Build(vecs, Options{Bins: 2, Epochs: 10, Hidden: []int{8}, Seed: 23,
		Quantize: Quantization{Enabled: true, Subspaces: 4, K: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := qix.DropFloats(); err != nil {
		t.Fatal(err)
	}
	if _, err := qix.Shard(2); err == nil {
		t.Fatal("sharding a memory-tight index must fail")
	}
}
