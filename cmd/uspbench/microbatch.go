package main

import (
	"sync"
	"time"

	usp "repro"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// microbatchBench is the server-side micro-batching section of the serving
// report: the same concurrent client load driven through serve.Server's
// policy entry point at a sweep of batch-window settings, window 0 being
// the no-scheduler baseline every other point is compared against.
type microbatchBench struct {
	Clients int               `json:"clients"`
	K       int               `json:"k"`
	Probes  int               `json:"probes"`
	Points  []microbatchPoint `json:"points"`
}

// microbatchPoint is one batch-window setting of the sweep.
type microbatchPoint struct {
	WindowUs float64 `json:"window_us"`
	QPS      float64 `json:"qps"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	// MeanBatch is usp_batch_size sum/count — the average number of
	// requests per scheduler flush (0 when the scheduler is off).
	MeanBatch float64 `json:"mean_batch"`
	// Flush counts by trigger, from usp_batch_flush_total. "fast" is the
	// group-commit flush taken when every in-flight request is already in
	// the batch.
	FlushFull   uint64 `json:"flush_full"`
	FlushFast   uint64 `json:"flush_fast"`
	FlushWindow uint64 `json:"flush_window"`
	FlushDrain  uint64 `json:"flush_drain"`
}

// runMicrobatchBench sweeps the micro-batch collection window under a fixed
// concurrent load, in-process (no HTTP) so the scheduler itself is what is
// measured.
func runMicrobatchBench(ix *usp.Index, qrows [][]float32, k, probes int, logf func(string, ...any)) (*microbatchBench, error) {
	const clients, rounds = 8, 4
	rep := &microbatchBench{Clients: clients, K: k, Probes: probes}
	for _, window := range []time.Duration{0, 100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond} {
		logf("serving bench: micro-batch point window=%s...", window)
		s := serve.New(ix, serve.Config{BatchWindow: window, BatchMax: 64})
		hists := make([]*telemetry.Histogram, clients)
		for c := range hists {
			hists[c] = telemetry.NewHistogram("bench_mb_latency_seconds", "", "", telemetry.NanosToSeconds)
		}
		var (
			wg       sync.WaitGroup
			errOnce  sync.Once
			firstErr error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lat := hists[c]
				off := c * 17 % len(qrows)
				for r := 0; r < rounds; r++ {
					for qi := range qrows {
						qStart := time.Now()
						if _, _, err := s.Search(qrows[(qi+off)%len(qrows)], k, probes, 0); err != nil {
							errOnce.Do(func() { firstErr = err })
							return
						}
						lat.ObserveDuration(time.Since(qStart))
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		s.Close()
		if firstErr != nil {
			return nil, firstErr
		}
		merged := hists[0]
		for _, h := range hists[1:] {
			merged.Merge(h)
		}
		pt := microbatchPoint{
			WindowUs: float64(window) / 1e3,
			QPS:      float64(clients*rounds*len(qrows)) / elapsed,
			P50Us:    merged.Quantile(0.50) / 1e3,
			P99Us:    merged.Quantile(0.99) / 1e3,
		}
		if window > 0 {
			reg := s.Registry()
			bs := reg.Histogram("usp_batch_size", "", "Requests per micro-batch scheduler flush.", 1)
			if n := bs.Count(); n > 0 {
				pt.MeanBatch = float64(bs.Sum()) / float64(n)
			}
			pt.FlushFull = reg.Counter("usp_batch_flush_total", `reason="full"`, "Micro-batch flushes by trigger.").Value()
			pt.FlushFast = reg.Counter("usp_batch_flush_total", `reason="fast"`, "Micro-batch flushes by trigger.").Value()
			pt.FlushWindow = reg.Counter("usp_batch_flush_total", `reason="window"`, "Micro-batch flushes by trigger.").Value()
			pt.FlushDrain = reg.Counter("usp_batch_flush_total", `reason="drain"`, "Micro-batch flushes by trigger.").Value()
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
