package telemetry

import (
	"net/http"
	"time"
)

// Handler returns an http.Handler serving the metrics of the given
// registries: Prometheus text by default, the JSON snapshot with
// ?format=json. Mount it at /metrics.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, regs...)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, regs...)
	})
}

// HTTPMetrics instruments HTTP endpoints with per-endpoint request counts,
// error counts (status ≥ 400), and a latency histogram, all registered in
// one Registry under an `endpoint` label.
type HTTPMetrics struct {
	reg *Registry
}

// NewHTTPMetrics returns middleware registering into reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics { return &HTTPMetrics{reg: reg} }

// Wrap instruments next under the given endpoint label. Metrics register at
// wrap time (setup path); per-request recording is a few atomic adds plus
// one small allocation for the status-capturing writer — request handling
// is not the zero-allocation discipline's hot path, the query engine is.
func (hm *HTTPMetrics) Wrap(endpoint string, next http.HandlerFunc) http.HandlerFunc {
	labels := `endpoint="` + endpoint + `"`
	reqs := hm.reg.Counter("http_requests_total", labels,
		"HTTP requests served, by endpoint.")
	errs := hm.reg.Counter("http_request_errors_total", labels,
		"HTTP responses with status >= 400, by endpoint.")
	lat := hm.reg.Histogram("http_request_latency_seconds", labels,
		"HTTP request handling latency, by endpoint.", NanosToSeconds)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next(sw, r)
		reqs.Inc()
		if sw.status >= 400 {
			errs.Inc()
		}
		lat.ObserveDuration(time.Since(start))
	}
}

// statusWriter captures the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}
