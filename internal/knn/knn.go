// Package knn implements exact k-nearest-neighbor computation: brute-force
// single queries, batched all-pairs construction of the k′-NN matrix the
// offline phase needs (Fig. 2 of the paper), ground-truth generation for
// query sets, and the k-NN accuracy metric (Eq. 1).
package knn

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/vecmath"
)

// Search returns the k nearest neighbors of query within base by exhaustive
// scan, sorted by ascending distance.
func Search(base *dataset.Dataset, query []float32, k int) []vecmath.Neighbor {
	return SearchSubset(base, nil, query, k)
}

// SearchSubset scans only the rows of base listed in subset (all rows when
// subset is nil) and returns the k nearest, sorted by ascending distance.
// This is the candidate-set scan of the online phase (Alg. 2, step 3).
func SearchSubset(base *dataset.Dataset, subset []int, query []float32, k int) []vecmath.Neighbor {
	tk := vecmath.NewTopK(k)
	if subset == nil {
		for i := 0; i < base.N; i++ {
			tk.Push(i, vecmath.SquaredL2(query, base.Row(i)))
		}
	} else {
		for _, i := range subset {
			tk.Push(i, vecmath.SquaredL2(query, base.Row(i)))
		}
	}
	return tk.Sorted()
}

// SearchSubsetInto is the zero-allocation candidate scan of the batched
// query engine: it scans the rows listed in subset, retains the k nearest in
// the caller's TopK selector, and appends them (ascending distance) to dst.
// When base carries a squared-norm cache (dataset.EnsureSqNorms), each row
// costs one fused dot product (‖x‖² − 2q·x + ‖q‖²) instead of a
// subtract-square pass; otherwise it falls back to the direct kernel.
// Ids present in skip (the epoch's tombstone set; nil when no deletes are
// pending) are excluded from the result — candidate gathering stays
// branch-free and the filter costs one bit test per candidate, only on
// indexes that actually carry tombstones. Steady-state the call allocates
// nothing beyond growth of dst.
func SearchSubsetInto(dst []vecmath.Neighbor, base *dataset.Dataset, subset []int32, query []float32, k int, tk *vecmath.TopK, skip *bitset.Set) []vecmath.Neighbor {
	dst, _ = SearchSubsetIntoCounted(dst, base, subset, query, k, tk, skip)
	return dst
}

// SearchSubsetIntoCounted is SearchSubsetInto plus accounting: it also
// returns how many candidate ids the tombstone filter dropped — the waste
// metric telemetry tracks to decide when pending deletes warrant a
// compaction. The count costs one increment on the (already-branching)
// skip path only; the tombstone-free fast paths are unchanged.
func SearchSubsetIntoCounted(dst []vecmath.Neighbor, base *dataset.Dataset, subset []int32, query []float32, k int, tk *vecmath.TopK, skip *bitset.Set) ([]vecmath.Neighbor, int) {
	tk.SetK(k)
	skipped := 0
	switch {
	case base.SqNorms != nil && skip.Count() > 0:
		qNorm := vecmath.Dot(query, query)
		for _, i := range subset {
			if skip.Has(int(i)) {
				skipped++
				continue
			}
			tk.Push(int(i), vecmath.SquaredL2Fused(query, base.Row(int(i)), qNorm, base.SqNorms[i]))
		}
	case base.SqNorms != nil:
		qNorm := vecmath.Dot(query, query)
		for _, i := range subset {
			tk.Push(int(i), vecmath.SquaredL2Fused(query, base.Row(int(i)), qNorm, base.SqNorms[i]))
		}
	case skip.Count() > 0:
		for _, i := range subset {
			if skip.Has(int(i)) {
				skipped++
				continue
			}
			tk.Push(int(i), vecmath.SquaredL2(query, base.Row(int(i))))
		}
	default:
		for _, i := range subset {
			tk.Push(int(i), vecmath.SquaredL2(query, base.Row(int(i))))
		}
	}
	return tk.AppendSorted(dst), skipped
}

// SearchSubsetADCInto is the quantized counterpart of SearchSubsetInto:
// instead of streaming float rows it scores each candidate from its
// m-byte PQ code via the per-query flat lookup table lut (m rows of kTab
// floats; see vecmath.LUTSum), retaining the k best approximate distances
// in the caller's TopK selector and appending them (ascending) to dst.
// The tombstone skip hook behaves identically to the float scan.
func SearchSubsetADCInto(dst []vecmath.Neighbor, codes []uint8, m, kTab int, lut []float32, subset []int32, k int, tk *vecmath.TopK, skip *bitset.Set) []vecmath.Neighbor {
	dst, _ = SearchSubsetADCIntoCounted(dst, codes, m, kTab, lut, subset, k, tk, skip)
	return dst
}

// SearchSubsetADCIntoCounted is SearchSubsetADCInto plus the same
// skipped-tombstone accounting as SearchSubsetIntoCounted. codes is the
// flat row-major code buffer (row i at codes[i*m:(i+1)*m]); it must cover
// every id in subset. Steady-state the call allocates nothing beyond
// growth of dst.
func SearchSubsetADCIntoCounted(dst []vecmath.Neighbor, codes []uint8, m, kTab int, lut []float32, subset []int32, k int, tk *vecmath.TopK, skip *bitset.Set) ([]vecmath.Neighbor, int) {
	tk.SetK(k)
	skipped := 0
	if skip.Count() > 0 {
		for _, i := range subset {
			if skip.Has(int(i)) {
				skipped++
				continue
			}
			tk.Push(int(i), vecmath.LUTSum(lut, kTab, codes[int(i)*m:(int(i)+1)*m]))
		}
	} else {
		for _, i := range subset {
			tk.Push(int(i), vecmath.LUTSum(lut, kTab, codes[int(i)*m:(int(i)+1)*m]))
		}
	}
	return tk.AppendSorted(dst), skipped
}

// Matrix is the k′-NN matrix of §4.2.1: row i lists the indices of the k′
// nearest neighbors of point i within the dataset (excluding i itself),
// ordered by ascending distance.
type Matrix struct {
	K         int
	Neighbors [][]int32
}

// BuildMatrix computes the exact k′-NN matrix by blocked brute force,
// parallelized over points. This is the paper's only preprocessing step.
func BuildMatrix(base *dataset.Dataset, k int) *Matrix {
	if k <= 0 || k >= base.N {
		panic(fmt.Sprintf("knn: BuildMatrix k=%d out of range for n=%d", k, base.N))
	}
	nbrs := make([][]int32, base.N)
	par.ForChunks(base.N, func(lo, hi int) {
		tk := vecmath.NewTopK(k)
		for i := lo; i < hi; i++ {
			q := base.Row(i)
			tk.Reset()
			for j := 0; j < base.N; j++ {
				if j == i {
					continue
				}
				tk.Push(j, vecmath.SquaredL2(q, base.Row(j)))
			}
			sorted := tk.Sorted()
			row := make([]int32, len(sorted))
			for x, nb := range sorted {
				row[x] = int32(nb.Index)
			}
			nbrs[i] = row
		}
	})
	return &Matrix{K: k, Neighbors: nbrs}
}

// GroundTruth computes, for each query, the indices of its k true nearest
// neighbors in base (ascending distance). Used to score every method's
// k-NN accuracy.
func GroundTruth(base, queries *dataset.Dataset, k int) [][]int32 {
	out := make([][]int32, queries.N)
	par.ForChunks(queries.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ns := Search(base, queries.Row(i), k)
			row := make([]int32, len(ns))
			for x, nb := range ns {
				row[x] = int32(nb.Index)
			}
			out[i] = row
		}
	})
	return out
}

// Recall computes the k-NN accuracy of Eq. 1: the fraction of the true
// neighbors present among the returned indices.
func Recall(returned []int, truth []int32) float64 {
	if len(truth) == 0 {
		return 0
	}
	set := make(map[int32]struct{}, len(returned))
	for _, r := range returned {
		set[int32(r)] = struct{}{}
	}
	hit := 0
	for _, t := range truth {
		if _, ok := set[t]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// RecallNeighbors is Recall over a []vecmath.Neighbor result.
func RecallNeighbors(returned []vecmath.Neighbor, truth []int32) float64 {
	ids := make([]int, len(returned))
	for i, n := range returned {
		ids[i] = n.Index
	}
	return Recall(ids, truth)
}
