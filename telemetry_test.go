package usp

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// buildTelemetryIndex trains a small index for telemetry-wiring tests.
func buildTelemetryIndex(t *testing.T) (*Index, *dataset.Labeled) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	corpus := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 400, Dim: 16, Clusters: 8, ClusterStd: 0.5, CenterBox: 3,
	}, rng)
	ix, err := Build(corpus.Rows(), Options{
		Bins: 8, Ensemble: 2, Epochs: 8, Hidden: []int{16}, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, corpus
}

// counterValue reads one counter from the index registry's JSON snapshot.
func counterValue(t *testing.T, ix *Index, name string) uint64 {
	t.Helper()
	v, ok := telemetry.JSONSnapshot(ix.Telemetry())[name]
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	u, ok := v.(uint64)
	if !ok {
		t.Fatalf("metric %s is %T, want uint64", name, v)
	}
	return u
}

// TestQueryTelemetry: the query path must account queries, candidates,
// probed bins, tombstone skips, and latency samples exactly.
func TestQueryTelemetry(t *testing.T) {
	ix, corpus := buildTelemetryIndex(t)
	s := ix.NewSearcher()
	dst := make([]Result, 0, 5)

	const nq = 20
	wantCands := uint64(0)
	for qi := 0; qi < nq; qi++ {
		var err error
		dst, err = s.SearchInto(dst[:0], corpus.Row(qi), 5, SearchOptions{Probes: 2})
		if err != nil {
			t.Fatal(err)
		}
		wantCands += uint64(s.Scanned())
	}

	if got := counterValue(t, ix, "usp_queries_total"); got != nq {
		t.Errorf("usp_queries_total = %d, want %d", got, nq)
	}
	if got := counterValue(t, ix, "usp_query_candidates_total"); got != wantCands {
		t.Errorf("usp_query_candidates_total = %d, want %d", got, wantCands)
	}
	// Best-confidence with probes=2 scans 2 bins per query.
	if got := counterValue(t, ix, "usp_query_bins_probed_total"); got != 2*nq {
		t.Errorf("usp_query_bins_probed_total = %d, want %d", got, 2*nq)
	}
	if got := counterValue(t, ix, "usp_query_tombstones_skipped_total"); got != 0 {
		t.Errorf("usp_query_tombstones_skipped_total = %d before any delete", got)
	}
	lat := telemetry.JSONSnapshot(ix.Telemetry())["usp_query_latency_seconds"].(map[string]any)
	if lat["count"].(uint64) != nq {
		t.Errorf("latency histogram count = %v, want %d", lat["count"], nq)
	}

	// Union mode probes every ensemble member.
	if _, err := s.SearchInto(dst[:0], corpus.Row(0), 5, SearchOptions{Probes: 2, UnionEnsemble: true}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, ix, "usp_query_bins_probed_total"); got != 2*nq+4 {
		t.Errorf("union query: usp_query_bins_probed_total = %d, want %d", got, 2*nq+4)
	}

	// Validation failures count as errors, not queries.
	if _, err := s.SearchInto(dst[:0], corpus.Row(0)[:3], 5, SearchOptions{}); err == nil {
		t.Fatal("short query accepted")
	}
	if _, err := s.SearchInto(dst[:0], corpus.Row(0), 0, SearchOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if got := counterValue(t, ix, "usp_query_errors_total"); got != 2 {
		t.Errorf("usp_query_errors_total = %d, want 2", got)
	}
	if got := counterValue(t, ix, "usp_queries_total"); got != nq+1 {
		t.Errorf("usp_queries_total after errors = %d, want %d", got, nq+1)
	}
}

// TestLifecycleTelemetry: Add/Delete/Compact must move the lifecycle
// counters, the tombstone-skip counter must reflect filtered scan work, and
// the epoch-publish counter must track every publication.
func TestLifecycleTelemetry(t *testing.T) {
	ix, corpus := buildTelemetryIndex(t)
	basePub := counterValue(t, ix, "usp_epoch_publishes_total")
	if basePub != 1 {
		t.Errorf("initial publishes = %d, want 1 (the build)", basePub)
	}

	// Add a near-duplicate, find it, delete it, search again (the scan now
	// has to skip its tombstone), compact, and verify the ledger.
	vec := append([]float32(nil), corpus.Row(3)...)
	vec[0] += 0.01
	id, err := ix.Add(vec)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	if _, err := s.Search(vec, 3, SearchOptions{Probes: 2}); err != nil {
		t.Fatal(err)
	}
	if s.Skipped() == 0 {
		t.Error("query near a fresh tombstone skipped nothing")
	}
	if got := counterValue(t, ix, "usp_query_tombstones_skipped_total"); got != uint64(s.Skipped()) {
		t.Errorf("usp_query_tombstones_skipped_total = %d, want %d", got, s.Skipped())
	}

	ix.Compact()
	ix.Compact() // second run: nothing pending → noop counter

	if got := counterValue(t, ix, "usp_adds_total"); got != 1 {
		t.Errorf("usp_adds_total = %d, want 1", got)
	}
	if got := counterValue(t, ix, "usp_deletes_total"); got != 1 {
		t.Errorf("usp_deletes_total = %d, want 1", got)
	}
	if got := counterValue(t, ix, "usp_compactions_total"); got != 1 {
		t.Errorf("usp_compactions_total = %d, want 1", got)
	}
	if got := counterValue(t, ix, "usp_compaction_noops_total"); got != 1 {
		t.Errorf("usp_compaction_noops_total = %d, want 1", got)
	}
	// build + add + delete + one real compaction = 4 publications.
	if got := counterValue(t, ix, "usp_epoch_publishes_total"); got != 4 {
		t.Errorf("usp_epoch_publishes_total = %d, want 4", got)
	}
	snap := telemetry.JSONSnapshot(ix.Telemetry())
	if c := snap["usp_compaction_latency_seconds"].(map[string]any)["count"].(uint64); c != 1 {
		t.Errorf("compaction latency samples = %d, want 1", c)
	}
	if age := snap["usp_epoch_age_seconds"].(float64); age < 0 || age > 60 {
		t.Errorf("usp_epoch_age_seconds = %v, want small and non-negative", age)
	}
	if live := snap["usp_live_vectors"].(float64); live != 400 {
		t.Errorf("usp_live_vectors = %v, want 400 (add was deleted)", live)
	}
	if dead := snap["usp_dead_rows"].(float64); dead != 1 {
		t.Errorf("usp_dead_rows = %v, want 1 after compaction", dead)
	}

	if ix.EpochAge() < 0 {
		t.Errorf("EpochAge negative: %v", ix.EpochAge())
	}
}

// TestTelemetryPrometheusExposition: the registry must render the core
// series as Prometheus text.
func TestTelemetryPrometheusExposition(t *testing.T) {
	ix, corpus := buildTelemetryIndex(t)
	if _, err := ix.Search(corpus.Row(0), 5, SearchOptions{Probes: 2}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, ix.Telemetry()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE usp_query_latency_seconds histogram",
		`usp_query_latency_seconds_bucket{le="+Inf"} 1`,
		"usp_query_latency_seconds_count 1",
		"usp_queries_total 1",
		"usp_query_candidates_total",
		"usp_rows 400",
		"usp_pending_inserts 0",
		"usp_tombstones 0",
		"# TYPE usp_compactions_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSearchBatchTelemetry: batch queries record per-query metrics through
// the pooled Searchers, concurrently.
func TestSearchBatchTelemetry(t *testing.T) {
	ix, corpus := buildTelemetryIndex(t)
	queries := make([][]float32, 50)
	for i := range queries {
		queries[i] = corpus.Row(i)
	}
	if _, err := ix.SearchBatch(queries, 5, SearchOptions{Probes: 2}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, ix, "usp_queries_total"); got != 50 {
		t.Errorf("usp_queries_total after batch = %d, want 50", got)
	}
	lat := telemetry.JSONSnapshot(ix.Telemetry())["usp_query_latency_seconds"].(map[string]any)
	if lat["count"].(uint64) != 50 {
		t.Errorf("latency samples after batch = %v, want 50", lat["count"])
	}
}
