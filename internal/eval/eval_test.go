package eval

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/vecmath"
)

func setup(seed int64) (*dataset.Dataset, *dataset.Dataset, [][]int32) {
	rng := rand.New(rand.NewSource(seed))
	full := dataset.Uniform(220, 4, rng)
	base, queries := dataset.SplitQueries(full, 20, rng)
	return base, queries, knn.GroundTruth(base, queries, 5)
}

// prefixMethod returns the first probes*20 points as candidates: recall and
// |C| both grow deterministically with probes.
func prefixMethod(base *dataset.Dataset) Method {
	return Method{
		Name: "prefix",
		Candidates: func(q []float32, probes int) []int {
			n := probes * 20
			if n > base.N {
				n = base.N
			}
			out := make([]int, n)
			for i := range out {
				out[i] = i
			}
			return out
		},
	}
}

func TestSweepCandidates(t *testing.T) {
	base, queries, gt := setup(1)
	s := SweepCandidates(base, queries, gt, 5, prefixMethod(base), []int{1, 5, 10})
	if len(s.Points) != 3 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// |C| exact, recall monotone, final probe covers everything → recall 1.
	if s.Points[0].AvgCandidates != 20 || s.Points[1].AvgCandidates != 100 {
		t.Fatalf("candidates %v %v", s.Points[0].AvgCandidates, s.Points[1].AvgCandidates)
	}
	if s.Points[2].AvgCandidates != float64(base.N) {
		t.Fatalf("final |C| = %v", s.Points[2].AvgCandidates)
	}
	if s.Points[2].Recall != 1 {
		t.Fatalf("full recall = %v", s.Points[2].Recall)
	}
	for i := 1; i < 3; i++ {
		if s.Points[i].Recall < s.Points[i-1].Recall {
			t.Fatal("recall not monotone for nested candidates")
		}
	}
}

func TestSweepSearch(t *testing.T) {
	base, queries, gt := setup(2)
	m := SearchMethod{
		Name: "exact",
		Search: func(q []float32, k, probes int) ([]int, int) {
			return NeighborIDs(knn.Search(base, q, k)), base.N
		},
	}
	s := SweepSearch(queries, gt, 5, m, []int{1})
	if s.Points[0].Recall != 1 {
		t.Fatalf("exact search recall = %v", s.Points[0].Recall)
	}
	if s.Points[0].AvgCandidates != float64(base.N) {
		t.Fatalf("scored = %v", s.Points[0].AvgCandidates)
	}
}

func TestCandidatesAtRecall(t *testing.T) {
	s := Series{Name: "x", Points: []Point{
		{Probes: 1, AvgCandidates: 100, Recall: 0.5},
		{Probes: 2, AvgCandidates: 200, Recall: 0.9},
	}}
	c, ok := CandidatesAtRecall(s, 0.7)
	if !ok || c < 149 || c > 151 {
		t.Fatalf("interpolated |C| = %v ok=%v", c, ok)
	}
	// Below the curve: first point's candidates.
	if c, ok := CandidatesAtRecall(s, 0.3); !ok || c != 100 {
		t.Fatalf("low target: %v %v", c, ok)
	}
	// Unreachable target.
	if _, ok := CandidatesAtRecall(s, 0.95); ok {
		t.Fatal("unreachable target should fail")
	}
}

func TestRenderers(t *testing.T) {
	s := []Series{{Name: "m1", Points: []Point{{Probes: 1, AvgCandidates: 10, Recall: 0.5}}}}
	txt := RenderSeries("title", s)
	if !strings.Contains(txt, "title") || !strings.Contains(txt, "m1") {
		t.Fatalf("render: %s", txt)
	}
	csv := RenderCSV(s)
	if !strings.HasPrefix(csv, "method,") || !strings.Contains(csv, "m1,1,10.00,0.50000") {
		t.Fatalf("csv: %s", csv)
	}
}

func TestNeighborIDs(t *testing.T) {
	ids := NeighborIDs([]vecmath.Neighbor{{Index: 3}, {Index: 1}})
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 1 {
		t.Fatalf("ids = %v", ids)
	}
}
