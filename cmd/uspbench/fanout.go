package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	usp "repro"
	"repro/internal/frontier"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// fanoutBench measures the sharded serving tier end to end: the union
// index is split into disjoint shards, each served by an in-process HTTP
// backend, and queries flow through a real frontier.Front — fan-out,
// per-shard top-k, merge, and the full JSON/HTTP stack included. The
// numbers are comparable to QPSSingle to read the tier's overhead.
type fanoutBench struct {
	Shards  int `json:"shards"`
	Queries int `json:"queries"`
	// MergeVerified reports that every benchmark query's merged fan-out
	// answer was bit-identical (ids and float distance bits) to the
	// single-process answer over the union index. The benchmark fails
	// instead of reporting false.
	MergeVerified bool    `json:"merge_verified"`
	QPS           float64 `json:"qps"`
	LatencyP50Us  float64 `json:"latency_p50_us"`
	LatencyP99Us  float64 `json:"latency_p99_us"`
}

// runFanoutBench shards ix, stands up one httptest backend per shard and
// a front over them, verifies merged results against single-process
// answers, then measures front throughput.
func runFanoutBench(ix *usp.Index, qrows [][]float32, k int, opt usp.SearchOptions, m int, logf func(string, ...any)) (*fanoutBench, error) {
	logf("fanout bench: splitting into %d shards...", m)
	shards, err := ix.Shard(m)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "uspbench-fanout")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var groups [][]string
	var backends []*httptest.Server
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	for _, sh := range shards {
		b := httptest.NewServer(serve.New(sh, serve.Config{DataDir: dir}).Mux())
		backends = append(backends, b)
		groups = append(groups, []string{b.URL})
	}
	front, err := frontier.New(frontier.Config{Shards: groups, Timeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	front.ProbeHealth(context.Background())
	fs := httptest.NewServer(front.Mux())
	defer fs.Close()

	search := func(q []float32) (serve.SearchResponse, error) {
		body, err := json.Marshal(serve.SearchRequest{Vector: q, K: k, Probes: opt.Probes})
		if err != nil {
			return serve.SearchResponse{}, err
		}
		resp, err := http.Post(fs.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return serve.SearchResponse{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return serve.SearchResponse{}, fmt.Errorf("front: HTTP %d", resp.StatusCode)
		}
		var sr serve.SearchResponse
		return sr, json.NewDecoder(resp.Body).Decode(&sr)
	}

	// Correctness gate: every query's merged answer must match the union
	// index bit-for-bit before throughput means anything.
	logf("fanout bench: verifying merged results over %d queries...", len(qrows))
	s := ix.NewSearcher()
	dst := make([]usp.Result, 0, k)
	for qi, q := range qrows {
		want, err := s.SearchInto(dst[:0], q, k, opt)
		if err != nil {
			return nil, err
		}
		got, err := search(q)
		if err != nil {
			return nil, err
		}
		if len(got.IDs) != len(want) {
			return nil, fmt.Errorf("fanout merge q%d: %d results, single-process %d", qi, len(got.IDs), len(want))
		}
		for i := range want {
			if got.IDs[i] != want[i].ID || got.Distances[i] != want[i].Distance {
				return nil, fmt.Errorf("fanout merge q%d rank %d: got %d/%x, single-process %d/%x",
					qi, i, got.IDs[i], got.Distances[i], want[i].ID, want[i].Distance)
			}
		}
	}

	const rounds = 2
	lat := telemetry.NewHistogram("bench_fanout_latency_seconds", "", "", telemetry.NanosToSeconds)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range qrows {
			qStart := time.Now()
			if _, err := search(q); err != nil {
				return nil, err
			}
			lat.ObserveDuration(time.Since(qStart))
		}
	}
	qps := float64(rounds*len(qrows)) / time.Since(start).Seconds()

	return &fanoutBench{
		Shards:        m,
		Queries:       len(qrows),
		MergeVerified: true,
		QPS:           qps,
		LatencyP50Us:  lat.Quantile(0.50) / 1e3,
		LatencyP99Us:  lat.Quantile(0.99) / 1e3,
	}, nil
}
