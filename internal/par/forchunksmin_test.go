package par

import (
	"sync/atomic"
	"testing"
)

func TestForChunksMinCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		var sum atomic.Int64
		ForChunksMin(n, 1, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum %d, want %d", n, sum.Load(), want)
		}
	}
}

func TestForChunksMinSmallBatchFansOut(t *testing.T) {
	if Workers() <= 1 {
		t.Skip("single-core environment: fan-out degenerates to sequential")
	}
	// With minSpan 1, an 8-item range must split across more than one chunk.
	var chunks atomic.Int32
	ForChunksMin(8, 1, func(lo, hi int) { chunks.Add(1) })
	if chunks.Load() < 2 {
		t.Fatalf("8 items produced %d chunk(s), want ≥ 2", chunks.Load())
	}
}
