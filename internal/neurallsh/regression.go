package neurallsh

import (
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/graphpart"
	"repro/internal/knn"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/trees"
)

// RegressionFitter implements the Regression LSH baseline of Dong et al.
// (2020): a binary partitioning tree where each node's split labels come
// from a balanced bisection of the subset's k-NN graph and a logistic
// regression model is trained to mimic them for query routing. It plugs
// into the shared trees.Build framework as an AssigningSplitter, so dataset
// points follow the graph-partition labels while queries follow the model.
type RegressionFitter struct {
	// KPrime is the subset k-NN graph width (default 10).
	KPrime int
	// Epsilon is the bisection balance slack (default 0.1).
	Epsilon float64
	// Epochs of logistic-regression training per node (default 30).
	Epochs int
	// LR is the Adam learning rate (default 1e-2; nodes are tiny).
	LR float64
	// Seed drives partitioning and training.
	Seed int64
}

// Name implements trees.Fitter.
func (RegressionFitter) Name() string { return "regression-lsh" }

type regressionSplit struct {
	model *nn.Sequential
	sides []int32
}

// Side implements trees.Splitter.
func (r *regressionSplit) Side(q []float32) int {
	p := r.model.PredictVec(q)
	if p[1] > p[0] {
		return 1
	}
	return 0
}

// Score implements trees.Splitter.
func (r *regressionSplit) Score(q []float32) float32 { return r.model.PredictVec(q)[1] }

// Assignments implements trees.AssigningSplitter.
func (r *regressionSplit) Assignments() []int32 { return r.sides }

// Fit implements trees.Fitter.
func (f RegressionFitter) Fit(ds *dataset.Dataset, idx []int32, rng *rand.Rand) trees.Splitter {
	if len(idx) < 4 {
		return nil
	}
	kp := f.KPrime
	if kp == 0 {
		kp = 10
	}
	if kp >= len(idx) {
		kp = len(idx) - 1
	}
	eps := f.Epsilon
	if eps == 0 {
		eps = 0.1
	}
	epochs := f.Epochs
	if epochs == 0 {
		epochs = 30
	}
	lr := f.LR
	if lr == 0 {
		lr = 1e-2
	}

	local := make([]int, len(idx))
	for i, g := range idx {
		local[i] = int(g)
	}
	sub := ds.Subset(local)
	mat := knn.BuildMatrix(sub, kp)
	g := graphpart.FromKNN(mat.Neighbors)
	sides := graphpart.Partition(g, 2, eps, rng.Int63())

	// Degenerate bisection (all one side) cannot split.
	n1 := 0
	for _, s := range sides {
		n1 += int(s)
	}
	if n1 == 0 || n1 == len(sides) {
		return nil
	}

	model := nn.NewLogistic(ds.Dim, 2, rng)
	opt := nn.NewAdam(lr)
	labels := make([]int, sub.N)
	for i, s := range sides {
		labels[i] = int(s)
	}
	x := tensor.FromSlice(sub.N, sub.Dim, sub.Data)
	for e := 0; e < epochs; e++ {
		model.ZeroGrads()
		logits := model.Forward(x, true)
		_, grad := nn.CrossEntropy(logits, labels)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	return &regressionSplit{model: model, sides: sides}
}
