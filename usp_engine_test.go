package usp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/knn"
	"repro/internal/vecmath"
)

// within reports whether a and b agree to the given relative tolerance
// (plus a small absolute floor for near-zero distances).
func within(a, b, rel float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	mag := b
	if mag < 0 {
		mag = -mag
	}
	return diff <= rel*mag+1e-4
}

// buildSmallIndex trains a compact ensemble index for engine tests.
func buildSmallIndex(t testing.TB, seed int64, ensemble int) (*Index, [][]float32) {
	t.Helper()
	vecs, _ := clusteredVectors(seed, 600, 8, 4)
	ix, err := Build(vecs, Options{
		Bins: 4, Ensemble: ensemble, Epochs: 30, Hidden: []int{16}, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix, vecs
}

// TestSearcherMatchesLegacyPipeline replays the seed implementation's query
// path — CandidateSet followed by an exhaustive SquaredL2 scan over the
// subset — and requires the zero-allocation engine to return the same
// neighbor ids in the same order, with distances matching to float32
// round-off (the fused kernel reassociates the arithmetic).
func TestSearcherMatchesLegacyPipeline(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  SearchOptions
	}{
		{"best1", SearchOptions{Probes: 1}},
		{"best2", SearchOptions{Probes: 2}},
		{"union2", SearchOptions{Probes: 2, UnionEnsemble: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix, vecs := buildSmallIndex(t, 41, 2)
			s := ix.NewSearcher()
			for qi := 0; qi < 50; qi++ {
				q := vecs[qi]
				cands, err := ix.CandidateSet(q, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				want := knn.SearchSubset(ix.live.Load().data, cands, q, 10)
				got, err := s.Search(q, 10, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				if s.Scanned() != len(cands) {
					t.Fatalf("q%d: scanned %d, want %d", qi, s.Scanned(), len(cands))
				}
				if len(got) != len(want) {
					t.Fatalf("q%d: %d results, want %d", qi, len(got), len(want))
				}
				for i := range want {
					if got[i].ID != want[i].Index {
						// The fused kernel reassociates the arithmetic, so
						// candidates whose true distances agree to float32
						// round-off may swap ranks. Any other id change is a
						// correctness bug.
						dGot := vecmath.SquaredL2(q, ix.live.Load().data.Row(got[i].ID))
						if !within(float64(dGot), float64(want[i].Dist), 1e-3) {
							t.Fatalf("q%d result[%d]: id %d (exact dist %v), want id %d (dist %v)",
								qi, i, got[i].ID, dGot, want[i].Index, want[i].Dist)
						}
					}
					if !within(float64(got[i].Distance), float64(want[i].Dist), 1e-3) {
						t.Fatalf("q%d result[%d]: dist %v, want %v", qi, i, got[i].Distance, want[i].Dist)
					}
				}
			}
		})
	}
}

func TestSearcherMatchesLegacyPipelineHierarchy(t *testing.T) {
	vecs, _ := clusteredVectors(43, 600, 8, 4)
	ix, err := Build(vecs, Options{Hierarchy: []int{2, 2}, Epochs: 15, Hidden: []int{8}, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	for qi := 0; qi < 30; qi++ {
		q := vecs[qi]
		cands, err := ix.CandidateSet(q, SearchOptions{Probes: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := knn.SearchSubset(ix.live.Load().data, cands, q, 5)
		got, err := s.Search(q, 5, SearchOptions{Probes: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q%d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].Index {
				dGot := vecmath.SquaredL2(q, ix.live.Load().data.Row(got[i].ID))
				if !within(float64(dGot), float64(want[i].Dist), 1e-3) {
					t.Fatalf("q%d result[%d]: id %d, want %d", qi, i, got[i].ID, want[i].Index)
				}
			}
		}
	}
}

// TestSearcherAllocations asserts the acceptance criterion: at most 2
// allocations per steady-state query through Searcher.Search (the engine
// itself performs none; the returned result slice is one), and exactly 0
// through SearchInto with a recycled destination.
func TestSearcherAllocations(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  SearchOptions
	}{
		{"best", SearchOptions{Probes: 2}},
		{"union", SearchOptions{Probes: 2, UnionEnsemble: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix, vecs := buildSmallIndex(t, 47, 2)
			s := ix.NewSearcher()
			for i := 0; i < 20; i++ { // warm every scratch buffer
				if _, err := s.Search(vecs[i], 10, tc.opt); err != nil {
					t.Fatal(err)
				}
			}
			q := vecs[3]
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := s.Search(q, 10, tc.opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Fatalf("Searcher.Search: %v allocs per query, want ≤ 2", allocs)
			}
			dst := make([]Result, 0, 10)
			allocs = testing.AllocsPerRun(200, func() {
				var err error
				dst, err = s.SearchInto(dst[:0], q, 10, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("Searcher.SearchInto: %v allocs per query, want 0", allocs)
			}
		})
	}
}

func TestSearcherAllocationsHierarchy(t *testing.T) {
	vecs, _ := clusteredVectors(49, 500, 8, 4)
	ix, err := Build(vecs, Options{Hierarchy: []int{2, 2}, Epochs: 10, Hidden: []int{8}, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	s := ix.NewSearcher()
	dst := make([]Result, 0, 10)
	for i := 0; i < 20; i++ {
		dst, err = s.SearchInto(dst[:0], vecs[i], 10, SearchOptions{Probes: 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	q := vecs[3]
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		dst, err = s.SearchInto(dst[:0], q, 10, SearchOptions{Probes: 2})
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hierarchy SearchInto: %v allocs per query, want 0", allocs)
	}
}

// TestSearchBatchAgreesWithSearch requires position-aligned, id-exact
// agreement between the parallel batch entry point and looped single-query
// calls.
func TestSearchBatchAgreesWithSearch(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 53, 2)
	queries := vecs[:64]
	for _, opt := range []SearchOptions{
		{Probes: 1},
		{Probes: 2, UnionEnsemble: true},
	} {
		batch, err := ix.SearchBatch(queries, 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("%d batch results, want %d", len(batch), len(queries))
		}
		for i, q := range queries {
			single, err := ix.Search(q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch[i]) != len(single) {
				t.Fatalf("query %d: batch %d results, single %d", i, len(batch[i]), len(single))
			}
			for j := range single {
				if batch[i][j] != single[j] {
					t.Fatalf("query %d result %d: batch %+v, single %+v", i, j, batch[i][j], single[j])
				}
			}
		}
	}
}

func TestSearchBatchValidation(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 59, 1)
	if _, err := ix.SearchBatch(vecs[:4], 0, SearchOptions{}); err == nil {
		t.Fatal("k=0 must fail")
	}
	bad := [][]float32{vecs[0], make([]float32, 3)}
	if _, err := ix.SearchBatch(bad, 5, SearchOptions{}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	empty, err := ix.SearchBatch(nil, 5, SearchOptions{})
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(empty))
	}
}

// TestConcurrentSearchAndAdd is the -race regression test for the
// Search-vs-Add data race the seed had: readers hammer Search, SearchBatch,
// and CandidateSet while a writer streams Adds into the same Index. Run
// under -race this fails loudly without the RWMutex; with it, every query
// must also return internally consistent results.
func TestConcurrentSearchAndAdd(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 61, 2)
	const (
		readers    = 4
		queriesPer = 150
		adds       = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := ix.NewSearcher()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < queriesPer; i++ {
				q := vecs[rng.Intn(len(vecs))]
				switch i % 3 {
				case 0:
					res, err := s.Search(q, 5, SearchOptions{Probes: 2})
					if err != nil {
						errs <- err
						return
					}
					if len(res) == 0 {
						continue
					}
					for j := 1; j < len(res); j++ {
						if res[j].Distance < res[j-1].Distance {
							errs <- fmt.Errorf("reader %d: unsorted results", r)
							return
						}
					}
				case 1:
					if _, err := ix.SearchBatch(vecs[:8], 3, SearchOptions{Probes: 1}); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := ix.CandidateSet(q, SearchOptions{Probes: 1, UnionEnsemble: true}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(999))
		for i := 0; i < adds; i++ {
			base := vecs[rng.Intn(len(vecs))]
			nv := make([]float32, len(base))
			copy(nv, base)
			nv[0] += float32(rng.NormFloat64()) * 0.01
			if _, err := ix.Add(nv); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ix.Len() != 600+adds {
		t.Fatalf("Len = %d, want %d", ix.Len(), 600+adds)
	}
	// Every inserted point must be findable afterwards.
	res, err := ix.Search(vecs[0], 5, SearchOptions{Probes: 4})
	if err != nil || len(res) == 0 {
		t.Fatalf("post-churn search: %v, %d results", err, len(res))
	}
}
