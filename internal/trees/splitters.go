package trees

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/vecmath"
)

// hyperplaneSplit is the common fitted form of all axis/direction splitters:
// side 1 iff w·x > b, with soft score sigmoid((w·x − b)/scale).
type hyperplaneSplit struct {
	w     []float32
	b     float32
	scale float32
}

// Side implements Splitter.
func (h *hyperplaneSplit) Side(q []float32) int {
	if vecmath.Dot(h.w, q) > h.b {
		return 1
	}
	return 0
}

// Score implements Splitter.
func (h *hyperplaneSplit) Score(q []float32) float32 {
	z := (vecmath.Dot(h.w, q) - h.b) / h.scale
	return float32(1 / (1 + math.Exp(-float64(z))))
}

// newHyperplane finishes a direction into a median-threshold split with a
// robust soft scale (the median absolute deviation of projections).
// Returns nil when all projections coincide.
func newHyperplane(ds *dataset.Dataset, idx []int32, w []float32) Splitter {
	projs := make([]float32, len(idx))
	for i, id := range idx {
		projs[i] = vecmath.Dot(w, ds.Row(int(id)))
	}
	sorted := append([]float32(nil), projs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	if sorted[0] == sorted[len(sorted)-1] {
		return nil // degenerate: no spread along w
	}
	// Median absolute deviation as the sigmoid temperature.
	devs := make([]float32, len(projs))
	for i, p := range projs {
		d := p - median
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	scale := devs[len(devs)/2]
	if scale == 0 {
		scale = devs[len(devs)-1] / 2
	}
	if scale == 0 {
		return nil
	}
	return &hyperplaneSplit{w: w, b: median, scale: scale}
}

// RPFitter splits along a random unit direction at the median projection —
// the random-projection trees of Dasgupta & Sinha (2013).
type RPFitter struct{}

// Name implements Fitter.
func (RPFitter) Name() string { return "rp-tree" }

// Fit implements Fitter.
func (RPFitter) Fit(ds *dataset.Dataset, idx []int32, rng *rand.Rand) Splitter {
	w := make([]float32, ds.Dim)
	for j := range w {
		w[j] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(w)
	return newHyperplane(ds, idx, w)
}

// KDFitter splits on the coordinate axis of maximum variance at the median —
// the adaptive KD-tree variant evaluated as "learned KD-tree" in the paper
// (after Cayton & Dasgupta 2007, which learns which axis to cut; maximum
// variance is the standard data-adaptive criterion).
type KDFitter struct{}

// Name implements Fitter.
func (KDFitter) Name() string { return "kd-tree" }

// Fit implements Fitter.
func (KDFitter) Fit(ds *dataset.Dataset, idx []int32, rng *rand.Rand) Splitter {
	d := ds.Dim
	mean := make([]float64, d)
	m2 := make([]float64, d)
	for _, id := range idx {
		row := ds.Row(int(id))
		for j, v := range row {
			mean[j] += float64(v)
			m2[j] += float64(v) * float64(v)
		}
	}
	n := float64(len(idx))
	bestAxis, bestVar := 0, -1.0
	for j := 0; j < d; j++ {
		mu := mean[j] / n
		va := m2[j]/n - mu*mu
		if va > bestVar {
			bestVar, bestAxis = va, j
		}
	}
	if bestVar <= 0 {
		return nil
	}
	w := make([]float32, d)
	w[bestAxis] = 1
	return newHyperplane(ds, idx, w)
}

// PCAFitter splits along the top principal component (computed by power
// iteration on the implicit covariance) at the median — PCA trees
// (Sproull 1991; Abdullah et al. 2014).
type PCAFitter struct {
	// Iters bounds power iterations (default 30).
	Iters int
}

// Name implements Fitter.
func (PCAFitter) Name() string { return "pca-tree" }

// Fit implements Fitter.
func (f PCAFitter) Fit(ds *dataset.Dataset, idx []int32, rng *rand.Rand) Splitter {
	iters := f.Iters
	if iters == 0 {
		iters = 30
	}
	d := ds.Dim
	mu := make([]float32, d)
	for _, id := range idx {
		vecmath.AXPY(1, ds.Row(int(id)), mu)
	}
	vecmath.Scale(1/float32(len(idx)), mu)

	v := make([]float32, d)
	for j := range v {
		v[j] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	centered := make([]float32, d)
	next := make([]float32, d)
	for it := 0; it < iters; it++ {
		for j := range next {
			next[j] = 0
		}
		for _, id := range idx {
			vecmath.Sub(centered, ds.Row(int(id)), mu)
			vecmath.AXPY(vecmath.Dot(centered, v), centered, next)
		}
		if !vecmath.Normalize(next) {
			return nil // zero covariance
		}
		copy(v, next)
	}
	return newHyperplane(ds, idx, append([]float32(nil), v...))
}

// TwoMeansFitter splits by a 2-means clustering of the subset; the split is
// the perpendicular bisector hyperplane of the two centroids (so routing is
// exactly nearest-centroid), giving the 2-means trees baseline.
type TwoMeansFitter struct{}

// Name implements Fitter.
func (TwoMeansFitter) Name() string { return "2-means-tree" }

// Fit implements Fitter.
func (TwoMeansFitter) Fit(ds *dataset.Dataset, idx []int32, rng *rand.Rand) Splitter {
	sub := ds.Subset(toInts(idx))
	res, err := kmeans.Run(sub, 2, kmeans.Options{Seed: rng.Int63(), MaxIters: 15})
	if err != nil {
		return nil
	}
	c0, c1 := res.Centroids.Row(0), res.Centroids.Row(1)
	w := make([]float32, ds.Dim)
	vecmath.Sub(w, c1, c0)
	if !vecmath.Normalize(w) {
		return nil // coincident centroids
	}
	// Bisector threshold: w·midpoint.
	mid := make([]float32, ds.Dim)
	vecmath.Add(mid, c0, c1)
	vecmath.Scale(0.5, mid)
	b := vecmath.Dot(w, mid)
	// Scale from the centroid gap for a sensible sigmoid temperature.
	gap := vecmath.L2(c0, c1) / 4
	if gap == 0 {
		return nil
	}
	return &hyperplaneSplit{w: w, b: b, scale: gap}
}

func toInts(idx []int32) []int {
	out := make([]int, len(idx))
	for i, v := range idx {
		out[i] = int(v)
	}
	return out
}
