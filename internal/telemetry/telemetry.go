// Package telemetry is the repository's zero-dependency observability core:
// atomic counters and gauges, lock-free log-bucketed latency histograms, and
// a named registry with Prometheus-text and JSON exposition.
//
// Design constraints, in order:
//
//  1. Hot-path recording (Counter.Add, Histogram.Observe) must be
//     allocation-free and lock-free — one or two uncontended atomic adds —
//     so the zero-allocation query engine can be instrumented without
//     giving up its 0 allocs/op steady state.
//  2. No dependencies beyond the standard library. The exposition formats
//     are simple enough to emit by hand, and pulling a metrics client into
//     an ANN engine would invert the dependency weight of the project.
//  3. Reads (exposition, quantile extraction) may be approximate under
//     concurrent writes — per-bucket atomic loads can interleave with
//     recording — but must never block writers. Monitoring wants recency,
//     not serializability.
//
// Registration (Registry.Counter, .Gauge, .GaugeFunc, .Histogram) is
// get-or-create by (name, labels) and takes a mutex; do it at setup time,
// hold the returned pointer, and record through the pointer on the hot path.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// NanosToSeconds is the exposition scale for histograms and sums recorded
// in nanoseconds (time.Duration units) but exported in Prometheus' base
// unit, seconds.
const NanosToSeconds = 1e-9

// desc is the identity and metadata of one metric.
type desc struct {
	name   string // metric family name, e.g. "usp_queries_total"
	labels string // raw label pairs, e.g. `endpoint="/search"`, or ""
	help   string
}

// key is the registry identity: family name plus the exact label set.
func (d desc) key() string {
	if d.labels == "" {
		return d.name
	}
	return d.name + "{" + d.labels + "}"
}

// metric is the set of concrete types a Registry holds. The methods are
// unexported: exposition logic lives in this package.
type metric interface {
	meta() desc
	kind() string // Prometheus TYPE: "counter", "gauge", "histogram"
	// writeSamples appends this metric's sample lines (no HELP/TYPE
	// comments) to b in Prometheus text format.
	writeSamples(b []byte) []byte
	// jsonValue returns the metric's value for the JSON exposition.
	jsonValue() any
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	d desc
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) meta() desc   { return c.d }
func (c *Counter) kind() string { return "counter" }

func (c *Counter) writeSamples(b []byte) []byte {
	return appendSample(b, c.d.name, c.d.labels, formatUint(c.v.Load()))
}

func (c *Counter) jsonValue() any { return c.v.Load() }

// Gauge is a settable value.
type Gauge struct {
	d desc
	v atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the stored value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

func (g *Gauge) meta() desc   { return g.d }
func (g *Gauge) kind() string { return "gauge" }

func (g *Gauge) writeSamples(b []byte) []byte {
	return appendSample(b, g.d.name, g.d.labels, formatFloat(g.Value()))
}

func (g *Gauge) jsonValue() any { return g.Value() }

// GaugeFunc is a gauge whose value is polled at exposition time — the shape
// for values the instrumented system already maintains (lifecycle counts,
// epoch age) where a write-through gauge would duplicate state. fn must be
// safe to call concurrently with anything.
type GaugeFunc struct {
	d  desc
	fn func() float64
}

// Value polls the function.
func (g *GaugeFunc) Value() float64 { return g.fn() }

func (g *GaugeFunc) meta() desc   { return g.d }
func (g *GaugeFunc) kind() string { return "gauge" }

func (g *GaugeFunc) writeSamples(b []byte) []byte {
	return appendSample(b, g.d.name, g.d.labels, formatFloat(g.fn()))
}

func (g *GaugeFunc) jsonValue() any { return g.fn() }

// Registry is a named collection of metrics. Registration is get-or-create
// and mutex-guarded; recording through the returned pointers is lock-free.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[string]metric
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

// getOrCreate returns the metric registered under d's key, or registers the
// one built by mk. A key registered as a different concrete type panics:
// that is a programming error, not a runtime condition.
func getOrCreate[M metric](r *Registry, d desc, mk func() M) M {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[d.key()]; ok {
		typed, ok := m.(M)
		if !ok {
			panic(fmt.Sprintf("telemetry: %s already registered as %s", d.key(), m.kind()))
		}
		return typed
	}
	m := mk()
	r.byKey[d.key()] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. labels is a raw Prometheus label-pair string such as
// `endpoint="/search"`, or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	d := desc{name: name, labels: labels, help: help}
	return getOrCreate(r, d, func() *Counter { return &Counter{d: d} })
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	d := desc{name: name, labels: labels, help: help}
	return getOrCreate(r, d, func() *Gauge { return &Gauge{d: d} })
}

// GaugeFunc registers a polled gauge under (name, labels). Re-registering
// the same key keeps the first function.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) *GaugeFunc {
	d := desc{name: name, labels: labels, help: help}
	return getOrCreate(r, d, func() *GaugeFunc { return &GaugeFunc{d: d, fn: fn} })
}

// Histogram returns the histogram registered under (name, labels), creating
// it on first use. scale converts recorded units to exported units (use
// NanosToSeconds for durations recorded via ObserveDuration).
func (r *Registry) Histogram(name, labels, help string, scale float64) *Histogram {
	d := desc{name: name, labels: labels, help: help}
	return getOrCreate(r, d, func() *Histogram { return newHistogram(d, scale) })
}

// snapshot returns the registered metrics sorted by (name, labels) — the
// order exposition emits, which keeps families contiguous so HELP/TYPE
// headers are emitted exactly once each.
func (r *Registry) snapshot() []metric {
	r.mu.RLock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool {
		di, dj := ms[i].meta(), ms[j].meta()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.labels < dj.labels
	})
	return ms
}
