// Package graphpart implements balanced graph partitioning of k-NN graphs:
// the substrate the Neural LSH baseline (Dong et al. 2020) relies on for its
// ground-truth labels, standing in for the KaHIP partitioner (Sanders &
// Schulz 2012) the original uses.
//
// The algorithm is multilevel recursive bisection: heavy-edge-matching
// coarsening, BFS region-growing initial bisection, and Fiduccia–Mattheyses
// boundary refinement under an ε-balance constraint at every uncoarsening
// level.
package graphpart

import (
	"math/rand"
)

// Edge is one weighted adjacency entry.
type Edge struct {
	To int32
	W  float32
}

// Graph is an undirected vertex-weighted, edge-weighted graph in adjacency
// list form. Every edge appears in both endpoints' lists.
type Graph struct {
	N     int
	Adj   [][]Edge
	NodeW []int32
}

// NewGraph allocates an empty graph on n vertices with unit vertex weights.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]Edge, n), NodeW: make([]int32, n)}
	for i := range g.NodeW {
		g.NodeW[i] = 1
	}
	return g
}

// AddEdge inserts an undirected edge. Parallel edges are allowed; they act
// as accumulated weight.
func (g *Graph) AddEdge(u, v int32, w float32) {
	if u == v {
		return
	}
	g.Adj[u] = append(g.Adj[u], Edge{v, w})
	g.Adj[v] = append(g.Adj[v], Edge{u, w})
}

// TotalNodeWeight sums vertex weights.
func (g *Graph) TotalNodeWeight() int64 {
	var t int64
	for _, w := range g.NodeW {
		t += int64(w)
	}
	return t
}

// FromKNN builds the symmetrized k-NN graph of §2.3: an edge links i and j
// if either lists the other as a neighbor; mutual neighbors get doubled
// weight, matching the usual symmetrization for partitioning-based indexes.
func FromKNN(neighbors [][]int32) *Graph {
	n := len(neighbors)
	g := NewGraph(n)
	type pair struct{ a, b int32 }
	weight := make(map[pair]float32, n*8)
	for i, row := range neighbors {
		for _, j := range row {
			a, b := int32(i), j
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			weight[pair{a, b}]++
		}
	}
	for p, w := range weight {
		g.AddEdge(p.a, p.b, w)
	}
	return g
}

// CutWeight returns the total weight of edges crossing the partition (each
// undirected edge counted once).
func CutWeight(g *Graph, part []int32) float64 {
	var cut float64
	for u := 0; u < g.N; u++ {
		for _, e := range g.Adj[u] {
			if int32(u) < e.To && part[u] != part[e.To] {
				cut += float64(e.W)
			}
		}
	}
	return cut
}

// subgraph extracts the induced subgraph on the vertices with part[v] == side
// and returns it along with the mapping from new ids to original ids.
func subgraph(g *Graph, part []int32, side int32) (*Graph, []int32) {
	var ids []int32
	newID := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		newID[v] = -1
	}
	for v := 0; v < g.N; v++ {
		if part[v] == side {
			newID[v] = int32(len(ids))
			ids = append(ids, int32(v))
		}
	}
	sub := NewGraph(len(ids))
	for i, orig := range ids {
		sub.NodeW[i] = g.NodeW[orig]
		for _, e := range g.Adj[orig] {
			if to := newID[e.To]; to >= 0 && int32(i) < to {
				sub.AddEdge(int32(i), to, e.W)
			}
		}
	}
	return sub, ids
}

// Partition divides g into parts groups of near-equal total vertex weight
// (relative imbalance ≤ eps per bisection) minimizing edge cut, by recursive
// multilevel bisection. It returns a part id per vertex.
func Partition(g *Graph, parts int, eps float64, seed int64) []int32 {
	out := make([]int32, g.N)
	if parts <= 1 || g.N == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	partitionRec(g, parts, eps, rng, out, 0)
	return out
}

// partitionRec assigns part ids [base, base+parts) to the vertices of g,
// writing into out (which is indexed by g's vertex ids — callers pass
// per-subgraph slices via remapping).
func partitionRec(g *Graph, parts int, eps float64, rng *rand.Rand, out []int32, base int32) {
	if parts == 1 {
		for v := 0; v < g.N; v++ {
			out[v] = base
		}
		return
	}
	leftParts := parts / 2
	rightParts := parts - leftParts
	frac := float64(leftParts) / float64(parts)
	bi := bisect(g, frac, eps, rng)

	leftG, leftIDs := subgraph(g, bi, 0)
	rightG, rightIDs := subgraph(g, bi, 1)

	leftOut := make([]int32, leftG.N)
	rightOut := make([]int32, rightG.N)
	partitionRec(leftG, leftParts, eps, rng, leftOut, base)
	partitionRec(rightG, rightParts, eps, rng, rightOut, base+int32(leftParts))
	for i, orig := range leftIDs {
		out[orig] = leftOut[i]
	}
	for i, orig := range rightIDs {
		out[orig] = rightOut[i]
	}
}
