package nn

import (
	"repro/internal/tensor"
)

// Batched, allocation-free inference. Micro-batched serving amortizes the
// model forward pass over many concurrent queries: one dispatched MatMul per
// Dense layer replaces a row of AXPY loops per query. Because tensor.MatMul
// and (*Dense).inferRow deliberately share the same k-major accumulation on
// the same dispatched vecmath.AXPY microkernel (including the zero-input
// skip), every row of the batched result is bit-identical to the single-row
// PredictVecInto path — the equality the engine's batch≡single pinning tests
// rely on.

// BatchInferScratch holds the reusable buffers for PredictBatchInto. The
// zero value is ready to use; buffers grow on demand and are retained, so
// steady-state batched inference performs no allocation.
type BatchInferScratch struct {
	cur, nxt tensor.Matrix
	// row backs the per-row fallback taken when the model contains a layer
	// type the batched fast path does not know.
	row    InferScratch
	rowBuf []float32
}

// setCur stages src as the current activation matrix, copying so the
// caller's buffer is never mutated by in-place layers.
func (sc *BatchInferScratch) setCur(src *tensor.Matrix) {
	n := src.Rows * src.Cols
	sc.cur.Rows, sc.cur.Cols = src.Rows, src.Cols
	sc.cur.Data = growF32(sc.cur.Data, n)
	copy(sc.cur.Data, src.Data[:n])
}

// batchFastPath reports whether every layer is handled by the batched
// kernel loop (the architectures the paper uses: Dense, BatchNorm, ReLU,
// Dropout).
func (s *Sequential) batchFastPath() bool {
	for _, l := range s.Layers {
		switch l.(type) {
		case *Dense, *BatchNorm, *ReLU, *Dropout:
		default:
			return false
		}
	}
	return true
}

// PredictBatchInto computes the model's bin probability distribution for
// every row of X into dst (grown as needed; row-major X.Rows×OutDim) and
// returns it. It is the batched PredictVecInto: eval mode, running
// batch-norm statistics, dropout disabled, one dispatched MatMul per Dense
// layer. Row i of the result is bit-identical to
// PredictVecInto(nil, X.Row(i), ...) — batch and single-row inference share
// the same dispatched microkernels and accumulation order (see package
// comment in internal/tensor).
//
// Models containing layer types outside the fast path fall back to the
// exact single-row pipeline per row, preserving the equality.
func (s *Sequential) PredictBatchInto(dst []float32, X *tensor.Matrix, sc *BatchInferScratch) []float32 {
	b := X.Rows
	out := s.OutDim()
	dst = growF32(dst, b*out)
	if b == 0 {
		return dst
	}
	if !s.batchFastPath() {
		for i := 0; i < b; i++ {
			sc.rowBuf = s.PredictVecInto(sc.rowBuf, X.Row(i), &sc.row)
			copy(dst[i*out:(i+1)*out], sc.rowBuf)
		}
		return dst
	}
	sc.setCur(X)
	for _, l := range s.Layers {
		switch ly := l.(type) {
		case *Dense:
			w := ly.W.Value
			sc.nxt.Rows, sc.nxt.Cols = b, w.Cols
			sc.nxt.Data = growF32(sc.nxt.Data, b*w.Cols)
			tensor.MatMul(&sc.nxt, &sc.cur, w)
			tensor.AddRowVector(&sc.nxt, ly.B.Value.Data)
			sc.cur, sc.nxt = sc.nxt, sc.cur
		case *BatchNorm:
			for i := 0; i < b; i++ {
				ly.inferRow(sc.cur.Row(i))
			}
		case *ReLU:
			for i, x := range sc.cur.Data {
				if x <= 0 {
					sc.cur.Data[i] = 0
				}
			}
		case *Dropout:
			// Identity at inference.
		}
	}
	for i := 0; i < b; i++ {
		row := sc.cur.Row(i)
		softmaxRow(row)
		copy(dst[i*out:(i+1)*out], row)
	}
	return dst
}
