package core

import (
	"bytes"
	"testing"
)

func TestTargetGradModeTrains(t *testing.T) {
	ds, mat := testData(t, 500, 8, 4, 21)
	cfg := smallCfg(4)
	cfg.TargetGrad = true
	cfg.Epochs = 30
	p, stats, err := Train(ds, mat, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Params == 0 || stats.Duration <= 0 {
		t.Fatalf("stats %+v", stats)
	}
	// Partition invariants hold in this mode too.
	seen := make([]int, ds.N)
	for b := 0; b < p.M; b++ {
		for _, i := range p.BinList(b) {
			seen[i]++
			if p.Assign[i] != int32(b) {
				t.Fatal("assign/bin mismatch")
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d in %d bins", i, c)
		}
	}
	// Quality on separated clusters: most neighborhoods kept together.
	sep := p.SeparatedNeighbors(mat, 5)
	total := 0
	for _, s := range sep {
		total += s
	}
	if frac := float64(total) / float64(len(sep)*5); frac > 0.3 {
		t.Fatalf("separated fraction %.3f", frac)
	}
}

func TestTargetGradWithWeights(t *testing.T) {
	ds, mat := testData(t, 300, 4, 2, 22)
	cfg := smallCfg(2)
	cfg.TargetGrad = true
	cfg.Epochs = 10
	w := make([]float32, ds.N)
	for i := range w {
		w[i] = float32(i%3) + 0.5
	}
	if _, _, err := Train(ds, mat, cfg, w); err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleSaveLoadRoundTrip(t *testing.T) {
	ds, mat := testData(t, 400, 6, 3, 23)
	ens, _, err := TrainEnsemble(ds, mat, smallCfg(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveEnsemble(&buf, ens); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 2 {
		t.Fatalf("size %d", loaded.Size())
	}
	// Candidate sets must be identical before and after the round trip.
	for qi := 0; qi < 20; qi++ {
		a := ens.Candidates(ds.Row(qi), 1, BestConfidence)
		b := loaded.Candidates(ds.Row(qi), 1, BestConfidence)
		if len(a) != len(b) {
			t.Fatalf("query %d: candidate sizes %d vs %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: candidate %d differs", qi, i)
			}
		}
	}
}

func TestHierarchySaveLoadRoundTrip(t *testing.T) {
	ds, _ := testData(t, 400, 6, 3, 24)
	cfg := Config{KPrime: 5, Eta: 5, Epochs: 8, Hidden: []int{8}, Seed: 4}
	h, _, err := TrainHierarchy(ds, []int{2, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.ProbeTemp = 3
	var buf bytes.Buffer
	if err := SaveHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHierarchy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumBins != h.NumBins || loaded.ProbeTemp != h.ProbeTemp {
		t.Fatalf("metadata mismatch: %d/%v", loaded.NumBins, loaded.ProbeTemp)
	}
	for qi := 0; qi < 20; qi++ {
		a := h.Candidates(ds.Row(qi), 2)
		b := loaded.Candidates(ds.Row(qi), 2)
		if len(a) != len(b) {
			t.Fatalf("query %d: sizes %d vs %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: candidate %d differs", qi, i)
			}
		}
	}
}

func TestLoadHierarchyRejectsGarbage(t *testing.T) {
	if _, err := LoadHierarchy(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadEnsembleRejectsGarbage(t *testing.T) {
	if _, err := LoadEnsemble(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}
