// Server: a production-style ANN search service. Trains a USP index at
// startup (or loads a snapshot via -index), then serves JSON k-NN queries
// over HTTP — the distributed-serving setting §2.2.2 argues space
// partitioning is naturally suited to.
//
// Request handling rides the lock-free query engine: every query resolves
// an atomically published epoch snapshot, so searches never contend with
// each other, with /add and /delete mutations, or with the background
// compactor. A sync.Pool recycles usp.Searchers across requests (each owns
// its scratch buffers), /search/batch fans multi-query requests out over
// the worker pool, /delete tombstones vectors, /compact folds pending
// mutations into fresh tables, and /save streams a self-contained snapshot
// to disk without pausing traffic.
//
// Observability rides the zero-dependency internal/telemetry layer: every
// endpoint is wrapped in per-endpoint request/error/latency middleware,
// /metrics exposes those alongside the index's own query and lifecycle
// series as Prometheus text (?format=json for a JSON snapshot), /healthz
// reports index readiness and epoch age, and -pprof mounts the standard
// net/http/pprof profiling handlers under /debug/pprof/. Shutdown is
// graceful: SIGINT/SIGTERM stops accepting connections and drains in-flight
// requests before exiting.
//
//	go run ./examples/server -addr :8080
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//	curl -s -X POST localhost:8080/search \
//	     -d '{"vector": [ ...64 floats... ], "k": 5, "probes": 2}'
//	curl -s -X POST localhost:8080/search/batch \
//	     -d '{"vectors": [[...], [...]], "k": 5, "probes": 2}'
//	curl -s -X POST localhost:8080/add -d '{"vector": [ ...64 floats... ]}'
//	curl -s -X POST localhost:8080/delete -d '{"id": 17}'
//	curl -s -X POST localhost:8080/compact
//	curl -s -X POST localhost:8080/save -d '{"path": "index.usps"}'  # relative to -save-dir
//
// Run with -demo to start, fire a few requests through the full HTTP stack,
// and exit (used by the repository's smoke tests).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/telemetry"
)

type searchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Probes int       `json:"probes"`
	// RerankK is the quantized two-phase scan's exact re-rank depth
	// (ignored on float-only indexes): 0 uses the server default, negative
	// serves ADC-only distances.
	RerankK int `json:"rerank_k"`
}

type searchResponse struct {
	IDs       []int     `json:"ids"`
	Distances []float32 `json:"distances"`
	Scanned   int       `json:"scanned"`
	Elapsed   string    `json:"elapsed"`
}

type batchSearchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	K       int         `json:"k"`
	Probes  int         `json:"probes"`
	RerankK int         `json:"rerank_k"`
}

type batchSearchResponse struct {
	IDs       [][]int     `json:"ids"`
	Distances [][]float32 `json:"distances"`
	Elapsed   string      `json:"elapsed"`
}

type addRequest struct {
	Vector []float32 `json:"vector"`
}

type addResponse struct {
	ID int `json:"id"`
}

type deleteRequest struct {
	ID int `json:"id"`
}

type deleteResponse struct {
	Deleted bool `json:"deleted"`
}

type saveRequest struct {
	Path string `json:"path"`
}

type saveResponse struct {
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
	Elapsed string `json:"elapsed"`
}

type healthzResponse struct {
	Status          string  `json:"status"`
	IndexLoaded     bool    `json:"index_loaded"`
	Vectors         int     `json:"vectors"`
	Dim             int     `json:"dim"`
	Epoch           uint64  `json:"epoch"`
	EpochAgeSeconds float64 `json:"epoch_age_seconds"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
}

type server struct {
	ix *usp.Index
	// saveDir confines /save: snapshot paths are resolved relative to it
	// and may not escape it, so HTTP clients cannot overwrite arbitrary
	// files the process can write.
	saveDir string
	// searchers recycles query contexts across requests: each Searcher owns
	// the scratch buffers of one in-flight query, so steady-state request
	// handling does not allocate on the search path.
	searchers sync.Pool
	// rerankK is the default exact re-rank depth applied to quantized
	// searches when the request leaves rerank_k unset (0 defers to the
	// engine default of 4·k).
	rerankK int
	// reg holds the server's own HTTP metrics; /metrics exposes it together
	// with the index's registry (query + lifecycle series).
	reg     *telemetry.Registry
	started time.Time
}

func newServer(ix *usp.Index, saveDir string) *server {
	s := &server{ix: ix, saveDir: saveDir, reg: telemetry.NewRegistry(), started: time.Now()}
	s.searchers.New = func() any { return ix.NewSearcher() }
	return s
}

// mux assembles the routing table: every application endpoint behind the
// per-endpoint metrics middleware, plus the observability endpoints
// (/metrics, /healthz, and optionally /debug/pprof/) which are served
// unwrapped so scrapes don't pollute the request metrics they read.
func (s *server) mux(withPprof bool) *http.ServeMux {
	hm := telemetry.NewHTTPMetrics(s.reg)
	mux := http.NewServeMux()
	for path, h := range map[string]http.HandlerFunc{
		"/search":       s.handleSearch,
		"/search/batch": s.handleSearchBatch,
		"/add":          s.handleAdd,
		"/delete":       s.handleDelete,
		"/compact":      s.handleCompact,
		"/save":         s.handleSave,
		"/stats":        s.handleStats,
	} {
		mux.HandleFunc(path, hm.Wrap(path, h))
	}
	mux.Handle("/metrics", telemetry.Handler(s.reg, s.ix.Telemetry()))
	mux.HandleFunc("/healthz", s.handleHealthz)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, healthzResponse{
		Status:          "ok",
		IndexLoaded:     true,
		Vectors:         s.ix.Len(),
		Dim:             s.ix.Dim(),
		Epoch:           s.ix.Lifecycle().Epoch,
		EpochAgeSeconds: s.ix.EpochAge().Seconds(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
	})
}

// rerank resolves a request's rerank_k against the server default.
func (s *server) rerank(requested int) int {
	if requested != 0 {
		return requested
	}
	return s.rerankK
}

func defaulted(k, probes int) (int, int) {
	if k <= 0 {
		k = 10
	}
	if probes <= 0 {
		probes = 1
	}
	return k, probes
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.K, req.Probes = defaulted(req.K, req.Probes)
	start := time.Now()
	sr := s.searchers.Get().(*usp.Searcher)
	defer s.searchers.Put(sr)
	res, err := sr.Search(req.Vector, req.K, usp.SearchOptions{Probes: req.Probes, RerankK: s.rerank(req.RerankK)})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := searchResponse{Scanned: sr.Scanned(), Elapsed: time.Since(start).String()}
	for _, n := range res {
		resp.IDs = append(resp.IDs, n.ID)
		resp.Distances = append(resp.Distances, n.Distance)
	}
	writeJSON(w, resp)
}

func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req batchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.K, req.Probes = defaulted(req.K, req.Probes)
	start := time.Now()
	results, err := s.ix.SearchBatch(req.Vectors, req.K, usp.SearchOptions{Probes: req.Probes, RerankK: s.rerank(req.RerankK)})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := batchSearchResponse{
		IDs:       make([][]int, len(results)),
		Distances: make([][]float32, len(results)),
	}
	for i, res := range results {
		ids := make([]int, len(res))
		ds := make([]float32, len(res))
		for j, n := range res {
			ids[j], ds[j] = n.ID, n.Distance
		}
		resp.IDs[i], resp.Distances[i] = ids, ds
	}
	resp.Elapsed = time.Since(start).String()
	writeJSON(w, resp)
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req addRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.ix.Add(req.Vector)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, addResponse{ID: id})
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req deleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.ix.Delete(req.ID); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, deleteResponse{Deleted: true})
}

func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	s.ix.Compact()
	writeJSON(w, map[string]any{
		"elapsed":   time.Since(start).String(),
		"lifecycle": s.ix.Lifecycle(),
	})
}

func (s *server) handleSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req saveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
		http.Error(w, "bad request: need {\"path\": ...}", http.StatusBadRequest)
		return
	}
	rel := filepath.Clean(req.Path)
	if filepath.IsAbs(rel) || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		http.Error(w, "path must stay inside the -save-dir directory", http.StatusBadRequest)
		return
	}
	full := filepath.Join(s.saveDir, rel)
	start := time.Now()
	if err := s.ix.SaveFile(full); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	info, err := os.Stat(full)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, saveResponse{
		Path: full, Bytes: info.Size(), Elapsed: time.Since(start).String(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	writeJSON(w, map[string]any{
		"vectors":   s.ix.Len(),
		"dim":       s.ix.Dim(),
		"bins":      st.Bins,
		"models":    st.Models,
		"params":    st.Params,
		"lifecycle": s.ix.Lifecycle(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "serve this snapshot instead of training a demo corpus")
	saveDir := flag.String("save-dir", ".", "directory /save snapshots are confined to")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	quantized := flag.Bool("quantized", false, "train the demo corpus with PQ codebooks and serve via the quantized (ADC) scan")
	rerankK := flag.Int("rerank-k", 0, "default exact re-rank depth for quantized searches (0 = engine default, -1 = ADC only)")
	demo := flag.Bool("demo", false, "self-test: start, query, exit")
	flag.Parse()

	var ix *usp.Index
	var corpus *dataset.Labeled
	if *indexPath != "" {
		log.Printf("loading snapshot %s...", *indexPath)
		loaded, err := usp.LoadFile(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		ix = loaded
		log.Printf("loaded %d vectors of dim %d", ix.Len(), ix.Dim())
	} else {
		log.Println("generating corpus and training index...")
		rng := rand.New(rand.NewSource(9))
		corpus = dataset.GaussianMixture(dataset.GaussianMixtureConfig{
			N: 3000, Dim: 64, Clusters: 24, ClusterStd: 0.8, CenterBox: 3,
		}, rng)
		var err error
		ix, err = usp.Build(corpus.Rows(), usp.Options{
			Bins: 16, Ensemble: 2, Epochs: 30, Hidden: []int{64}, Seed: 1,
			Quantize: usp.Quantization{Enabled: *quantized},
		})
		if err != nil {
			log.Fatal(err)
		}
		if *quantized {
			log.Println("serving via the quantized (ADC) candidate scan")
		}
	}
	// The demo saves into (and reloads from) a throwaway directory.
	var demoDir string
	if *demo {
		var err error
		if demoDir, err = os.MkdirTemp("", "usp-server-demo"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(demoDir)
		*saveDir = demoDir
	}
	s := newServer(ix, *saveDir)
	s.rerankK = *rerankK

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s", ln.Addr())
	srv := &http.Server{
		Handler:           s.mux(*withPprof),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	if !*demo {
		// Graceful shutdown: SIGINT/SIGTERM stops accepting connections and
		// drains in-flight requests (queries resolve their epoch and finish)
		// instead of killing them mid-response.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-ctx.Done():
			stop()
			log.Printf("signal received; draining in-flight requests...")
			sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				log.Fatalf("shutdown: %v", err)
			}
			log.Printf("drained; bye")
			return
		}
	}
	if corpus == nil {
		log.Fatal("-demo requires the built-in training corpus (omit -index)")
	}

	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("server: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	post := func(path string, req, resp any) {
		body, _ := json.Marshal(req)
		r, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			log.Fatalf("%s: HTTP %d", path, r.StatusCode)
		}
		if resp != nil {
			if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Exercise the full HTTP stack.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: %v\n", stats)

	var sr searchResponse
	post("/search", searchRequest{Vector: corpus.Row(3), K: 5, Probes: 2}, &sr)
	fmt.Printf("search: ids=%v scanned=%d elapsed=%s\n", sr.IDs, sr.Scanned, sr.Elapsed)
	if len(sr.IDs) != 5 || sr.IDs[0] != 3 {
		log.Fatalf("demo self-check failed: %+v", sr)
	}

	// Batch search: rows 3, 7, 11 must each be their own nearest neighbor.
	var br batchSearchResponse
	post("/search/batch", batchSearchRequest{
		Vectors: [][]float32{corpus.Row(3), corpus.Row(7), corpus.Row(11)},
		K:       3, Probes: 2,
	}, &br)
	fmt.Printf("batch search: ids=%v elapsed=%s\n", br.IDs, br.Elapsed)
	if len(br.IDs) != 3 || br.IDs[0][0] != 3 || br.IDs[1][0] != 7 || br.IDs[2][0] != 11 {
		log.Fatalf("batch demo self-check failed: %+v", br)
	}

	// Add a vector, then find it.
	nv := append([]float32(nil), corpus.Row(5)...)
	nv[0] += 0.01
	var ar addResponse
	post("/add", addRequest{Vector: nv}, &ar)
	post("/search", searchRequest{Vector: nv, K: 1, Probes: 2}, &sr)
	fmt.Printf("add+search: id=%d found=%v\n", ar.ID, sr.IDs)
	if len(sr.IDs) != 1 || sr.IDs[0] != ar.ID {
		log.Fatalf("add demo self-check failed: added %d, found %v", ar.ID, sr.IDs)
	}

	// Delete it again: it must vanish from results immediately.
	var dr deleteResponse
	post("/delete", deleteRequest{ID: ar.ID}, &dr)
	post("/search", searchRequest{Vector: nv, K: 3, Probes: 2}, &sr)
	for _, id := range sr.IDs {
		if id == ar.ID {
			log.Fatalf("delete demo self-check failed: %d still served", ar.ID)
		}
	}
	fmt.Printf("delete: id=%d now absent from %v\n", ar.ID, sr.IDs)

	// Compact, then snapshot to disk (confined to -save-dir) and reload.
	post("/compact", nil, nil)
	var sv saveResponse
	post("/save", saveRequest{Path: "index.usps"}, &sv)
	fmt.Printf("save: %d bytes in %s\n", sv.Bytes, sv.Elapsed)
	if want := filepath.Join(demoDir, "index.usps"); sv.Path != want {
		log.Fatalf("save landed at %s, want %s", sv.Path, want)
	}
	reloaded, err := usp.LoadFile(sv.Path)
	if err != nil {
		log.Fatalf("reloading saved snapshot: %v", err)
	}
	if reloaded.Len() != ix.Len() {
		log.Fatalf("snapshot Len %d != live %d", reloaded.Len(), ix.Len())
	}
	// Escaping paths must be rejected.
	body, _ := json.Marshal(saveRequest{Path: "../escape.usps"})
	r2, err := http.Post(base+"/save", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		log.Fatalf("escaping /save path not rejected: HTTP %d", r2.StatusCode)
	}

	// Health: the index is loaded and the epoch is fresh (the mutations
	// above republished it moments ago).
	r3, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(r3.Body).Decode(&hz); err != nil {
		log.Fatal(err)
	}
	r3.Body.Close()
	fmt.Printf("healthz: status=%s epoch=%d age=%.3fs\n", hz.Status, hz.Epoch, hz.EpochAgeSeconds)
	if hz.Status != "ok" || !hz.IndexLoaded || hz.Epoch == 0 || hz.EpochAgeSeconds > 60 {
		log.Fatalf("healthz demo self-check failed: %+v", hz)
	}

	// Metrics: the scrape must carry the core query, lifecycle, and HTTP
	// series, with samples from the traffic just generated.
	r4, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	promText, err := io.ReadAll(r4.Body)
	r4.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, series := range []string{
		"usp_query_latency_seconds_bucket",
		"usp_query_latency_seconds_count",
		"usp_query_candidates_total",
		"usp_query_bins_probed_total",
		"usp_query_tombstones_skipped_total",
		"usp_adds_total 1",
		"usp_deletes_total 1",
		"usp_epoch_publishes_total",
		"usp_compactions_total 1",
		"usp_compaction_latency_seconds_count 1",
		"usp_epoch ",
		"usp_live_vectors",
		`http_requests_total{endpoint="/search"}`,
		`http_request_latency_seconds_bucket{endpoint="/search",le="+Inf"}`,
	} {
		if !strings.Contains(string(promText), series) {
			log.Fatalf("metrics demo self-check failed: %q missing from scrape:\n%s", series, promText)
		}
	}
	fmt.Printf("metrics: %d bytes of Prometheus text, core series present\n", len(promText))

	fmt.Println("demo OK")
	_ = srv.Close()
}
