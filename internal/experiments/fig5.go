package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/kmeans"
	"repro/internal/lsh"
	"repro/internal/neurallsh"
)

// fig5 reproduces Figure 5: 10-NN accuracy vs candidate-set size for USP
// (ensemble of sc.Ensemble models; hierarchical 16×(bins/16) when bins >
// 16), Neural LSH, K-means, and cross-polytope LSH, on one dataset with a
// fixed bin count.
func fig5(sc Scale, logf logfn, ds string, bins int) (*Report, error) {
	const k = 10
	kPrime := 10
	b := makeBench(ds, sc, k, kPrime)
	eta := etaFor(ds, bins)
	probes := probeSchedule(bins)
	var series []eval.Series

	// --- USP (ours). ---
	cfg := core.Config{
		Bins: bins, KPrime: kPrime, Eta: eta, Epochs: sc.Epochs,
		Hidden: []int{sc.Hidden}, Dropout: 0.1, Seed: sc.Seed,
	}
	if bins > 16 {
		// Hierarchical 16 × bins/16, as in the paper's 256-bin runs.
		logf("fig5 %s/%d: training USP hierarchy 16x%d", ds, bins, bins/16)
		h, _, err := core.TrainHierarchy(b.base, []int{16, bins / 16}, cfg)
		if err != nil {
			return nil, err
		}
		series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
			Name:       fmt.Sprintf("USP (ours, hier 16x%d)", bins/16),
			Candidates: h.Candidates,
		}, probes))
	} else {
		logf("fig5 %s/%d: training USP ensemble of %d", ds, bins, sc.Ensemble)
		ens, _, err := core.TrainEnsemble(b.base, b.mat, cfg, sc.Ensemble)
		if err != nil {
			return nil, err
		}
		var qs core.QueryScratch
		series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
			Name: fmt.Sprintf("USP (ours, e=%d)", sc.Ensemble),
			Candidates: func(q []float32, p int) []int {
				return ens.CandidatesWith(&qs, q, p, core.BestConfidence)
			},
		}, probes))
	}

	// --- Neural LSH. ---
	logf("fig5 %s/%d: training Neural LSH", ds, bins)
	nlsh, _, err := neurallsh.Train(b.base, b.mat, neurallsh.Config{
		Bins: bins, Hidden: []int{sc.NLSHHidden}, Epochs: sc.Epochs, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
		Name: "Neural LSH", Candidates: nlsh.Candidates,
	}, probes))

	// --- K-means. ---
	logf("fig5 %s/%d: K-means", ds, bins)
	km, err := kmeans.NewIndex(b.base, bins, kmeans.Options{Seed: sc.Seed, Restarts: 3})
	if err != nil {
		return nil, err
	}
	series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
		Name: "K-means", Candidates: km.Candidates,
	}, probes))

	// --- Cross-polytope LSH. ---
	logf("fig5 %s/%d: cross-polytope LSH", ds, bins)
	cp, err := lsh.NewCrossPolytope(b.base, bins, sc.Seed)
	if err != nil {
		return nil, err
	}
	series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
		Name: "Cross-polytope LSH", Candidates: cp.Candidates,
	}, probes))

	title := fmt.Sprintf("Fig 5 (%s, %d bins): 10-NN accuracy vs |C| (n=%d, q=%d)",
		ds, bins, b.base.N, b.queries.N)
	return &Report{
		ID:     fmt.Sprintf("fig5-%s-%d", ds, bins),
		Text:   eval.RenderSeries(title, series),
		Series: series,
	}, nil
}
