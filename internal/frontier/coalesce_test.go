package frontier

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// countProxy forwards to target, counting /search arrivals. When gated,
// every /search blocks until release closes; arrived signals the first
// one reaching the backend.
type countProxy struct {
	target   *httptest.Server
	searches atomic.Int64
	gated    bool
	arrived  chan struct{}
	release  chan struct{}
	once     sync.Once
}

func newCountProxy(target *httptest.Server, gated bool) *countProxy {
	return &countProxy{
		target: target, gated: gated,
		arrived: make(chan struct{}), release: make(chan struct{}),
	}
}

func (p *countProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/search" {
		p.searches.Add(1)
		p.once.Do(func() { close(p.arrived) })
		if p.gated {
			<-p.release
		}
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target.URL+r.URL.Path, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// rawPost returns the status and the raw response bytes, so bodies can be
// compared byte for byte.
func rawPost(t testing.TB, url string, body any) (int, []byte) {
	t.Helper()
	resp := postJSON(t, url, body)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestCoalescingSingleFanout pins the satellite criterion: identical
// concurrent queries produce exactly one backend fan-out and
// byte-identical answer bodies.
func TestCoalescingSingleFanout(t *testing.T) {
	vecs := corpusRows(t, 137, 300, 8)
	ix := buildIndex(t, vecs)
	proxy := newCountProxy(backendFor(t, ix), true)
	pts := httptest.NewServer(proxy)
	defer pts.Close()
	f, front := frontFor(t, Config{
		Shards: [][]string{{pts.URL}}, Timeout: 10 * time.Second,
	})

	req := serve.SearchRequest{Vector: vecs[0], K: 5, Probes: 2}
	const followers = 3
	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, followers+1)
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := rawPost(t, front.URL+"/search", req)
			replies <- reply{status, body}
		}()
	}

	// Leader first; wait until it is parked inside the gated backend so
	// the followers below provably overlap it.
	launch()
	select {
	case <-proxy.arrived:
	case <-time.After(5 * time.Second):
		close(proxy.release)
		t.Fatal("leader request never reached the backend")
	}
	for i := 0; i < followers; i++ {
		launch()
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.coalesced.Value() < followers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	joined := f.coalesced.Value()
	close(proxy.release)
	wg.Wait()
	close(replies)

	if joined < followers {
		t.Fatalf("only %d/%d followers coalesced onto the in-flight leader", joined, followers)
	}
	if n := proxy.searches.Load(); n != 1 {
		t.Fatalf("backend saw %d /search requests, want exactly 1", n)
	}
	var firstBody []byte
	for rep := range replies {
		if rep.status != http.StatusOK {
			t.Fatalf("HTTP %d: %s", rep.status, rep.body)
		}
		if firstBody == nil {
			firstBody = rep.body
			continue
		}
		if !bytes.Equal(rep.body, firstBody) {
			t.Fatalf("coalesced answers differ:\n%s\nvs\n%s", firstBody, rep.body)
		}
	}
	if firstBody == nil {
		t.Fatal("no replies collected")
	}
}

// TestCacheHitAndInvalidation pins the result cache's whole lifecycle:
// a repeat query is served without backend traffic, a backend /reload
// (generation bump seen by the next health probe) drops every entry, and
// a write routed through the front does too.
func TestCacheHitAndInvalidation(t *testing.T) {
	vecs := corpusRows(t, 139, 300, 8)
	ix := buildIndex(t, vecs)
	backend := backendFor(t, ix)
	proxy := newCountProxy(backend, false)
	pts := httptest.NewServer(proxy)
	defer pts.Close()
	f, front := frontFor(t, Config{Shards: [][]string{{pts.URL}}, CacheSize: 8})

	req := serve.SearchRequest{Vector: vecs[0], K: 5, Probes: 2}
	status, body1 := rawPost(t, front.URL+"/search", req)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, body1)
	}
	if n := proxy.searches.Load(); n != 1 {
		t.Fatalf("first query: %d backend searches, want 1", n)
	}

	// Hit: same query, zero new backend traffic, byte-identical body.
	status, body2 := rawPost(t, front.URL+"/search", req)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, body2)
	}
	if n := proxy.searches.Load(); n != 1 {
		t.Fatalf("cached query still reached the backend (%d searches)", n)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit body differs:\n%s\nvs\n%s", body1, body2)
	}
	if f.cacheHits.Value() != 1 || f.cacheMisses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", f.cacheHits.Value(), f.cacheMisses.Value())
	}

	// /reload bumps the backend generation; the next health probe must
	// invalidate the cache even though ids and data are unchanged.
	resp := postJSON(t, backend.URL+"/save", serve.SaveRequest{Path: "snap.usp"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save: HTTP %d", resp.StatusCode)
	}
	resp = postJSON(t, backend.URL+"/reload", serve.ReloadRequest{Path: "snap.usp"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: HTTP %d", resp.StatusCode)
	}
	genBefore := f.cacheGen.Load()
	f.ProbeHealth(context.Background())
	if f.cacheGen.Load() == genBefore {
		t.Fatal("health probe did not observe the reload's generation bump")
	}
	status, _ = rawPost(t, front.URL+"/search", req)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d after reload", status)
	}
	if n := proxy.searches.Load(); n != 2 {
		t.Fatalf("post-reload query: %d backend searches, want 2 (cache must miss)", n)
	}

	// A routed /add invalidates immediately — no probe needed.
	status, addBody := rawPost(t, front.URL+"/add", serve.AddRequest{Vector: vecs[1]})
	if status != http.StatusOK {
		t.Fatalf("routed add: HTTP %d: %s", status, addBody)
	}
	status, _ = rawPost(t, front.URL+"/search", req)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d after add", status)
	}
	if n := proxy.searches.Load(); n != 3 {
		t.Fatalf("post-add query: %d backend searches, want 3 (cache must miss)", n)
	}

	// The new series are exposed on the front's scrape.
	body := readBody(t, mustGet(t, front.URL+"/metrics"))
	for _, series := range []string{
		"front_cache_hits_total 1",
		"front_coalesced_total",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("series %q missing from scrape:\n%s", series, body)
		}
	}
}

func readBody(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
