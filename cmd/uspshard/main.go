// uspshard splits a USP snapshot into M disjoint shard snapshots for the
// horizontal serving tier: each output file is a fully servable index
// over a contiguous row range of the source, sharing its trained models,
// with its global id offset recorded in the snapshot. Serve each shard
// with cmd/uspserve and fan queries out over them with cmd/uspfront; the
// merged answers are bit-identical to serving the unsplit snapshot (see
// usp.Shard for the one quantized-mode exception).
//
//	go run ./cmd/uspshard -index corpus.usps -shards 4 -out ./shards
//	ls shards/   # shard-0.usps ... shard-3.usps
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	usp "repro"
)

func main() {
	indexPath := flag.String("index", "", "source snapshot to split (required)")
	shards := flag.Int("shards", 2, "number of disjoint shards")
	outDir := flag.String("out", ".", "directory the shard snapshots are written to")
	prefix := flag.String("prefix", "shard", "output filename prefix (<prefix>-<i>.usps)")
	flag.Parse()

	if *indexPath == "" {
		flag.Usage()
		log.Fatal("uspshard: -index is required")
	}
	ix, err := usp.LoadFile(*indexPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s: %d vectors of dim %d", *indexPath, ix.Len(), ix.Dim())

	parts, err := ix.Shard(*shards)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, sh := range parts {
		path := filepath.Join(*outDir, fmt.Sprintf("%s-%d.usps", *prefix, i))
		if err := sh.SaveFile(path); err != nil {
			log.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s: %d live vectors, id offset %d, %d bytes",
			path, sh.Len(), sh.IDOffset(), info.Size())
	}
	log.Printf("split %d rows into %d shards", ix.Len(), len(parts))
}
