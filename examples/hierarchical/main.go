// Hierarchical: the paper's §4.4.2 recursive partitioning. Builds a flat
// 16-bin index and a two-level 16x16 = 256-bin hierarchy over the same
// data and shows how the finer hierarchy trades smaller candidate sets for
// per-probe recall — the Fig. 5c/5d configuration.
package main

import (
	"fmt"
	"log"
	"math/rand"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/knn"
)

func main() {
	rng := rand.New(rand.NewSource(31))
	full := dataset.SIFTLike(4200, rng)
	base, queries := dataset.SplitQueries(full, 200, rng)
	gt := knn.GroundTruth(base, queries, 10)

	fmt.Println("training flat 16-bin index...")
	flat, err := usp.Build(base.Rows(), usp.Options{
		Bins: 16, Epochs: 40, Hidden: []int{64}, Seed: 2, Eta: usp.Float(7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training hierarchical 16x16 = 256-bin index...")
	hier, err := usp.Build(base.Rows(), usp.Options{
		Hierarchy: []int{16, 16}, Epochs: 40, Hidden: []int{64}, Seed: 2, Eta: usp.Float(10),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat: %d bins / %d params; hierarchy: %d bins / %d params (%d models)\n",
		flat.Stats().Bins, flat.Stats().Params,
		hier.Stats().Bins, hier.Stats().Params, hier.Stats().Models)

	measure := func(name string, ix *usp.Index, probes int) {
		var recall, cands float64
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			opt := usp.SearchOptions{Probes: probes}
			c, err := ix.CandidateSet(q, opt)
			if err != nil {
				log.Fatal(err)
			}
			res, err := ix.Search(q, 10, opt)
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			recall += knn.Recall(ids, gt[qi])
			cands += float64(len(c))
		}
		fmt.Printf("%-24s probes=%-4d avg |C| = %7.1f   recall = %.4f\n",
			name, probes, cands/float64(queries.N), recall/float64(queries.N))
	}

	fmt.Println()
	for _, p := range []int{1, 2, 4} {
		measure("flat-16", flat, p)
	}
	// The hierarchy's 256 fine bins let |C| shrink far below a 16-bin
	// index's floor while multi-probing recovers recall.
	for _, p := range []int{1, 4, 16, 32} {
		measure("hierarchical-16x16", hier, p)
	}
}
