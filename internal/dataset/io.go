package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// The fvecs/ivecs formats are the interchange formats of the ann-benchmarks
// suite (and of the original SIFT1M distribution): each vector is stored as
// a little-endian int32 dimension followed by that many little-endian
// float32 (fvecs) or int32 (ivecs) components.

// WriteFvecs writes d to w in fvecs format.
func WriteFvecs(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	for i := 0; i < d.N; i++ {
		binary.LittleEndian.PutUint32(hdr[:], uint32(d.Dim))
		if _, err := bw.Write(hdr[:]); err != nil {
			return fmt.Errorf("dataset: writing fvecs header: %w", err)
		}
		for _, v := range d.Row(i) {
			binary.LittleEndian.PutUint32(hdr[:], math.Float32bits(v))
			if _, err := bw.Write(hdr[:]); err != nil {
				return fmt.Errorf("dataset: writing fvecs value: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadFvecs reads an entire fvecs stream. All vectors must share one
// dimension.
func ReadFvecs(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var vecs []float32
	dim, n := 0, 0
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: reading fvecs header: %w", err)
		}
		d := int(int32(binary.LittleEndian.Uint32(hdr[:])))
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible fvecs dimension %d", d)
		}
		if dim == 0 {
			dim = d
		} else if d != dim {
			return nil, fmt.Errorf("dataset: inconsistent fvecs dimensions %d vs %d", d, dim)
		}
		buf := make([]byte, 4*d)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: truncated fvecs vector: %w", err)
		}
		for j := 0; j < d; j++ {
			vecs = append(vecs, math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:])))
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("dataset: empty fvecs stream")
	}
	return &Dataset{N: n, Dim: dim, Data: vecs}, nil
}

// WriteIvecs writes integer vectors (e.g. ground-truth neighbor indices) in
// ivecs format. All rows must have equal length.
func WriteIvecs(w io.Writer, rows [][]int32) error {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	for _, row := range rows {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(row)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return fmt.Errorf("dataset: writing ivecs header: %w", err)
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(hdr[:], uint32(v))
			if _, err := bw.Write(hdr[:]); err != nil {
				return fmt.Errorf("dataset: writing ivecs value: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadIvecs reads an entire ivecs stream.
func ReadIvecs(r io.Reader) ([][]int32, error) {
	br := bufio.NewReader(r)
	var rows [][]int32
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("dataset: reading ivecs header: %w", err)
		}
		d := int(int32(binary.LittleEndian.Uint32(hdr[:])))
		if d < 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible ivecs dimension %d", d)
		}
		buf := make([]byte, 4*d)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: truncated ivecs vector: %w", err)
		}
		row := make([]int32, d)
		for j := range row {
			row[j] = int32(binary.LittleEndian.Uint32(buf[4*j:]))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LoadFvecsFile reads an fvecs file from disk.
func LoadFvecsFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f)
}

// SaveFvecsFile writes d to an fvecs file on disk.
func SaveFvecsFile(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFvecs(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
