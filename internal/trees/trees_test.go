package trees

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

func blobs(seed int64, n, dim, k int) *dataset.Labeled {
	return dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: k, ClusterStd: 0.1, CenterBox: 5,
	}, rand.New(rand.NewSource(seed)))
}

func checkLeafPartition(t *testing.T, tree *Tree, n int) {
	t.Helper()
	seen := make([]int, n)
	for _, leaf := range tree.Leaves {
		for _, i := range leaf {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d in %d leaves", i, c)
		}
	}
}

func TestBuildWithEachSplitter(t *testing.T) {
	l := blobs(1, 400, 6, 4)
	for _, f := range []Fitter{RPFitter{}, KDFitter{}, PCAFitter{}, TwoMeansFitter{}} {
		tree := Build(l.Dataset, 4, f, 7)
		if tree.NumLeaves() < 2 {
			t.Fatalf("%s: only %d leaves", f.Name(), tree.NumLeaves())
		}
		if tree.NumLeaves() > 16 {
			t.Fatalf("%s: %d leaves exceeds 2^depth", f.Name(), tree.NumLeaves())
		}
		checkLeafPartition(t, tree, l.N)

		// Leaf scores are a distribution (product of complementary pairs).
		scores := tree.LeafScores(l.Row(0))
		var sum float64
		for _, s := range scores {
			if s < 0 || s > 1 {
				t.Fatalf("%s: leaf score %v out of range", f.Name(), s)
			}
			sum += float64(s)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: leaf scores sum to %v", f.Name(), sum)
		}

		// Hard route lands in the top-scoring leaf's subtree family:
		// route leaf must be among candidates when probing 1 leaf... the
		// top-scoring leaf can differ from the hard-routed one only near
		// boundaries; instead verify Candidates covers everything when
		// probing all leaves.
		all := tree.Candidates(l.Row(0), tree.NumLeaves())
		if len(all) != l.N {
			t.Fatalf("%s: full probe |C| = %d", f.Name(), len(all))
		}

		// Route is a valid leaf and the point routes to its own leaf for
		// hyperplane splitters (points were themselves split by Side).
		if _, ok := anySplitterAssigns(f); !ok {
			for i := 0; i < 50; i++ {
				leaf := tree.Route(l.Row(i))
				found := false
				for _, j := range tree.Leaves[leaf] {
					if int(j) == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: point %d not in its routed leaf", f.Name(), i)
				}
			}
		}
		sizes := tree.LeafSizes()
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total != l.N {
			t.Fatalf("%s: leaf sizes sum %d", f.Name(), total)
		}
	}
}

func anySplitterAssigns(f Fitter) (Fitter, bool) { return f, false }

func TestTreeSeparatesBlobs(t *testing.T) {
	// A depth-3 2-means tree on 4 separated blobs has enough leaves to
	// isolate every blob even when intermediate splits go 1-vs-3; each
	// leaf should then be dominated by a single blob.
	l := blobs(2, 400, 4, 4)
	tree := Build(l.Dataset, 3, TwoMeansFitter{}, 3)
	if tree.NumLeaves() < 4 {
		t.Fatalf("leaves = %d", tree.NumLeaves())
	}
	for li, leaf := range tree.Leaves {
		counts := map[int]int{}
		for _, i := range leaf {
			counts[l.Labels[i]]++
		}
		best, total := 0, 0
		for _, c := range counts {
			total += c
			if c > best {
				best = c
			}
		}
		if total > 0 && float64(best)/float64(total) < 0.9 {
			t.Fatalf("leaf %d impure: %v", li, counts)
		}
	}
}

func TestDegenerateDataBecomesLeaf(t *testing.T) {
	// All-identical points: every splitter must fail gracefully to one leaf.
	d := dataset.New(50, 3)
	for _, f := range []Fitter{RPFitter{}, KDFitter{}, PCAFitter{}, TwoMeansFitter{}} {
		tree := Build(d, 5, f, 11)
		if tree.NumLeaves() != 1 {
			t.Fatalf("%s: %d leaves on degenerate data", f.Name(), tree.NumLeaves())
		}
		if got := tree.Candidates(d.Row(0), 1); len(got) != 50 {
			t.Fatalf("%s: single leaf should hold everything", f.Name())
		}
	}
}

func TestMoreProbesNeverShrinkCandidates(t *testing.T) {
	l := blobs(4, 300, 5, 3)
	tree := Build(l.Dataset, 5, RPFitter{}, 13)
	q := l.Row(7)
	prev := -1
	for mp := 1; mp <= tree.NumLeaves(); mp++ {
		c := len(tree.Candidates(q, mp))
		if c < prev {
			t.Fatalf("candidates shrank at mp=%d", mp)
		}
		prev = c
	}
}

func TestBoostedForest(t *testing.T) {
	l := blobs(5, 400, 6, 4)
	mat := knn.BuildMatrix(l.Dataset, 5)
	forest := BuildBoostedForest(l.Dataset, mat.Neighbors, ForestConfig{
		NumTrees: 3, Depth: 3, Seed: 17,
	})
	if len(forest.Trees) != 3 {
		t.Fatalf("trees = %d", len(forest.Trees))
	}
	for _, tree := range forest.Trees {
		checkLeafPartition(t, tree, l.N)
	}
	// Union candidates duplicate-free and growing with probes.
	c1 := forest.Candidates(l.Row(0), 1)
	seen := map[int]bool{}
	for _, i := range c1 {
		if seen[i] {
			t.Fatalf("duplicate candidate %d", i)
		}
		seen[i] = true
	}
	cAll := forest.Candidates(l.Row(0), 8)
	if len(cAll) < len(c1) {
		t.Fatal("more probes produced fewer candidates")
	}
	if len(cAll) != l.N {
		t.Fatalf("full probe covers %d of %d", len(cAll), l.N)
	}
}

func TestBoostedForestRecallBeatsSingleRPTree(t *testing.T) {
	l := blobs(6, 500, 8, 6)
	mat := knn.BuildMatrix(l.Dataset, 5)
	forest := BuildBoostedForest(l.Dataset, mat.Neighbors, ForestConfig{
		NumTrees: 3, Depth: 4, Seed: 19,
	})
	rp := Build(l.Dataset, 4, RPFitter{}, 19)
	gt := knn.GroundTruth(l.Dataset, l.Dataset, 10)
	var fRecall, rpRecall float64
	for qi := 0; qi < 60; qi++ {
		q := l.Row(qi)
		fc := forest.Candidates(q, 1)
		rc := rp.Candidates(q, 3) // give the single tree more probes
		fRecall += knn.RecallNeighbors(knn.SearchSubset(l.Dataset, fc, q, 10), gt[qi])
		rpRecall += knn.RecallNeighbors(knn.SearchSubset(l.Dataset, rc, q, 10), gt[qi])
	}
	if fRecall < rpRecall {
		t.Fatalf("boosted forest recall %.3f below single RP tree %.3f", fRecall/60, rpRecall/60)
	}
}
