package cluster

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/vecmath"
)

// SpectralConfig controls spectral clustering.
type SpectralConfig struct {
	// K is the number of clusters.
	K int
	// Neighbors sparsifies the affinity to each point's that-many nearest
	// neighbors (0 keeps the dense Gaussian affinity).
	Neighbors int
	// Sigma is the Gaussian kernel bandwidth; 0 uses the median pairwise
	// distance heuristic.
	Sigma float64
	// PowerIters per eigenvector (default 200).
	PowerIters int
	// Seed drives the final k-means.
	Seed int64
}

// Spectral implements Ng–Jordan–Weiss normalized spectral clustering:
// Gaussian affinity, symmetric normalization L_sym = D^{-1/2} W D^{-1/2},
// top-K eigenvectors by power iteration with deflation, row normalization,
// then k-means in the embedded space. Dense O(n²) — intended for the small
// Table 5 datasets, as in the paper's own comparison.
func Spectral(ds *dataset.Dataset, cfg SpectralConfig) ([]int, error) {
	n := ds.N
	if cfg.K < 2 || cfg.K > n {
		return nil, fmt.Errorf("cluster: spectral K=%d out of range for n=%d", cfg.K, n)
	}
	if cfg.PowerIters == 0 {
		cfg.PowerIters = 200
	}

	// Pairwise squared distances.
	d2 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := float64(vecmath.SquaredL2(ds.Row(i), ds.Row(j)))
			d2[i*n+j] = d
			d2[j*n+i] = d
		}
	}

	sigma := cfg.Sigma
	if sigma == 0 {
		// Local-scale heuristic: the median distance to the 7th nearest
		// neighbor. A global median-pairwise bandwidth over-smooths thin
		// manifolds (moons, rings); the k-th-neighbor scale tracks the
		// within-cluster geometry instead.
		kth := 7
		if kth >= n {
			kth = n - 1
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			tk := vecmath.NewTopK(kth)
			for j := 0; j < n; j++ {
				if j != i {
					tk.Push(j, float32(d2[i*n+j]))
				}
			}
			sorted := tk.Sorted()
			vals[i] = math.Sqrt(float64(sorted[len(sorted)-1].Dist))
		}
		sigma = median(vals)
		if sigma == 0 {
			sigma = 1
		}
	}

	// Affinity, optionally kNN-sparsified (symmetrized).
	W := make([]float64, n*n)
	inv := 1 / (2 * sigma * sigma)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				W[i*n+j] = math.Exp(-d2[i*n+j] * inv)
			}
		}
	}
	if cfg.Neighbors > 0 && cfg.Neighbors < n-1 {
		mask := make([]bool, n*n)
		for i := 0; i < n; i++ {
			tk := vecmath.NewTopK(cfg.Neighbors)
			for j := 0; j < n; j++ {
				if j != i {
					tk.Push(j, float32(d2[i*n+j]))
				}
			}
			for _, nb := range tk.Sorted() {
				mask[i*n+nb.Index] = true
				mask[nb.Index*n+i] = true
			}
		}
		for idx := range W {
			if !mask[idx] {
				W[idx] = 0
			}
		}
	}

	// Normalized affinity M = D^{-1/2} W D^{-1/2}; its top eigenvectors
	// are the bottom eigenvectors of L_sym.
	dinv := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += W[i*n+j]
		}
		if s <= 0 {
			dinv[i] = 0
		} else {
			dinv[i] = 1 / math.Sqrt(s)
		}
	}
	M := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			M[i*n+j] = dinv[i] * W[i*n+j] * dinv[j]
		}
	}

	// Top-K eigenvectors by power iteration with deflation.
	embed := dataset.New(n, cfg.K)
	vecs := make([][]float64, 0, cfg.K)
	vals := make([]float64, 0, cfg.K)
	for e := 0; e < cfg.K; e++ {
		v := powerIteration(M, n, vecs, vals, cfg.PowerIters, int64(e)+cfg.Seed)
		lam := rayleigh(M, v, n)
		vecs = append(vecs, v)
		vals = append(vals, lam)
		for i := 0; i < n; i++ {
			embed.Row(i)[e] = float32(v[i])
		}
	}

	// Row-normalize the embedding (NJW step 4).
	for i := 0; i < n; i++ {
		vecmath.Normalize(embed.Row(i))
	}
	res, err := kmeans.Run(embed, cfg.K, kmeans.Options{Seed: cfg.Seed, Restarts: 5})
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	for i, a := range res.Assign {
		labels[i] = int(a)
	}
	return labels, nil
}

// powerIteration finds the dominant eigenvector of M orthogonal to the
// already-found vecs (deflation by explicit re-orthogonalization).
func powerIteration(M []float64, n int, vecs [][]float64, vals []float64, iters int, seed int64) []float64 {
	v := make([]float64, n)
	// Deterministic pseudo-random init (splitmix-style) so runs reproduce.
	state := uint64(seed)*2654435769 + 12345
	for i := range v {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v[i] = float64(int64(state%2000001)-1000000) / 1e6
	}
	tmp := make([]float64, n)
	for it := 0; it < iters; it++ {
		// Orthogonalize against previous eigenvectors.
		for _, u := range vecs {
			var dot float64
			for i := range v {
				dot += v[i] * u[i]
			}
			for i := range v {
				v[i] -= dot * u[i]
			}
		}
		// tmp = M v.
		for i := 0; i < n; i++ {
			var s float64
			row := M[i*n : (i+1)*n]
			for j, m := range row {
				s += m * v[j]
			}
			tmp[i] = s
		}
		var norm float64
		for _, x := range tmp {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for i := range v {
			v[i] = tmp[i] / norm
		}
	}
	return v
}

func rayleigh(M []float64, v []float64, n int) float64 {
	var num float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += M[i*n+j] * v[j]
		}
		num += v[i] * s
	}
	return num
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// Insertion-free selection: simple sort via quickselect is overkill;
	// small slices in practice.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}
