package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates model parameters in place from their accumulated
// gradients. Step consumes the gradients (the caller is expected to call
// ZeroGrads before the next accumulation).
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param]*tensor.Matrix
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Matrix)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			lr := float32(o.LR)
			for i, g := range p.Grad.Data {
				p.Value.Data[i] -= lr * g
			}
			continue
		}
		v := o.velocity[p]
		if v == nil {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			o.velocity[p] = v
		}
		mu, lr := float32(o.Momentum), float32(o.LR)
		for i, g := range p.Grad.Data {
			v.Data[i] = mu*v.Data[i] + g
			p.Value.Data[i] -= lr * v.Data[i]
		}
	}
}

// Adam implements Kingma & Ba (2017) with bias correction; it is the
// optimizer the paper uses for both model architectures.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam constructs an Adam optimizer with the standard default moments
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			o.m[p] = m
			o.v[p] = v
		}
		b1, b2 := float32(o.Beta1), float32(o.Beta2)
		for i, g := range p.Grad.Data {
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mhat := float64(m.Data[i]) / c1
			vhat := float64(v.Data[i]) / c2
			p.Value.Data[i] -= float32(o.LR * mhat / (math.Sqrt(vhat) + o.Eps))
		}
	}
}
