package core

import (
	"repro/internal/bitset"
	"repro/internal/par"
)

// ExtraBins supplies, per (member, bin), the ids routed into a bin after its
// CSR epoch was built — the usp layer's per-shard spill state. Implementations
// must append ids in a deterministic order (the candidate order, the
// compaction merge order, and the snapshot serialization order all consume
// the same callback, which is what keeps live, compacted, and reloaded
// indexes bit-identical). A hierarchy addresses it with member 0 and
// bin = global leaf id.
type ExtraBins interface {
	AppendExtra(dst []int32, member, bin int) []int32
}

// Rebuild returns a partitioner that shares p's trained model but owns a
// freshly merged lookup table: per bin, p's CSR ids with drop-marked ids
// removed, followed by the bin's extra ids (minus drops) in callback order.
// Assign is extended to n entries — extra ids take their routed bin, dropped
// ids are marked -1 — so serialization snapshots of compacted partitioners
// stay id-aligned with the dataset. p itself is left untouched; it may be
// serving readers in an older epoch.
func (p *Partitioner) Rebuild(n, member int, extra ExtraBins, drop *bitset.Set) *Partitioner {
	np := &Partitioner{Model: p.Model, M: p.M}
	np.Assign = make([]int32, n)
	copy(np.Assign, p.Assign)
	for i := len(p.Assign); i < n; i++ {
		np.Assign[i] = -1
	}

	lists := make([][]int32, p.M)
	var scratch []int32
	for b := 0; b < p.M; b++ {
		scratch = p.AppendBin(scratch[:0], b)
		if extra != nil {
			scratch = extra.AppendExtra(scratch, member, b)
		}
		list := make([]int32, 0, len(scratch))
		for _, id := range scratch {
			if drop.Has(int(id)) {
				np.Assign[id] = -1
				continue
			}
			np.Assign[id] = int32(b)
			list = append(list, id)
		}
		lists[b] = list
	}
	np.setBinLists(lists)
	return np
}

// Rebuild returns an ensemble whose members share e's models but carry
// merged lookup tables (see Partitioner.Rebuild). Members are rebuilt in
// parallel — compaction is pure id-list surgery, so it scales with cores and
// never touches vector data.
func (e *Ensemble) Rebuild(n int, extra ExtraBins, drop *bitset.Set) *Ensemble {
	ne := &Ensemble{Parts: make([]*Partitioner, len(e.Parts))}
	par.For(len(e.Parts), func(m int) {
		ne.Parts[m] = e.Parts[m].Rebuild(n, m, extra, drop)
	})
	return ne
}

// Rebuild returns a hierarchy sharing h's trained tree but owning a freshly
// merged global leaf table: per leaf, h's frozen list with drop-marked ids
// removed, followed by the leaf's extra ids (minus drops).
func (h *Hierarchy) Rebuild(extra ExtraBins, drop *bitset.Set) *Hierarchy {
	nh := &Hierarchy{
		Levels: h.Levels, NumBins: h.NumBins, ProbeTemp: h.ProbeTemp, root: h.root,
	}
	nh.Bins = make([][]int32, h.NumBins)
	par.ForChunksMin(h.NumBins, 16, func(lo, hi int) {
		var scratch []int32
		for g := lo; g < hi; g++ {
			scratch = append(scratch[:0], h.Bins[g]...)
			if extra != nil {
				scratch = extra.AppendExtra(scratch, 0, g)
			}
			list := make([]int32, 0, len(scratch))
			for _, id := range scratch {
				if !drop.Has(int(id)) {
					list = append(list, id)
				}
			}
			nh.Bins[g] = list
		}
	})
	return nh
}
