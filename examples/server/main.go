// Server: a production-style ANN search service. Trains a USP index at
// startup, then serves JSON k-NN queries over HTTP — the distributed-
// serving setting §2.2.2 argues space partitioning is naturally suited to.
//
// Request handling rides the zero-allocation query engine: a sync.Pool
// recycles usp.Searchers across requests (each owns its scratch buffers), a
// /search/batch endpoint fans multi-query requests out over the worker pool,
// and /add streams new vectors into the live index — safe concurrently with
// searches thanks to the index's reader/writer locking.
//
//	go run ./examples/server -addr :8080
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/search \
//	     -d '{"vector": [ ...64 floats... ], "k": 5, "probes": 2}'
//	curl -s -X POST localhost:8080/search/batch \
//	     -d '{"vectors": [[...], [...]], "k": 5, "probes": 2}'
//	curl -s -X POST localhost:8080/add -d '{"vector": [ ...64 floats... ]}'
//
// Run with -demo to start, fire a few requests through the full HTTP stack,
// and exit (used by the repository's smoke tests).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	usp "repro"
	"repro/internal/dataset"
)

type searchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Probes int       `json:"probes"`
}

type searchResponse struct {
	IDs       []int     `json:"ids"`
	Distances []float32 `json:"distances"`
	Scanned   int       `json:"scanned"`
	Elapsed   string    `json:"elapsed"`
}

type batchSearchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	K       int         `json:"k"`
	Probes  int         `json:"probes"`
}

type batchSearchResponse struct {
	IDs       [][]int     `json:"ids"`
	Distances [][]float32 `json:"distances"`
	Elapsed   string      `json:"elapsed"`
}

type addRequest struct {
	Vector []float32 `json:"vector"`
}

type addResponse struct {
	ID int `json:"id"`
}

type server struct {
	ix *usp.Index
	// searchers recycles query contexts across requests: each Searcher owns
	// the scratch buffers of one in-flight query, so steady-state request
	// handling does not allocate on the search path.
	searchers sync.Pool
}

func newServer(ix *usp.Index) *server {
	s := &server{ix: ix}
	s.searchers.New = func() any { return ix.NewSearcher() }
	return s
}

func defaulted(k, probes int) (int, int) {
	if k <= 0 {
		k = 10
	}
	if probes <= 0 {
		probes = 1
	}
	return k, probes
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.K, req.Probes = defaulted(req.K, req.Probes)
	start := time.Now()
	sr := s.searchers.Get().(*usp.Searcher)
	defer s.searchers.Put(sr)
	res, err := sr.Search(req.Vector, req.K, usp.SearchOptions{Probes: req.Probes})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := searchResponse{Scanned: sr.Scanned(), Elapsed: time.Since(start).String()}
	for _, n := range res {
		resp.IDs = append(resp.IDs, n.ID)
		resp.Distances = append(resp.Distances, n.Distance)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req batchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.K, req.Probes = defaulted(req.K, req.Probes)
	start := time.Now()
	results, err := s.ix.SearchBatch(req.Vectors, req.K, usp.SearchOptions{Probes: req.Probes})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := batchSearchResponse{
		IDs:       make([][]int, len(results)),
		Distances: make([][]float32, len(results)),
	}
	for i, res := range results {
		ids := make([]int, len(res))
		ds := make([]float32, len(res))
		for j, n := range res {
			ids[j], ds[j] = n.ID, n.Distance
		}
		resp.IDs[i], resp.Distances[i] = ids, ds
	}
	resp.Elapsed = time.Since(start).String()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encoding batch response: %v", err)
	}
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req addRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.ix.Add(req.Vector)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(addResponse{ID: id}); err != nil {
		log.Printf("encoding add response: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"vectors": s.ix.Len(),
		"dim":     s.ix.Dim(),
		"bins":    st.Bins,
		"models":  st.Models,
		"params":  st.Params,
	}); err != nil {
		log.Printf("encoding stats: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "self-test: start, query, exit")
	flag.Parse()

	log.Println("generating corpus and training index...")
	rng := rand.New(rand.NewSource(9))
	corpus := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 3000, Dim: 64, Clusters: 24, ClusterStd: 0.8, CenterBox: 3,
	}, rng)
	ix, err := usp.Build(corpus.Rows(), usp.Options{
		Bins: 16, Ensemble: 2, Epochs: 30, Hidden: []int{64}, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := newServer(ix)

	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/search/batch", s.handleSearchBatch)
	mux.HandleFunc("/add", s.handleAdd)
	mux.HandleFunc("/stats", s.handleStats)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s", ln.Addr())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	if !*demo {
		log.Fatal(srv.Serve(ln))
	}

	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("server: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	// Exercise the full HTTP stack.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: %v\n", stats)

	body, _ := json.Marshal(searchRequest{Vector: corpus.Row(3), K: 5, Probes: 2})
	resp, err = http.Post(base+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("search: ids=%v scanned=%d elapsed=%s\n", sr.IDs, sr.Scanned, sr.Elapsed)
	if len(sr.IDs) != 5 || sr.IDs[0] != 3 {
		log.Fatalf("demo self-check failed: %+v", sr)
	}

	// Batch search: rows 3, 7, 11 must each be their own nearest neighbor.
	bbody, _ := json.Marshal(batchSearchRequest{
		Vectors: [][]float32{corpus.Row(3), corpus.Row(7), corpus.Row(11)},
		K:       3, Probes: 2,
	})
	resp, err = http.Post(base+"/search/batch", "application/json", bytes.NewReader(bbody))
	if err != nil {
		log.Fatal(err)
	}
	var br batchSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("batch search: ids=%v elapsed=%s\n", br.IDs, br.Elapsed)
	if len(br.IDs) != 3 || br.IDs[0][0] != 3 || br.IDs[1][0] != 7 || br.IDs[2][0] != 11 {
		log.Fatalf("batch demo self-check failed: %+v", br)
	}

	// Add a vector, then find it.
	nv := append([]float32(nil), corpus.Row(5)...)
	nv[0] += 0.01
	abody, _ := json.Marshal(addRequest{Vector: nv})
	resp, err = http.Post(base+"/add", "application/json", bytes.NewReader(abody))
	if err != nil {
		log.Fatal(err)
	}
	var ar addResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	body, _ = json.Marshal(searchRequest{Vector: nv, K: 1, Probes: 2})
	resp, err = http.Post(base+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("add+search: id=%d found=%v\n", ar.ID, sr.IDs)
	if len(sr.IDs) != 1 || sr.IDs[0] != ar.ID {
		log.Fatalf("add demo self-check failed: added %d, found %v", ar.ID, sr.IDs)
	}
	fmt.Println("demo OK")
	_ = srv.Close()
}
