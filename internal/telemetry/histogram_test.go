package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestBucketIndexBounds: every probe value must land in a bucket whose
// bounds contain it, across the exact range, octave boundaries, and the
// extremes of uint64.
func TestBucketIndexBounds(t *testing.T) {
	probes := []uint64{0, 1, 7, 15, 16, 17, 31, 32, 33, 255, 256, 1023, 1 << 20, 1<<20 + 3}
	for e := histMinExp; e < 64; e++ {
		v := uint64(1) << uint(e)
		probes = append(probes, v-1, v, v+1)
	}
	probes = append(probes, math.MaxUint64-1, math.MaxUint64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		probes = append(probes, rng.Uint64())
	}
	for _, v := range probes {
		i := bucketIndex(v)
		if i < 0 || i >= histNumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		// The last bucket's hi saturates at MaxUint64 and is inclusive.
		if v < lo || (v >= hi && !(hi == math.MaxUint64 && v <= hi)) {
			t.Fatalf("bucketIndex(%d) = %d with bounds [%d, %d)", v, i, lo, hi)
		}
	}
}

// TestBucketBoundsContiguousMonotone: walking every bucket index must yield
// adjacent, strictly increasing ranges covering uint64 with no gaps.
func TestBucketBoundsContiguousMonotone(t *testing.T) {
	prevHi := uint64(0)
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d lo = %d, want %d (contiguity)", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty or inverted: [%d, %d)", i, lo, hi)
		}
		// Index must round-trip through the lower bound.
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(bucketBounds(%d).lo) = %d", i, got)
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Fatalf("last bucket hi = %d, want MaxUint64", prevHi)
	}
}

// TestQuantileMatchesExactSort: on random samples from several shapes, the
// histogram quantile must agree with the exact sorted-sample quantile to
// within the scheme's bound (one sub-bucket ≈ 6.25% relative, plus the
// exact-vs-interpolated rank off-by-one inside the landing bucket).
func TestQuantileMatchesExactSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]func() uint64{
		// Typical latency shapes: tight cluster, heavy tail, wide uniform.
		"lognormal": func() uint64 { return uint64(20_000 * math.Exp(rng.NormFloat64())) },
		"uniform":   func() uint64 { return uint64(rng.Int63n(1_000_000)) },
		"bimodal": func() uint64 {
			if rng.Intn(10) == 0 {
				return 500_000 + uint64(rng.Int63n(100_000))
			}
			return 1_000 + uint64(rng.Int63n(1_000))
		},
		"small": func() uint64 { return uint64(rng.Int63n(30)) },
	}
	for name, gen := range shapes {
		h := NewHistogram("t", "", "", 1)
		const n = 20_000
		samples := make([]uint64, n)
		for i := range samples {
			samples[i] = gen()
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
			rank := int(math.Ceil(q * n))
			if rank < 1 {
				rank = 1
			}
			exact := float64(samples[rank-1])
			got := h.Quantile(q)
			// One sub-bucket of relative width 1/16, plus 1 for the exact
			// low range where buckets are unit-width.
			tol := exact/16 + 1
			if math.Abs(got-exact) > tol {
				t.Errorf("%s q=%g: histogram %.1f, exact %.1f (tol %.1f)", name, q, got, exact, tol)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram("t", "", "", 1)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		lo, hi := bucketBounds(bucketIndex(42))
		if got < float64(lo) || got > float64(hi) {
			t.Fatalf("single-sample quantile(%g) = %v, want within [%d, %d]", q, got, lo, hi)
		}
	}
	if h.Count() != 1 || h.Sum() != 42 {
		t.Fatalf("count/sum = %d/%d, want 1/42", h.Count(), h.Sum())
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	h := NewHistogram("t", "", "", NanosToSeconds)
	h.ObserveDuration(-5 * time.Second)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("negative duration recorded as count=%d sum=%d, want 1/0", h.Count(), h.Sum())
	}
}

// TestMerge: merging per-worker histograms must equal recording everything
// into one, bucket for bucket.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	merged := NewHistogram("t", "", "", 1)
	direct := NewHistogram("t", "", "", 1)
	for w := 0; w < 4; w++ {
		part := NewHistogram("t", "", "", 1)
		for i := 0; i < 5_000; i++ {
			v := uint64(rng.Int63n(1 << 30))
			part.Observe(v)
			direct.Observe(v)
		}
		merged.Merge(part)
	}
	if merged.Count() != direct.Count() || merged.Sum() != direct.Sum() {
		t.Fatalf("merged count/sum %d/%d != direct %d/%d",
			merged.Count(), merged.Sum(), direct.Count(), direct.Sum())
	}
	for i := range merged.buckets {
		if m, d := merged.buckets[i].Load(), direct.buckets[i].Load(); m != d {
			t.Fatalf("bucket %d: merged %d != direct %d", i, m, d)
		}
	}
}
