package bitset

import "testing"

func TestNilSetIsEmpty(t *testing.T) {
	var s *Set
	if s.Has(0) || s.Has(1000) {
		t.Fatal("nil set has members")
	}
	if s.Count() != 0 {
		t.Fatalf("nil count %d", s.Count())
	}
	if s.Words() != nil {
		t.Fatal("nil set has words")
	}
}

func TestWithIsCopyOnWrite(t *testing.T) {
	var s *Set
	a := s.With(5)
	b := a.With(130)
	if !a.Has(5) || a.Has(130) {
		t.Fatalf("a wrong: has5=%v has130=%v", a.Has(5), a.Has(130))
	}
	if !b.Has(5) || !b.Has(130) || b.Count() != 2 {
		t.Fatalf("b wrong: %v %v count=%d", b.Has(5), b.Has(130), b.Count())
	}
	// Setting a present bit keeps the count stable and leaves the original
	// untouched.
	c := b.With(5)
	if c.Count() != 2 || b.Count() != 2 {
		t.Fatalf("idempotent set changed counts: %d %d", c.Count(), b.Count())
	}
	if s.Count() != 0 || a.Count() != 1 {
		t.Fatal("ancestors mutated")
	}
}

func TestDiff(t *testing.T) {
	var s *Set
	a := s.With(1).With(64).With(200)
	b := s.With(64)
	d := Diff(a, b)
	if d == nil || d.Count() != 2 || !d.Has(1) || !d.Has(200) || d.Has(64) {
		t.Fatalf("diff wrong: %+v", d)
	}
	if Diff(b, a) != nil {
		t.Fatal("subset diff should be nil")
	}
	if Diff(nil, a) != nil || Diff(a, nil) != a {
		t.Fatal("nil-arg diffs wrong")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	var s *Set
	a := s.With(3).With(77).With(1023)
	back := FromWords(a.Words())
	if back.Count() != 3 || !back.Has(3) || !back.Has(77) || !back.Has(1023) {
		t.Fatalf("round trip wrong: %+v", back)
	}
	if FromWords(nil) != nil || FromWords(make([]uint64, 4)) != nil {
		t.Fatal("empty bitmaps must map to nil")
	}
}

func TestSlice(t *testing.T) {
	var s *Set
	a := s.With(0).With(5).With(63).With(64).With(130).With(200)
	// Window [64, 201): keeps 64, 130, 200 renumbered to 0, 66, 136.
	sl := a.Slice(64, 201)
	if sl == nil || sl.Count() != 3 || !sl.Has(0) || !sl.Has(66) || !sl.Has(136) {
		t.Fatalf("slice wrong: count=%d", sl.Count())
	}
	if sl.Has(135) || sl.Has(137) {
		t.Fatal("slice set stray bits")
	}
	// Unaligned window [5, 64): keeps 5 and 63 as 0 and 58.
	sl = a.Slice(5, 64)
	if sl == nil || sl.Count() != 2 || !sl.Has(0) || !sl.Has(58) {
		t.Fatalf("unaligned slice wrong: count=%d", sl.Count())
	}
	// Exhaustive cross-check against Has over every sub-window of a dense-ish set.
	b := s.With(1).With(2).With(70).With(71).With(127).With(128).With(129).With(250)
	for lo := 0; lo <= 260; lo += 13 {
		for hi := lo; hi <= 260; hi += 31 {
			got := b.Slice(lo, hi)
			for i := lo; i < hi; i++ {
				if got.Has(i-lo) != b.Has(i) {
					t.Fatalf("Slice(%d,%d) bit %d: got %v want %v", lo, hi, i, got.Has(i-lo), b.Has(i))
				}
			}
		}
	}
	if a.Slice(201, 300) != nil {
		t.Fatal("empty window must be nil")
	}
	if (*Set)(nil).Slice(0, 10) != nil {
		t.Fatal("nil slice must be nil")
	}
}
