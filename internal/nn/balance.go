package nn

import (
	"math"

	"repro/internal/tensor"
)

// EntropyBalance is the alternative balance regularizer ablated against the
// paper's top-window term (Eqs. 12–13): it maximizes the entropy of the
// batch-average assignment distribution p̄ = mean_i P_i, the standard
// balance device in deep clustering. Returned is the loss term
// log(m) − H(p̄) (zero iff perfectly balanced) and its gradient with
// respect to the probabilities, dL/dP_ij = (log p̄_j + 1)/B.
//
// Compared with the window term, entropy balance penalizes *soft* imbalance
// (it looks at probability mass, not at who would win the argmax), which
// makes it smoother but blind to confident-but-clumped assignments — the
// ablation_balance experiment quantifies the difference.
func EntropyBalance(probs *tensor.Matrix) (float64, *tensor.Matrix) {
	b, m := probs.Rows, probs.Cols
	mean := make([]float64, m)
	for i := 0; i < b; i++ {
		row := probs.Row(i)
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	invB := 1 / float64(b)
	var entropy float64
	for j := range mean {
		mean[j] *= invB
		if mean[j] > 0 {
			entropy -= mean[j] * math.Log(mean[j])
		}
	}
	loss := math.Log(float64(m)) - entropy

	dP := tensor.New(b, m)
	for j := range mean {
		g := float32(0)
		if mean[j] > 0 {
			g = float32((math.Log(mean[j]) + 1) * invB)
		}
		for i := 0; i < b; i++ {
			dP.Set(i, j, g)
		}
	}
	return loss, dP
}

// USPLossEntropy is USPLoss with the entropy balance term substituted for
// the top-window term. The quality cost is identical.
func USPLossEntropy(logits, targets *tensor.Matrix, weights []float32, eta float64) LossResult {
	// Quality part: reuse USPLoss with eta = 0.
	res := USPLoss(logits, targets, weights, 0)
	if eta == 0 {
		return res
	}
	probs := logits.Clone()
	SoftmaxRows(probs)
	balance, dP := EntropyBalance(probs)
	// Chain dP through the softmax Jacobian row by row.
	scale := float32(eta)
	for i := 0; i < probs.Rows; i++ {
		prow, dprow, grow := probs.Row(i), dP.Row(i), res.Grad.Row(i)
		var dot float32
		for j := range prow {
			dot += dprow[j] * prow[j]
		}
		for j := range grow {
			grow[j] += scale * prow[j] * (dprow[j] - dot)
		}
	}
	res.Balance = balance
	res.Loss = res.Quality + eta*balance
	return res
}
