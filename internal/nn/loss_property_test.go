package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// Gradients that are chained through a softmax must sum to zero across each
// logits row (the softmax Jacobian annihilates constants). This holds for
// the quality term, the balance term, and their weighted combination, so it
// is a strong structural check on the fused gradient in USPLoss.
func TestUSPLossGradRowsSumToZero(t *testing.T) {
	check := func(seed int64, etaRaw uint8, weighted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		b, m := 2+rng.Intn(10), 2+rng.Intn(6)
		logits := randInput(rng, b, m)
		targets := randSoftTargets(rng, b, m)
		var weights []float32
		if weighted {
			weights = make([]float32, b)
			for i := range weights {
				weights[i] = float32(rng.Float64()*3 + 0.1)
			}
		}
		eta := float64(etaRaw%40) / 2
		res := USPLoss(logits, targets, weights, eta)
		for i := 0; i < b; i++ {
			var sum float64
			for _, g := range res.Grad.Row(i) {
				sum += float64(g)
			}
			if math.Abs(sum) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The balance term is bounded: S ∈ [-1, 0) since the window holds at most
// all of each column's probability mass, normalized by the batch size.
func TestBalanceTermBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, m := 2+rng.Intn(20), 2+rng.Intn(8)
		logits := randInput(rng, b, m)
		targets := randSoftTargets(rng, b, m)
		res := USPLoss(logits, targets, nil, 1)
		return res.Balance >= -1-1e-6 && res.Balance < 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Quality cross-entropy is minimized exactly when the prediction equals the
// target: perturbing logits away from a matching distribution cannot lower
// the loss (Gibbs' inequality).
func TestQualityGibbsInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(5)
		logits := randInput(rng, 1, m)
		targets := logits.Clone()
		SoftmaxRows(targets) // target = softmax(logits): CE at its minimum
		base := USPLoss(logits, targets, nil, 0).Quality

		bumped := logits.Clone()
		bumped.Data[rng.Intn(m)] += 0.5
		if USPLoss(bumped, targets, nil, 0).Quality < base-1e-6 {
			t.Fatalf("perturbation lowered CE below its entropy floor")
		}
	}
}

// Scaling every ensemble weight by a constant must not change the loss or
// gradient (the quality term normalizes by Σw).
func TestUSPLossWeightScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := randInput(rng, 6, 4)
	targets := randSoftTargets(rng, 6, 4)
	w1 := []float32{1, 2, 3, 4, 5, 6}
	w2 := make([]float32, 6)
	for i, w := range w1 {
		w2[i] = w * 10
	}
	a := USPLoss(logits.Clone(), targets, w1, 2)
	b := USPLoss(logits.Clone(), targets, w2, 2)
	if math.Abs(a.Loss-b.Loss) > 1e-5 {
		t.Fatalf("loss changed under weight scaling: %v vs %v", a.Loss, b.Loss)
	}
	if !tensor.Equalish(a.Grad, b.Grad, 1e-6) {
		t.Fatal("gradient changed under weight scaling")
	}
}
