package usp

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/par"
	"repro/internal/vecmath"
)

// Searcher is a reusable query context over an Index: it owns every scratch
// buffer the online phase needs (model forward-pass buffers, candidate list,
// top-k selector, result staging), so repeated queries allocate nothing
// steady-state beyond the returned result slice. A Searcher is NOT safe for
// concurrent use — give each goroutine its own (NewSearcher is cheap, and the
// Index keeps an internal pool for the convenience entry points). Concurrent
// Searchers over one Index are safe, including concurrently with Add,
// Delete, and compaction: every query resolves the atomically published
// epoch once and runs lock-free against that immutable snapshot.
type Searcher struct {
	ix    *Index
	qs    core.QueryScratch
	cands []int32
	tk    *vecmath.TopK
	nbrs  []vecmath.Neighbor
	// skipped is the tombstone-filter drop count of the most recent query.
	skipped int
	// routeBins stages Add's per-member routing decisions (Index.Add
	// borrows a pooled Searcher for its pre-lock forward passes).
	routeBins []int
	// Quantized-path scratch: the per-query flat ADC lookup table, the
	// ADC pass's top-rerankK survivors, the id list handed to the exact
	// re-rank, and Add's staged row code.
	lut     []float32
	adc     []vecmath.Neighbor
	rerank  []int32
	codeBuf []uint8
}

// NewSearcher returns a fresh query context for the index. Buffers grow on
// first use and are retained across queries.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{ix: ix, tk: vecmath.NewTopK(1)}
}

// gatherCandidates fills s.cands for q against the given epoch: per probed
// bin, the frozen CSR range followed by the epoch's spill entries. The
// candidate list may still contain tombstoned ids — the scan filters them,
// so gathering stays branch-free.
func (s *Searcher) gatherCandidates(ep *epoch, q []float32, probes int, union bool) {
	s.cands = s.cands[:0]
	if ep.hier != nil {
		s.cands = ep.hier.AppendCandidatesExtra(s.cands, q, probes, &s.qs, ep.extra())
		return
	}
	mode := core.BestConfidence
	if union {
		mode = core.UnionProbe
	}
	s.cands = ep.ens.AppendCandidatesExtra(s.cands, q, probes, mode, &s.qs, ep.data.N, ep.extra())
}

// Search returns the k approximate nearest neighbors of q. Steady-state it
// performs a single allocation: the returned result slice. Use SearchInto
// with a recycled slice to eliminate that too.
func (s *Searcher) Search(q []float32, k int, opt SearchOptions) ([]Result, error) {
	return s.SearchInto(make([]Result, 0, k), q, k, opt)
}

// SearchInto appends the k approximate nearest neighbors of q to dst and
// returns it. With a recycled dst it allocates nothing steady-state. The
// query runs entirely against one epoch snapshot: it never blocks on
// writers and observes either all or none of any concurrent mutation.
func (s *Searcher) SearchInto(dst []Result, q []float32, k int, opt SearchOptions) ([]Result, error) {
	ix := s.ix
	if k <= 0 {
		ix.tel.queryErrors.Inc()
		return nil, fmt.Errorf("%w: k must be positive", ErrInvalid)
	}
	if len(q) != ix.dim {
		ix.tel.queryErrors.Inc()
		return nil, fmt.Errorf("%w: query dim %d, index dim %d", ErrInvalid, len(q), ix.dim)
	}
	probes := opt.Probes
	if probes <= 0 {
		probes = 1
	}
	start := time.Now()
	ep := ix.live.Load()
	s.gatherCandidates(ep, q, probes, opt.UnionEnsemble)
	rerankDepth := 0
	if qv := ep.quant; qv != nil {
		rerankDepth = s.scanQuantized(ep, q, k, opt.RerankK)
	} else {
		s.nbrs, s.skipped = knn.SearchSubsetIntoCounted(s.nbrs[:0], ep.data, s.cands, q, k, s.tk, ep.tombs)
	}
	for _, n := range s.nbrs {
		dst = append(dst, Result{ID: n.Index, Distance: n.Dist})
	}
	// A query's telemetry is a handful of uncontended atomic adds plus two
	// clock reads — allocation-free, so the engine's 0 allocs/op steady
	// state survives instrumentation (benchmark-asserted in CI).
	m := ix.tel
	m.queries.Inc()
	m.candidates.Add(uint64(len(s.cands)))
	m.binsProbed.Add(uint64(ix.probedBins(probes, opt.UnionEnsemble)))
	m.tombstonesSkipped.Add(uint64(s.skipped))
	if ep.quant != nil {
		m.adcQueries.Inc()
		m.rerankCandidates.Add(uint64(rerankDepth))
	}
	m.queryLatency.ObserveDuration(time.Since(start))
	return dst, nil
}

// scanQuantized runs the two-phase quantized scan against one epoch:
// phase 1 scores every gathered candidate from its PQ code via a per-query
// lookup table (asymmetric distance) and keeps the rerankK best; phase 2
// exactly re-scores those survivors from the float rows and keeps the k
// best. It fills s.nbrs and s.skipped like the float scan and returns the
// re-rank depth (0 when re-ranking was skipped). With rerankK < 0, or in
// memory-tight mode (no float rows), phase 2 is skipped and the ADC
// distances are returned directly — approximate, monotone in the true
// distance only up to quantization error. All scratch lives on s, so
// steady-state the scan allocates nothing.
func (s *Searcher) scanQuantized(ep *epoch, q []float32, k, rerankK int) int {
	qv := ep.quant
	m, kTab := qv.pq.Subspaces, qv.pq.K
	s.lut = qv.pq.AppendLUT(s.lut[:0], q)
	if rerankK < 0 || qv.tight {
		s.nbrs, s.skipped = knn.SearchSubsetADCIntoCounted(s.nbrs[:0], qv.codes, m, kTab, s.lut, s.cands, k, s.tk, ep.tombs)
		return 0
	}
	if rerankK == 0 {
		rerankK = 4 * k
	}
	if rerankK < k {
		rerankK = k
	}
	s.adc, s.skipped = knn.SearchSubsetADCIntoCounted(s.adc[:0], qv.codes, m, kTab, s.lut, s.cands, rerankK, s.tk, ep.tombs)
	s.rerank = s.rerank[:0]
	for _, nb := range s.adc {
		s.rerank = append(s.rerank, int32(nb.Index))
	}
	// Tombstones were already filtered in phase 1, so the exact pass
	// passes skip=nil and cannot double-count.
	s.nbrs = knn.SearchSubsetInto(s.nbrs[:0], ep.data, s.rerank, q, k, s.tk, nil)
	return len(s.rerank)
}

// probedBins is the number of partition bins a query with these options
// scans: best-confidence probes min(probes, bins) bins of one model, union
// mode probes that many in every ensemble member (members is 1 for a
// hierarchy, so the modes coincide there).
func (ix *Index) probedBins(probes int, union bool) int {
	if probes > ix.slotsPerMember {
		probes = ix.slotsPerMember
	}
	if union {
		return probes * ix.members
	}
	return probes
}

// Scanned reports the size of the candidate set |C(q)| of the most recent
// query — the computational-cost metric of the paper's figures — without
// re-deriving it. Tombstoned candidates count: they were gathered and
// skipped by the scan, which is exactly the work performed.
func (s *Searcher) Scanned() int { return len(s.cands) }

// Skipped reports how many of the most recent query's candidates the
// tombstone filter dropped — wasted gather work that compaction reclaims.
func (s *Searcher) Skipped() int { return s.skipped }

// getSearcher takes a pooled Searcher (the pool's zero value works: misses
// construct a fresh one).
func (ix *Index) getSearcher() *Searcher {
	if v := ix.searchers.Get(); v != nil {
		return v.(*Searcher)
	}
	return ix.NewSearcher()
}

func (ix *Index) putSearcher(s *Searcher) { ix.searchers.Put(s) }

// SearchBatch answers many queries in one call, fanning the batch out over
// the worker pool with one pooled Searcher per worker. Results align with
// queries by position and agree exactly with looped single Search calls.
// It is safe to call concurrently with Search, Add, Delete, and compaction;
// each query in the batch resolves its own epoch snapshot.
func (ix *Index) SearchBatch(queries [][]float32, k int, opt SearchOptions) ([][]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k must be positive", ErrInvalid)
	}
	for i, q := range queries {
		if len(q) != ix.dim {
			return nil, fmt.Errorf("%w: query %d dim %d, index dim %d", ErrInvalid, i, len(q), ix.dim)
		}
	}
	out := make([][]Result, len(queries))
	var firstErr atomic.Pointer[error]
	par.ForChunksMin(len(queries), 1, func(lo, hi int) {
		s := ix.getSearcher()
		defer ix.putSearcher(s)
		for i := lo; i < hi; i++ {
			// k and every dim were validated above, so errors should be
			// impossible — but if Search ever grows a new failure mode,
			// propagate it rather than silently returning a nil row.
			res, err := s.Search(queries[i], k, opt)
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			out[i] = res
		}
	})
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}
	return out, nil
}
