package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestEntropyBalanceZeroWhenUniform(t *testing.T) {
	// Perfectly balanced soft assignments: p̄ uniform → loss 0.
	probs := tensor.FromRows([][]float32{
		{0.5, 0.5}, {0.9, 0.1}, {0.1, 0.9}, {0.5, 0.5},
	})
	loss, _ := EntropyBalance(probs)
	if math.Abs(loss) > 1e-6 {
		t.Fatalf("balanced loss = %v", loss)
	}
	// Collapsed assignments: maximal loss log(m).
	collapsed := tensor.FromRows([][]float32{{1, 0}, {1, 0}, {1, 0}})
	loss, _ = EntropyBalance(collapsed)
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("collapsed loss = %v, want log 2", loss)
	}
}

func TestEntropyBalanceGradientDirection(t *testing.T) {
	// Gradient must push mass toward the under-used bin: for a collapsed
	// batch, d/dP of the loss is more negative for the empty column.
	probs := tensor.FromRows([][]float32{{0.9, 0.1}, {0.8, 0.2}})
	_, dP := EntropyBalance(probs)
	// Column 0 over-used: positive-ish gradient (decrease); column 1
	// under-used: smaller (more negative) gradient.
	if dP.At(0, 0) <= dP.At(0, 1) {
		t.Fatalf("gradient does not favor the under-used bin: %v vs %v",
			dP.At(0, 0), dP.At(0, 1))
	}
}

func TestUSPLossEntropyGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	model := NewSequential(3, NewDense(3, 4, rng))
	x := randInput(rng, 6, 3)
	targets := randSoftTargets(rng, 6, 4)
	checkModelGrads(t, model, x, func(l *tensor.Matrix) (float64, *tensor.Matrix) {
		r := USPLossEntropy(l, targets, nil, 3)
		return r.Loss, r.Grad
	}, 0.05)
}

func TestUSPLossEntropyEtaZeroMatchesQualityOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	logits := randInput(rng, 5, 3)
	targets := randSoftTargets(rng, 5, 3)
	a := USPLossEntropy(logits.Clone(), targets, nil, 0)
	b := USPLoss(logits.Clone(), targets, nil, 0)
	if math.Abs(a.Loss-b.Loss) > 1e-9 || !tensor.Equalish(a.Grad, b.Grad, 1e-7) {
		t.Fatal("eta=0 entropy variant must equal plain quality loss")
	}
}
