package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/neurallsh"
	"repro/internal/trees"
)

// fig6 reproduces Figure 6: hyperplane-partitioning binary trees of depth
// sc.TreeDepth (2^depth bins). "USP (logistic)" is the paper's method with a
// logistic-regression learner trained recursively; the baselines are
// Regression LSH, 2-means trees, PCA trees, random-projection trees, the
// learned KD-tree, and the Boosted Search Forest.
func fig6(sc Scale, logf logfn, ds string) (*Report, error) {
	const k = 10
	kPrime := 10
	b := makeBench(ds, sc, k, kPrime)
	depth := sc.TreeDepth
	bins := 1 << depth
	probes := probeSchedule(bins)
	var series []eval.Series

	// --- USP with logistic-regression learners (recursive binary). ---
	logf("fig6 %s: training USP logistic tree depth %d", ds, depth)
	levels := make([]int, depth)
	for i := range levels {
		levels[i] = 2
	}
	cfg := core.Config{
		KPrime: kPrime, Eta: etaFor(ds, bins), Epochs: sc.Epochs, Seed: sc.Seed,
	}
	h, _, err := core.TrainHierarchy(b.base, levels, cfg)
	if err != nil {
		return nil, err
	}
	series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
		Name: "USP (ours, logistic)", Candidates: h.Candidates,
	}, probes))

	// --- Regression LSH. ---
	logf("fig6 %s: Regression LSH", ds)
	rlsh := trees.Build(b.base, depth, neurallsh.RegressionFitter{
		KPrime: kPrime, Epochs: sc.Epochs / 2, Seed: sc.Seed,
	}, sc.Seed)
	series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
		Name: "Regression LSH", Candidates: rlsh.Candidates,
	}, probes))

	// --- Simple hyperplane trees. ---
	for _, f := range []trees.Fitter{
		trees.TwoMeansFitter{}, trees.PCAFitter{}, trees.RPFitter{}, trees.KDFitter{},
	} {
		logf("fig6 %s: %s", ds, f.Name())
		tr := trees.Build(b.base, depth, f, sc.Seed)
		series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
			Name: f.Name(), Candidates: tr.Candidates,
		}, probes))
	}

	// --- Boosted Search Forest. ---
	logf("fig6 %s: boosted search forest", ds)
	forest := trees.BuildBoostedForest(b.base, b.mat.Neighbors, trees.ForestConfig{
		NumTrees: 3, Depth: depth, Seed: sc.Seed,
	})
	series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, k, eval.Method{
		Name: "boosted search forest", Candidates: forest.Candidates,
	}, probes))

	title := fmt.Sprintf("Fig 6 (%s): hyperplane trees, depth %d = %d bins (n=%d, q=%d)",
		ds, depth, bins, b.base.N, b.queries.N)
	return &Report{
		ID:     "fig6-" + ds,
		Text:   eval.RenderSeries(title, series),
		Series: series,
	}, nil
}
