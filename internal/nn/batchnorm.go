package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm implements 1-D batch normalization (Ioffe & Szegedy 2015) over
// the feature axis: each column is standardized with batch statistics during
// training and with exponential running statistics at inference, then scaled
// and shifted by learned gamma and beta.
type BatchNorm struct {
	Gamma, Beta *Param

	// Running statistics used at inference, updated with Momentum during
	// training. Stored as 1×dim matrices so they serialize with the rest
	// of the state.
	RunningMean, RunningVar *tensor.Matrix
	Momentum                float64
	Eps                     float64

	// Backward caches.
	xhat    *tensor.Matrix
	invStd  []float64
	batchSz int
}

// NewBatchNorm constructs a BatchNorm layer over dim features with
// gamma = 1, beta = 0, momentum 0.1 and epsilon 1e-5 (PyTorch defaults, which
// the reference implementation relies on).
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Gamma:       newParam("gamma", 1, dim),
		Beta:        newParam("beta", 1, dim),
		RunningMean: tensor.New(1, dim),
		RunningVar:  tensor.New(1, dim),
		Momentum:    0.1,
		Eps:         1e-5,
	}
	for i := range bn.Gamma.Value.Data {
		bn.Gamma.Value.Data[i] = 1
		bn.RunningVar.Data[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	dim := bn.Gamma.Value.Cols
	if x.Cols != dim {
		panic("nn: BatchNorm width mismatch")
	}
	y := tensor.New(x.Rows, x.Cols)
	if !train || x.Rows == 1 {
		// Inference path (also taken for singleton batches, where batch
		// variance is degenerate): use running statistics.
		for j := 0; j < dim; j++ {
			mean := float64(bn.RunningMean.Data[j])
			invStd := 1 / math.Sqrt(float64(bn.RunningVar.Data[j])+bn.Eps)
			g, b := float64(bn.Gamma.Value.Data[j]), float64(bn.Beta.Value.Data[j])
			for i := 0; i < x.Rows; i++ {
				v := (float64(x.At(i, j)) - mean) * invStd
				y.Set(i, j, float32(v*g+b))
			}
		}
		return y
	}

	n := float64(x.Rows)
	bn.batchSz = x.Rows
	bn.xhat = tensor.New(x.Rows, x.Cols)
	if cap(bn.invStd) < dim {
		bn.invStd = make([]float64, dim)
	}
	bn.invStd = bn.invStd[:dim]

	for j := 0; j < dim; j++ {
		var sum, sumSq float64
		for i := 0; i < x.Rows; i++ {
			v := float64(x.At(i, j))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0 // guard against catastrophic cancellation
		}
		invStd := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[j] = invStd

		g, b := float64(bn.Gamma.Value.Data[j]), float64(bn.Beta.Value.Data[j])
		for i := 0; i < x.Rows; i++ {
			xh := (float64(x.At(i, j)) - mean) * invStd
			bn.xhat.Set(i, j, float32(xh))
			y.Set(i, j, float32(xh*g+b))
		}

		// Update running statistics (unbiased variance, as PyTorch does).
		unbiased := variance
		if x.Rows > 1 {
			unbiased = variance * n / (n - 1)
		}
		m := bn.Momentum
		bn.RunningMean.Data[j] = float32((1-m)*float64(bn.RunningMean.Data[j]) + m*mean)
		bn.RunningVar.Data[j] = float32((1-m)*float64(bn.RunningVar.Data[j]) + m*unbiased)
	}
	return y
}

// Backward implements Layer, using the standard batch-norm gradient:
//
//	dxhat_i = dy_i * gamma
//	dx_i = invStd/n * (n*dxhat_i - Σdxhat - xhat_i * Σ(dxhat·xhat))
func (bn *BatchNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if bn.xhat == nil {
		panic("nn: BatchNorm.Backward before Forward(train=true)")
	}
	dim := bn.Gamma.Value.Cols
	n := float64(bn.batchSz)
	dX := tensor.New(gradOut.Rows, gradOut.Cols)
	for j := 0; j < dim; j++ {
		g := float64(bn.Gamma.Value.Data[j])
		var sumD, sumDX float64 // Σ dxhat, Σ dxhat·xhat
		for i := 0; i < gradOut.Rows; i++ {
			d := float64(gradOut.At(i, j)) * g
			sumD += d
			sumDX += d * float64(bn.xhat.At(i, j))
		}
		// Parameter gradients.
		var dGamma, dBeta float64
		for i := 0; i < gradOut.Rows; i++ {
			dy := float64(gradOut.At(i, j))
			dGamma += dy * float64(bn.xhat.At(i, j))
			dBeta += dy
		}
		bn.Gamma.Grad.Data[j] += float32(dGamma)
		bn.Beta.Grad.Data[j] += float32(dBeta)

		invStd := bn.invStd[j]
		for i := 0; i < gradOut.Rows; i++ {
			d := float64(gradOut.At(i, j)) * g
			xh := float64(bn.xhat.At(i, j))
			dX.Set(i, j, float32(invStd/n*(n*d-sumD-xh*sumDX)))
		}
	}
	bn.xhat = nil
	return dX
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutDim implements Layer.
func (bn *BatchNorm) OutDim(inDim int) int { return inDim }
