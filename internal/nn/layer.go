// Package nn is a from-scratch, CPU-only deep-learning stack: dense layers,
// batch normalization, dropout, ReLU, softmax utilities, cross-entropy and
// the paper's unsupervised partitioning loss, Glorot initialization, and SGD
// and Adam optimizers, with binary serialization.
//
// It substitutes for the PyTorch dependency of the reference implementation
// (see DESIGN.md). Differentiation is layer-wise reverse mode over a static
// sequential graph: each Layer implements Forward and Backward with analytic
// gradients, verified against numeric differentiation in gradcheck_test.go.
//
// All matrices are row-major with one sample per row (batch×features).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a trainable parameter tensor together with its gradient
// accumulator. Optimizers update Value in place from Grad.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Value: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// Size returns the number of scalar parameters.
func (p *Param) Size() int { return p.Value.Rows * p.Value.Cols }

// Layer is one differentiable stage of a sequential model.
//
// Forward consumes the previous layer's output; when train is true the layer
// may cache activations needed by Backward and must apply training-only
// behaviour (dropout masking, batch statistics). Backward consumes the
// gradient of the loss with respect to this layer's output and returns the
// gradient with respect to its input, accumulating parameter gradients as a
// side effect. A Backward call must follow a Forward call with train=true on
// the same batch.
type Layer interface {
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	Params() []*Param
	// OutDim reports the layer's output width given its input width
	// (used for shape validation when assembling models).
	OutDim(inDim int) int
}

// Dense is a fully connected layer computing y = x·W + b,
// with W shaped in×out.
type Dense struct {
	W, B *Param

	x *tensor.Matrix // cached input for Backward
}

// NewDense constructs a Dense layer with Glorot-uniform initialized weights
// and zero biases.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{W: newParam("W", in, out), B: newParam("b", 1, out)}
	GlorotUniform(d.W.Value, rng)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != d.W.Value.Rows {
		panic(fmt.Sprintf("nn: Dense input width %d, want %d", x.Cols, d.W.Value.Rows))
	}
	if train {
		d.x = x
	}
	y := tensor.New(x.Rows, d.W.Value.Cols)
	tensor.MatMul(y, x, d.W.Value)
	tensor.AddRowVector(y, d.B.Value.Data)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward(train=true)")
	}
	// dW += xᵀ·dY, accumulated into the grad buffer.
	dW := tensor.New(d.W.Value.Rows, d.W.Value.Cols)
	tensor.MatMulATB(dW, d.x, gradOut)
	for i, v := range dW.Data {
		d.W.Grad.Data[i] += v
	}
	// db += column sums of dY.
	colSums := make([]float32, gradOut.Cols)
	tensor.ColSums(colSums, gradOut)
	for i, v := range colSums {
		d.B.Grad.Data[i] += v
	}
	// dX = dY·Wᵀ.
	dX := tensor.New(gradOut.Rows, d.W.Value.Rows)
	tensor.MatMulABT(dX, gradOut, d.W.Value)
	d.x = nil
	return dX
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.W.Value.Cols }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool // true where input was > 0
}

// NewReLU constructs a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	y := tensor.New(x.Rows, x.Cols)
	if train {
		if cap(r.mask) < len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		r.mask = r.mask[:len(x.Data)]
	}
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			if train {
				r.mask[i] = true
			}
		} else if train {
			r.mask[i] = false
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	dX := tensor.New(gradOut.Rows, gradOut.Cols)
	for i, v := range gradOut.Data {
		if r.mask[i] {
			dX.Data[i] = v
		}
	}
	return dX
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutDim implements Layer.
func (r *ReLU) OutDim(inDim int) int { return inDim }

// GlorotUniform fills m with samples from U(-a, a) where
// a = sqrt(6/(fanIn+fanOut)), the initialization of Glorot & Bengio (2010)
// the paper specifies for both model architectures.
func GlorotUniform(m *tensor.Matrix, rng *rand.Rand) {
	a := math.Sqrt(6 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = float32((rng.Float64()*2 - 1) * a)
	}
}
