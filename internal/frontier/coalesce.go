// In-flight coalescing and result caching for the front's /search.
//
// Coalescing (singleflight): concurrent requests with the same search key
// — vector bits, k, probes, rerank_k — share one backend fan-out. The
// first request becomes the leader and executes the fan-out under a
// context detached from its own client (so a leader disconnect cannot
// fail the followers); everyone waiting on the key receives the same
// merged response struct, hence byte-identical bodies.
//
// Caching: an optional LRU keyed by the same search key, enabled with
// Config.CacheSize > 0. Entries are stamped with the front's cache
// generation at fill time and are valid only while the generation is
// unchanged. The generation bumps whenever any backend's /healthz
// reports a new snapshot generation or id offset, and on every write the
// front itself routes — so a /reload, /add, or /delete anywhere in the
// fleet invalidates the whole cache at the cost of one atomic increment,
// with stale entries evicted lazily on lookup.
package frontier

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/serve"
)

// searchKey builds the coalescing/cache identity of a search: the exact
// float32 bit patterns of the vector plus every parameter that changes
// the answer. Two requests with the same key are interchangeable.
func searchKey(vec []float32, k, probes, rerankK int) string {
	b := make([]byte, 12+4*len(vec))
	binary.LittleEndian.PutUint32(b[0:], uint32(k))
	binary.LittleEndian.PutUint32(b[4:], uint32(probes))
	binary.LittleEndian.PutUint32(b[8:], uint32(rerankK))
	for i, v := range vec {
		binary.LittleEndian.PutUint32(b[12+4*i:], math.Float32bits(v))
	}
	return string(b)
}

// flight is one in-progress fan-out shared by every request with the same
// key. done closes after resp/err are set.
type flight struct {
	done chan struct{}
	resp serve.SearchResponse
	err  error
}

// joinFlight returns the flight registered for key, creating it (leader
// = true) if none is in progress.
func (f *Front) joinFlight(key string) (*flight, bool) {
	f.flightMu.Lock()
	defer f.flightMu.Unlock()
	if fl, ok := f.flights[key]; ok {
		f.coalesced.Inc()
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	f.flights[key] = fl
	return fl, true
}

// finishFlight publishes the leader's outcome and wakes the followers.
func (f *Front) finishFlight(key string, fl *flight, resp serve.SearchResponse, err error) {
	fl.resp, fl.err = resp, err
	f.flightMu.Lock()
	delete(f.flights, key)
	f.flightMu.Unlock()
	close(fl.done)
}

// cacheEntry is one cached merged answer, valid while gen matches the
// front's current cache generation.
type cacheEntry struct {
	key  string
	gen  uint64
	resp serve.SearchResponse
}

// resultCache is a mutex-guarded LRU over merged search responses.
type resultCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*list.Element, max)}
}

// get returns the cached response for key if present and filled at the
// current generation; a stale-generation entry is evicted on sight.
func (c *resultCache) get(key string, gen uint64) (serve.SearchResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return serve.SearchResponse{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.ll.Remove(el)
		delete(c.m, key)
		return serve.SearchResponse{}, false
	}
	c.ll.MoveToFront(el)
	return e.resp, true
}

// put stores resp under key at generation gen, evicting the least
// recently used entry beyond capacity.
func (c *resultCache) put(key string, gen uint64, resp serve.SearchResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.gen, e.resp = gen, resp
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, resp: resp})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of resident entries (stale ones included until
// their lazy eviction). Intended for tests.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
