// Package experiments contains one runner per table and figure of the
// paper's evaluation (§5), mapped in DESIGN.md's per-experiment index. Each
// runner builds its datasets, trains every method, sweeps the probe
// parameter, and renders an ASCII report; cmd/uspbench and the repository's
// benchmark suite both dispatch into this package.
//
// Dataset scale is configurable: the paper's SIFT1M/MNIST are replaced by
// synthetic stand-ins (see DESIGN.md) whose sizes default to what a single
// CPU core handles in minutes, and scale up via flags.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/knn"
)

// Scale sets dataset and training sizes for a run.
type Scale struct {
	// SIFTN and MNISTN are the stand-in dataset sizes.
	SIFTN, MNISTN int
	// Queries is the held-out query count per dataset.
	Queries int
	// Epochs of training per learned model.
	Epochs int
	// Ensemble is the USP ensemble size e (paper: 3).
	Ensemble int
	// Hidden is the USP hidden width (paper: 128) and NLSHHidden the
	// Neural LSH hidden width (paper: 512).
	Hidden, NLSHHidden int
	// TreeDepth is the Fig. 6 tree depth (paper: 10 at n=1M; scaled so
	// leaves keep ≳30 points).
	TreeDepth int
	// Seed drives all generators and trainers.
	Seed int64
}

// DefaultScale is sized for a single-core run of a few minutes per
// experiment.
func DefaultScale() Scale {
	return Scale{
		SIFTN: 4000, MNISTN: 2000, Queries: 200,
		Epochs: 40, Ensemble: 3, Hidden: 64, NLSHHidden: 128,
		TreeDepth: 7, Seed: 1,
	}
}

// BenchScale is sized for the testing.B suite (seconds per experiment).
func BenchScale() Scale {
	return Scale{
		SIFTN: 1200, MNISTN: 800, Queries: 60,
		Epochs: 15, Ensemble: 2, Hidden: 32, NLSHHidden: 48,
		TreeDepth: 5, Seed: 1,
	}
}

// Report is a runner's output.
type Report struct {
	ID     string
	Text   string
	Series []eval.Series
}

// runner executes one experiment.
type runner func(sc Scale, logf func(string, ...any)) (*Report, error)

var registry = map[string]runner{
	"fig5a":             func(sc Scale, l logfn) (*Report, error) { return fig5(sc, l, "sift", 16) },
	"fig5b":             func(sc Scale, l logfn) (*Report, error) { return fig5(sc, l, "mnist", 16) },
	"fig5c":             func(sc Scale, l logfn) (*Report, error) { return fig5(sc, l, "sift", 256) },
	"fig5d":             func(sc Scale, l logfn) (*Report, error) { return fig5(sc, l, "mnist", 256) },
	"fig6a":             func(sc Scale, l logfn) (*Report, error) { return fig6(sc, l, "sift") },
	"fig6b":             func(sc Scale, l logfn) (*Report, error) { return fig6(sc, l, "mnist") },
	"fig7a":             func(sc Scale, l logfn) (*Report, error) { return fig7(sc, l, "sift") },
	"fig7b":             func(sc Scale, l logfn) (*Report, error) { return fig7(sc, l, "mnist") },
	"table2":            table2,
	"table3":            table3,
	"table4":            table4,
	"table5":            table5,
	"ablation_balance":  ablationBalance,
	"ablation_kprime":   ablationKPrime,
	"ablation_eta":      ablationEta,
	"ablation_ensemble": ablationEnsemble,
	"ablation_batch":    ablationBatch,
	"ablation_arch":     ablationArch,
}

type logfn = func(string, ...any)

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(id string, sc Scale, logf logfn) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return r(sc, logf)
}

// bench is a prepared dataset/query/ground-truth triple.
type bench struct {
	name    string
	base    *dataset.Dataset
	queries *dataset.Dataset
	gt      [][]int32
	mat     *knn.Matrix
}

// makeBench generates the named stand-in dataset, withholds queries, and
// computes ground truth and the offline k′-NN matrix.
func makeBench(name string, sc Scale, k, kPrime int) *bench {
	rng := rand.New(rand.NewSource(sc.Seed))
	var full *dataset.Dataset
	switch name {
	case "sift":
		full = dataset.SIFTLike(sc.SIFTN+sc.Queries, rng)
	case "mnist":
		full = dataset.MNISTLike(sc.MNISTN+sc.Queries, rng)
	default:
		panic("experiments: unknown dataset " + name)
	}
	base, queries := dataset.SplitQueries(full, sc.Queries, rng)
	return &bench{
		name:    name,
		base:    base,
		queries: queries,
		gt:      knn.GroundTruth(base, queries, k),
		mat:     knn.BuildMatrix(base, kPrime),
	}
}

// probeSchedule returns a log-ish sweep of probe counts up to m.
func probeSchedule(m int) []int {
	var out []int
	for p := 1; p < m; p *= 2 {
		out = append(out, p)
		if p3 := p * 3 / 2; p3 < m && p3 > p {
			out = append(out, p3)
		}
	}
	out = append(out, m)
	sort.Ints(out)
	// Dedupe.
	uniq := out[:1]
	for _, p := range out[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	return uniq
}

// etaFor returns the paper's Table 3 η for a (dataset, bins) configuration.
func etaFor(name string, bins int) float64 {
	switch {
	case name == "mnist" && bins >= 256:
		return 30
	case name == "sift" && bins >= 256:
		return 10
	default:
		return 7
	}
}
