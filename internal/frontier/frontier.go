// Package frontier is the stateless fan-out query front of the sharded
// serving tier: it spreads each search over N uspserve backends — full
// replicas or disjoint dataset shards — and merges the per-shard top-k
// into one answer.
//
// Topology is a list of shard groups, each holding sibling replica URLs
// that serve the same rows. A query fans out to one backend per group
// (round-robin over the healthy siblings), each shard's sorted top-k
// comes back with local ids, the front offsets them by the shard's
// id_offset (learned from /healthz) and runs the bounded (distance, id)
// merge from internal/vecmath — the same tie-break the engine's own TopK
// drain uses, so sharded answers are bit-identical to a single process
// searching the union dataset (see usp.Shard for the one quantized-mode
// exception).
//
// The front holds no index state, so any number of fronts can serve the
// same backend fleet. Resilience is deliberate and minimal: per-request
// timeouts with context propagation, one bounded retry against a sibling
// replica on 5xx or transport failure (never on 4xx — a request the
// backend classified as the caller's fault stays failed), health checks
// that eject dead backends from rotation, and a concurrent-request limit
// that sheds excess load with 429 instead of queueing without bound.
package frontier

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
	"repro/internal/vecmath"
)

// Config parameterizes a Front.
type Config struct {
	// Shards is the backend topology: one entry per disjoint shard, each
	// listing the base URLs ("http://host:port") of sibling replicas
	// serving that shard. A single-replica, single-shard front is a plain
	// reverse proxy with validation.
	Shards [][]string
	// Timeout bounds each backend request, retries included separately
	// (default 2s).
	Timeout time.Duration
	// MaxInFlight caps concurrently handled front requests; excess
	// requests are rejected with 429 (default 256).
	MaxInFlight int
	// HealthInterval is the background health-probe period (default 2s).
	HealthInterval time.Duration
	// CacheSize enables the front's LRU result cache with room for that
	// many merged answers (0 disables it). Entries are invalidated in
	// bulk whenever any backend's snapshot generation or id offset
	// changes, or when this front routes a write — see coalesce.go.
	CacheSize int
	// Client issues backend requests (default: http.Client with sane
	// connection pooling).
	Client *http.Client
}

// backend is one uspserve process in the topology.
type backend struct {
	url     string
	healthy atomic.Bool
	// idOffset is the backend's global id base as last reported by
	// /healthz. Merging always uses the offset carried on each search
	// response (which cannot go stale); the probed value routes /delete
	// and keys cache invalidation.
	idOffset atomic.Int64
	// generation is the backend's snapshot generation as last probed; a
	// change means the backend reloaded and cached answers may be stale.
	generation atomic.Uint64
	// vectors is the backend's live row count as last probed, advanced
	// optimistically by routed adds; it drives least-rows add placement.
	vectors atomic.Int64
	// rows is the backend's dataset row count including deleted rows —
	// the next local id its Add would assign — as last probed, advanced
	// optimistically by routed adds; offset+rows is the next global id
	// this shard would mint, which gates add placement against id-range
	// collisions with the following shard.
	rows atomic.Int64

	reqs *telemetry.Counter
	errs *telemetry.Counter
	lat  *telemetry.Histogram
}

// group is the replica set of one shard; queries round-robin over its
// healthy members.
type group struct {
	backends []*backend
	next     atomic.Uint64
}

// pick returns the group's backends in preferred order: healthy members
// first (rotated round-robin), then unhealthy ones as a last resort —
// a front with every sibling marked down still tries rather than failing
// without a request.
func (g *group) pick(dst []*backend) []*backend {
	start := int(g.next.Add(1) - 1)
	n := len(g.backends)
	for i := 0; i < n; i++ {
		if b := g.backends[(start+i)%n]; b.healthy.Load() {
			dst = append(dst, b)
		}
	}
	for i := 0; i < n; i++ {
		if b := g.backends[(start+i)%n]; !b.healthy.Load() {
			dst = append(dst, b)
		}
	}
	return dst
}

// Front fans queries out over the configured shard groups.
type Front struct {
	cfg    Config
	groups []*group
	client *http.Client
	sem    chan struct{}

	reg      *telemetry.Registry
	fanout   *telemetry.Counter
	retries  *telemetry.Counter
	rejected *telemetry.Counter

	// Coalescing + caching state (see coalesce.go). cacheGen is the
	// front-wide cache generation: bumped whenever any backend reloads
	// or this front routes a write, invalidating every cache entry.
	flightMu    sync.Mutex
	flights     map[string]*flight
	cache       *resultCache // nil when Config.CacheSize == 0
	cacheGen    atomic.Uint64
	coalesced   *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter

	stop chan struct{}
	wg   sync.WaitGroup
}

// New validates the topology and returns a Front. Call Start to begin
// background health probing (tests may drive ProbeHealth directly).
func New(cfg Config) (*Front, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("frontier: no shard groups configured")
	}
	for i, g := range cfg.Shards {
		if len(g) == 0 {
			return nil, fmt.Errorf("frontier: shard group %d has no backends", i)
		}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	f := &Front{
		cfg:     cfg,
		client:  cfg.Client,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		reg:     telemetry.NewRegistry(),
		flights: make(map[string]*flight),
		stop:    make(chan struct{}),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if cfg.CacheSize > 0 {
		f.cache = newResultCache(cfg.CacheSize)
	}
	f.fanout = f.reg.Counter("front_fanout_total", "",
		"Backend requests fanned out, across all shard groups.")
	f.retries = f.reg.Counter("front_retries_total", "",
		"Backend requests retried against a sibling replica after a 5xx or transport failure.")
	f.rejected = f.reg.Counter("front_rejected_total", "",
		"Front requests shed with 429 because the in-flight limit was reached.")
	f.coalesced = f.reg.Counter("front_coalesced_total", "",
		"Search requests that joined an identical in-flight request instead of fanning out.")
	f.cacheHits = f.reg.Counter("front_cache_hits_total", "",
		"Search requests answered from the front's result cache.")
	f.cacheMisses = f.reg.Counter("front_cache_misses_total", "",
		"Cache-enabled search requests that missed and fanned out.")
	healthy := 0
	for _, urls := range cfg.Shards {
		g := &group{}
		for _, u := range urls {
			labels := `backend="` + u + `"`
			b := &backend{
				url:  u,
				reqs: f.reg.Counter("front_backend_requests_total", labels, "Requests sent to this backend."),
				errs: f.reg.Counter("front_backend_errors_total", labels, "Requests to this backend that failed (transport error or status >= 500)."),
				lat:  f.reg.Histogram("front_backend_latency_seconds", labels, "Backend round-trip latency.", telemetry.NanosToSeconds),
			}
			// Optimistically in rotation until the first probe says otherwise.
			b.healthy.Store(true)
			g.backends = append(g.backends, b)
			healthy++
		}
		f.groups = append(f.groups, g)
	}
	f.reg.GaugeFunc("front_healthy_backends", "",
		"Backends currently passing health checks.", func() float64 {
			n := 0
			for _, g := range f.groups {
				for _, b := range g.backends {
					if b.healthy.Load() {
						n++
					}
				}
			}
			return float64(n)
		})
	return f, nil
}

// Start launches the background health loop; Close stops it.
func (f *Front) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		t := time.NewTicker(f.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-t.C:
				f.ProbeHealth(context.Background())
			}
		}
	}()
}

// Close stops the health loop.
func (f *Front) Close() {
	close(f.stop)
	f.wg.Wait()
}

// ProbeHealth sweeps every backend's /healthz once, updating rotation
// state and id offsets. Siblings are probed concurrently; the sweep
// returns when all probes finish.
func (f *Front) ProbeHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, g := range f.groups {
		for _, b := range g.backends {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				hctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
				defer cancel()
				req, err := http.NewRequestWithContext(hctx, http.MethodGet, b.url+"/healthz", nil)
				if err != nil {
					b.healthy.Store(false)
					return
				}
				resp, err := f.client.Do(req)
				if err != nil {
					b.healthy.Store(false)
					return
				}
				defer resp.Body.Close()
				var hz serve.HealthzResponse
				if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&hz) != nil || !hz.IndexLoaded {
					b.healthy.Store(false)
					return
				}
				// A new snapshot generation or id offset means the
				// backend's answers may have changed: invalidate the
				// front's result cache by bumping the generation.
				genChanged := b.generation.Swap(hz.Generation) != hz.Generation
				offChanged := b.idOffset.Swap(int64(hz.IDOffset)) != int64(hz.IDOffset)
				if genChanged || offChanged {
					f.cacheGen.Add(1)
				}
				b.vectors.Store(int64(hz.Vectors))
				b.rows.Store(int64(hz.Rows))
				b.healthy.Store(true)
			}(b)
		}
	}
	wg.Wait()
}

// Mux assembles the front's routing table: the fan-out query endpoints
// behind per-endpoint metrics, plus /healthz and /metrics.
func (f *Front) Mux() *http.ServeMux {
	hm := telemetry.NewHTTPMetrics(f.reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/search", hm.Wrap("/search", f.handleSearch))
	mux.HandleFunc("/search/batch", hm.Wrap("/search/batch", f.handleSearchBatch))
	mux.HandleFunc("/add", hm.Wrap("/add", f.handleAdd))
	mux.HandleFunc("/delete", hm.Wrap("/delete", f.handleDelete))
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.Handle("/metrics", telemetry.Handler(f.reg))
	return mux
}

// httpError is a backend reply with status >= 400: the status decides
// whether the request may be retried on a sibling.
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.status, e.body) }

// callBackend POSTs body to one backend and decodes a JSON reply into out.
func (f *Front) callBackend(ctx context.Context, b *backend, path string, body []byte, out any) error {
	cctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	b.reqs.Inc()
	f.fanout.Inc()
	resp, err := f.client.Do(req)
	b.lat.ObserveDuration(time.Since(start))
	if err != nil {
		b.errs.Inc()
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		if resp.StatusCode >= 500 {
			b.errs.Inc()
		}
		return &httpError{status: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// askGroup sends one shard's request, retrying once against the next
// sibling replica when the first attempt fails with a transport error or
// a 5xx. 4xx replies are returned immediately: the backend judged the
// request itself invalid, and a sibling would only repeat the verdict.
// The id offset used for merging comes from the response body itself
// (SearchResponse.IDOffset), never from cached health-probe state, so a
// backend that reloads to a different shard mid-flight cannot skew ids.
func (f *Front) askGroup(ctx context.Context, g *group, path string, body []byte, out any) error {
	var order [4]*backend
	candidates := g.pick(order[:0])
	var lastErr error
	for attempt, b := range candidates {
		if attempt >= 2 { // bounded: primary + one sibling retry
			break
		}
		if attempt > 0 {
			f.retries.Inc()
		}
		err := f.callBackend(ctx, b, path, body, out)
		if err == nil {
			return nil
		}
		var he *httpError
		if errors.As(err, &he) && he.status < 500 {
			return err // caller's fault; do not retry
		}
		lastErr = err
	}
	return lastErr
}

// writeFanoutError classifies a fan-out failure for the client: backend
// 4xx verdicts pass through verbatim, deadline expiry is 504, and any
// other backend failure surfaces as 502.
func writeFanoutError(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he) && he.status < 500:
		http.Error(w, he.body, he.status)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "backend timeout: "+err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, "backend failure: "+err.Error(), http.StatusBadGateway)
	}
}

// acquire takes an in-flight slot, or sheds the request with 429.
func (f *Front) acquire(w http.ResponseWriter) bool {
	select {
	case f.sem <- struct{}{}:
		return true
	default:
		f.rejected.Inc()
		http.Error(w, "too many in-flight requests", http.StatusTooManyRequests)
		return false
	}
}

func (f *Front) release() { <-f.sem }

// shardAnswer is one group's reply to a fanned-out /search.
type shardAnswer struct {
	resp serve.SearchResponse
	err  error
}

func (f *Front) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !f.acquire(w) {
		return
	}
	defer f.release()
	var req serve.SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Validate here so a broken request costs zero backend traffic and
	// cannot trip the retry path.
	if err := serve.ValidateSearchParams(req.K, req.Probes, req.RerankK); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	key := searchKey(req.Vector, req.K, req.Probes, req.RerankK)
	gen := f.cacheGen.Load()
	if f.cache != nil {
		if resp, ok := f.cache.get(key, gen); ok {
			f.cacheHits.Inc()
			writeJSON(w, resp)
			return
		}
		f.cacheMisses.Inc()
	}

	fl, leader := f.joinFlight(key)
	if !leader {
		// An identical request is already fanning out; share its answer.
		select {
		case <-fl.done:
			if fl.err != nil {
				writeFanoutError(w, fl.err)
				return
			}
			writeJSON(w, fl.resp)
		case <-r.Context().Done():
			http.Error(w, "client gone: "+r.Context().Err().Error(), http.StatusServiceUnavailable)
		}
		return
	}

	// Leader: run the fan-out detached from this request's context so a
	// leader disconnect cannot fail the coalesced followers (callBackend
	// still bounds every backend call with the configured timeout).
	resp, err := f.fanoutSearch(context.WithoutCancel(r.Context()), body, req.K)
	if err == nil && f.cache != nil && f.cacheGen.Load() == gen {
		// Fill only if no reload/write invalidated the fleet while the
		// fan-out ran; a racing bump makes this answer unsafe to keep.
		f.cache.put(key, gen, resp)
	}
	f.finishFlight(key, fl, resp, err)
	if err != nil {
		writeFanoutError(w, err)
		return
	}
	writeJSON(w, resp)
}

// fanoutSearch sends one validated, marshalled /search body to every
// shard group and merges the per-shard top-k into the global answer.
func (f *Front) fanoutSearch(ctx context.Context, body []byte, k int) (serve.SearchResponse, error) {
	start := time.Now()
	answers := make([]shardAnswer, len(f.groups))
	var wg sync.WaitGroup
	for gi, g := range f.groups {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			answers[gi].err = f.askGroup(ctx, g, "/search", body, &answers[gi].resp)
		}(gi, g)
	}
	wg.Wait()

	scanned := 0
	lists := make([][]vecmath.Neighbor, len(answers))
	for gi, a := range answers {
		if a.err != nil {
			return serve.SearchResponse{}, a.err
		}
		scanned += a.resp.Scanned
		ns := make([]vecmath.Neighbor, len(a.resp.IDs))
		for i, id := range a.resp.IDs {
			ns[i] = vecmath.Neighbor{Index: a.resp.IDOffset + id, Dist: a.resp.Distances[i]}
		}
		lists[gi] = ns
	}
	merged := vecmath.MergeSortedNeighbors(nil, k, lists...)
	resp := serve.SearchResponse{Scanned: scanned, Elapsed: time.Since(start).String()}
	for _, n := range merged {
		resp.IDs = append(resp.IDs, n.Index)
		resp.Distances = append(resp.Distances, n.Dist)
	}
	return resp, nil
}

// batchAnswer is one group's reply to a fanned-out /search/batch.
type batchAnswer struct {
	resp serve.BatchSearchResponse
	err  error
}

func (f *Front) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !f.acquire(w) {
		return
	}
	defer f.release()
	var req serve.BatchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := serve.ValidateSearchParams(req.K, req.Probes, req.RerankK); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	start := time.Now()
	answers := make([]batchAnswer, len(f.groups))
	var wg sync.WaitGroup
	for gi, g := range f.groups {
		wg.Add(1)
		go func(gi int, g *group) {
			defer wg.Done()
			answers[gi].err = f.askGroup(r.Context(), g, "/search/batch", body, &answers[gi].resp)
		}(gi, g)
	}
	wg.Wait()

	nq := len(req.Vectors)
	for _, a := range answers {
		if a.err != nil {
			writeFanoutError(w, a.err)
			return
		}
		if len(a.resp.IDs) != nq {
			http.Error(w, fmt.Sprintf("backend answered %d queries, want %d", len(a.resp.IDs), nq),
				http.StatusBadGateway)
			return
		}
	}
	resp := serve.BatchSearchResponse{
		IDs:       make([][]int, nq),
		Distances: make([][]float32, nq),
	}
	lists := make([][]vecmath.Neighbor, len(answers))
	for qi := 0; qi < nq; qi++ {
		for gi, a := range answers {
			ns := make([]vecmath.Neighbor, len(a.resp.IDs[qi]))
			for i, id := range a.resp.IDs[qi] {
				ns[i] = vecmath.Neighbor{Index: a.resp.IDOffset + id, Dist: a.resp.Distances[qi][i]}
			}
			lists[gi] = ns
		}
		merged := vecmath.MergeSortedNeighbors(nil, req.K, lists...)
		ids := make([]int, len(merged))
		ds := make([]float32, len(merged))
		for i, n := range merged {
			ids[i], ds[i] = n.Index, n.Dist
		}
		resp.IDs[qi], resp.Distances[qi] = ids, ds
	}
	resp.Elapsed = time.Since(start).String()
	writeJSON(w, resp)
}

// FrontHealthz is the body of the front's GET /healthz.
type FrontHealthz struct {
	Status          string `json:"status"`
	Shards          int    `json:"shards"`
	Backends        int    `json:"backends"`
	HealthyBackends int    `json:"healthy_backends"`
	// Degraded lists shard groups with zero healthy members; queries
	// covering them are expected to fail until a replica recovers.
	Degraded []int `json:"degraded_shards,omitempty"`
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hz := FrontHealthz{Status: "ok", Shards: len(f.groups)}
	for gi, g := range f.groups {
		live := 0
		for _, b := range g.backends {
			hz.Backends++
			if b.healthy.Load() {
				live++
				hz.HealthyBackends++
			}
		}
		if live == 0 {
			hz.Degraded = append(hz.Degraded, gi)
		}
	}
	if len(hz.Degraded) > 0 {
		hz.Status = "degraded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, hz)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
