// Package usp is the public API of this repository: an implementation of
// "Unsupervised Space Partitioning for Nearest Neighbor Search" (Fahim, Ali
// & Cheema, EDBT 2023).
//
// The package trains a neural (or logistic-regression) model to partition a
// vector dataset into bins with the paper's unsupervised two-term loss — a
// quality cost keeping k′-NN neighborhoods together and a computational cost
// keeping bins balanced — and answers approximate k-NN queries by probing
// the most probable bins. Ensembles of complementary partitions and
// hierarchical (recursive) partitioning are supported, as are plain
// clustering labels (the paper's §5.5 usage).
//
// Quick start:
//
//	ix, err := usp.Build(vectors, usp.Options{Bins: 16, Ensemble: 3})
//	...
//	results, err := ix.Search(query, 10, usp.SearchOptions{Probes: 2})
//
// The internal packages additionally contain every baseline the paper
// evaluates against (Neural LSH, K-means, LSH, partitioning trees, ScaNN,
// HNSW, IVF-PQ, DBSCAN, spectral clustering); see DESIGN.md.
package usp

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

// Options configures Build.
type Options struct {
	// Bins is the number of partition cells m (default 16). When
	// Hierarchy is non-empty it is ignored in favor of the level product.
	Bins int
	// KPrime is the neighborhood width k′ of the offline k′-NN matrix
	// (default 10, the paper's choice).
	KPrime int
	// Eta is the balance weight η of the loss (default 10).
	Eta float64
	// Epochs of training per model (default 60).
	Epochs int
	// BatchSize for mini-batch sampling (default max(64, n/25) ≈ 4%).
	BatchSize int
	// Hidden lists MLP hidden widths (default [128], the paper's network;
	// set Logistic to force a linear model instead).
	Hidden []int
	// Logistic selects the single-layer logistic-regression architecture.
	Logistic bool
	// Dropout probability on hidden layers (default 0.1).
	Dropout float64
	// Ensemble is the number of boosted models e (default 1).
	Ensemble int
	// Hierarchy, when non-empty, trains a recursive partition with the
	// given per-level branching factors (e.g. [16, 16] for 256 bins).
	// Mutually exclusive with Ensemble > 1.
	Hierarchy []int
	// Seed makes the build reproducible.
	Seed int64
	// Logf receives progress lines when set.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Bins == 0 {
		o.Bins = 16
	}
	if o.KPrime == 0 {
		o.KPrime = 10
	}
	if o.Eta == 0 {
		o.Eta = 10
	}
	if o.Epochs == 0 {
		o.Epochs = 60
	}
	if o.Hidden == nil && !o.Logistic {
		o.Hidden = []int{128}
	}
	if o.Logistic {
		o.Hidden = nil
	}
	if o.Dropout == 0 && len(o.Hidden) > 0 {
		o.Dropout = 0.1
	}
	if o.Ensemble == 0 {
		o.Ensemble = 1
	}
	return o
}

// Result is one returned neighbor.
type Result struct {
	ID       int
	Distance float32 // squared Euclidean distance
}

// BuildStats summarizes the offline phase.
type BuildStats struct {
	// Bins is the total number of partition cells.
	Bins int
	// Models is the number of trained models (ensemble members or
	// hierarchy nodes).
	Models int
	// Params is the total learnable parameter count (Table 2's metric).
	Params int
}

// SearchOptions configures a query.
type SearchOptions struct {
	// Probes is m′, the number of most-probable bins scanned (default 1).
	Probes int
	// UnionEnsemble unions every ensemble member's candidates instead of
	// the paper's best-confidence selection (Algorithm 4).
	UnionEnsemble bool
}

// Index is a built USP index over a dataset.
//
// Concurrency: Search, SearchBatch, CandidateSet, and Searcher queries may
// run concurrently with each other and with Add. Queries take the read side
// of an RWMutex and Add the write side, so lookups never observe a
// half-appended vector.
type Index struct {
	data  *dataset.Dataset
	ens   *core.Ensemble
	hier  *core.Hierarchy
	stats BuildStats

	// mu orders queries (read side) against Add (write side).
	mu sync.RWMutex
	// searchers pools query contexts for the convenience entry points
	// (Search, SearchBatch, CandidateSet) so they stay allocation-lean
	// without the caller managing Searchers explicitly.
	searchers sync.Pool
}

// Build trains a USP index over the given vectors (all of equal length).
func Build(vectors [][]float32, opt Options) (*Index, error) {
	if len(vectors) < 4 {
		return nil, errors.New("usp: need at least 4 vectors")
	}
	opt = opt.withDefaults()
	if len(opt.Hierarchy) > 0 && opt.Ensemble > 1 {
		return nil, errors.New("usp: Hierarchy and Ensemble > 1 are mutually exclusive")
	}
	ds := dataset.FromRowsCopy(vectors)
	// Cache per-row squared norms so the candidate scan can use the fused
	// distance kernel; Append keeps the cache extended for Add.
	ds.EnsureSqNorms(false)

	cfg := core.Config{
		Bins:      opt.Bins,
		KPrime:    opt.KPrime,
		Eta:       opt.Eta,
		Epochs:    opt.Epochs,
		BatchSize: opt.BatchSize,
		Hidden:    opt.Hidden,
		Dropout:   opt.Dropout,
		Seed:      opt.Seed,
		Logf:      opt.Logf,
	}

	ix := &Index{data: ds}
	if len(opt.Hierarchy) > 0 {
		h, stats, err := core.TrainHierarchy(ds, opt.Hierarchy, cfg)
		if err != nil {
			return nil, fmt.Errorf("usp: %w", err)
		}
		ix.hier = h
		ix.stats = BuildStats{Bins: h.NumBins, Models: len(stats), Params: h.TotalParams()}
		return ix, nil
	}

	kp := cfg.KPrime
	if kp >= ds.N {
		kp = ds.N - 1
		cfg.KPrime = kp
	}
	mat := knn.BuildMatrix(ds, kp)
	ens, stats, err := core.TrainEnsemble(ds, mat, cfg, opt.Ensemble)
	if err != nil {
		return nil, fmt.Errorf("usp: %w", err)
	}
	ix.ens = ens
	ix.stats = BuildStats{
		Bins:   opt.Bins,
		Models: ens.Size(),
		Params: stats.TotalParams(),
	}
	return ix, nil
}

// Stats reports offline-phase metrics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// Len returns the number of indexed vectors. Safe to call concurrently
// with Add.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.data.N
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.data.Dim }

// CandidateSet returns the ids the index would scan for q (Algorithm 2,
// step 2) — exposed so callers can hand candidates to their own scorer
// (e.g. a ScaNN pipeline, as in §5.4.3). It is a thin wrapper over the
// batched engine's candidate gathering, using a pooled Searcher.
func (ix *Index) CandidateSet(q []float32, opt SearchOptions) ([]int, error) {
	if len(q) != ix.data.Dim {
		return nil, fmt.Errorf("usp: query dim %d, index dim %d", len(q), ix.data.Dim)
	}
	probes := opt.Probes
	if probes <= 0 {
		probes = 1
	}
	s := ix.getSearcher()
	defer ix.putSearcher(s)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s.gatherCandidates(q, probes, opt.UnionEnsemble)
	return core.ToInts(s.cands), nil
}

// Search returns the k approximate nearest neighbors of q. It is a thin
// wrapper over a pooled Searcher; callers issuing many queries from one
// goroutine should hold their own (NewSearcher) and use SearchInto, and
// callers with many queries in hand should prefer SearchBatch.
func (ix *Index) Search(q []float32, k int, opt SearchOptions) ([]Result, error) {
	s := ix.getSearcher()
	defer ix.putSearcher(s)
	return s.Search(q, k, opt)
}

// Add inserts a new vector into the index without retraining: the trained
// model routes it to its most probable bin(s), the same decision rule
// queries use, so it is immediately findable. Returns the new vector's id.
// Safe to call concurrently with queries. Heavy drift from the training
// distribution degrades partition quality; rebuild periodically under churn.
func (ix *Index) Add(vec []float32) (int, error) {
	if len(vec) != ix.data.Dim {
		return 0, fmt.Errorf("usp: vector dim %d, index dim %d", len(vec), ix.data.Dim)
	}
	// Route before taking the write lock: the trained models are immutable,
	// so the forward passes need no exclusivity. Only the appends (dataset
	// row, Assign, spill lists) run under the lock, keeping concurrent
	// searches unblocked during inference. A pooled Searcher's scratch
	// backs the forward passes, so a sustained Add stream allocates only
	// the appended storage itself.
	s := ix.getSearcher()
	defer ix.putSearcher(s)
	var leaf int
	if ix.hier != nil {
		leaf = ix.hier.RouteLeafWith(&s.qs, vec)
	} else {
		s.routeBins = ix.ens.RouteBinsWith(&s.qs, vec, s.routeBins[:0])
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id := ix.data.N
	ix.data.Append(vec)
	if ix.hier != nil {
		ix.hier.InsertRouted(id, leaf)
	} else {
		ix.ens.InsertRouted(id, s.routeBins)
	}
	return id, nil
}

// Cluster trains a single USP model with k bins and returns a cluster label
// per vector — the paper's use of the partitioner as an unsupervised
// clustering method (§5.5).
func Cluster(vectors [][]float32, k int, opt Options) ([]int, error) {
	if len(vectors) < k {
		return nil, fmt.Errorf("usp: %d vectors cannot form %d clusters", len(vectors), k)
	}
	opt = opt.withDefaults()
	ds := dataset.FromRowsCopy(vectors)
	return core.ClusterLabels(ds, k, core.Config{
		KPrime:    opt.KPrime,
		Eta:       opt.Eta,
		Epochs:    opt.Epochs,
		BatchSize: opt.BatchSize,
		Hidden:    opt.Hidden,
		Dropout:   opt.Dropout,
		Seed:      opt.Seed,
		Logf:      opt.Logf,
	})
}
