package neurallsh

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/trees"
)

func blobs(seed int64, n, dim, k int) (*dataset.Labeled, *knn.Matrix) {
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: k, ClusterStd: 0.1, CenterBox: 5,
	}, rand.New(rand.NewSource(seed)))
	return l, knn.BuildMatrix(l.Dataset, 10)
}

func TestTrainPartitionAndRouter(t *testing.T) {
	l, mat := blobs(1, 500, 6, 4)
	m, stats, err := Train(l.Dataset, mat, Config{
		Bins: 4, Hidden: []int{32}, Epochs: 40, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lookup table covers every point exactly once and matches Assign.
	seen := make([]int, l.N)
	for b, pts := range m.Bins {
		for _, i := range pts {
			seen[i]++
			if m.Assign[i] != int32(b) {
				t.Fatalf("point %d assign mismatch", i)
			}
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d in %d bins", i, c)
		}
	}
	// Graph partition of separated blobs must be balanced-ish.
	for b, s := range m.BinSizes() {
		if s < l.N/8 {
			t.Fatalf("bin %d has only %d points: %v", b, s, m.BinSizes())
		}
	}
	// The router must mimic the labels well on this easy layout.
	if stats.TrainAccuracy < 0.9 {
		t.Fatalf("router accuracy %.3f", stats.TrainAccuracy)
	}
	if stats.Params == 0 || stats.PartitionTime <= 0 || stats.TrainTime <= 0 {
		t.Fatalf("stats incomplete: %+v", stats)
	}
}

func TestCandidatesGrowWithProbes(t *testing.T) {
	l, mat := blobs(3, 400, 4, 4)
	m, _, err := Train(l.Dataset, mat, Config{Bins: 4, Hidden: []int{16}, Epochs: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := l.Row(0)
	prev := 0
	for mp := 1; mp <= 4; mp++ {
		c := len(m.Candidates(q, mp))
		if c < prev {
			t.Fatal("candidates shrank")
		}
		prev = c
	}
	if prev != l.N {
		t.Fatalf("all-bin probe |C| = %d", prev)
	}
}

func TestTrainValidation(t *testing.T) {
	l, mat := blobs(5, 50, 4, 2)
	if _, _, err := Train(l.Dataset, mat, Config{Bins: 1}); err == nil {
		t.Fatal("Bins=1 should fail")
	}
	if _, _, err := Train(l.Dataset, mat, Config{Bins: 100}); err == nil {
		t.Fatal("Bins>n should fail")
	}
}

func TestLogisticRouterVariant(t *testing.T) {
	l, mat := blobs(6, 300, 4, 2)
	m, stats, err := Train(l.Dataset, mat, Config{Bins: 2, Epochs: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4*2 + 2; stats.Params != want {
		t.Fatalf("logistic router params = %d, want %d", stats.Params, want)
	}
	if len(m.Probabilities(l.Row(0))) != 2 {
		t.Fatal("probabilities width")
	}
}

func TestRegressionFitterTree(t *testing.T) {
	l, _ := blobs(8, 400, 6, 4)
	tree := trees.Build(l.Dataset, 3, RegressionFitter{Seed: 9, Epochs: 20}, 9)
	if tree.NumLeaves() < 4 {
		t.Fatalf("leaves = %d", tree.NumLeaves())
	}
	// Leaf partition covers the dataset once.
	seen := make([]int, l.N)
	for _, leaf := range tree.Leaves {
		for _, i := range leaf {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("point %d in %d leaves", i, c)
		}
	}
	// Balance: graph bisection labels must keep leaves within sane bounds.
	for li, s := range tree.LeafSizes() {
		if s > l.N*3/4 {
			t.Fatalf("leaf %d holds %d points", li, s)
		}
	}
	// Multi-probe monotonicity.
	q := l.Row(0)
	if len(tree.Candidates(q, tree.NumLeaves())) != l.N {
		t.Fatal("full probe must cover dataset")
	}
}

func TestRegressionFitterDegenerate(t *testing.T) {
	f := RegressionFitter{Seed: 1}
	d := dataset.New(3, 2) // < 4 points: unsplittable
	idx := []int32{0, 1, 2}
	if sp := f.Fit(d, idx, rand.New(rand.NewSource(1))); sp != nil {
		t.Fatal("expected nil splitter for tiny subset")
	}
}
