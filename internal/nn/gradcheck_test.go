package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericGrad estimates dLoss/dtheta for every parameter and input entry by
// central differences, where lossFn must be a deterministic pure function of
// the current parameter values and input.
func numericGradParam(p *Param, lossFn func() float64, eps float64) []float64 {
	out := make([]float64, len(p.Value.Data))
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + float32(eps)
		lp := lossFn()
		p.Value.Data[i] = orig - float32(eps)
		lm := lossFn()
		p.Value.Data[i] = orig
		out[i] = (lp - lm) / (2 * eps)
	}
	return out
}

func relErr(a, b float64) float64 {
	denom := math.Abs(a) + math.Abs(b)
	if denom < 1e-8 {
		return 0
	}
	return math.Abs(a-b) / denom
}

// checkModelGrads trains-forward the model once with the given loss,
// backprops, then verifies every parameter gradient against central
// differences. The model must be deterministic (no dropout).
func checkModelGrads(t *testing.T, model *Sequential, x *tensor.Matrix,
	loss func(logits *tensor.Matrix) (float64, *tensor.Matrix), tol float64) {
	t.Helper()

	// BatchNorm running stats change across forward passes; freeze them by
	// saving/restoring so the numeric lossFn is pure.
	type bnState struct {
		bn       *BatchNorm
		mean, va []float32
	}
	var states []bnState
	for _, l := range model.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			states = append(states, bnState{
				bn,
				append([]float32(nil), bn.RunningMean.Data...),
				append([]float32(nil), bn.RunningVar.Data...),
			})
		}
	}
	restore := func() {
		for _, s := range states {
			copy(s.bn.RunningMean.Data, s.mean)
			copy(s.bn.RunningVar.Data, s.va)
		}
	}
	lossFn := func() float64 {
		defer restore()
		logits := model.Forward(x, true)
		l, _ := loss(logits)
		return l
	}

	model.ZeroGrads()
	logits := model.Forward(x, true)
	_, grad := loss(logits)
	model.Backward(grad)
	restore()

	for pi, p := range model.Params() {
		numeric := numericGradParam(p, lossFn, 1e-3)
		for i, ng := range numeric {
			ag := float64(p.Grad.Data[i])
			if math.Abs(ng) < 5e-4 && math.Abs(ag) < 5e-4 {
				continue // both ~zero: float32 noise dominates
			}
			if math.Abs(ag-ng) < 3e-3 {
				continue // absolute floor: ReLU-kink crossings and f32 noise
			}
			if e := relErr(ag, ng); e > tol {
				t.Fatalf("param %d (%s) entry %d: analytic %g vs numeric %g (rel err %g)",
					pi, p.Name, i, ag, ng, e)
			}
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewSequential(4, NewDense(4, 3, rng))
	x := randInput(rng, 6, 4)
	labels := []int{0, 1, 2, 0, 1, 2}
	checkModelGrads(t, model, x, func(l *tensor.Matrix) (float64, *tensor.Matrix) {
		return CrossEntropy(l, labels)
	}, 0.05)
}

func TestMLPReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewSequential(5,
		NewDense(5, 8, rng),
		NewReLU(),
		NewDense(8, 4, rng),
	)
	x := randInput(rng, 7, 5)
	labels := []int{0, 1, 2, 3, 0, 1, 2}
	checkModelGrads(t, model, x, func(l *tensor.Matrix) (float64, *tensor.Matrix) {
		return CrossEntropy(l, labels)
	}, 0.05)
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := NewSequential(4,
		NewDense(4, 6, rng),
		NewBatchNorm(6),
		NewReLU(),
		NewDense(6, 3, rng),
	)
	x := randInput(rng, 8, 4)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1}
	checkModelGrads(t, model, x, func(l *tensor.Matrix) (float64, *tensor.Matrix) {
		return CrossEntropy(l, labels)
	}, 0.08)
}

func TestUSPLossQualityGradCheck(t *testing.T) {
	// eta = 0 isolates the quality (soft-target CE) term.
	rng := rand.New(rand.NewSource(4))
	model := NewSequential(4, NewDense(4, 5, rng), NewReLU(), NewDense(5, 3, rng))
	x := randInput(rng, 6, 4)
	targets := randSoftTargets(rng, 6, 3)
	checkModelGrads(t, model, x, func(l *tensor.Matrix) (float64, *tensor.Matrix) {
		r := USPLoss(l, targets, nil, 0)
		return r.Loss, r.Grad
	}, 0.05)
}

func TestUSPLossWeightedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := NewSequential(3, NewDense(3, 4, rng))
	x := randInput(rng, 5, 3)
	targets := randSoftTargets(rng, 5, 4)
	weights := []float32{0.5, 2, 1, 3, 0.25}
	checkModelGrads(t, model, x, func(l *tensor.Matrix) (float64, *tensor.Matrix) {
		r := USPLoss(l, targets, weights, 0)
		return r.Loss, r.Grad
	}, 0.05)
}

func TestUSPLossBalanceGradCheck(t *testing.T) {
	// Full loss with a nonzero eta. The balance term is piecewise (top-k
	// selection), so we use well-separated logits to stay off selection
	// boundaries where the numeric gradient is undefined.
	rng := rand.New(rand.NewSource(6))
	model := NewSequential(3, NewDense(3, 4, rng))
	x := randInput(rng, 8, 3)
	for i := range x.Data {
		x.Data[i] *= 3 // spread inputs to separate probabilities
	}
	targets := randSoftTargets(rng, 8, 4)
	checkModelGrads(t, model, x, func(l *tensor.Matrix) (float64, *tensor.Matrix) {
		r := USPLoss(l, targets, nil, 2.5)
		return r.Loss, r.Grad
	}, 0.08)
}

func randInput(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func randSoftTargets(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		var sum float32
		for j := range row {
			row[j] = float32(rng.Float64())
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return m
}
