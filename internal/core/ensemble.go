package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/vecmath"
)

// Ensemble is a sequence of complementary partitioners trained with the
// boosting scheme of Algorithm 3: each model's quality loss re-weights
// points by how badly all previous models separated their neighborhoods.
type Ensemble struct {
	Parts []*Partitioner
}

// EnsembleStats aggregates per-model training stats.
type EnsembleStats struct {
	PerModel []TrainStats
}

// TotalParams sums learnable parameters across the ensemble.
func (s EnsembleStats) TotalParams() int {
	t := 0
	for _, m := range s.PerModel {
		t += m.Params
	}
	return t
}

// TrainEnsemble trains e sequential models per Algorithm 3. The first model
// uses uniform weights; before model j+1, every point's weight is multiplied
// by the number of its k′ neighbors that partition j separated from it, so
// later models specialize on the points earlier partitions handled poorly.
// If every weight collapses to zero (all neighborhoods perfectly preserved),
// weights reset to uniform for the remaining models.
func TrainEnsemble(ds *dataset.Dataset, knnMat *knn.Matrix, cfg Config, e int) (*Ensemble, EnsembleStats, error) {
	if e < 1 {
		return nil, EnsembleStats{}, fmt.Errorf("core: ensemble size must be ≥ 1, got %d", e)
	}
	ens := &Ensemble{}
	var stats EnsembleStats
	weights := make([]float32, ds.N)
	for i := range weights {
		weights[i] = 1
	}
	for j := 0; j < e; j++ {
		mcfg := cfg
		mcfg.Seed = cfg.Seed + int64(j)*7919 // distinct init/shuffle per model
		p, st, err := Train(ds, knnMat, mcfg, weights)
		if err != nil {
			return nil, EnsembleStats{}, fmt.Errorf("core: training ensemble model %d: %w", j, err)
		}
		ens.Parts = append(ens.Parts, p)
		stats.PerModel = append(stats.PerModel, st)
		if j == e-1 {
			break
		}
		// Weight update of Algorithm 3(b): w^{j+1}_i = (#separated) · w^j_i.
		sep := p.SeparatedNeighbors(knnMat, mcfg.KPrime)
		var sum float64
		for i := range weights {
			weights[i] *= float32(sep[i])
			sum += float64(weights[i])
		}
		if sum == 0 {
			for i := range weights {
				weights[i] = 1
			}
		} else {
			// Normalize to mean 1 so η keeps the same relative scale
			// across ensemble stages.
			scale := float32(float64(ds.N) / sum)
			for i := range weights {
				weights[i] *= scale
			}
		}
	}
	return ens, stats, nil
}

// ProbeMode selects how the ensemble combines its models' candidate sets at
// query time.
type ProbeMode int

const (
	// BestConfidence implements Algorithm 4: the single candidate set of
	// the model whose top bin probability is highest.
	BestConfidence ProbeMode = iota
	// UnionProbe unions every model's candidate set (an enhancement we
	// ablate; it trades larger |C| for higher recall).
	UnionProbe
)

// Candidates returns the ensemble's candidate set for q, probing the mPrime
// most probable bins of the selected model(s).
func (e *Ensemble) Candidates(q []float32, mPrime int, mode ProbeMode) []int {
	switch mode {
	case BestConfidence:
		best, bestConf := 0, float32(-1)
		var bestProbs []float32
		for j, p := range e.Parts {
			probs := p.Probabilities(q)
			if c := probs[vecmath.ArgMax(probs)]; c > bestConf {
				best, bestConf, bestProbs = j, c, probs
			}
		}
		part := e.Parts[best]
		bins := vecmath.TopKIndices(bestProbs, mPrime)
		var out []int
		for _, b := range bins {
			for _, i := range part.Bins[b] {
				out = append(out, int(i))
			}
		}
		return out
	case UnionProbe:
		seen := make(map[int]struct{})
		var out []int
		for _, p := range e.Parts {
			for _, i := range p.Candidates(q, mPrime) {
				if _, ok := seen[i]; !ok {
					seen[i] = struct{}{}
					out = append(out, i)
				}
			}
		}
		return out
	default:
		panic(fmt.Sprintf("core: unknown probe mode %d", mode))
	}
}

// Size returns the number of models in the ensemble.
func (e *Ensemble) Size() int { return len(e.Parts) }
