// Server: a production-style ANN search service. Trains a USP index at
// startup, then serves JSON k-NN queries over HTTP — the distributed-
// serving setting §2.2.2 argues space partitioning is naturally suited to.
//
//	go run ./examples/server -addr :8080
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/search \
//	     -d '{"vector": [ ...64 floats... ], "k": 5, "probes": 2}'
//
// Run with -demo to start, fire a few requests through the full HTTP stack,
// and exit (used by the repository's smoke tests).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	usp "repro"
	"repro/internal/dataset"
)

type searchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k"`
	Probes int       `json:"probes"`
}

type searchResponse struct {
	IDs       []int     `json:"ids"`
	Distances []float32 `json:"distances"`
	Scanned   int       `json:"scanned"`
	Elapsed   string    `json:"elapsed"`
}

type server struct {
	ix *usp.Index
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.Probes <= 0 {
		req.Probes = 1
	}
	start := time.Now()
	opt := usp.SearchOptions{Probes: req.Probes}
	cands, err := s.ix.CandidateSet(req.Vector, opt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.ix.Search(req.Vector, req.K, opt)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := searchResponse{Scanned: len(cands), Elapsed: time.Since(start).String()}
	for _, n := range res {
		resp.IDs = append(resp.IDs, n.ID)
		resp.Distances = append(resp.Distances, n.Distance)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.ix.Stats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"vectors": s.ix.Len(),
		"dim":     s.ix.Dim(),
		"bins":    st.Bins,
		"models":  st.Models,
		"params":  st.Params,
	}); err != nil {
		log.Printf("encoding stats: %v", err)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "self-test: start, query, exit")
	flag.Parse()

	log.Println("generating corpus and training index...")
	rng := rand.New(rand.NewSource(9))
	corpus := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 3000, Dim: 64, Clusters: 24, ClusterStd: 0.8, CenterBox: 3,
	}, rng)
	ix, err := usp.Build(corpus.Rows(), usp.Options{
		Bins: 16, Ensemble: 2, Epochs: 30, Hidden: []int{64}, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := &server{ix: ix}

	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/stats", s.handleStats)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s", ln.Addr())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}

	if !*demo {
		log.Fatal(srv.Serve(ln))
	}

	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Printf("server: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	// Exercise the full HTTP stack.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("stats: %v\n", stats)

	body, _ := json.Marshal(searchRequest{Vector: corpus.Row(3), K: 5, Probes: 2})
	resp, err = http.Post(base+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var sr searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("search: ids=%v scanned=%d elapsed=%s\n", sr.IDs, sr.Scanned, sr.Elapsed)
	if len(sr.IDs) != 5 || sr.IDs[0] != 3 {
		log.Fatalf("demo self-check failed: %+v", sr)
	}
	fmt.Println("demo OK")
	_ = srv.Close()
}
