// Command usptrain trains a USP partitioning index over an fvecs dataset
// and writes the serialized ensemble (models + lookup tables) to disk for
// cmd/uspquery to serve.
//
// Usage:
//
//	usptrain -data sift.fvecs -bins 16 -ensemble 3 -o index.usp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

func main() {
	var (
		dataPath = flag.String("data", "", "input fvecs dataset (required)")
		out      = flag.String("o", "", "output index path (required)")
		bins     = flag.Int("bins", 16, "number of partition bins m")
		ensemble = flag.Int("ensemble", 1, "ensemble size e")
		hier     = flag.String("hierarchy", "", "comma-separated branching factors (e.g. 16,16); overrides -bins/-ensemble")
		kPrime   = flag.Int("kprime", 10, "k'-NN matrix width")
		eta      = flag.Float64("eta", 10, "balance weight")
		epochs   = flag.Int("epochs", 60, "training epochs")
		hidden   = flag.Int("hidden", 128, "hidden width (0 = logistic regression)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		verbose  = flag.Bool("v", false, "log per-epoch losses")
	)
	flag.Parse()
	if *dataPath == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, err := dataset.LoadFvecsFile(*dataPath)
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	fmt.Printf("loaded %d vectors of dim %d\n", ds.N, ds.Dim)

	kp := *kPrime
	if kp >= ds.N {
		kp = ds.N - 1
	}
	cfg := core.Config{
		Bins: *bins, KPrime: kp, Eta: *eta, Epochs: *epochs, Seed: *seed,
	}
	if *hidden > 0 {
		cfg.Hidden = []int{*hidden}
		cfg.Dropout = 0.1
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	if *hier != "" {
		var levels []int
		for _, part := range strings.Split(*hier, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 2 {
				log.Fatalf("bad -hierarchy element %q", part)
			}
			levels = append(levels, v)
		}
		start := time.Now()
		h, stats, err := core.TrainHierarchy(ds, levels, cfg)
		if err != nil {
			log.Fatalf("training hierarchy: %v", err)
		}
		fmt.Printf("trained hierarchy of %d models (%d leaf bins, %d params) in %s\n",
			len(stats), h.NumBins, h.TotalParams(), time.Since(start).Round(time.Millisecond))
		if err := core.SaveIndexFile(*out, nil, h); err != nil {
			log.Fatalf("writing index: %v", err)
		}
		fmt.Printf("wrote hierarchical index to %s\n", *out)
		return
	}

	start := time.Now()
	mat := knn.BuildMatrix(ds, kp)
	fmt.Printf("k'-NN matrix (k'=%d) built in %s\n", kp, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	ens, stats, err := core.TrainEnsemble(ds, mat, cfg, *ensemble)
	if err != nil {
		log.Fatalf("training: %v", err)
	}
	fmt.Printf("trained %d model(s), %d params total, in %s\n",
		ens.Size(), stats.TotalParams(), time.Since(start).Round(time.Millisecond))
	if err := core.SaveIndexFile(*out, ens, nil); err != nil {
		log.Fatalf("writing index: %v", err)
	}
	fmt.Printf("wrote index to %s\n", *out)
}
