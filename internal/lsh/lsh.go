// Package lsh implements the data-oblivious locality-sensitive-hashing
// baselines of the paper's evaluation: cross-polytope LSH (Andoni et al.
// 2015), used in Fig. 5, and classic hyperplane (sign-random-projection)
// LSH. Both expose the shared multi-probe candidate-source contract so they
// plug into the same evaluation harness as the learned partitioners.
package lsh

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// CrossPolytope partitions R^d into 2·proj bins: a random Gaussian matrix
// maps a vector to a proj-dimensional rotation, and the bin is the index of
// the coordinate with the largest magnitude together with its sign. Probing
// order ranks bins by the signed coordinate magnitudes, the natural
// multi-probe sequence for the cross-polytope hash.
type CrossPolytope struct {
	M    int // number of bins == 2·proj
	proj *dataset.Dataset
	Bins [][]int32
}

// NewCrossPolytope builds an index with m bins (m must be even and ≥ 2)
// over ds.
func NewCrossPolytope(ds *dataset.Dataset, m int, seed int64) (*CrossPolytope, error) {
	if m < 2 || m%2 != 0 {
		return nil, fmt.Errorf("lsh: cross-polytope needs an even bin count ≥ 2, got %d", m)
	}
	rng := rand.New(rand.NewSource(seed))
	p := m / 2
	proj := dataset.New(p, ds.Dim)
	for i := range proj.Data {
		proj.Data[i] = float32(rng.NormFloat64())
	}
	cp := &CrossPolytope{M: m, proj: proj, Bins: make([][]int32, m)}
	for i := 0; i < ds.N; i++ {
		b := cp.hash(ds.Row(i))
		cp.Bins[b] = append(cp.Bins[b], int32(i))
	}
	return cp, nil
}

// scores returns the per-bin scores for q: bin 2j is the positive direction
// of projection j, bin 2j+1 the negative direction.
func (cp *CrossPolytope) scores(q []float32) []float32 {
	s := make([]float32, cp.M)
	for j := 0; j < cp.proj.N; j++ {
		v := vecmath.Dot(q, cp.proj.Row(j))
		s[2*j] = v
		s[2*j+1] = -v
	}
	return s
}

func (cp *CrossPolytope) hash(q []float32) int {
	return vecmath.ArgMax(cp.scores(q))
}

// Candidates returns the union of the mPrime best-scoring bins' points.
func (cp *CrossPolytope) Candidates(q []float32, mPrime int) []int {
	bins := vecmath.TopKIndices(cp.scores(q), mPrime)
	var out []int
	for _, b := range bins {
		for _, i := range cp.Bins[b] {
			out = append(out, int(i))
		}
	}
	return out
}

// BinSizes returns per-bin point counts.
func (cp *CrossPolytope) BinSizes() []int {
	out := make([]int, cp.M)
	for i, b := range cp.Bins {
		out[i] = len(b)
	}
	return out
}

// Hyperplane is sign-random-projection LSH: bits of the bin id are the signs
// of L = log2(m) random hyperplane projections. Multi-probe flips the
// lowest-margin bits first (Lv et al. 2007).
type Hyperplane struct {
	M      int // 2^L bins
	planes *dataset.Dataset
	Bins   [][]int32
}

// NewHyperplane builds an index with m bins; m must be a power of two.
func NewHyperplane(ds *dataset.Dataset, m int, seed int64) (*Hyperplane, error) {
	if m < 2 || m&(m-1) != 0 {
		return nil, fmt.Errorf("lsh: hyperplane needs a power-of-two bin count, got %d", m)
	}
	bits := 0
	for 1<<bits < m {
		bits++
	}
	rng := rand.New(rand.NewSource(seed))
	planes := dataset.New(bits, ds.Dim)
	for i := range planes.Data {
		planes.Data[i] = float32(rng.NormFloat64())
	}
	h := &Hyperplane{M: m, planes: planes, Bins: make([][]int32, m)}
	for i := 0; i < ds.N; i++ {
		b, _ := h.hash(ds.Row(i))
		h.Bins[b] = append(h.Bins[b], int32(i))
	}
	return h, nil
}

// hash returns the bin id and the per-bit margins.
func (h *Hyperplane) hash(q []float32) (int, []float32) {
	margins := make([]float32, h.planes.N)
	id := 0
	for b := 0; b < h.planes.N; b++ {
		v := vecmath.Dot(q, h.planes.Row(b))
		margins[b] = v
		if v >= 0 {
			id |= 1 << b
		}
	}
	return id, margins
}

// Candidates probes the home bin followed by perturbed bins in increasing
// total flipped-margin order, up to mPrime bins.
func (h *Hyperplane) Candidates(q []float32, mPrime int) []int {
	home, margins := h.hash(q)
	if mPrime > h.M {
		mPrime = h.M
	}
	// Score every bin by the summed |margin| of bits where it differs from
	// the home bin; enumerate all m bins (m is small in our experiments).
	type scored struct {
		bin  int
		cost float32
	}
	bins := make([]scored, h.M)
	for b := 0; b < h.M; b++ {
		var cost float32
		diff := b ^ home
		for bit := 0; bit < h.planes.N; bit++ {
			if diff&(1<<bit) != 0 {
				m := margins[bit]
				if m < 0 {
					m = -m
				}
				cost += m
			}
		}
		bins[b] = scored{b, cost}
	}
	// Selection sort of the mPrime cheapest bins (m is small).
	var out []int
	for probe := 0; probe < mPrime; probe++ {
		best := probe
		for j := probe + 1; j < h.M; j++ {
			if bins[j].cost < bins[best].cost {
				best = j
			}
		}
		bins[probe], bins[best] = bins[best], bins[probe]
		for _, i := range h.Bins[bins[probe].bin] {
			out = append(out, int(i))
		}
	}
	return out
}

// BinSizes returns per-bin point counts.
func (h *Hyperplane) BinSizes() []int {
	out := make([]int, h.M)
	for i, b := range h.Bins {
		out[i] = len(b)
	}
	return out
}
