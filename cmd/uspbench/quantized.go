package main

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/knn"
)

// quantizedBench is the nested report of the quantized (ADC) serving path:
// a mass-loaded index (Build on a seed slice, Add the rest, one manual
// compaction that retrains the codebooks) measured across re-rank depths
// and finally in memory-tight mode, where the float rows are dropped and
// the index serves from codes alone.
type quantizedBench struct {
	N         int `json:"n"`
	Dim       int `json:"dim"`
	Subspaces int `json:"subspaces"`
	CodebookK int `json:"codebook_k"`
	// BytesPerVector is the scanned representation: one code byte per
	// subspace. In memory-tight mode this is the whole per-vector footprint;
	// otherwise the float row (FloatBytesPerVector) rides along for re-rank.
	BytesPerVector      int     `json:"bytes_per_vector"`
	FloatBytesPerVector int     `json:"float_bytes_per_vector"`
	CompressionRatio    float64 `json:"compression_ratio"`
	// BuildSeconds covers the seed Build (models + codebooks); AddSeconds
	// the mass load; CompactSeconds one compaction that folds the spill
	// lists and retrains + re-encodes every row.
	BuildSeconds   float64 `json:"build_seconds"`
	AddSeconds     float64 `json:"add_seconds"`
	CompactSeconds float64 `json:"compact_seconds"`
	Queries        int     `json:"queries"`
	K              int     `json:"k"`
	Probes         int     `json:"probes"`
	RerankK        int     `json:"rerank_k"`
	// Headline numbers at the configured re-rank depth.
	QPSSingle     float64 `json:"qps_single"`
	Recall10      float64 `json:"recall_at_10"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	AvgCandidates float64 `json:"avg_candidates"`
	// RerankCurve sweeps the recall/throughput trade-off; RerankK −1 is the
	// ADC-only scan (no exact pass).
	RerankCurve []rerankPoint `json:"rerank_curve"`
	// Memory-tight mode: floats dropped, pure-ADC serving.
	QPSTight      float64 `json:"qps_tight"`
	Recall10Tight float64 `json:"recall_at_10_tight"`
}

// rerankPoint is one re-rank depth of the recall/QPS sweep.
type rerankPoint struct {
	RerankK  int     `json:"rerank_k"`
	QPS      float64 `json:"qps"`
	Recall10 float64 `json:"recall_at_10"`
}

// runQuantizedBench mass-loads a quantized index and measures the ADC
// serving path. Only cfg.QuantN rows of the SIFT-like distribution are
// generated; the index is built on the first min(20000, QuantN) of them so
// the run also exercises the Add spill path and the compaction retrain at
// realistic volume.
func runQuantizedBench(cfg servingBenchConfig, logf func(string, ...any)) (*quantizedBench, error) {
	const k = 10
	n, nq, seed := cfg.QuantN, cfg.Queries, cfg.Seed
	if n == 0 {
		n = 1_000_000
	}
	if nq == 0 {
		nq = 100
	}
	if seed == 0 {
		seed = 42
	}
	probes := 4
	rng := rand.New(rand.NewSource(seed + 1000))
	base := dataset.SIFTLike(n+nq, rng)
	train, queries := dataset.SplitQueries(base, nq, rng)

	buildN := train.N
	if buildN > 20000 {
		buildN = 20000
	}
	// A hierarchy routes mass adds far more evenly than a same-width flat
	// model trained on the 20k seed slice (measured: [8,8] at 30 epochs
	// gathers ~6.9% of rows per 4-probe query — near the 6.25% ideal —
	// where flat 64-bin models gather 27–78% depending on training budget),
	// and candidate volume is what the ADC scan's throughput scales with.
	hier := []int{8, 8}
	if train.N < 100_000 {
		hier = []int{4, 4}
	}
	quantize := usp.Quantization{
		Enabled: true, Subspaces: 32, K: 256, TrainSample: 50000, Iters: 10,
	}
	rows := train.Rows()

	logf("quantized bench: building seed index over %d×%d (of %d rows)...", buildN, train.Dim, train.N)
	start := time.Now()
	ix, err := usp.Build(rows[:buildN], usp.Options{
		Hierarchy: hier, Epochs: 30, Hidden: []int{64}, Seed: seed + 7,
		CompactAfter: -1, Quantize: quantize,
	})
	if err != nil {
		return nil, fmt.Errorf("building quantized index: %w", err)
	}
	buildSecs := time.Since(start).Seconds()

	logf("quantized bench: adding %d rows...", train.N-buildN)
	start = time.Now()
	for i := buildN; i < train.N; i++ {
		if _, err := ix.Add(rows[i]); err != nil {
			return nil, fmt.Errorf("adding row %d: %w", i, err)
		}
	}
	addSecs := time.Since(start).Seconds()

	logf("quantized bench: compacting (folds %d spilled rows, retrains codebooks)...", train.N-buildN)
	start = time.Now()
	ix.Compact()
	compactSecs := time.Since(start).Seconds()

	logf("quantized bench: computing ground truth for %d queries...", queries.N)
	gt := knn.GroundTruth(train, queries, k)
	qrows := queries.Rows()

	rerankK := cfg.RerankK
	if rerankK == 0 {
		// The bench headline uses a deeper re-rank than the engine default
		// (4·k): at million-row scale the ADC ordering needs ~10·k exact
		// re-scores to recover the float-path recall, and the exact pass is
		// a small fraction of scan cost at that depth.
		rerankK = 10 * k
	}
	opt := usp.SearchOptions{Probes: probes, RerankK: rerankK}
	s := ix.NewSearcher()
	dst := make([]usp.Result, 0, k)
	recall, avgCands, err := quantRecall(s, qrows, gt, k, opt)
	if err != nil {
		return nil, err
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = s.SearchInto(dst[:0], qrows[0], k, opt)
	})
	qps, err := quantQPS(s, qrows, k, opt)
	if err != nil {
		return nil, err
	}

	var curve []rerankPoint
	for _, rk := range []int{-1, k, 10 * k, 100 * k} {
		copt := opt
		copt.RerankK = rk
		r, _, err := quantRecall(s, qrows, gt, k, copt)
		if err != nil {
			return nil, err
		}
		q, err := quantQPS(s, qrows, k, copt)
		if err != nil {
			return nil, err
		}
		curve = append(curve, rerankPoint{RerankK: rk, QPS: q, Recall10: r})
		logf("quantized bench: rerank_k=%d qps=%.0f recall@10=%.3f", rk, q, r)
	}

	logf("quantized bench: dropping floats (memory-tight mode)...")
	if err := ix.DropFloats(); err != nil {
		return nil, err
	}
	tightRecall, _, err := quantRecall(s, qrows, gt, k, opt)
	if err != nil {
		return nil, err
	}
	tightQPS, err := quantQPS(s, qrows, k, opt)
	if err != nil {
		return nil, err
	}

	return &quantizedBench{
		N: train.N, Dim: train.Dim,
		Subspaces: quantize.Subspaces, CodebookK: quantize.K,
		BytesPerVector:      quantize.Subspaces,
		FloatBytesPerVector: 4 * train.Dim,
		CompressionRatio:    float64(4*train.Dim) / float64(quantize.Subspaces),
		BuildSeconds:        buildSecs, AddSeconds: addSecs, CompactSeconds: compactSecs,
		Queries: len(qrows), K: k, Probes: probes, RerankK: rerankK,
		QPSSingle: qps, Recall10: recall, AllocsPerOp: allocs, AvgCandidates: avgCands,
		RerankCurve: curve,
		QPSTight:    tightQPS, Recall10Tight: tightRecall,
	}, nil
}

// quantRecall measures recall@k and mean candidate volume over the query set.
func quantRecall(s *usp.Searcher, qrows [][]float32, gt [][]int32, k int, opt usp.SearchOptions) (float64, float64, error) {
	dst := make([]usp.Result, 0, k)
	ids := make([]int, 0, k)
	var recall float64
	var candTotal int
	var err error
	for qi, q := range qrows {
		dst, err = s.SearchInto(dst[:0], q, k, opt)
		if err != nil {
			return 0, 0, err
		}
		ids = ids[:0]
		for _, r := range dst {
			ids = append(ids, r.ID)
		}
		recall += knn.Recall(ids, gt[qi])
		candTotal += s.Scanned()
	}
	return recall / float64(len(qrows)), float64(candTotal) / float64(len(qrows)), nil
}

// quantQPS measures single-goroutine throughput, sizing the number of passes
// so the measurement window stays meaningful at any index scale.
func quantQPS(s *usp.Searcher, qrows [][]float32, k int, opt usp.SearchOptions) (float64, error) {
	dst := make([]usp.Result, 0, k)
	var err error
	rounds, done := 4, 0
	start := time.Now()
	for time.Since(start) < 500*time.Millisecond || done < rounds {
		for _, q := range qrows {
			if dst, err = s.SearchInto(dst[:0], q, k, opt); err != nil {
				return 0, err
			}
		}
		done++
	}
	return float64(done*len(qrows)) / time.Since(start).Seconds(), nil
}
