// Recommend: a product-recommendation scenario (the paper's motivating
// e-commerce workload). Item embeddings live in clusters by category with
// long-tail noise; the example compares a single USP model against a
// 3-model ensemble at equal probe budgets, measuring true 10-NN recall and
// candidate-set size — the trade-off every figure in the paper plots.
package main

import (
	"fmt"
	"log"
	"math/rand"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/knn"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	// 5000 "item embeddings": 40 categories with anisotropic spread plus
	// 8% uncategorized long-tail items.
	catalog := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 5000, Dim: 64, Clusters: 40,
		ClusterStd: 1.0, CenterBox: 3, NoiseFrac: 0.08,
	}, rng)
	base, queries := dataset.SplitQueries(catalog.Dataset, 200, rng)
	gt := knn.GroundTruth(base, queries, 10)
	fmt.Printf("catalog: %d items, %d dims; %d held-out user queries\n",
		base.N, base.Dim, queries.N)

	build := func(ensemble int) *usp.Index {
		ix, err := usp.Build(base.Rows(), usp.Options{
			Bins: 16, Ensemble: ensemble, Epochs: 40, Hidden: []int{64}, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return ix
	}
	fmt.Println("training single model...")
	single := build(1)
	fmt.Println("training 3-model ensemble (Algorithm 3)...")
	triple := build(3)

	measure := func(name string, ix *usp.Index, opt usp.SearchOptions) {
		var recall, cands float64
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			c, err := ix.CandidateSet(q, opt)
			if err != nil {
				log.Fatal(err)
			}
			res, err := ix.Search(q, 10, opt)
			if err != nil {
				log.Fatal(err)
			}
			ids := make([]int, len(res))
			for i, r := range res {
				ids[i] = r.ID
			}
			recall += knn.Recall(ids, gt[qi])
			cands += float64(len(c))
		}
		fmt.Printf("%-28s avg |C| = %7.1f   10-NN recall = %.4f\n",
			name, cands/float64(queries.N), recall/float64(queries.N))
	}

	fmt.Println("\nprobes=1 (smallest candidate sets):")
	measure("single model", single, usp.SearchOptions{Probes: 1})
	measure("ensemble (best confidence)", triple, usp.SearchOptions{Probes: 1})
	measure("ensemble (union)", triple, usp.SearchOptions{Probes: 1, UnionEnsemble: true})

	fmt.Println("\nprobes=2:")
	measure("single model", single, usp.SearchOptions{Probes: 2})
	measure("ensemble (best confidence)", triple, usp.SearchOptions{Probes: 2})
}
