package quant

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// ScaNN is the two-stage search pipeline of Guo et al. (2020): candidates
// (possibly the whole dataset) are first scored with the quantized ADC
// distance, the best Rerank survivors are re-scored with exact distances,
// and the top k are returned. The paper's Fig. 7 composes this pipeline
// with three partitioners: none ("vanilla ScaNN"), K-means, and USP.
type ScaNN struct {
	Data  *dataset.Dataset
	PQ    *PQ
	Codes [][]uint8
	// Rerank is the number of quantized-stage survivors re-scored exactly
	// (default 10·k at query time when zero).
	Rerank int
}

// NewScaNN trains the quantizer on ds and encodes it.
func NewScaNN(ds *dataset.Dataset, cfg Config) (*ScaNN, error) {
	pq, err := Train(ds, cfg)
	if err != nil {
		return nil, fmt.Errorf("quant: training ScaNN quantizer: %w", err)
	}
	return &ScaNN{Data: ds, PQ: pq, Codes: pq.Encode(ds)}, nil
}

// Search scans the given candidate ids (all points when nil) with ADC
// scoring, exact-reranks the survivors, and returns the k nearest.
//
// The default rerank budget scales with the candidate count (10% of the
// scanned points, floored at 10·k): a fixed window would let quantization
// false-positives crowd out true neighbors as candidate sets grow, making
// recall non-monotone in the probe count.
func (s *ScaNN) Search(q []float32, k int, candidates []int) []vecmath.Neighbor {
	scanned := len(candidates)
	if candidates == nil {
		scanned = len(s.Codes)
	}
	rerank := s.Rerank
	if rerank == 0 {
		rerank = 10 * k
		if prop := scanned / 10; prop > rerank {
			rerank = prop
		}
	}
	if rerank < k {
		rerank = k
	}
	lut := s.PQ.BuildLUT(q)
	stage1 := vecmath.NewTopK(rerank)
	if candidates == nil {
		for i := range s.Codes {
			stage1.Push(i, lut.Distance(s.Codes[i]))
		}
	} else {
		for _, i := range candidates {
			stage1.Push(i, lut.Distance(s.Codes[i]))
		}
	}
	survivors := stage1.Sorted()
	stage2 := vecmath.NewTopK(k)
	for _, nb := range survivors {
		stage2.Push(nb.Index, vecmath.SquaredL2(q, s.Data.Row(nb.Index)))
	}
	return stage2.Sorted()
}
