// Package vecmath implements the low-level float32 vector kernels the rest of
// the library is built on: distances, dot products, in-place BLAS-1 style
// updates, and small utilities (argmax, top-k selection).
//
// Kernels are written with 4-way manual unrolling, which the Go compiler
// turns into reasonably tight scalar loops; accumulation is done in float32
// with a float64 variant provided where reduction precision matters.
package vecmath

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; this is a programmer-error invariant on the hot path, enforced by
// bounds checks rather than an explicit panic.
func Dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	b = b[:n] // eliminate bounds checks in the loop
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// SquaredL2Fused returns the squared Euclidean distance between q and x via
// the expansion ‖x‖² + ‖q‖² − 2·q·x, given the precomputed squared norms of
// both vectors. With per-row norms cached on the dataset (and ‖q‖² computed
// once per query) a candidate scan costs one dot product per row instead of a
// subtract-square pass, and the dot product reads both operands forward —
// the layout ScaNN-style scoring kernels use. The result is clamped at zero:
// the expansion can go slightly negative under float32 cancellation when q
// and x nearly coincide.
func SquaredL2Fused(q, x []float32, qNorm2, xNorm2 float32) float32 {
	d := xNorm2 + qNorm2 - 2*Dot(q, x)
	if d < 0 {
		return 0
	}
	return d
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float32 {
	return float32(math.Sqrt(float64(SquaredL2(a, b))))
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Cosine returns the cosine distance 1 - <a,b>/(|a||b|). Zero vectors are
// treated as maximally distant (distance 1).
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - Dot(a, b)/(na*nb)
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float32, x, y []float32) {
	n := len(x)
	y = y[:n]
	for i := 0; i < n; i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b []float32) {
	n := len(a)
	b, dst = b[:n], dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise. dst may alias a or b.
func Sub(dst, a, b []float32) {
	n := len(a)
	b, dst = b[:n], dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = a[i] - b[i]
	}
}

// Normalize scales x to unit Euclidean norm in place and reports whether it
// succeeded (a zero vector is left unchanged and false is returned).
func Normalize(x []float32) bool {
	n := Norm(x)
	if n == 0 {
		return false
	}
	Scale(1/n, x)
	return true
}

// Mean computes the arithmetic mean of the rows (each a []float32 of equal
// length) into dst using float64 accumulation. dst must have the row length.
func Mean(dst []float32, rows [][]float32) {
	if len(rows) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	acc := make([]float64, len(dst))
	for _, r := range rows {
		for i, v := range r {
			acc[i] += float64(v)
		}
	}
	inv := 1 / float64(len(rows))
	for i := range dst {
		dst[i] = float32(acc[i] * inv)
	}
}

// ArgMax returns the index of the largest element of x, breaking ties toward
// the smallest index. It returns -1 for an empty slice.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}

// ArgMin returns the index of the smallest element of x, breaking ties toward
// the smallest index. It returns -1 for an empty slice.
func ArgMin(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] < best {
			best, bi = x[i], i
		}
	}
	return bi
}

// Sum64 returns the sum of x accumulated in float64.
func Sum64(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}
