package experiments

import (
	"strings"
	"testing"
)

// tinyScale keeps the full-pipeline tests fast: every experiment still
// exercises its real code path end to end.
func tinyScale() Scale {
	return Scale{
		SIFTN: 500, MNISTN: 400, Queries: 30,
		Epochs: 6, Ensemble: 2, Hidden: 16, NLSHHidden: 16,
		TreeDepth: 3, Seed: 1,
	}
}

func TestIDsStableAndComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"fig5a", "fig5b", "fig5c", "fig5d", "fig6a", "fig6b", "fig7a", "fig7b",
		"table2", "table3", "table4", "table5",
		"ablation_arch", "ablation_balance", "ablation_batch",
		"ablation_ensemble", "ablation_eta", "ablation_kprime",
	}
	if len(ids) != len(want) {
		t.Fatalf("have %d ids: %v", len(ids), ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Fatalf("missing id %s", w)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", tinyScale(), nil); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestProbeSchedule(t *testing.T) {
	ps := probeSchedule(16)
	if ps[0] != 1 || ps[len(ps)-1] != 16 {
		t.Fatalf("schedule %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatalf("schedule not strictly increasing: %v", ps)
		}
	}
}

func TestEtaFor(t *testing.T) {
	if etaFor("mnist", 256) != 30 || etaFor("sift", 256) != 10 ||
		etaFor("sift", 16) != 7 || etaFor("mnist", 16) != 7 {
		t.Fatal("etaFor does not match Table 3")
	}
}

func TestFig5EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pipeline")
	}
	rep, err := Run("fig5a", tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 4 {
		t.Fatalf("series = %d", len(rep.Series))
	}
	for _, s := range rep.Series {
		last := s.Points[len(s.Points)-1]
		// Probing all bins must reach recall 1 with |C| = n.
		if last.Recall != 1 {
			t.Fatalf("%s: full-probe recall %v", s.Name, last.Recall)
		}
	}
	if !strings.Contains(rep.Text, "Fig 5") {
		t.Fatal("missing title")
	}
}

func TestFig6EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pipeline")
	}
	rep, err := Run("fig6a", tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 7 {
		t.Fatalf("series = %d (want 7 tree methods)", len(rep.Series))
	}
}

func TestFig7EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pipeline")
	}
	rep, err := Run("fig7a", tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 5 {
		t.Fatalf("series = %d (want 5 ANNS methods)", len(rep.Series))
	}
	// Vanilla ScaNN scans everything: recall must be high.
	for _, s := range rep.Series {
		if s.Name == "ScaNN (vanilla)" && s.Points[0].Recall < 0.75 {
			t.Fatalf("vanilla ScaNN recall %v", s.Points[0].Recall)
		}
	}
}

func TestTable2(t *testing.T) {
	rep, err := Run("table2", tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Neural LSH", "USP (ours)", "K-means", "32768"} {
		if !strings.Contains(rep.Text, frag) {
			t.Fatalf("table2 missing %q:\n%s", frag, rep.Text)
		}
	}
}

func TestTable4EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pipeline")
	}
	rep, err := Run("table4", tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "reduction vs Neural LSH") {
		t.Fatalf("table4 text:\n%s", rep.Text)
	}
}

func TestTable5EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment pipeline")
	}
	rep, err := Run("table5", tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"moons", "circles", "blobs4", "DBSCAN", "Spectral"} {
		if !strings.Contains(rep.Text, frag) {
			t.Fatalf("table5 missing %q", frag)
		}
	}
}
