package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func randVec(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 127, 128, 129} {
		a, b := randVec(rng, n), randVec(rng, n)
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		if got := float64(Dot(a, b)); !almostEq(got, want, 1e-4) {
			t.Fatalf("n=%d Dot=%v want %v", n, got, want)
		}
	}
}

func TestSquaredL2Properties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Symmetry, non-negativity, identity of indiscernibles.
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		a, b := randVec(rng, n), randVec(rng, n)
		dab, dba := SquaredL2(a, b), SquaredL2(b, a)
		if dab < 0 {
			t.Fatalf("negative squared distance %v", dab)
		}
		if dab != dba {
			t.Fatalf("asymmetric: %v vs %v", dab, dba)
		}
		if d := SquaredL2(a, a); d != 0 {
			t.Fatalf("d(a,a) = %v", d)
		}
	}
}

func TestL2TriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(32)
		a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		if float64(L2(a, c)) > float64(L2(a, b))+float64(L2(b, c))+1e-4 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestCosineBoundsAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	zero := make([]float32, 8)
	if d := Cosine(zero, randVec(rng, 8)); d != 1 {
		t.Fatalf("cosine with zero vector = %v, want 1", d)
	}
	for trial := 0; trial < 100; trial++ {
		a, b := randVec(rng, 16), randVec(rng, 16)
		d := float64(Cosine(a, b))
		if d < -1e-5 || d > 2+1e-5 {
			t.Fatalf("cosine distance out of [0,2]: %v", d)
		}
	}
	a := []float32{1, 2, 3}
	if d := Cosine(a, a); !almostEq(float64(d), 0, 1e-6) {
		t.Fatalf("cosine self distance = %v", d)
	}
}

// TestCosineClampRegression pins the [0, 2] clamp: for exactly (anti-)
// parallel float32 inputs the raw expression 1 − <a,b>/(‖a‖‖b‖) can land
// marginally outside the mathematical range through rounding in the dot
// products, which used to leak tiny negative "distances" to callers. The
// test also recomputes the unclamped value and asserts at least one trial
// actually fell outside the range — so it genuinely exercises the clamp
// rather than vacuously passing.
func TestCosineClampRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sawOutside := false
	for trial := 0; trial < 500; trial++ {
		a := randVec(rng, 1+rng.Intn(200))
		scale := float32(rng.NormFloat64() * 100)
		if scale == 0 {
			scale = 3
		}
		b := make([]float32, len(a))
		for i := range a {
			b[i] = a[i] * scale
		}
		d := Cosine(a, b)
		if d < 0 || d > 2 {
			t.Fatalf("trial %d: Cosine out of [0,2]: %v", trial, d)
		}
		wantNear := 0.0
		if scale < 0 {
			wantNear = 2.0
		}
		if !almostEq(float64(d), wantNear, 1e-5) {
			t.Fatalf("trial %d: Cosine(a, %v*a) = %v, want ~%v", trial, scale, d, wantNear)
		}
		// Recompute without the clamp to prove the clamp is load-bearing.
		raw := 1 - Dot(a, b)/float32(math.Sqrt(float64(Dot(a, a))*float64(Dot(b, b))))
		if raw < 0 || raw > 2 {
			sawOutside = true
		}
	}
	if !sawOutside {
		t.Fatal("no trial produced an out-of-range raw cosine; regression test lost its bite")
	}
}

func TestAXPYScaleAddSub(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	AXPY(2, x, y)
	want := []float32{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("AXPY got %v", y)
		}
	}
	Scale(0.5, y)
	for i := range y {
		if y[i] != want[i]/2 {
			t.Fatalf("Scale got %v", y)
		}
	}
	dst := make([]float32, 3)
	Add(dst, x, x)
	if dst[2] != 6 {
		t.Fatalf("Add got %v", dst)
	}
	Sub(dst, dst, x)
	if dst[2] != 3 {
		t.Fatalf("Sub got %v", dst)
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	if !Normalize(v) {
		t.Fatal("Normalize failed on nonzero vector")
	}
	if !almostEq(float64(Norm(v)), 1, 1e-6) {
		t.Fatalf("norm after normalize = %v", Norm(v))
	}
	z := []float32{0, 0}
	if Normalize(z) {
		t.Fatal("Normalize succeeded on zero vector")
	}
}

func TestMean(t *testing.T) {
	rows := [][]float32{{1, 2}, {3, 4}, {5, 6}}
	dst := make([]float32, 2)
	Mean(dst, rows)
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Mean got %v", dst)
	}
	Mean(dst, nil)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("Mean of empty = %v, want zeros", dst)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty arg should be -1")
	}
	x := []float32{1, 5, 5, -2}
	if ArgMax(x) != 1 {
		t.Fatalf("ArgMax = %d (tie must go to first)", ArgMax(x))
	}
	if ArgMin(x) != 3 {
		t.Fatalf("ArgMin = %d", ArgMin(x))
	}
}

func TestSum64(t *testing.T) {
	if s := Sum64([]float32{1, 2, 3.5}); s != 6.5 {
		t.Fatalf("Sum64 = %v", s)
	}
}

func TestTopKMatchesSort(t *testing.T) {
	// Property: TopK selection equals brute-force sort-then-truncate.
	check := func(seed int64, kRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%500 + 1
		k := int(kRaw)%64 + 1
		dists := make([]float32, n)
		for i := range dists {
			dists[i] = float32(rng.NormFloat64())
		}
		tk := NewTopK(k)
		for i, d := range dists {
			tk.Push(i, d)
		}
		got := tk.Sorted()

		all := make([]Neighbor, n)
		for i, d := range dists {
			all[i] = Neighbor{i, d}
		}
		sortNeighbors(all)
		want := all
		if k < n {
			want = all[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKWorst(t *testing.T) {
	tk := NewTopK(2)
	if _, ok := tk.Worst(); ok {
		t.Fatal("Worst should report not-full")
	}
	tk.Push(0, 5)
	tk.Push(1, 1)
	if w, ok := tk.Worst(); !ok || w != 5 {
		t.Fatalf("Worst = %v,%v", w, ok)
	}
	tk.Push(2, 3)
	if w, _ := tk.Worst(); w != 3 {
		t.Fatalf("Worst after eviction = %v", w)
	}
	tk.Reset()
	if tk.Len() != 0 {
		t.Fatal("Reset did not empty")
	}
}

func TestTopKIndices(t *testing.T) {
	x := []float32{0.1, 0.9, 0.5, 0.9}
	got := TopKIndices(x, 3)
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKIndices = %v, want %v", got, want)
		}
	}
	if len(TopKIndices(x, 10)) != 4 {
		t.Fatal("k > n should clamp")
	}
	if TopKIndices(x, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestSelectKthLargestMatchesSort(t *testing.T) {
	check := func(seed int64, kRaw uint8, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%300 + 1
		k := int(kRaw)%n + 1
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Intn(50)) // duplicates on purpose
		}
		got := SelectKthLargest(x, k)
		sorted := make([]float32, n)
		copy(sorted, x)
		for i := 0; i < n; i++ { // insertion sort descending
			for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		return got == sorted[k-1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectKthLargestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k out of range")
		}
	}()
	SelectKthLargest([]float32{1}, 2)
}
