package vecmath

import "os"

// kernels bundles one implementation of the three hot microkernels. Exactly
// one set is selected at package init and used for the life of the process;
// mixing implementations within a process would break the bit-identity
// guarantees the query engine is built on (cached norms vs query-side norms,
// batch vs single-row inference), so the choice is deliberately not mutable
// at runtime.
type kernels struct {
	name   string
	dot    func(a, b []float32) float32
	sqL2   func(a, b []float32) float32
	axpy   func(alpha float32, x, y []float32)
	lutSum func(lut []float32, k int, code []uint8) float32
}

var scalarKernels = kernels{
	name:   "scalar",
	dot:    dotScalar,
	sqL2:   squaredL2Scalar,
	axpy:   axpyScalar,
	lutSum: lutSumScalar,
}

// ForceScalarEnv names the environment variable that pins dispatch to the
// portable scalar kernels regardless of detected CPU features. Any non-empty
// value counts. It exists so the scalar fallback path stays testable on SIMD
// hardware (CI runs the full suite once per dispatch path) and as an escape
// hatch if an assembly kernel ever misbehaves on exotic hardware.
const ForceScalarEnv = "USP_FORCE_SCALAR"

// active is the kernel set every public entry point dispatches through. It
// is written exactly once, during package init — before any other package
// code can run — and is read-only afterwards, so no synchronization is
// needed on the hot path.
var active = scalarKernels

func init() {
	if os.Getenv(ForceScalarEnv) != "" {
		return
	}
	if ks, ok := archKernels(); ok {
		active = ks
	}
}

// Impl reports the name of the active kernel implementation: "scalar",
// "avx2-fma" or "neon". Benchmark reports record it so perf numbers are
// attributable to a code path.
func Impl() string { return active.name }
