package vecmath

import (
	"fmt"
	"math/rand"
	"testing"
)

// Per-kernel microbenchmarks across the dimensions the serving and training
// paths actually see (128 = SIFT, 512/1024 = modern embedding widths, 7/129
// = odd tails, 8/64 = block-size boundaries), so scalar-vs-SIMD wins are
// measurable in isolation from the engine:
//
//	go test ./internal/vecmath -bench . -benchmem
//
// Each kernel runs once per implementation (scalar + the architecture port
// when present); sub-benchmark names carry impl and dimension. SetBytes
// reports effective bandwidth (both operands).
var benchDims = []int{7, 8, 64, 128, 129, 512, 1024}

func benchImpls(b *testing.B) []kernels {
	impls := []kernels{scalarKernels}
	if arch, ok := archKernels(); ok {
		impls = append(impls, arch)
	} else {
		b.Logf("no SIMD kernels on this architecture; benchmarking scalar only")
	}
	return impls
}

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	for _, impl := range benchImpls(b) {
		for _, n := range benchDims {
			x, y := randVec(rng, n), randVec(rng, n)
			b.Run(fmt.Sprintf("%s/dim%d", impl.name, n), func(b *testing.B) {
				b.SetBytes(int64(2 * 4 * n))
				var s float32
				for i := 0; i < b.N; i++ {
					s += impl.dot(x, y)
				}
				sinkF32 = s
			})
		}
	}
}

func BenchmarkSquaredL2(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	for _, impl := range benchImpls(b) {
		for _, n := range benchDims {
			x, y := randVec(rng, n), randVec(rng, n)
			b.Run(fmt.Sprintf("%s/dim%d", impl.name, n), func(b *testing.B) {
				b.SetBytes(int64(2 * 4 * n))
				var s float32
				for i := 0; i < b.N; i++ {
					s += impl.sqL2(x, y)
				}
				sinkF32 = s
			})
		}
	}
}

func BenchmarkAXPY(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	for _, impl := range benchImpls(b) {
		for _, n := range benchDims {
			x, y := randVec(rng, n), randVec(rng, n)
			b.Run(fmt.Sprintf("%s/dim%d", impl.name, n), func(b *testing.B) {
				b.SetBytes(int64(3 * 4 * n)) // read x, read+write y
				for i := 0; i < b.N; i++ {
					impl.axpy(0.37, x, y)
				}
			})
		}
	}
}

// BenchmarkLUTSum covers the ADC scan kernel at the subspace counts the
// quantized index uses in practice (m=8..64 at k=16 or 256; bytes/vector
// equals m). SetBytes counts the code bytes plus the gathered floats.
func BenchmarkLUTSum(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	for _, impl := range benchImpls(b) {
		for _, shape := range []struct{ m, k int }{
			{8, 256}, {16, 256}, {16, 16}, {32, 256}, {64, 256},
		} {
			lut := randVec(rng, shape.m*shape.k)
			code := make([]uint8, shape.m)
			for i := range code {
				code[i] = uint8(rng.Intn(shape.k))
			}
			b.Run(fmt.Sprintf("%s/m%dk%d", impl.name, shape.m, shape.k), func(b *testing.B) {
				b.SetBytes(int64(shape.m * 5)) // 1 code byte + 1 gathered float per subspace
				var s float32
				for i := 0; i < b.N; i++ {
					s += impl.lutSum(lut, shape.k, code)
				}
				sinkF32 = s
			})
		}
	}
}

// sinkF32 defeats dead-code elimination of the benchmarked reductions.
var sinkF32 float32
