package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/vecmath"
)

// Ensemble is a sequence of complementary partitioners trained with the
// boosting scheme of Algorithm 3: each model's quality loss re-weights
// points by how badly all previous models separated their neighborhoods.
type Ensemble struct {
	Parts []*Partitioner
}

// EnsembleStats aggregates per-model training stats.
type EnsembleStats struct {
	PerModel []TrainStats
}

// TotalParams sums learnable parameters across the ensemble.
func (s EnsembleStats) TotalParams() int {
	t := 0
	for _, m := range s.PerModel {
		t += m.Params
	}
	return t
}

// TrainEnsemble trains e sequential models per Algorithm 3. The first model
// uses uniform weights; before model j+1, every point's weight is multiplied
// by the number of its k′ neighbors that partition j separated from it, so
// later models specialize on the points earlier partitions handled poorly.
// If every weight collapses to zero (all neighborhoods perfectly preserved),
// weights reset to uniform for the remaining models.
func TrainEnsemble(ds *dataset.Dataset, knnMat *knn.Matrix, cfg Config, e int) (*Ensemble, EnsembleStats, error) {
	if e < 1 {
		return nil, EnsembleStats{}, fmt.Errorf("core: ensemble size must be ≥ 1, got %d", e)
	}
	ens := &Ensemble{}
	var stats EnsembleStats
	weights := make([]float32, ds.N)
	for i := range weights {
		weights[i] = 1
	}
	for j := 0; j < e; j++ {
		mcfg := cfg
		mcfg.Seed = cfg.Seed + int64(j)*7919 // distinct init/shuffle per model
		p, st, err := Train(ds, knnMat, mcfg, weights)
		if err != nil {
			return nil, EnsembleStats{}, fmt.Errorf("core: training ensemble model %d: %w", j, err)
		}
		ens.Parts = append(ens.Parts, p)
		stats.PerModel = append(stats.PerModel, st)
		if j == e-1 {
			break
		}
		// Weight update of Algorithm 3(b): w^{j+1}_i = (#separated) · w^j_i.
		sep := p.SeparatedNeighbors(knnMat, mcfg.KPrime)
		var sum float64
		for i := range weights {
			weights[i] *= float32(sep[i])
			sum += float64(weights[i])
		}
		if sum == 0 {
			for i := range weights {
				weights[i] = 1
			}
		} else {
			// Normalize to mean 1 so η keeps the same relative scale
			// across ensemble stages.
			scale := float32(float64(ds.N) / sum)
			for i := range weights {
				weights[i] *= scale
			}
		}
	}
	return ens, stats, nil
}

// ProbeMode selects how the ensemble combines its models' candidate sets at
// query time.
type ProbeMode int

const (
	// BestConfidence implements Algorithm 4: the single candidate set of
	// the model whose top bin probability is highest.
	BestConfidence ProbeMode = iota
	// UnionProbe unions every model's candidate set (an enhancement we
	// ablate; it trades larger |C| for higher recall).
	UnionProbe
)

// AppendCandidates appends the ensemble's candidate set for q to dst,
// probing the mPrime most probable bins of the selected model(s). All
// intermediates live in qs, so a warmed scratch makes the call allocation-
// free beyond growth of dst.
func (e *Ensemble) AppendCandidates(dst []int32, q []float32, mPrime int, mode ProbeMode, qs *QueryScratch) []int32 {
	return e.AppendCandidatesExtra(dst, q, mPrime, mode, qs, len(e.Parts[0].Assign), nil)
}

// AppendCandidatesExtra is AppendCandidates for epoch-snapshotted indexes:
// after each probed bin's CSR range it appends the bin's post-epoch inserts
// from extra (nil when the epoch has none), and the union-probe dedup set is
// sized to n — the epoch's total id universe — rather than to the CSR
// tables, which lag behind pending inserts. Passing a non-nil extra through
// the interface costs no allocation (the usp layer hands in a pointer).
func (e *Ensemble) AppendCandidatesExtra(dst []int32, q []float32, mPrime int, mode ProbeMode, qs *QueryScratch, n int, extra ExtraBins) []int32 {
	switch mode {
	case BestConfidence:
		// Algorithm 4: the single candidate set of the model whose top bin
		// probability is highest. bestIdx/qs.best start at a safe default:
		// if every comparison fails (all-NaN probabilities from an
		// overflowing query) the empty distribution selects no bins and the
		// candidate set is empty, matching the pre-scratch behavior.
		bestIdx := 0
		bestConf := float32(-1)
		qs.best = qs.best[:0]
		for m, p := range e.Parts {
			qs.probs = p.ProbabilitiesInto(qs.probs, q, &qs.Infer)
			if c := qs.probs[vecmath.ArgMax(qs.probs)]; c > bestConf {
				bestConf = c
				bestIdx = m
				qs.best = append(qs.best[:0], qs.probs...)
			}
		}
		qs.bins = vecmath.TopKIndicesInto(qs.bins, qs.best, mPrime)
		for _, b := range qs.bins {
			dst = e.Parts[bestIdx].AppendBin(dst, b)
			if extra != nil {
				dst = extra.AppendExtra(dst, bestIdx, b)
			}
		}
		return dst
	case UnionProbe:
		gen := qs.beginSeen(n)
		for m, p := range e.Parts {
			qs.probs = p.ProbabilitiesInto(qs.probs, q, &qs.Infer)
			qs.bins = vecmath.TopKIndicesInto(qs.bins, qs.probs, mPrime)
			for _, b := range qs.bins {
				mark := len(dst)
				dst = p.AppendBin(dst, b)
				if extra != nil {
					dst = extra.AppendExtra(dst, m, b)
				}
				// Compact in place, keeping first occurrences only.
				w := mark
				for _, id := range dst[mark:] {
					if qs.seen[id] != gen {
						qs.seen[id] = gen
						dst[w] = id
						w++
					}
				}
				dst = dst[:w]
			}
		}
		return dst
	default:
		panic(fmt.Sprintf("core: unknown probe mode %d", mode))
	}
}

// CandidatesWith returns the ensemble's candidate set for q as a fresh
// []int while reusing the caller's scratch. Per-query offline callers (the
// experiment sweeps, cmd/uspquery) should hold one QueryScratch across
// queries: UnionProbe's dedup array is sized to the dataset, so a fresh
// scratch per query would re-allocate and re-zero O(n) every call.
func (e *Ensemble) CandidatesWith(qs *QueryScratch, q []float32, mPrime int, mode ProbeMode) []int {
	qs.cands = e.AppendCandidates(qs.cands[:0], q, mPrime, mode, qs)
	return ToInts(qs.cands)
}

// Candidates returns the ensemble's candidate set for q as a fresh []int —
// a thin allocating wrapper over AppendCandidates kept for one-shot
// callers; loops should prefer CandidatesWith.
func (e *Ensemble) Candidates(q []float32, mPrime int, mode ProbeMode) []int {
	var qs QueryScratch
	return e.CandidatesWith(&qs, q, mPrime, mode)
}

// Size returns the number of models in the ensemble.
func (e *Ensemble) Size() int { return len(e.Parts) }
