package cluster

import "math"

// ARI computes the Adjusted Rand Index between two labelings (chance-
// corrected pair-counting agreement, in [-1, 1]; 1 means identical
// partitions up to relabeling). Negative labels (DBSCAN noise) are treated
// as singleton micro-clusters, the usual convention when scoring DBSCAN.
func ARI(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	a = renumber(a)
	b = renumber(b)
	ka, kb := maxLabel(a)+1, maxLabel(b)+1
	cont := make([]int, ka*kb)
	rows := make([]int, ka)
	cols := make([]int, kb)
	for i := range a {
		cont[a[i]*kb+b[i]]++
		rows[a[i]]++
		cols[b[i]]++
	}
	choose2 := func(n int) float64 { return float64(n) * float64(n-1) / 2 }
	var sumCells, sumRows, sumCols float64
	for _, c := range cont {
		sumCells += choose2(c)
	}
	for _, r := range rows {
		sumRows += choose2(r)
	}
	for _, c := range cols {
		sumCols += choose2(c)
	}
	total := choose2(len(a))
	expected := sumRows * sumCols / total
	maxIdx := (sumRows + sumCols) / 2
	if maxIdx == expected {
		return 1 // both partitions trivial (all singletons or one cluster)
	}
	return (sumCells - expected) / (maxIdx - expected)
}

// NMI computes normalized mutual information (arithmetic-mean
// normalization), in [0, 1]. Noise labels are treated as singletons.
func NMI(a, b []int) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	a = renumber(a)
	b = renumber(b)
	n := float64(len(a))
	ka, kb := maxLabel(a)+1, maxLabel(b)+1
	cont := make([]float64, ka*kb)
	rows := make([]float64, ka)
	cols := make([]float64, kb)
	for i := range a {
		cont[a[i]*kb+b[i]]++
		rows[a[i]]++
		cols[b[i]]++
	}
	var mi float64
	for i := 0; i < ka; i++ {
		for j := 0; j < kb; j++ {
			c := cont[i*kb+j]
			if c > 0 {
				mi += c / n * math.Log(c*n/(rows[i]*cols[j]))
			}
		}
	}
	entropy := func(counts []float64) float64 {
		var h float64
		for _, c := range counts {
			if c > 0 {
				p := c / n
				h -= p * math.Log(p)
			}
		}
		return h
	}
	ha, hb := entropy(rows), entropy(cols)
	if ha == 0 && hb == 0 {
		return 1
	}
	denom := (ha + hb) / 2
	if denom == 0 {
		return 0
	}
	return mi / denom
}

// Purity maps each predicted cluster to its majority true class and returns
// the fraction of correctly covered points.
func Purity(pred, truth []int) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	pred = renumber(pred)
	truth = renumber(truth)
	kp := maxLabel(pred) + 1
	counts := make(map[[2]int]int)
	for i := range pred {
		counts[[2]int{pred[i], truth[i]}]++
	}
	best := make([]int, kp)
	for key, c := range counts {
		if c > best[key[0]] {
			best[key[0]] = c
		}
	}
	total := 0
	for _, b := range best {
		total += b
	}
	return float64(total) / float64(len(pred))
}

// renumber maps arbitrary labels (including negatives) to 0..k-1, giving
// every negative label its own fresh id (noise-as-singleton convention).
func renumber(labels []int) []int {
	out := make([]int, len(labels))
	seen := map[int]int{}
	next := 0
	for i, l := range labels {
		if l < 0 {
			out[i] = next // each noise point its own cluster
			next++
			continue
		}
		id, ok := seen[l]
		if !ok {
			id = next
			next++
			seen[l] = id
		}
		out[i] = id
	}
	return out
}

func maxLabel(labels []int) int {
	m := 0
	for _, l := range labels {
		if l > m {
			m = l
		}
	}
	return m
}
