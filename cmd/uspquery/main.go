// Command uspquery answers k-NN queries against an index written by
// cmd/usptrain. Queries come from an fvecs file; results are printed one
// line per query as "id:distance" pairs.
//
// Self-contained snapshots (usptrain's default output) serve on their own;
// legacy model-only files additionally need the original dataset via -data.
//
// Usage:
//
//	uspquery -index index.usps -queries q.fvecs -k 10 -probes 2
//	uspquery -index index.usp -data sift.fvecs -queries q.fvecs -k 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	usp "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/telemetry"
)

func main() {
	var (
		indexPath = flag.String("index", "", "index file from usptrain (required)")
		dataPath  = flag.String("data", "", "fvecs dataset (required for legacy model-only indexes)")
		queryPath = flag.String("queries", "", "fvecs query file (required)")
		k         = flag.Int("k", 10, "neighbors to return")
		probes    = flag.Int("probes", 1, "bins to probe (m')")
		union     = flag.Bool("union", false, "union ensemble candidates instead of best-confidence")
	)
	flag.Parse()
	if *indexPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	queries, err := dataset.LoadFvecsFile(*queryPath)
	if err != nil {
		log.Fatalf("loading queries: %v", err)
	}

	if usp.IsSnapshotFile(*indexPath) {
		serveSnapshot(*indexPath, queries, *k, *probes, *union)
		return
	}
	if *dataPath == "" {
		log.Fatalf("%s is a legacy model-only index: pass the dataset it was built on via -data", *indexPath)
	}
	serveLegacy(*indexPath, *dataPath, queries, *k, *probes, *union)
}

// serveSnapshot runs the query file through a loaded self-contained
// snapshot using the zero-allocation engine.
func serveSnapshot(path string, queries *dataset.Dataset, k, probes int, union bool) {
	start := time.Now()
	ix, err := usp.LoadFile(path)
	if err != nil {
		log.Fatalf("loading snapshot: %v", err)
	}
	fmt.Fprintf(os.Stderr, "loaded snapshot: %d live vectors, dim %d, %d models (%s)\n",
		ix.Len(), ix.Dim(), ix.Stats().Models, time.Since(start).Round(time.Millisecond))
	if queries.Dim != ix.Dim() {
		log.Fatalf("query dim %d != index dim %d", queries.Dim, ix.Dim())
	}

	opt := usp.SearchOptions{Probes: probes, UnionEnsemble: union}
	s := ix.NewSearcher()
	dst := make([]usp.Result, 0, k)
	lat := newLatencyHist()
	start = time.Now()
	totalCands, totalSkipped := 0, 0
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		qStart := time.Now()
		dst, err = s.SearchInto(dst[:0], q, k, opt)
		if err != nil {
			log.Fatalf("query %d: %v", qi, err)
		}
		lat.ObserveDuration(time.Since(qStart))
		totalCands += s.Scanned()
		totalSkipped += s.Skipped()
		fmt.Printf("q%d:", qi)
		for _, r := range dst {
			fmt.Printf(" %d:%.4f", r.ID, r.Distance)
		}
		fmt.Println()
	}
	reportTiming(queries.N, totalCands, time.Since(start), lat)
	if totalSkipped > 0 {
		fmt.Fprintf(os.Stderr, "tombstones skipped: %d (%.1f/query) — compaction would reclaim this scan work\n",
			totalSkipped, float64(totalSkipped)/float64(queries.N))
	}
}

// serveLegacy preserves the original pipeline for model-only index files.
func serveLegacy(indexPath, dataPath string, queries *dataset.Dataset, k, probes int, union bool) {
	ens, hier, err := core.LoadIndexFile(indexPath)
	if err != nil {
		log.Fatalf("loading index: %v", err)
	}
	ds, err := dataset.LoadFvecsFile(dataPath)
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	if queries.Dim != ds.Dim {
		log.Fatalf("query dim %d != dataset dim %d", queries.Dim, ds.Dim)
	}

	mode := core.BestConfidence
	if union {
		mode = core.UnionProbe
	}
	var qs core.QueryScratch // one scratch across the whole query file
	candidates := func(q []float32) []int {
		if hier != nil {
			return hier.CandidatesWith(&qs, q, probes)
		}
		return ens.CandidatesWith(&qs, q, probes, mode)
	}
	lat := newLatencyHist()
	start := time.Now()
	totalCands := 0
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		qStart := time.Now()
		cands := candidates(q)
		totalCands += len(cands)
		ns := knn.SearchSubset(ds, cands, q, k)
		lat.ObserveDuration(time.Since(qStart))
		fmt.Printf("q%d:", qi)
		for _, n := range ns {
			fmt.Printf(" %d:%.4f", n.Index, n.Dist)
		}
		fmt.Println()
	}
	reportTiming(queries.N, totalCands, time.Since(start), lat)
}

func newLatencyHist() *telemetry.Histogram {
	return telemetry.NewHistogram("uspquery_latency_seconds", "", "", telemetry.NanosToSeconds)
}

// reportTiming prints the per-query stats summary: throughput, the latency
// percentiles extracted from the telemetry histogram (the same estimator
// the serving path exports on /metrics), and candidate volume.
func reportTiming(n, totalCands int, elapsed time.Duration, lat *telemetry.Histogram) {
	fmt.Fprintf(os.Stderr, "%d queries in %s (%.1f us/query, p50 %.1f us, p95 %.1f us, p99 %.1f us, avg |C| %.1f)\n",
		n, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/float64(n)/1e3,
		lat.Quantile(0.50)/1e3, lat.Quantile(0.95)/1e3, lat.Quantile(0.99)/1e3,
		float64(totalCands)/float64(n))
}
