package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/knn"
)

// servingBench measures the online serving path — the quantities the
// zero-allocation query engine is accountable for — and writes them as JSON
// so successive PRs have a machine-readable perf trajectory to diff against.
type servingBench struct {
	Timestamp    string  `json:"timestamp"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	N            int     `json:"n"`
	Dim          int     `json:"dim"`
	Queries      int     `json:"queries"`
	K            int     `json:"k"`
	Probes       int     `json:"probes"`
	BuildSeconds float64 `json:"build_seconds"`
	// QPSSingle is one goroutine issuing Searcher.SearchInto in a loop.
	QPSSingle float64 `json:"qps_single"`
	// QPSBatch is Index.SearchBatch over the whole query set.
	QPSBatch float64 `json:"qps_batch"`
	// Recall10 is recall@10 of the probed configuration vs exact search.
	Recall10 float64 `json:"recall_at_10"`
	// AllocsPerOp is testing.AllocsPerRun over Searcher.SearchInto with a
	// recycled destination (steady-state engine allocations; target 0).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// AvgCandidates is the mean candidate-set size |C(q)|.
	AvgCandidates float64 `json:"avg_candidates"`
}

// servingBenchConfig carries the overridable knobs of the serving benchmark;
// zero fields take the defaults below, so the shared uspbench flags
// (-sift-n, -queries, -epochs, -ensemble, -seed) apply to -bench-json too.
type servingBenchConfig struct {
	N        int
	Queries  int
	Epochs   int
	Ensemble int
	Seed     int64
}

// runServingBench builds a SIFT-like index and measures serving QPS, recall
// and allocation behavior, writing the report to path.
func runServingBench(path string, cfg servingBenchConfig, logf func(string, ...any)) error {
	const k, probes = 10, 2
	n, nq, epochs, ensemble, seed := cfg.N, cfg.Queries, cfg.Epochs, cfg.Ensemble, cfg.Seed
	if n == 0 {
		n = 8000
	}
	if nq == 0 {
		nq = 256
	}
	if epochs == 0 {
		epochs = 15
	}
	if ensemble == 0 {
		ensemble = 2
	}
	if seed == 0 {
		seed = 42
	}
	rng := rand.New(rand.NewSource(seed))
	base := dataset.SIFTLike(n+nq, rng)
	train, queries := dataset.SplitQueries(base, nq, rng)

	logf("serving bench: building index over %d×%d...", train.N, train.Dim)
	start := time.Now()
	ix, err := usp.Build(train.Rows(), usp.Options{
		Bins: 16, Ensemble: ensemble, Epochs: epochs, Hidden: []int{64}, Seed: seed + 7,
	})
	if err != nil {
		return fmt.Errorf("building index: %w", err)
	}
	buildSecs := time.Since(start).Seconds()

	opt := usp.SearchOptions{Probes: probes}
	qrows := queries.Rows()

	// Recall and candidate volume against exact ground truth.
	gt := knn.GroundTruth(train, queries, k)
	s := ix.NewSearcher()
	var recall float64
	var candTotal int
	dst := make([]usp.Result, 0, k)
	ids := make([]int, 0, k)
	for qi, q := range qrows {
		dst, err = s.SearchInto(dst[:0], q, k, opt)
		if err != nil {
			return err
		}
		ids = ids[:0]
		for _, r := range dst {
			ids = append(ids, r.ID)
		}
		recall += knn.Recall(ids, gt[qi])
		candTotal += s.Scanned()
	}
	recall /= float64(len(qrows))

	// Steady-state allocations per query through the reusable-scratch path.
	allocs := testing.AllocsPerRun(200, func() {
		dst, _ = s.SearchInto(dst[:0], qrows[0], k, opt)
	})

	// Single-goroutine QPS.
	const rounds = 8
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range qrows {
			if dst, err = s.SearchInto(dst[:0], q, k, opt); err != nil {
				return err
			}
		}
	}
	qpsSingle := float64(rounds*len(qrows)) / time.Since(start).Seconds()

	// Batched QPS over the worker pool.
	start = time.Now()
	for r := 0; r < rounds; r++ {
		if _, err = ix.SearchBatch(qrows, k, opt); err != nil {
			return err
		}
	}
	qpsBatch := float64(rounds*len(qrows)) / time.Since(start).Seconds()

	rep := servingBench{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		N:             train.N,
		Dim:           train.Dim,
		Queries:       len(qrows),
		K:             k,
		Probes:        probes,
		BuildSeconds:  buildSecs,
		QPSSingle:     qpsSingle,
		QPSBatch:      qpsBatch,
		Recall10:      recall,
		AllocsPerOp:   allocs,
		AvgCandidates: float64(candTotal) / float64(len(qrows)),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("serving bench: qps_single=%.0f qps_batch=%.0f recall@10=%.3f allocs/op=%.1f → %s\n",
		qpsSingle, qpsBatch, recall, allocs, path)
	return nil
}
