package dataset

import (
	"math/rand"
	"testing"
)

func TestEnsureSqNormsMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Uniform(50, 7, rng)
	d.EnsureSqNorms(false)
	if len(d.SqNorms) != d.N {
		t.Fatalf("cache length %d, want %d", len(d.SqNorms), d.N)
	}
	for i := 0; i < d.N; i++ {
		var want float64
		for _, v := range d.Row(i) {
			want += float64(v) * float64(v)
		}
		got := float64(d.SqNorms[i])
		if diff := got - want; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("row %d: cached %v, want %v", i, got, want)
		}
	}
}

func TestAppendExtendsSqNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Uniform(10, 4, rng)
	d.EnsureSqNorms(false)
	vec := []float32{1, 2, 3, 4}
	d.Append(vec)
	if len(d.SqNorms) != 11 {
		t.Fatalf("cache not extended: %d", len(d.SqNorms))
	}
	if d.SqNorms[10] != 30 {
		t.Fatalf("appended norm %v, want 30", d.SqNorms[10])
	}
	// Without a cache, Append must not create one.
	d2 := Uniform(5, 4, rng)
	d2.Append(vec)
	if d2.SqNorms != nil {
		t.Fatal("Append created a norm cache unprompted")
	}
}

func TestNormalizeRowsInvalidatesSqNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Uniform(12, 5, rng)
	d.EnsureSqNorms(false)
	NormalizeRows(d)
	if d.SqNorms != nil {
		t.Fatal("NormalizeRows must drop the stale squared-norm cache")
	}
	d.EnsureSqNorms(false)
	for i, n := range d.SqNorms {
		if diff := float64(n) - 1; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("row %d: normalized norm² = %v, want 1", i, n)
		}
	}
}

func TestEnsureSqNormsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := Uniform(8, 3, rng)
	d.EnsureSqNorms(false)
	d.Row(0)[0] = 100
	d.EnsureSqNorms(false) // no-op: cache present and sized
	stale := d.SqNorms[0]
	d.EnsureSqNorms(true)
	if d.SqNorms[0] == stale {
		t.Fatal("rebuild did not refresh mutated row")
	}
}
