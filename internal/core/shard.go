package core

import (
	"repro/internal/par"
)

// FilterRemap returns a partitioner that shares p's trained model but owns a
// lookup table restricted to the ids in [lo, hi), renumbered to id−lo — the
// per-shard table of a contiguous dataset split. Because the model is shared,
// every shard routes a query to the same bins as the parent, so the union of
// the shards' candidate sets at equal probe settings reproduces the parent's
// candidate set exactly (each parent candidate lands in precisely the shard
// that owns its row). Within each bin the parent's id order is preserved.
//
// p must carry no pending spill (callers Rebuild first, which also folds
// tombstones into Assign as −1); p itself is left untouched.
func (p *Partitioner) FilterRemap(lo, hi int) *Partitioner {
	np := &Partitioner{Model: p.Model, M: p.M}
	np.Assign = make([]int32, hi-lo)
	copy(np.Assign, p.Assign[lo:hi])

	lists := make([][]int32, p.M)
	for b := 0; b < p.M; b++ {
		src := p.binIDs[p.binOff[b]:p.binOff[b+1]]
		var list []int32
		for _, id := range src {
			if int(id) >= lo && int(id) < hi {
				list = append(list, id-int32(lo))
			}
		}
		lists[b] = list
	}
	np.setBinLists(lists)
	return np
}

// FilterRemap returns an ensemble whose members share e's models but carry
// per-shard lookup tables (see Partitioner.FilterRemap). Members are
// filtered in parallel — like Rebuild, this is pure id-list surgery.
func (e *Ensemble) FilterRemap(lo, hi int) *Ensemble {
	ne := &Ensemble{Parts: make([]*Partitioner, len(e.Parts))}
	par.For(len(e.Parts), func(m int) {
		ne.Parts[m] = e.Parts[m].FilterRemap(lo, hi)
	})
	return ne
}

// FilterRemap returns a hierarchy sharing h's trained tree but owning a
// global leaf table restricted to the ids in [lo, hi), renumbered to id−lo.
// h must carry no pending spill (callers Rebuild first).
func (h *Hierarchy) FilterRemap(lo, hi int) *Hierarchy {
	nh := &Hierarchy{
		Levels: h.Levels, NumBins: h.NumBins, ProbeTemp: h.ProbeTemp, root: h.root,
	}
	nh.Bins = make([][]int32, h.NumBins)
	par.ForChunksMin(h.NumBins, 16, func(glo, ghi int) {
		for g := glo; g < ghi; g++ {
			var list []int32
			for _, id := range h.Bins[g] {
				if int(id) >= lo && int(id) < hi {
					list = append(list, id-int32(lo))
				}
			}
			nh.Bins[g] = list
		}
	})
	return nh
}
