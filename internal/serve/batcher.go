// Dynamic micro-batch scheduler for /search. Under concurrency, the most
// expensive fixed cost of every request — the routing model's forward pass —
// can be amortized across requests: searches enqueue into a bounded
// admission queue, a collector goroutine gathers up to BatchMax requests
// and executes them as one staged SearchBatch, answering each request over
// its own channel.
//
// Batching comes from queue pressure first (group commit): on waking, the
// collector drains whatever is already queued, and because waiting clients
// park on their answer channels, they yield the CPU to one another and the
// queue fills naturally — even on a single core, where truly simultaneous
// execution never happens. The BatchWindow deadline is a bounded extra
// wait to grow a batch when more requests are known to be in flight but
// not yet queued; a request with no in-flight company is flushed
// immediately and never waits the window, so single-client latency is
// unchanged up to two channel handoffs.
//
// The scheduler never changes answers: SearchBatch is test-pinned
// bit-identical to looped single Search.
//
// State machine of the collector: IDLE —(first item)→ drain queued
// —(BatchMax reached: flush "full" | every in-flight request already
// collected: flush "fast")→ IDLE, else COLLECTING —(BatchMax: flush
// "full" | window deadline: flush "window" | shutdown: flush "drain")→
// IDLE. Close() drains the queue before the collector exits, so every
// admitted request is answered; a closed or full queue degrades the
// caller to direct single-query execution, never to an error.
package serve

import (
	"runtime"
	"sync"
	"time"

	usp "repro"
	"repro/internal/telemetry"
)

// batchItem is one queued /search request. rerankK is pre-resolved against
// the server default so batching never changes its meaning.
type batchItem struct {
	vec     []float32
	k       int
	probes  int
	rerankK int
	done    chan batchOut // buffered; the collector always answers exactly once
}

// batchOut is the scheduler's answer to one request. eng is the engine the
// batch executed against, so the handler reports the matching IDOffset even
// across a concurrent /reload.
type batchOut struct {
	res     []usp.Result
	scanned int
	eng     *engine
	err     error
}

type batcher struct {
	srv    *Server
	max    int
	window time.Duration

	queue chan *batchItem
	stop  chan struct{}
	done  chan struct{}

	// closed gates submit: it is flipped under the write lock, so after
	// close() observes the lock no enqueue can be in progress and the
	// collector's final drain is complete.
	mu     sync.RWMutex
	closed bool

	// Collector-owned staging (no synchronization needed).
	items []*batchItem
	vecs  [][]float32

	batchSize   *telemetry.Histogram
	flushFull   *telemetry.Counter
	flushFast   *telemetry.Counter
	flushWindow *telemetry.Counter
	flushDrain  *telemetry.Counter
}

func newBatcher(srv *Server, max, queueLen int, window time.Duration) *batcher {
	reg := srv.reg
	b := &batcher{
		srv:    srv,
		max:    max,
		window: window,
		queue:  make(chan *batchItem, queueLen),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		batchSize: reg.Histogram("usp_batch_size", "",
			"Requests per micro-batch scheduler flush.", 1),
		flushFull: reg.Counter("usp_batch_flush_total", `reason="full"`,
			"Micro-batch flushes by trigger."),
		flushFast: reg.Counter("usp_batch_flush_total", `reason="fast"`,
			"Micro-batch flushes by trigger."),
		flushWindow: reg.Counter("usp_batch_flush_total", `reason="window"`,
			"Micro-batch flushes by trigger."),
		flushDrain: reg.Counter("usp_batch_flush_total", `reason="drain"`,
			"Micro-batch flushes by trigger."),
	}
	go b.run()
	return b
}

// submit enqueues a request and blocks for its answer. ok=false means the
// scheduler did not admit it (queue full or shutting down) and the caller
// must execute directly.
func (b *batcher) submit(vec []float32, k, probes, rerankK int) (batchOut, bool) {
	it := &batchItem{vec: vec, k: k, probes: probes, rerankK: rerankK, done: make(chan batchOut, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return batchOut{}, false
	}
	select {
	case b.queue <- it:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		return batchOut{}, false
	}
	return <-it.done, true
}

// close stops the collector and waits for it to answer everything admitted.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}

// run is the collector loop: idle until a first request arrives, gather
// what queue pressure already delivered, then — only if more requests are
// known to be in flight — keep gathering until the batch is full or the
// window deadline fires, then execute.
func (b *batcher) run() {
	defer close(b.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case it := <-b.queue:
			b.items = append(b.items[:0], it)
			// Yield once before gathering: the enqueue that woke this
			// goroutine scheduled it ahead of every other runnable
			// client (runnext priority), so on a single P the queue
			// would always look empty here. One Gosched lets runnable
			// clients enqueue first, which is what lets batches form at
			// all when GOMAXPROCS=1; with a lone client it costs one
			// scheduler round trip, not the window.
			runtime.Gosched()
			flush, stopping := b.gather(timer)
			flush.Inc()
			b.execute(b.items)
			if stopping {
				b.drain()
				return
			}
		case <-b.stop:
			b.drain()
			return
		}
	}
}

// gather grows b.items (holding >= 1 item) until a flush trigger fires,
// returning the trigger's counter and whether shutdown was requested.
// Each round prefers what queue pressure already delivered, then checks
// whether waiting can help at all, and only then blocks on the window.
func (b *batcher) gather(timer *time.Timer) (flush *telemetry.Counter, stopping bool) {
	armed := false
	defer func() {
		if armed && !timer.Stop() {
			<-timer.C
		}
	}()
	for {
		if len(b.items) >= b.max {
			return b.flushFull, false
		}
		// Group commit: take everything already queued for free.
		select {
		case it := <-b.queue:
			b.items = append(b.items, it)
			continue
		default:
		}
		// If no request beyond this batch is in flight, the window cannot
		// grow it — flush now so a lone request never waits. (The read is
		// racy only in the safe direction: an arrival between it and the
		// flush catches the next batch.)
		if int(b.srv.inflight.Load()) <= len(b.items) {
			return b.flushFast, false
		}
		if !armed {
			timer.Reset(b.window)
			armed = true
		}
		select {
		case it := <-b.queue:
			b.items = append(b.items, it)
		case <-timer.C:
			armed = false
			return b.flushWindow, false
		case <-b.stop:
			return b.flushDrain, true
		}
	}
}

// drain answers whatever is still queued at shutdown. closed was flipped
// under the write lock before stop closed, so no new enqueue can race this.
func (b *batcher) drain() {
	b.items = b.items[:0]
	for {
		select {
		case it := <-b.queue:
			b.items = append(b.items, it)
		default:
			if len(b.items) > 0 {
				b.flushDrain.Inc()
				b.execute(b.items)
			}
			return
		}
	}
}

// execute answers one collected batch. Items are grouped by
// (k, probes, rerank_k, dim) — parameters SearchBatch applies batch-wide —
// and each group runs as one staged SearchBatch against the engine current
// at flush time. Grouping by dim also isolates a wrong-width vector's 400
// to its own group instead of failing innocent neighbors.
func (b *batcher) execute(items []*batchItem) {
	b.batchSize.Observe(uint64(len(items)))
	for lo := 0; lo < len(items); {
		head := items[lo]
		hi := lo + 1
		for i := hi; i < len(items); i++ {
			it := items[i]
			if it.k == head.k && it.probes == head.probes && it.rerankK == head.rerankK &&
				len(it.vec) == len(head.vec) {
				items[hi], items[i] = items[i], items[hi]
				hi++
			}
		}
		b.vecs = b.vecs[:0]
		for _, it := range items[lo:hi] {
			b.vecs = append(b.vecs, it.vec)
		}
		eng := b.srv.eng.Load()
		res, scanned, err := eng.ix.SearchBatchScanned(b.vecs, head.k,
			usp.SearchOptions{Probes: head.probes, RerankK: head.rerankK})
		for i, it := range items[lo:hi] {
			if err != nil {
				it.done <- batchOut{err: err}
				continue
			}
			it.done <- batchOut{res: res[i], scanned: scanned[i], eng: eng}
		}
		lo = hi
	}
}
