package serve

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	usp "repro"
)

// TestMicrobatchedSearchBitIdentical pins the server-side half of the
// bit-equality criterion: concurrent /search requests flowing through the
// micro-batch scheduler return exactly what a direct single-query search
// returns — same ids, same float32 distance bits, same scanned counts.
func TestMicrobatchedSearchBitIdentical(t *testing.T) {
	corpus := testCorpus(t, 11, 400, 8)
	ix := testIndex(t, corpus)
	s := New(ix, Config{BatchWindow: 200 * time.Microsecond, BatchMax: 16})
	defer s.Close()

	queries := corpus.Rows()[:64]
	// Reference answers through the always-direct path.
	ref := New(ix, Config{})
	want := make([][]usp.Result, len(queries))
	wantScanned := make([]int, len(queries))
	for i, q := range queries {
		res, scanned, err := ref.Search(q, 5, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i], wantScanned[i] = res, scanned
	}

	// Phase 1: hammer the public policy entry point (fast path + scheduler,
	// whatever interleaving the scheduler picks) — answers must match the
	// direct path bit for bit either way.
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	check := func(i int, res []usp.Result, scanned int) error {
		if scanned != wantScanned[i] {
			return fmt.Errorf("query %d: scanned %d, want %d", i, scanned, wantScanned[i])
		}
		if len(res) != len(want[i]) {
			return fmt.Errorf("query %d: %d results, want %d", i, len(res), len(want[i]))
		}
		for j := range res {
			if res[j] != want[i][j] {
				return fmt.Errorf("query %d result %d: %+v, want %+v (must be bit-identical)",
					i, j, res[j], want[i][j])
			}
		}
		return nil
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				i := (c*31 + round*7) % len(queries)
				res, scanned, err := s.Search(queries[i], 5, 2, 0)
				if err == nil {
					err = check(i, res, scanned)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Phase 2: force aggregation by submitting straight into the admission
	// queue from many goroutines (on one CPU the handler fast path can
	// otherwise serialize everything), mixing two k values so the collector
	// must split the drained batch into parameter groups. Every answer must
	// still match the direct path exactly.
	errs2 := make(chan error, 32)
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c % len(queries)
			k := 5
			if c%3 == 0 {
				k = 3
			}
			out, ok := s.batch.submit(queries[i], k, 2, 0)
			if !ok {
				errs2 <- fmt.Errorf("submit %d not admitted", c)
				return
			}
			if out.err != nil {
				errs2 <- out.err
				return
			}
			if k == 5 {
				if err := check(i, out.res, out.scanned); err != nil {
					errs2 <- err
				}
				return
			}
			res, scanned, err := ref.Search(queries[i], k, 2, 0)
			if err != nil {
				errs2 <- err
				return
			}
			if scanned != out.scanned || len(res) != len(out.res) {
				errs2 <- fmt.Errorf("k=3 query %d: scanned/len mismatch", i)
				return
			}
			for j := range res {
				if res[j] != out.res[j] {
					errs2 <- fmt.Errorf("k=3 query %d result %d: %+v, want %+v", i, j, out.res[j], res[j])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs2)
	for err := range errs2 {
		t.Fatal(err)
	}

	// The submit storm must actually have aggregated: at least one flush
	// held >1 request, visible as the batch-size histogram's sum exceeding
	// its flush count.
	h := s.reg.Histogram("usp_batch_size", "", "Requests per micro-batch scheduler flush.", 1)
	if h.Count() == 0 {
		t.Fatal("scheduler never flushed a batch")
	}
	if h.Sum() <= h.Count() {
		t.Fatalf("no multi-request batch formed (flushes=%d, requests=%d)", h.Count(), h.Sum())
	}
}

// TestBatcherQueueFullFallsBackDirect pins the overload contract: a full
// admission queue degrades to direct execution, never to an error.
func TestBatcherQueueFullFallsBackDirect(t *testing.T) {
	corpus := testCorpus(t, 13, 300, 8)
	ix := testIndex(t, corpus)
	s := New(ix, Config{BatchWindow: time.Millisecond, BatchMax: 2, BatchQueue: 1})
	defer s.Close()
	queries := corpus.Rows()[:32]
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				if _, _, err := s.Search(queries[(c+r)%len(queries)], 3, 1, 0); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBatcherShutdownNoGoroutineLeak asserts the scheduler drains cleanly:
// after the HTTP server stops and Close returns, the collector goroutine is
// gone and every admitted request was answered.
func TestBatcherShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	corpus := testCorpus(t, 17, 300, 8)
	ix := testIndex(t, corpus)
	s := New(ix, Config{BatchWindow: 300 * time.Microsecond, BatchMax: 8})
	ts := httptest.NewServer(s.Mux())

	queries := corpus.Rows()[:16]
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				resp := post(t, ts, "/search", SearchRequest{Vector: queries[(c+r)%len(queries)], K: 3, Probes: 1})
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	ts.Close()
	s.Close()
	s.Close() // idempotent

	// A submit after Close must fall back, not hang or panic.
	if _, _, err := s.Search(queries[0], 3, 1, 0); err != nil {
		t.Fatal(err)
	}

	// Goroutine count returns to baseline (allow the runtime a moment to
	// retire worker goroutines from the HTTP test server).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after drain: %d > %d\n%s",
				runtime.NumGoroutine(), before, truncateStacks(string(buf[:n])))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func truncateStacks(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n... (truncated)"
	}
	return s
}

// TestBatchMetricsExposed asserts the scheduler's series reach /metrics in
// Prometheus exposition form.
func TestBatchMetricsExposed(t *testing.T) {
	corpus := testCorpus(t, 19, 300, 8)
	ix := testIndex(t, corpus)
	s := New(ix, Config{BatchWindow: 200 * time.Microsecond, BatchMax: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	queries := corpus.Rows()[:8]
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < 15; r++ {
				resp := post(t, ts, "/search", SearchRequest{Vector: queries[(c+r)%len(queries)], K: 3, Probes: 1})
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	body := readAll(t, mustGet(t, ts, "/metrics"))
	for _, want := range []string{"usp_batch_size", `usp_batch_flush_total{reason="window"}`} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body[:min(len(body), 2000)])
		}
	}
}
