// Package par provides small parallel-execution helpers used across the
// library: chunked parallel-for over index ranges and a bounded worker pool.
//
// All helpers degrade gracefully to sequential execution when GOMAXPROCS is 1
// or the range is small, so hot paths pay no goroutine overhead on tiny
// inputs.
package par

import (
	"runtime"
	"sync"
)

// minParallelSpan is the smallest index range worth splitting across
// goroutines. Below this the scheduling overhead dominates.
const minParallelSpan = 1024

// Workers returns the degree of parallelism helpers in this package use.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn(i) for every i in [0, n), potentially in parallel.
// fn must be safe to call concurrently for distinct i.
func For(n int, fn func(i int)) {
	ForChunks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForChunks splits [0, n) into contiguous chunks and runs fn(lo, hi) on each,
// potentially in parallel. fn must be safe to call concurrently for disjoint
// ranges.
func ForChunks(n int, fn func(lo, hi int)) {
	ForChunksMin(n, minParallelSpan, fn)
}

// ForChunksMin is ForChunks with an explicit sequential-fallback threshold:
// ranges shorter than minSpan run on the calling goroutine. Batch query
// serving uses minSpan = 1 — a request of even a handful of queries is worth
// fanning out when each query costs a model forward pass plus a candidate
// scan, which is orders of magnitude above the scheduling overhead the
// default threshold guards against.
func ForChunksMin(n, minSpan int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || n < minSpan || n < 2 {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs the given functions, potentially concurrently, and waits for all of
// them to finish.
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if Workers() <= 1 || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// MapReduce computes a per-chunk partial result with mapFn and folds the
// partials (in deterministic chunk order) with reduceFn. It is used for
// parallel reductions such as loss sums where floating-point determinism for
// a fixed GOMAXPROCS matters.
func MapReduce[T any](n int, mapFn func(lo, hi int) T, reduceFn func(a, b T) T) T {
	var zero T
	if n <= 0 {
		return zero
	}
	w := Workers()
	if w <= 1 || n < minParallelSpan {
		return mapFn(0, n)
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	nChunks := (n + chunk - 1) / chunk
	partials := make([]T, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			partials[c] = mapFn(lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = reduceFn(acc, p)
	}
	return acc
}
