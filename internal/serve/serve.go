// Package serve is the HTTP serving layer of one USP backend: the JSON
// k-NN endpoints of cmd/uspserve, shared by the fan-out front (which
// speaks the same wire types) and the in-process benchmarks.
//
// Request handling rides the lock-free query engine: every request
// resolves the current engine (index + pooled searchers) from one atomic
// load, so searches never contend with each other, with /add and /delete
// mutations, with the background compactor — or with /reload, which
// builds a complete replacement engine from a snapshot file and publishes
// it with a single pointer swap. In-flight requests keep the engine they
// resolved, so a rolling reload never fails or blocks a query.
//
// Validation is strict and classification is deliberate: malformed
// requests and invalid parameters are rejected with 400 before touching
// the engine, library validation errors (usp.ErrInvalid) map to 400,
// usp.ErrNotFound to 404, and everything else to 500 — so a fan-out front
// can retry 5xx against a sibling replica while never retrying a request
// that is itself broken.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	usp "repro"
	"repro/internal/telemetry"
)

// SearchRequest is the body of POST /search.
type SearchRequest struct {
	Vector []float32 `json:"vector"`
	// K is the number of neighbors to return; required, must be >= 1.
	K int `json:"k"`
	// Probes is m', the number of bins scanned; 0 uses the engine default
	// of 1, negative values are rejected.
	Probes int `json:"probes"`
	// RerankK is the quantized two-phase scan's exact re-rank depth
	// (ignored on float-only indexes): 0 uses the server default, -1
	// serves ADC-only distances, and any other negative is rejected.
	RerankK int `json:"rerank_k"`
}

// SearchResponse is the body of a successful /search reply. IDs are
// ordered by ascending distance (ties by ascending id) — the order the
// fan-out merge relies on. IDOffset is the serving index's global id
// base: a fan-out front adds it to each id, and because every response
// carries it (rather than the front caching it from health probes), the
// mapping can never go stale across a rolling reload.
type SearchResponse struct {
	IDs       []int     `json:"ids"`
	Distances []float32 `json:"distances"`
	IDOffset  int       `json:"id_offset"`
	Scanned   int       `json:"scanned"`
	Elapsed   string    `json:"elapsed"`
}

// BatchSearchRequest is the body of POST /search/batch; parameters carry
// the same semantics as SearchRequest.
type BatchSearchRequest struct {
	Vectors [][]float32 `json:"vectors"`
	K       int         `json:"k"`
	Probes  int         `json:"probes"`
	RerankK int         `json:"rerank_k"`
}

// BatchSearchResponse is the body of a successful /search/batch reply.
// IDOffset carries the same semantics as SearchResponse.IDOffset.
type BatchSearchResponse struct {
	IDs       [][]int     `json:"ids"`
	Distances [][]float32 `json:"distances"`
	IDOffset  int         `json:"id_offset"`
	Elapsed   string      `json:"elapsed"`
}

// AddRequest is the body of POST /add.
type AddRequest struct {
	Vector []float32 `json:"vector"`
}

// AddResponse returns the id assigned to the added vector. ID is local to
// this backend; IDOffset is the backend's global id base, so a routing
// front (or any client) computes the global id as ID + IDOffset without a
// separate health probe.
type AddResponse struct {
	ID       int `json:"id"`
	IDOffset int `json:"id_offset"`
}

// DeleteRequest is the body of POST /delete.
type DeleteRequest struct {
	ID int `json:"id"`
}

// DeleteResponse acknowledges a tombstoned vector.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// SaveRequest names the snapshot file for POST /save, relative to the
// server's data directory.
type SaveRequest struct {
	Path string `json:"path"`
}

// SaveResponse reports where a snapshot landed.
type SaveResponse struct {
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
	Elapsed string `json:"elapsed"`
}

// ReloadRequest names the snapshot file for POST /reload, relative to the
// server's data directory.
type ReloadRequest struct {
	Path string `json:"path"`
}

// ReloadResponse reports the freshly published engine.
type ReloadResponse struct {
	Path       string `json:"path"`
	Vectors    int    `json:"vectors"`
	Dim        int    `json:"dim"`
	Generation uint64 `json:"generation"`
	Elapsed    string `json:"elapsed"`
}

// HealthzResponse is the body of GET /healthz. The fan-out front reads
// IDOffset to map this backend's local result ids into the global id
// space, Generation to observe rolling reloads, and Rows — the dataset
// row count including deleted rows, i.e. the next local id Add would
// assign — to judge whether this shard can grow without its global ids
// colliding with the next shard's range.
type HealthzResponse struct {
	Status          string  `json:"status"`
	IndexLoaded     bool    `json:"index_loaded"`
	Vectors         int     `json:"vectors"`
	Rows            int     `json:"rows"`
	Dim             int     `json:"dim"`
	IDOffset        int     `json:"id_offset"`
	Generation      uint64  `json:"generation"`
	Epoch           uint64  `json:"epoch"`
	EpochAgeSeconds float64 `json:"epoch_age_seconds"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
}

// Config parameterizes a Server.
type Config struct {
	// DataDir confines /save and /reload: snapshot paths are resolved
	// relative to it and may not escape it, so HTTP clients can neither
	// overwrite nor load arbitrary files the process can reach.
	// Empty means the current directory.
	DataDir string
	// RerankK is the default exact re-rank depth applied to quantized
	// searches when the request leaves rerank_k unset (0 defers to the
	// engine default of 4·k, -1 serves ADC-only).
	RerankK int
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// BatchWindow enables the dynamic micro-batch scheduler for /search
	// when positive: concurrent requests are aggregated for up to this long
	// (order ~100–500µs) and executed as one staged SearchBatch. 0 disables
	// the scheduler entirely. A request with no concurrent company is
	// flushed immediately — it never waits the window — so enabling
	// batching leaves single-client latency essentially unchanged.
	BatchWindow time.Duration
	// BatchMax caps requests per micro-batch (0 = 64).
	BatchMax int
	// BatchQueue bounds the admission queue (0 = 4×BatchMax). Requests
	// arriving while it is full fall back to direct execution rather than
	// erroring.
	BatchQueue int
}

// engine bundles an index with its searcher pool. It is published as a
// unit through one atomic pointer: handlers resolve it once per request,
// so a /reload swap never mixes an old index with new searchers (whose
// scratch buffers are index-shaped) or vice versa.
type engine struct {
	ix *usp.Index
	// searchers recycles query contexts across requests: each Searcher
	// owns the scratch buffers of one in-flight query, so steady-state
	// request handling does not allocate on the search path.
	searchers sync.Pool
}

func newEngine(ix *usp.Index) *engine {
	e := &engine{ix: ix}
	e.searchers.New = func() any { return ix.NewSearcher() }
	return e
}

// Server is one servable USP backend. Construct with New; serve Mux().
type Server struct {
	eng     atomic.Pointer[engine]
	cfg     Config
	gen     atomic.Uint64 // /reload count; 0 until the first swap
	reg     *telemetry.Registry
	started time.Time
	// batch is the /search micro-batch scheduler (nil when disabled);
	// inflight counts concurrent /search requests so the collector can
	// flush immediately once every in-flight request is already in the
	// batch (the latency-preserving fast flush).
	batch    *batcher
	inflight atomic.Int64
}

// New returns a Server serving ix under cfg. If cfg enables micro-batching,
// Close must be called to stop the scheduler goroutine.
func New(ix *usp.Index, cfg Config) *Server {
	if cfg.DataDir == "" {
		cfg.DataDir = "."
	}
	s := &Server{cfg: cfg, reg: telemetry.NewRegistry(), started: time.Now()}
	s.eng.Store(newEngine(ix))
	if cfg.BatchWindow > 0 {
		max := cfg.BatchMax
		if max <= 0 {
			max = 64
		}
		queueLen := cfg.BatchQueue
		if queueLen <= 0 {
			queueLen = 4 * max
		}
		s.batch = newBatcher(s, max, queueLen, cfg.BatchWindow)
	}
	return s
}

// Close stops the micro-batch scheduler, answering everything it already
// admitted. Call it after the HTTP server has drained; it is a no-op when
// batching is disabled, and idempotent.
func (s *Server) Close() {
	if s.batch != nil {
		s.batch.close()
	}
}

// Index returns the currently published index (it may change across calls
// while /reload traffic is in flight).
func (s *Server) Index() *usp.Index { return s.eng.Load().ix }

// Generation returns the number of completed /reload swaps.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// Registry exposes the server's HTTP metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Mux assembles the routing table: every application endpoint behind the
// per-endpoint metrics middleware, plus the observability endpoints
// (/metrics, /healthz, and optionally /debug/pprof/) which are served
// unwrapped so scrapes don't pollute the request metrics they read.
func (s *Server) Mux() *http.ServeMux {
	hm := telemetry.NewHTTPMetrics(s.reg)
	mux := http.NewServeMux()
	for path, h := range map[string]http.HandlerFunc{
		"/search":       s.handleSearch,
		"/search/batch": s.handleSearchBatch,
		"/add":          s.handleAdd,
		"/delete":       s.handleDelete,
		"/compact":      s.handleCompact,
		"/save":         s.handleSave,
		"/reload":       s.handleReload,
		"/stats":        s.handleStats,
	} {
		mux.HandleFunc(path, hm.Wrap(path, h))
	}
	// /metrics resolves the engine per scrape: after a reload it exposes
	// the new index's query and lifecycle series, not the retired one's.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		telemetry.Handler(s.reg, s.eng.Load().ix.Telemetry()).ServeHTTP(w, r)
	})
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusFor maps an engine error to its HTTP status: library validation
// failures are the caller's fault (400), unknown ids are 404, and
// anything else is a server-side 500 — the class a fan-out front may
// retry against a sibling replica.
func statusFor(err error) int {
	switch {
	case errors.Is(err, usp.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, usp.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// ValidateSearchParams enforces the request contract shared by /search
// and /search/batch: k is required (no silent defaulting — a client that
// sends k:0 almost certainly dropped the field, and quietly returning 10
// results hides that bug); probes may be omitted (0 = engine default of
// 1) but not negative; rerank_k admits exactly the meaningful values
// (0 = server default, -1 = ADC-only, positive = explicit depth).
func ValidateSearchParams(k, probes, rerankK int) error {
	if k < 1 {
		return fmt.Errorf("k must be >= 1 (got %d)", k)
	}
	if probes < 0 {
		return fmt.Errorf("probes must be >= 0 (got %d; 0 uses the default of 1)", probes)
	}
	if rerankK < -1 {
		return fmt.Errorf("rerank_k must be >= -1 (got %d; 0 uses the server default, -1 serves ADC-only)", rerankK)
	}
	return nil
}

// rerank resolves a request's rerank_k against the server default. Only
// 0 (unset) defers; -1 and positive depths pass through verbatim.
func (s *Server) rerank(requested int) int {
	if requested != 0 {
		return requested
	}
	return s.cfg.RerankK
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := ValidateSearchParams(req.K, req.Probes, req.RerankK); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	res, scanned, idOffset, err := s.searchOne(req.Vector, req.K, req.Probes, s.rerank(req.RerankK))
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	resp := SearchResponse{IDOffset: idOffset, Scanned: scanned, Elapsed: time.Since(start).String()}
	for _, n := range res {
		resp.IDs = append(resp.IDs, n.ID)
		resp.Distances = append(resp.Distances, n.Distance)
	}
	writeJSON(w, resp)
}

// searchOne executes one search through the micro-batching policy: with the
// scheduler enabled, every request enqueues and the collector decides how
// long to gather — a request with no concurrent company flushes immediately
// (two channel handoffs of added latency, never the window), while
// overlapping requests aggregate into staged SearchBatch executions. A
// request the scheduler cannot admit (queue full, shutting down) runs
// directly against a pooled Searcher. All paths return bit-identical
// results. rerankK must already be resolved against the server default.
func (s *Server) searchOne(vec []float32, k, probes, rerankK int) ([]usp.Result, int, int, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.batch != nil {
		if out, ok := s.batch.submit(vec, k, probes, rerankK); ok {
			if out.err != nil {
				return nil, 0, 0, out.err
			}
			return out.res, out.scanned, out.eng.ix.IDOffset(), nil
		}
	}
	eng := s.eng.Load()
	sr := eng.searchers.Get().(*usp.Searcher)
	defer eng.searchers.Put(sr)
	res, err := sr.Search(vec, k, usp.SearchOptions{Probes: probes, RerankK: rerankK})
	if err != nil {
		return nil, 0, 0, err
	}
	return res, sr.Scanned(), eng.ix.IDOffset(), nil
}

// Search answers one query through the same policy as POST /search —
// micro-batched under concurrency, direct when alone — without the HTTP and
// JSON layers. The in-process benchmarks use it to measure the scheduler's
// aggregation effect in isolation.
func (s *Server) Search(vec []float32, k, probes, rerankK int) ([]usp.Result, int, error) {
	res, scanned, _, err := s.searchOne(vec, k, probes, s.rerank(rerankK))
	return res, scanned, err
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req BatchSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := ValidateSearchParams(req.K, req.Probes, req.RerankK); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	eng := s.eng.Load()
	results, err := eng.ix.SearchBatch(req.Vectors, req.K, usp.SearchOptions{Probes: req.Probes, RerankK: s.rerank(req.RerankK)})
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	resp := BatchSearchResponse{
		IDs:       make([][]int, len(results)),
		Distances: make([][]float32, len(results)),
		IDOffset:  eng.ix.IDOffset(),
	}
	for i, res := range results {
		ids := make([]int, len(res))
		ds := make([]float32, len(res))
		for j, n := range res {
			ids[j], ds[j] = n.ID, n.Distance
		}
		resp.IDs[i], resp.Distances[i] = ids, ds
	}
	resp.Elapsed = time.Since(start).String()
	writeJSON(w, resp)
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req AddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.eng.Load().ix.Add(req.Vector)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, AddResponse{ID: id, IDOffset: s.eng.Load().ix.IDOffset()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.eng.Load().ix.Delete(req.ID); err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	writeJSON(w, DeleteResponse{Deleted: true})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	ix := s.eng.Load().ix
	ix.Compact()
	writeJSON(w, map[string]any{
		"elapsed":   time.Since(start).String(),
		"lifecycle": ix.Lifecycle(),
	})
}

// confine resolves a client-supplied snapshot path inside the data
// directory, rejecting absolute paths and any traversal out of it.
func (s *Server) confine(path string) (string, error) {
	rel := filepath.Clean(path)
	if filepath.IsAbs(rel) || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("path must stay inside the data directory")
	}
	return filepath.Join(s.cfg.DataDir, rel), nil
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req SaveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
		http.Error(w, "bad request: need {\"path\": ...}", http.StatusBadRequest)
		return
	}
	full, err := s.confine(req.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	if err := s.eng.Load().ix.SaveFile(full); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	info, err := os.Stat(full)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, SaveResponse{
		Path: full, Bytes: info.Size(), Elapsed: time.Since(start).String(),
	})
}

// handleReload loads a snapshot from the data directory and publishes it
// as the serving engine in one atomic swap. Requests that resolved the
// previous engine finish against it undisturbed; the swap happens only
// after the new index loaded successfully, so a bad snapshot never
// degrades a serving backend.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ReloadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
		http.Error(w, "bad request: need {\"path\": ...}", http.StatusBadRequest)
		return
	}
	full, err := s.confine(req.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	start := time.Now()
	ix, err := usp.LoadFile(full)
	if err != nil {
		status := http.StatusBadRequest
		if os.IsNotExist(err) {
			status = http.StatusNotFound
		}
		http.Error(w, "reload: "+err.Error(), status)
		return
	}
	s.eng.Store(newEngine(ix))
	gen := s.gen.Add(1)
	log.Printf("reloaded %s: %d vectors of dim %d (generation %d)", full, ix.Len(), ix.Dim(), gen)
	writeJSON(w, ReloadResponse{
		Path: full, Vectors: ix.Len(), Dim: ix.Dim(),
		Generation: gen, Elapsed: time.Since(start).String(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ix := s.eng.Load().ix
	st := ix.Stats()
	writeJSON(w, map[string]any{
		"vectors":   ix.Len(),
		"dim":       ix.Dim(),
		"id_offset": ix.IDOffset(),
		"bins":      st.Bins,
		"models":    st.Models,
		"params":    st.Params,
		"lifecycle": ix.Lifecycle(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ix := s.eng.Load().ix
	writeJSON(w, HealthzResponse{
		Status:          "ok",
		IndexLoaded:     true,
		Vectors:         ix.Len(),
		Rows:            ix.Lifecycle().Rows,
		Dim:             ix.Dim(),
		IDOffset:        ix.IDOffset(),
		Generation:      s.gen.Load(),
		Epoch:           ix.Lifecycle().Epoch,
		EpochAgeSeconds: ix.EpochAge().Seconds(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
