package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1023, 1024, 5000} {
		seen := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times, want 1", n, i, c)
			}
		}
	}
}

func TestForChunksDisjointCover(t *testing.T) {
	n := 10000
	seen := make([]int32, n)
	ForChunks(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForChunksEmpty(t *testing.T) {
	called := false
	ForChunks(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
	ForChunks(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn called for negative range")
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("got a=%d b=%d c=%d", a, b, c)
	}
	Do() // no-op must not hang
}

func TestMapReduceSum(t *testing.T) {
	// Sum of [0,n) via MapReduce equals the closed form for assorted n.
	check := func(n int) bool {
		if n < 0 {
			n = -n
		}
		n %= 20000
		got := MapReduce(n, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		}, func(a, b int64) int64 { return a + b })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, func(lo, hi int) int { return 99 }, func(a, b int) int { return a + b })
	if got != 0 {
		t.Fatalf("empty MapReduce = %d, want zero value", got)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
