package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// naiveMul is the O(n^3) reference implementation.
func naiveMul(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			dst.Set(i, j, float32(s))
		}
	}
	return dst
}

func TestMatMulMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k, m := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a, b := randMat(rng, n, k), randMat(rng, k, m)
		dst := New(n, m)
		MatMul(dst, a, b)
		return Equalish(dst, naiveMul(a, b), 1e-3)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulATBMatchesTranspose(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, r, c := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15)
		a, b := randMat(rng, n, r), randMat(rng, n, c)
		dst := New(r, c)
		MatMulATB(dst, a, b)
		return Equalish(dst, naiveMul(a.T(), b), 1e-3)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulABTMatchesTranspose(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c, m := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15)
		a, b := randMat(rng, n, c), randMat(rng, m, c)
		dst := New(n, m)
		MatMulABT(dst, a, b)
		return Equalish(dst, naiveMul(a, b.T()), 1e-3)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMat(rng, 9, 4)
	if !Equalish(m.T().T(), m, 0) {
		t.Fatal("T().T() != identity")
	}
}

func TestAddRowVector(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	AddRowVector(m, []float32{10, 20})
	want := FromRows([][]float32{{11, 22}, {13, 24}})
	if !Equalish(m, want, 0) {
		t.Fatalf("got %v", m.Data)
	}
}

func TestColSumsAndCol(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	sums := make([]float32, 2)
	ColSums(sums, m)
	if sums[0] != 9 || sums[1] != 12 {
		t.Fatalf("ColSums = %v", sums)
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 4 || col[2] != 6 {
		t.Fatalf("Col = %v", col)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestCopyFromAndZero(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := New(2, 2)
	b.CopyFrom(a)
	if !Equalish(a, b, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Zero()
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero data")
		}
	}
}

func TestShapePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("FromSlice", func() { FromSlice(2, 2, make([]float32, 3)) })
	mustPanic("MatMul", func() { MatMul(New(2, 2), New(2, 3), New(2, 2)) })
	mustPanic("MatMulATB", func() { MatMulATB(New(2, 2), New(3, 2), New(4, 2)) })
	mustPanic("MatMulABT", func() { MatMulABT(New(2, 2), New(2, 3), New(2, 4)) })
	mustPanic("AddRowVector", func() { AddRowVector(New(2, 2), []float32{1}) })
	mustPanic("ragged", func() { FromRows([][]float32{{1, 2}, {1}}) })
	mustPanic("ColSums", func() { ColSums(make([]float32, 1), New(2, 2)) })
	mustPanic("CopyFrom", func() { New(1, 2).CopyFrom(New(2, 1)) })
	mustPanic("negative", func() { New(-1, 2) })
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows = %dx%d", m.Rows, m.Cols)
	}
}
