package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/telemetry"
	"repro/internal/vecmath"
)

// servingBench measures the online serving path — the quantities the
// zero-allocation query engine is accountable for — and writes them as JSON
// so successive PRs have a machine-readable perf trajectory to diff against.
type servingBench struct {
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Kernel names the vecmath implementation dispatch selected at init
	// ("scalar", "avx2-fma", "neon"), so perf numbers are attributable to a
	// code path.
	Kernel       string  `json:"kernel"`
	N            int     `json:"n"`
	Dim          int     `json:"dim"`
	Queries      int     `json:"queries"`
	K            int     `json:"k"`
	Probes       int     `json:"probes"`
	BuildSeconds float64 `json:"build_seconds"`
	// QPSSingle is one goroutine issuing Searcher.SearchInto in a loop.
	QPSSingle float64 `json:"qps_single"`
	// LatencyP50Us/P95/P99 are per-query latency percentiles of the
	// single-goroutine run, extracted from the same log-bucketed telemetry
	// histogram the serving path exports on /metrics (≤ 6.25% bucket
	// quantization), in microseconds.
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP95Us float64 `json:"latency_p95_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`
	// QPSBatch is Index.SearchBatch over the whole query set.
	QPSBatch float64 `json:"qps_batch"`
	// Recall10 is recall@10 of the probed configuration vs exact search.
	Recall10 float64 `json:"recall_at_10"`
	// AllocsPerOp is testing.AllocsPerRun over Searcher.SearchInto with a
	// recycled destination (steady-state engine allocations; target 0).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// AvgCandidates is the mean candidate-set size |C(q)|.
	AvgCandidates float64 `json:"avg_candidates"`
	// Scaling is the multi-core scaling curve: aggregate QPS with
	// GOMAXPROCS 1/4/16 and one concurrent client (own Searcher, own
	// goroutine) per processor. On machines with fewer physical cores the
	// curve records saturation rather than speedup — num_cpu says which.
	Scaling []scalingPoint `json:"scaling"`
	// Microbatch is the server-side micro-batching sweep: concurrent
	// clients through serve.Server at several batch-window settings,
	// window 0 being the scheduler-off baseline.
	Microbatch *microbatchBench `json:"microbatch,omitempty"`
	// Quantized is the ADC serving-path report (-quantized flag); nil when
	// the quantized benchmark was not requested.
	Quantized *quantizedBench `json:"quantized,omitempty"`
	// Fanout is the sharded serving-tier report (-fanout flag): the same
	// index split into shards behind a fan-out front, with the merge
	// verified bit-identical before throughput is measured. Nil when not
	// requested.
	Fanout *fanoutBench `json:"fanout,omitempty"`
}

// scalingPoint is one GOMAXPROCS setting of the multi-core curve.
type scalingPoint struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	Clients    int     `json:"clients"`
	QPS        float64 `json:"qps"`
	// P99Us is the per-query p99 under concurrency, in microseconds: each
	// client records into its own histogram (contention-free) and the
	// coordinator merges them — the telemetry layer's fan-in pattern.
	P99Us float64 `json:"p99_us"`
}

// servingBenchConfig carries the overridable knobs of the serving benchmark;
// zero fields take the defaults below, so the shared uspbench flags
// (-sift-n, -queries, -epochs, -ensemble, -seed) apply to -bench-json too.
type servingBenchConfig struct {
	N        int
	Queries  int
	Epochs   int
	Ensemble int
	Seed     int64
	// Quantized adds the ADC serving-path benchmark over QuantN rows
	// (default 1M) at re-rank depth RerankK (0 = engine default).
	Quantized bool
	QuantN    int
	RerankK   int
	// Fanout (when >= 2) adds the sharded serving-tier benchmark: the
	// index split into Fanout shards behind an in-process HTTP front.
	Fanout int
}

// runServingBench builds a SIFT-like index and measures serving QPS, recall
// and allocation behavior, writing the report to path.
func runServingBench(path string, cfg servingBenchConfig, logf func(string, ...any)) error {
	const k, probes = 10, 2
	n, nq, epochs, ensemble, seed := cfg.N, cfg.Queries, cfg.Epochs, cfg.Ensemble, cfg.Seed
	if n == 0 {
		n = 8000
	}
	if nq == 0 {
		nq = 256
	}
	if epochs == 0 {
		epochs = 15
	}
	if ensemble == 0 {
		ensemble = 2
	}
	if seed == 0 {
		seed = 42
	}
	rng := rand.New(rand.NewSource(seed))
	base := dataset.SIFTLike(n+nq, rng)
	train, queries := dataset.SplitQueries(base, nq, rng)

	logf("serving bench: building index over %d×%d...", train.N, train.Dim)
	start := time.Now()
	ix, err := usp.Build(train.Rows(), usp.Options{
		Bins: 16, Ensemble: ensemble, Epochs: epochs, Hidden: []int{64}, Seed: seed + 7,
	})
	if err != nil {
		return fmt.Errorf("building index: %w", err)
	}
	buildSecs := time.Since(start).Seconds()

	opt := usp.SearchOptions{Probes: probes}
	qrows := queries.Rows()

	// Recall and candidate volume against exact ground truth.
	gt := knn.GroundTruth(train, queries, k)
	s := ix.NewSearcher()
	var recall float64
	var candTotal int
	dst := make([]usp.Result, 0, k)
	ids := make([]int, 0, k)
	for qi, q := range qrows {
		dst, err = s.SearchInto(dst[:0], q, k, opt)
		if err != nil {
			return err
		}
		ids = ids[:0]
		for _, r := range dst {
			ids = append(ids, r.ID)
		}
		recall += knn.Recall(ids, gt[qi])
		candTotal += s.Scanned()
	}
	recall /= float64(len(qrows))

	// Steady-state allocations per query through the reusable-scratch path.
	allocs := testing.AllocsPerRun(200, func() {
		dst, _ = s.SearchInto(dst[:0], qrows[0], k, opt)
	})

	// Single-goroutine QPS, with per-query latency recorded into the same
	// log-bucketed histogram the serving path exports — percentiles come
	// from telemetry.Quantile instead of sorting a sample array, so the
	// bench exercises exactly the estimator operators will read.
	const rounds = 8
	lat := telemetry.NewHistogram("bench_query_latency_seconds", "", "", telemetry.NanosToSeconds)
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for _, q := range qrows {
			qStart := time.Now()
			if dst, err = s.SearchInto(dst[:0], q, k, opt); err != nil {
				return err
			}
			lat.ObserveDuration(time.Since(qStart))
		}
	}
	qpsSingle := float64(rounds*len(qrows)) / time.Since(start).Seconds()

	// Batched QPS over the worker pool.
	start = time.Now()
	for r := 0; r < rounds; r++ {
		if _, err = ix.SearchBatch(qrows, k, opt); err != nil {
			return err
		}
	}
	qpsBatch := float64(rounds*len(qrows)) / time.Since(start).Seconds()

	// Multi-core scaling curve: one concurrent client per processor, each
	// driving its own Searcher over the query set from a staggered offset
	// (so clients don't march through the index in lockstep).
	prevProcs := runtime.GOMAXPROCS(0)
	var scaling []scalingPoint
	for _, procs := range []int{1, 4, 16} {
		logf("serving bench: scaling point GOMAXPROCS=%d...", procs)
		runtime.GOMAXPROCS(procs)
		qps, p99us, err := concurrentQPS(ix, qrows, k, opt, procs)
		if err != nil {
			runtime.GOMAXPROCS(prevProcs)
			return err
		}
		scaling = append(scaling, scalingPoint{GoMaxProcs: procs, Clients: procs, QPS: qps, P99Us: p99us})
	}
	runtime.GOMAXPROCS(prevProcs)

	mrep, err := runMicrobatchBench(ix, qrows, k, probes, logf)
	if err != nil {
		return fmt.Errorf("microbatch benchmark: %w", err)
	}

	var qrep *quantizedBench
	if cfg.Quantized {
		if qrep, err = runQuantizedBench(cfg, logf); err != nil {
			return fmt.Errorf("quantized benchmark: %w", err)
		}
	}

	var frep *fanoutBench
	if cfg.Fanout >= 2 {
		if frep, err = runFanoutBench(ix, qrows, k, opt, cfg.Fanout, logf); err != nil {
			return fmt.Errorf("fanout benchmark: %w", err)
		}
	}

	rep := servingBench{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Kernel:        vecmath.Impl(),
		N:             train.N,
		Dim:           train.Dim,
		Queries:       len(qrows),
		K:             k,
		Probes:        probes,
		BuildSeconds:  buildSecs,
		QPSSingle:     qpsSingle,
		LatencyP50Us:  lat.Quantile(0.50) / 1e3,
		LatencyP95Us:  lat.Quantile(0.95) / 1e3,
		LatencyP99Us:  lat.Quantile(0.99) / 1e3,
		QPSBatch:      qpsBatch,
		Recall10:      recall,
		AllocsPerOp:   allocs,
		AvgCandidates: float64(candTotal) / float64(len(qrows)),
		Scaling:       scaling,
		Microbatch:    mrep,
		Quantized:     qrep,
		Fanout:        frep,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("serving bench: kernel=%s qps_single=%.0f p50=%.1fus p95=%.1fus p99=%.1fus qps_batch=%.0f recall@10=%.3f allocs/op=%.1f → %s\n",
		vecmath.Impl(), qpsSingle, rep.LatencyP50Us, rep.LatencyP95Us, rep.LatencyP99Us, qpsBatch, recall, allocs, path)
	for _, sp := range scaling {
		fmt.Printf("  scaling: gomaxprocs=%-2d clients=%-2d qps=%.0f p99=%.1fus\n", sp.GoMaxProcs, sp.Clients, sp.QPS, sp.P99Us)
	}
	for _, pt := range mrep.Points {
		fmt.Printf("  microbatch: window=%-5.0fus qps=%.0f p50=%.1fus p99=%.1fus mean_batch=%.2f flushes full/fast/window/drain=%d/%d/%d/%d\n",
			pt.WindowUs, pt.QPS, pt.P50Us, pt.P99Us, pt.MeanBatch, pt.FlushFull, pt.FlushFast, pt.FlushWindow, pt.FlushDrain)
	}
	if qrep != nil {
		fmt.Printf("quantized: n=%d m=%d k=%d bytes/vec=%d (%.0f×) qps=%.0f recall@10=%.3f allocs/op=%.1f tight: qps=%.0f recall@10=%.3f\n",
			qrep.N, qrep.Subspaces, qrep.CodebookK, qrep.BytesPerVector, qrep.CompressionRatio,
			qrep.QPSSingle, qrep.Recall10, qrep.AllocsPerOp, qrep.QPSTight, qrep.Recall10Tight)
		for _, rp := range qrep.RerankCurve {
			fmt.Printf("  rerank: rerank_k=%-3d qps=%.0f recall@10=%.3f\n", rp.RerankK, rp.QPS, rp.Recall10)
		}
	}
	if frep != nil {
		fmt.Printf("fanout: shards=%d merge_verified=%v qps=%.0f p50=%.1fus p99=%.1fus\n",
			frep.Shards, frep.MergeVerified, frep.QPS, frep.LatencyP50Us, frep.LatencyP99Us)
	}
	return nil
}

// concurrentQPS measures aggregate throughput and per-query p99 latency
// with the given number of client goroutines, each on its own Searcher and
// its own latency histogram (no cross-client contention on the buckets),
// running a fixed number of passes over the query set. The per-client
// histograms merge into one for the percentile — the same fan-in a sharded
// serving tier would use.
func concurrentQPS(ix *usp.Index, qrows [][]float32, k int, opt usp.SearchOptions, clients int) (float64, float64, error) {
	const rounds = 4
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	hists := make([]*telemetry.Histogram, clients)
	for c := range hists {
		hists[c] = telemetry.NewHistogram("bench_client_latency_seconds", "", "", telemetry.NanosToSeconds)
	}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := ix.NewSearcher()
			lat := hists[c]
			dst := make([]usp.Result, 0, k)
			off := c * 17 % len(qrows)
			for r := 0; r < rounds; r++ {
				for qi := range qrows {
					qStart := time.Now()
					var err error
					dst, err = s.SearchInto(dst[:0], qrows[(qi+off)%len(qrows)], k, opt)
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					lat.ObserveDuration(time.Since(qStart))
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, 0, firstErr
	}
	qps := float64(clients*rounds*len(qrows)) / time.Since(start).Seconds()
	merged := hists[0]
	for _, h := range hists[1:] {
		merged.Merge(h)
	}
	return qps, merged.Quantile(0.99) / 1e3, nil
}
