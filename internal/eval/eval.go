// Package eval is the measurement harness behind every figure and table:
// it sweeps a method's probe parameter, recording the k-NN accuracy
// (Eq. 1) against the average candidate-set size |C| and wall-clock query
// time, and renders aligned ASCII tables and CSV for the reports in
// EXPERIMENTS.md.
package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/vecmath"
)

// Method adapts any index to the sweep: Candidates produces the candidate
// ids for a query at a probe setting.
type Method struct {
	Name       string
	Candidates func(q []float32, probes int) []int
}

// SearchMethod adapts end-to-end searchers (ScaNN pipelines, HNSW, IVF-PQ)
// where the probe parameter tunes an internal knob and candidates are not
// exposed; Search returns the final k neighbors and the effective number of
// points scored.
type SearchMethod struct {
	Name   string
	Search func(q []float32, k, probes int) (ids []int, scored int)
}

// Point is one sweep measurement.
type Point struct {
	Probes        int
	AvgCandidates float64
	Recall        float64
	AvgQueryTime  time.Duration
}

// Series is a method's sweep curve.
type Series struct {
	Name   string
	Points []Point
}

// SweepCandidates measures a candidate-source method: for each probe count,
// average |C| and the k-NN accuracy of brute-force search within C.
func SweepCandidates(base, queries *dataset.Dataset, gt [][]int32, k int, m Method, probes []int) Series {
	s := Series{Name: m.Name}
	for _, p := range probes {
		var cand, recall float64
		start := time.Now()
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			c := m.Candidates(q, p)
			cand += float64(len(c))
			res := knn.SearchSubset(base, c, q, k)
			recall += knn.RecallNeighbors(res, gt[qi])
		}
		elapsed := time.Since(start)
		s.Points = append(s.Points, Point{
			Probes:        p,
			AvgCandidates: cand / float64(queries.N),
			Recall:        recall / float64(queries.N),
			AvgQueryTime:  elapsed / time.Duration(queries.N),
		})
	}
	return s
}

// SweepSearch measures an end-to-end searcher.
func SweepSearch(queries *dataset.Dataset, gt [][]int32, k int, m SearchMethod, probes []int) Series {
	s := Series{Name: m.Name}
	for _, p := range probes {
		var scored, recall float64
		start := time.Now()
		for qi := 0; qi < queries.N; qi++ {
			ids, sc := m.Search(queries.Row(qi), k, p)
			scored += float64(sc)
			recall += knn.Recall(ids, gt[qi])
		}
		elapsed := time.Since(start)
		s.Points = append(s.Points, Point{
			Probes:        p,
			AvgCandidates: scored / float64(queries.N),
			Recall:        recall / float64(queries.N),
			AvgQueryTime:  elapsed / time.Duration(queries.N),
		})
	}
	return s
}

// CandidatesAtRecall linearly interpolates the candidate-set size a series
// needs to reach the target recall; ok=false when the series never reaches
// it.
func CandidatesAtRecall(s Series, target float64) (float64, bool) {
	pts := append([]Point(nil), s.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Recall < pts[j].Recall })
	for i, p := range pts {
		if p.Recall >= target {
			if i == 0 {
				return p.AvgCandidates, true
			}
			lo := pts[i-1]
			frac := (target - lo.Recall) / (p.Recall - lo.Recall)
			return lo.AvgCandidates + frac*(p.AvgCandidates-lo.AvgCandidates), true
		}
	}
	return 0, false
}

// NeighborIDs converts a neighbor slice into bare ids (helper for
// SearchMethod adapters).
func NeighborIDs(ns []vecmath.Neighbor) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = n.Index
	}
	return out
}

// RenderSeries renders one or more series as an aligned ASCII table with a
// row per (method, probe) measurement — the textual form of the paper's
// accuracy-vs-candidates figures.
func RenderSeries(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-28s %8s %14s %10s %14s\n", "method", "probes", "avg |C|", "recall", "us/query")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%-28s %8d %14.1f %10.4f %14.1f\n",
				s.Name, p.Probes, p.AvgCandidates, p.Recall,
				float64(p.AvgQueryTime.Nanoseconds())/1e3)
		}
	}
	return b.String()
}

// RenderCSV renders series as CSV (method,probes,candidates,recall,us).
func RenderCSV(series []Series) string {
	var b strings.Builder
	b.WriteString("method,probes,avg_candidates,recall,us_per_query\n")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%d,%.2f,%.5f,%.2f\n",
				s.Name, p.Probes, p.AvgCandidates, p.Recall,
				float64(p.AvgQueryTime.Nanoseconds())/1e3)
		}
	}
	return b.String()
}
