// Package cluster implements the clustering baselines of Table 5 — DBSCAN
// (Ester et al. 1996) and spectral clustering (Ng, Jordan & Weiss 2001) —
// together with the external cluster-quality metrics (ARI, NMI, purity) used
// to score every method against synthetic ground truth, replacing the
// paper's visual comparison with quantitative scores.
package cluster

import (
	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// Noise is the label DBSCAN gives to points in no cluster.
const Noise = -1

// DBSCAN runs density-based clustering with radius eps and density threshold
// minPts. Labels are 0..k-1 for clusters and Noise (-1) for outliers.
// Region queries are exhaustive scans: the Table 5 datasets are small 2-D
// toys, where O(n²) is the appropriate simple implementation.
func DBSCAN(ds *dataset.Dataset, eps float64, minPts int) []int {
	eps2 := float32(eps * eps)
	labels := make([]int, ds.N)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, ds.N)

	regionQuery := func(i int) []int {
		var out []int
		row := ds.Row(i)
		for j := 0; j < ds.N; j++ {
			if vecmath.SquaredL2(row, ds.Row(j)) <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}

	next := 0
	for i := 0; i < ds.N; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		seed := regionQuery(i)
		if len(seed) < minPts {
			continue // noise (may later be absorbed as a border point)
		}
		c := next
		next++
		labels[i] = c
		// Expand the cluster with a work queue.
		queue := append([]int(nil), seed...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = c // border point
			}
			if visited[j] {
				continue
			}
			visited[j] = true
			labels[j] = c
			nbrs := regionQuery(j)
			if len(nbrs) >= minPts {
				queue = append(queue, nbrs...)
			}
		}
	}
	return labels
}
