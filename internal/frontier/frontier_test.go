package frontier

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	usp "repro"
	"repro/internal/dataset"
	"repro/internal/serve"
)

func buildIndex(t testing.TB, vecs [][]float32) *usp.Index {
	t.Helper()
	ix, err := usp.Build(vecs, usp.Options{
		Bins: 4, Ensemble: 2, Epochs: 25, Hidden: []int{16}, Seed: 31, CompactAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func corpusRows(t testing.TB, seed int64, n, dim int) [][]float32 {
	t.Helper()
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: 5, ClusterStd: 0.3, CenterBox: 3,
	}, rand.New(rand.NewSource(seed)))
	return l.Rows()
}

// backendFor starts an httptest backend serving ix.
func backendFor(t testing.TB, ix *usp.Index) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(ix, serve.Config{DataDir: t.TempDir()}).Mux())
	t.Cleanup(ts.Close)
	return ts
}

// frontFor builds a Front over the given shard groups, probes health
// once, and serves it over httptest.
func frontFor(t testing.TB, cfg Config) (*Front, *httptest.Server) {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.ProbeHealth(context.Background())
	ts := httptest.NewServer(f.Mux())
	t.Cleanup(ts.Close)
	return f, ts
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t testing.TB, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFanoutBitIdentical is the tentpole acceptance test over the real
// HTTP stack: a front fanning out over shard backends must answer every
// query bit-identically — same ids, same order, same float distance
// bits — to one process serving the union index.
func TestFanoutBitIdentical(t *testing.T) {
	vecs := corpusRows(t, 101, 600, 8)
	union := buildIndex(t, vecs)
	unionSrv := backendFor(t, union)

	for _, m := range []int{2, 3} {
		shards, err := union.Shard(m)
		if err != nil {
			t.Fatal(err)
		}
		var groups [][]string
		for _, sh := range shards {
			groups = append(groups, []string{backendFor(t, sh).URL})
		}
		_, front := frontFor(t, Config{Shards: groups})

		for _, probes := range []int{1, 2} {
			for qi := 0; qi < 40; qi++ {
				req := serve.SearchRequest{Vector: vecs[qi], K: 10, Probes: probes}
				want := decode[serve.SearchResponse](t, postJSON(t, unionSrv.URL+"/search", req))
				got := decode[serve.SearchResponse](t, postJSON(t, front.URL+"/search", req))
				if len(got.IDs) != len(want.IDs) {
					t.Fatalf("m=%d probes=%d q%d: %d ids, want %d", m, probes, qi, len(got.IDs), len(want.IDs))
				}
				for i := range got.IDs {
					if got.IDs[i] != want.IDs[i] || got.Distances[i] != want.Distances[i] {
						t.Fatalf("m=%d probes=%d q%d rank %d: got %d/%x, want %d/%x",
							m, probes, qi, i, got.IDs[i], got.Distances[i], want.IDs[i], want.Distances[i])
					}
				}
				if got.Scanned != want.Scanned {
					t.Fatalf("m=%d probes=%d q%d: scanned %d, want %d", m, probes, qi, got.Scanned, want.Scanned)
				}
			}
		}
	}
}

// TestFanoutBatchBitIdentical extends bit-equality to /search/batch.
func TestFanoutBatchBitIdentical(t *testing.T) {
	vecs := corpusRows(t, 103, 500, 8)
	union := buildIndex(t, vecs)
	unionSrv := backendFor(t, union)
	shards, err := union.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	_, front := frontFor(t, Config{Shards: [][]string{
		{backendFor(t, shards[0]).URL},
		{backendFor(t, shards[1]).URL},
	}})

	req := serve.BatchSearchRequest{Vectors: vecs[:25], K: 7, Probes: 2}
	want := decode[serve.BatchSearchResponse](t, postJSON(t, unionSrv.URL+"/search/batch", req))
	got := decode[serve.BatchSearchResponse](t, postJSON(t, front.URL+"/search/batch", req))
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("%d answers, want %d", len(got.IDs), len(want.IDs))
	}
	for qi := range got.IDs {
		if len(got.IDs[qi]) != len(want.IDs[qi]) {
			t.Fatalf("q%d: %d ids, want %d", qi, len(got.IDs[qi]), len(want.IDs[qi]))
		}
		for i := range got.IDs[qi] {
			if got.IDs[qi][i] != want.IDs[qi][i] || got.Distances[qi][i] != want.Distances[qi][i] {
				t.Fatalf("q%d rank %d: got %d/%x, want %d/%x",
					qi, i, got.IDs[qi][i], got.Distances[qi][i], want.IDs[qi][i], want.Distances[qi][i])
			}
		}
	}
}

// TestFrontValidation: broken requests are rejected at the front with 400
// and generate zero backend traffic (no retry amplification).
func TestFrontValidation(t *testing.T) {
	vecs := corpusRows(t, 107, 300, 8)
	ix := buildIndex(t, vecs)
	f, front := frontFor(t, Config{Shards: [][]string{{backendFor(t, ix).URL}}})

	before := f.fanout.Value()
	for _, tc := range []struct {
		name string
		req  serve.SearchRequest
	}{
		{"k missing", serve.SearchRequest{Vector: vecs[0]}},
		{"k negative", serve.SearchRequest{Vector: vecs[0], K: -1}},
		{"probes negative", serve.SearchRequest{Vector: vecs[0], K: 5, Probes: -2}},
		{"rerank invalid", serve.SearchRequest{Vector: vecs[0], K: 5, RerankK: -3}},
	} {
		resp := postJSON(t, front.URL+"/search", tc.req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: HTTP %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if f.fanout.Value() != before {
		t.Fatalf("invalid requests reached backends: fanout %d -> %d", before, f.fanout.Value())
	}

	// A request only the backend can judge invalid (dim mismatch) is
	// passed through as the backend's 400 — and not retried.
	resp := postJSON(t, front.URL+"/search", serve.SearchRequest{Vector: vecs[0][:4], K: 5})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dim mismatch: HTTP %d, want 400", resp.StatusCode)
	}
	if f.retries.Value() != 0 {
		t.Fatalf("backend 400 was retried %d times", f.retries.Value())
	}
}

// flakyProxy forwards to target but fails the first n requests with 503.
type flakyProxy struct {
	mu     sync.Mutex
	fails  int
	target *httptest.Server
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	shouldFail := p.fails > 0
	if shouldFail {
		p.fails--
	}
	p.mu.Unlock()
	if shouldFail && r.URL.Path == "/search" {
		http.Error(w, "injected failure", http.StatusServiceUnavailable)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target.URL+r.URL.Path, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// TestRetryOnSiblingReplica: a 5xx from the primary replica is retried
// against the healthy sibling and succeeds transparently.
func TestRetryOnSiblingReplica(t *testing.T) {
	vecs := corpusRows(t, 109, 300, 8)
	ix := buildIndex(t, vecs)
	good := backendFor(t, ix)
	flaky := httptest.NewServer(&flakyProxy{fails: 1 << 20, target: good})
	defer flaky.Close()

	// One shard, two replicas: the flaky one always 503s /search.
	f, front := frontFor(t, Config{Shards: [][]string{{flaky.URL, good.URL}}})

	const n = 8
	ok := 0
	for i := 0; i < n; i++ {
		resp := postJSON(t, front.URL+"/search", serve.SearchRequest{Vector: vecs[i], K: 5, Probes: 2})
		if resp.StatusCode == http.StatusOK {
			r := decode[serve.SearchResponse](t, resp)
			if len(r.IDs) == 5 {
				ok++
			}
		} else {
			resp.Body.Close()
		}
	}
	if ok != n {
		t.Fatalf("only %d/%d searches succeeded despite a healthy sibling", ok, n)
	}
	if f.retries.Value() == 0 {
		t.Fatal("no retries recorded — the flaky replica was never hit")
	}
}

// TestAllReplicasDown: when every replica of a shard fails, the front
// answers 502 after the bounded retry, not a hang or a partial answer.
func TestAllReplicasDown(t *testing.T) {
	vecs := corpusRows(t, 113, 300, 8)
	live := buildIndex(t, vecs)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()

	_, front := frontFor(t, Config{Shards: [][]string{
		{backendFor(t, live).URL},
		{dead.URL},
	}})
	resp := postJSON(t, front.URL+"/search", serve.SearchRequest{Vector: vecs[0], K: 5})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("HTTP %d, want 502", resp.StatusCode)
	}
}

// TestHealthExclusion: probing marks a dead backend unhealthy, the front
// reports degraded, and a later sweep restores it.
func TestHealthExclusion(t *testing.T) {
	vecs := corpusRows(t, 127, 300, 8)
	ix := buildIndex(t, vecs)
	good := backendFor(t, ix)

	var down sync.Mutex
	failing := false
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		down.Lock()
		f := failing
		down.Unlock()
		if f {
			http.Error(w, "dead", http.StatusInternalServerError)
			return
		}
		http.Redirect(w, r, good.URL+r.URL.Path, http.StatusTemporaryRedirect)
	}))
	defer proxy.Close()

	f, front := frontFor(t, Config{Shards: [][]string{{proxy.URL, good.URL}}})

	hz := decode[FrontHealthz](t, mustGet(t, front.URL+"/healthz"))
	if hz.Status != "ok" || hz.HealthyBackends != 2 {
		t.Fatalf("initial health %+v", hz)
	}

	down.Lock()
	failing = true
	down.Unlock()
	f.ProbeHealth(context.Background())
	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz = decode[FrontHealthz](t, resp)
	if hz.HealthyBackends != 1 {
		t.Fatalf("after failure: %+v, want 1 healthy", hz)
	}
	// Queries keep succeeding through the surviving sibling.
	sresp := postJSON(t, front.URL+"/search", serve.SearchRequest{Vector: vecs[0], K: 5, Probes: 2})
	r := decode[serve.SearchResponse](t, sresp)
	if len(r.IDs) != 5 {
		t.Fatalf("search degraded: %+v", r)
	}

	down.Lock()
	failing = false
	down.Unlock()
	f.ProbeHealth(context.Background())
	hz = decode[FrontHealthz](t, mustGet(t, front.URL+"/healthz"))
	if hz.Status != "ok" || hz.HealthyBackends != 2 {
		t.Fatalf("after recovery: %+v", hz)
	}
}

// TestBackpressure: with MaxInFlight 1 and a slow backend, concurrent
// requests are shed with 429 instead of queueing.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			_ = json.NewEncoder(w).Encode(serve.HealthzResponse{Status: "ok", IndexLoaded: true})
			return
		}
		<-release
		_ = json.NewEncoder(w).Encode(serve.SearchResponse{IDs: []int{0}, Distances: []float32{0}})
	}))
	defer slow.Close()

	f, front := frontFor(t, Config{
		Shards: [][]string{{slow.URL}}, MaxInFlight: 1, Timeout: 10 * time.Second,
	})

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		resp := postJSON(t, front.URL+"/search", serve.SearchRequest{Vector: []float32{1}, K: 1})
		resp.Body.Close()
	}()
	<-started
	// Wait until the in-flight slot is actually held.
	deadline := time.Now().Add(2 * time.Second)
	for len(f.sem) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, front.URL+"/search", serve.SearchRequest{Vector: []float32{1}, K: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	if f.rejected.Value() == 0 {
		t.Fatal("front_rejected_total not incremented")
	}
	close(release)
	wg.Wait()
}

// TestFrontMetrics: the front's /metrics scrape carries the per-backend
// and fan-out series.
func TestFrontMetrics(t *testing.T) {
	vecs := corpusRows(t, 131, 300, 8)
	union := buildIndex(t, vecs)
	shards, err := union.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	b0, b1 := backendFor(t, shards[0]), backendFor(t, shards[1])
	_, front := frontFor(t, Config{Shards: [][]string{{b0.URL}, {b1.URL}}})

	resp := postJSON(t, front.URL+"/search", serve.SearchRequest{Vector: vecs[0], K: 5, Probes: 2})
	resp.Body.Close()

	mresp := mustGet(t, front.URL+"/metrics")
	defer mresp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := mresp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	for _, series := range []string{
		"front_fanout_total 2",
		`front_backend_requests_total{backend="` + b0.URL + `"} 1`,
		`front_backend_requests_total{backend="` + b1.URL + `"} 1`,
		"front_healthy_backends 2",
		"front_rejected_total 0",
		"front_retries_total 0",
		`http_requests_total{endpoint="/search"} 1`,
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("series %q missing from scrape:\n%s", series, body)
		}
	}
}

func mustGet(t testing.TB, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return resp
}
