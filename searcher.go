package usp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/par"
	"repro/internal/vecmath"
)

// Searcher is a reusable query context over an Index: it owns every scratch
// buffer the online phase needs (model forward-pass buffers, candidate list,
// top-k selector, result staging), so repeated queries allocate nothing
// steady-state beyond the returned result slice. A Searcher is NOT safe for
// concurrent use — give each goroutine its own (NewSearcher is cheap, and the
// Index keeps an internal pool for the convenience entry points). Concurrent
// Searchers over one Index are safe, including concurrently with Add,
// Delete, and compaction: every query resolves the atomically published
// epoch once and runs lock-free against that immutable snapshot.
type Searcher struct {
	ix    *Index
	qs    core.QueryScratch
	cands []int32
	tk    *vecmath.TopK
	nbrs  []vecmath.Neighbor
	// skipped is the tombstone-filter drop count of the most recent query.
	skipped int
	// routeBins stages Add's per-member routing decisions (Index.Add
	// borrows a pooled Searcher for its pre-lock forward passes).
	routeBins []int
	// Quantized-path scratch: the per-query flat ADC lookup table, the
	// ADC pass's top-rerankK survivors, the id list handed to the exact
	// re-rank, and Add's staged row code.
	lut     []float32
	adc     []vecmath.Neighbor
	rerank  []int32
	codeBuf []uint8
	// Batched-path scratch: the staged-chunk routing buffers and the flat
	// per-chunk ADC table arena of the quantized batch path.
	bs       core.BatchScratch
	lutArena []float32
}

// NewSearcher returns a fresh query context for the index. Buffers grow on
// first use and are retained across queries.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{ix: ix, tk: vecmath.NewTopK(1)}
}

// gatherCandidates fills s.cands for q against the given epoch: per probed
// bin, the frozen CSR range followed by the epoch's spill entries. The
// candidate list may still contain tombstoned ids — the scan filters them,
// so gathering stays branch-free.
func (s *Searcher) gatherCandidates(ep *epoch, q []float32, probes int, union bool) {
	s.cands = s.cands[:0]
	if ep.hier != nil {
		s.cands = ep.hier.AppendCandidatesExtra(s.cands, q, probes, &s.qs, ep.extra())
		return
	}
	mode := core.BestConfidence
	if union {
		mode = core.UnionProbe
	}
	s.cands = ep.ens.AppendCandidatesExtra(s.cands, q, probes, mode, &s.qs, ep.data.N, ep.extra())
}

// Search returns the k approximate nearest neighbors of q. Steady-state it
// performs a single allocation: the returned result slice. Use SearchInto
// with a recycled slice to eliminate that too.
func (s *Searcher) Search(q []float32, k int, opt SearchOptions) ([]Result, error) {
	return s.SearchInto(make([]Result, 0, k), q, k, opt)
}

// SearchInto appends the k approximate nearest neighbors of q to dst and
// returns it. With a recycled dst it allocates nothing steady-state. The
// query runs entirely against one epoch snapshot: it never blocks on
// writers and observes either all or none of any concurrent mutation.
func (s *Searcher) SearchInto(dst []Result, q []float32, k int, opt SearchOptions) ([]Result, error) {
	ix := s.ix
	if k <= 0 {
		ix.tel.queryErrors.Inc()
		return nil, fmt.Errorf("%w: k must be positive", ErrInvalid)
	}
	if len(q) != ix.dim {
		ix.tel.queryErrors.Inc()
		return nil, fmt.Errorf("%w: query dim %d, index dim %d", ErrInvalid, len(q), ix.dim)
	}
	probes := opt.Probes
	if probes <= 0 {
		probes = 1
	}
	start := time.Now()
	ep := ix.live.Load()
	s.gatherCandidates(ep, q, probes, opt.UnionEnsemble)
	rerankDepth := 0
	if qv := ep.quant; qv != nil {
		rerankDepth = s.scanQuantized(ep, q, k, opt.RerankK)
	} else {
		s.nbrs, s.skipped = knn.SearchSubsetIntoCounted(s.nbrs[:0], ep.data, s.cands, q, k, s.tk, ep.tombs)
	}
	for _, n := range s.nbrs {
		dst = append(dst, Result{ID: n.Index, Distance: n.Dist})
	}
	// A query's telemetry is a handful of uncontended atomic adds plus two
	// clock reads — allocation-free, so the engine's 0 allocs/op steady
	// state survives instrumentation (benchmark-asserted in CI).
	m := ix.tel
	m.queries.Inc()
	m.candidates.Add(uint64(len(s.cands)))
	m.binsProbed.Add(uint64(ix.probedBins(probes, opt.UnionEnsemble)))
	m.tombstonesSkipped.Add(uint64(s.skipped))
	if ep.quant != nil {
		m.adcQueries.Inc()
		m.rerankCandidates.Add(uint64(rerankDepth))
	}
	m.queryLatency.ObserveDuration(time.Since(start))
	return dst, nil
}

// scanQuantized runs the two-phase quantized scan against one epoch:
// phase 1 scores every gathered candidate from its PQ code via a per-query
// lookup table (asymmetric distance) and keeps the rerankK best; phase 2
// exactly re-scores those survivors from the float rows and keeps the k
// best. It fills s.nbrs and s.skipped like the float scan and returns the
// re-rank depth (0 when re-ranking was skipped). With rerankK < 0, or in
// memory-tight mode (no float rows), phase 2 is skipped and the ADC
// distances are returned directly — approximate, monotone in the true
// distance only up to quantization error. All scratch lives on s, so
// steady-state the scan allocates nothing.
func (s *Searcher) scanQuantized(ep *epoch, q []float32, k, rerankK int) int {
	s.lut = ep.quant.pq.AppendLUT(s.lut[:0], q)
	return s.scanQuantizedLUT(ep, q, k, rerankK, s.lut)
}

// scanQuantizedLUT is scanQuantized with a caller-provided ADC table — the
// batched path builds the whole chunk's tables in one AppendLUTBatch call
// and hands each query its slice of the arena. The table bits are identical
// either way, so the scan result is too.
func (s *Searcher) scanQuantizedLUT(ep *epoch, q []float32, k, rerankK int, lut []float32) int {
	qv := ep.quant
	m, kTab := qv.pq.Subspaces, qv.pq.K
	if rerankK < 0 || qv.tight {
		s.nbrs, s.skipped = knn.SearchSubsetADCIntoCounted(s.nbrs[:0], qv.codes, m, kTab, lut, s.cands, k, s.tk, ep.tombs)
		return 0
	}
	if rerankK == 0 {
		rerankK = 4 * k
	}
	if rerankK < k {
		rerankK = k
	}
	s.adc, s.skipped = knn.SearchSubsetADCIntoCounted(s.adc[:0], qv.codes, m, kTab, lut, s.cands, rerankK, s.tk, ep.tombs)
	s.rerank = s.rerank[:0]
	for _, nb := range s.adc {
		s.rerank = append(s.rerank, int32(nb.Index))
	}
	// Tombstones were already filtered in phase 1, so the exact pass
	// passes skip=nil and cannot double-count.
	s.nbrs = knn.SearchSubsetInto(s.nbrs[:0], ep.data, s.rerank, q, k, s.tk, nil)
	return len(s.rerank)
}

// probedBins is the number of partition bins a query with these options
// scans: best-confidence probes min(probes, bins) bins of one model, union
// mode probes that many in every ensemble member (members is 1 for a
// hierarchy, so the modes coincide there).
func (ix *Index) probedBins(probes int, union bool) int {
	if probes > ix.slotsPerMember {
		probes = ix.slotsPerMember
	}
	if union {
		return probes * ix.members
	}
	return probes
}

// Scanned reports the size of the candidate set |C(q)| of the most recent
// query — the computational-cost metric of the paper's figures — without
// re-deriving it. Tombstoned candidates count: they were gathered and
// skipped by the scan, which is exactly the work performed.
func (s *Searcher) Scanned() int { return len(s.cands) }

// Skipped reports how many of the most recent query's candidates the
// tombstone filter dropped — wasted gather work that compaction reclaims.
func (s *Searcher) Skipped() int { return s.skipped }

// getSearcher takes a pooled Searcher (the pool's zero value works: misses
// construct a fresh one).
func (ix *Index) getSearcher() *Searcher {
	if v := ix.searchers.Get(); v != nil {
		return v.(*Searcher)
	}
	return ix.NewSearcher()
}

func (ix *Index) putSearcher(s *Searcher) { ix.searchers.Put(s) }

// Batched-pipeline staging sizes. The forward chunk bounds the staged query
// matrix and per-member probability matrices; the quantized chunk is smaller
// because each staged query additionally owns a Subspaces×K ADC table in the
// worker's LUT arena.
const (
	batchForwardChunk = 256
	batchQuantChunk   = 32
)

// SearchBatch answers many queries in one call as a staged pipeline: the
// batch fans out over the worker pool, and each worker processes its span in
// staged chunks — one batched routing forward pass for the whole chunk (one
// dispatched MatMul per Dense layer instead of a per-query AXPY loop; on the
// quantized path, one batched ADC-table build), then a per-query candidate
// gather + scan through the worker's pooled scratch. Results align with
// queries by position and are bit-identical to looped single Search calls:
// batch and single-row inference share the same dispatched microkernels and
// accumulation order (pinned by TestSearchBatchBitIdentical).
//
// It is safe to call concurrently with Search, Add, Delete, and compaction;
// each staged chunk resolves one epoch snapshot, so a chunk observes either
// all or none of any concurrent mutation.
func (ix *Index) SearchBatch(queries [][]float32, k int, opt SearchOptions) ([][]Result, error) {
	return ix.searchBatch(queries, k, opt, nil)
}

// SearchBatchScanned is SearchBatch plus each query's candidate-set size
// |C(q)| (the per-query Searcher.Scanned value), which the serving tier
// reports per response.
func (ix *Index) SearchBatchScanned(queries [][]float32, k int, opt SearchOptions) ([][]Result, []int, error) {
	scanned := make([]int, len(queries))
	out, err := ix.searchBatch(queries, k, opt, scanned)
	if err != nil {
		return nil, nil, err
	}
	return out, scanned, nil
}

func (ix *Index) searchBatch(queries [][]float32, k int, opt SearchOptions, scanned []int) ([][]Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k must be positive", ErrInvalid)
	}
	for i, q := range queries {
		if len(q) != ix.dim {
			return nil, fmt.Errorf("%w: query %d dim %d, index dim %d", ErrInvalid, i, len(q), ix.dim)
		}
	}
	out := make([][]Result, len(queries))
	par.ForChunksMin(len(queries), 1, func(lo, hi int) {
		s := ix.getSearcher()
		defer ix.putSearcher(s)
		// One flat result arena per worker, resliced into the output rows:
		// each query appends at most k results, so the arena never regrows
		// and the batch path performs no per-query allocation.
		arena := make([]Result, 0, (hi-lo)*k)
		for clo := lo; clo < hi; {
			ep := s.ix.live.Load()
			step := batchForwardChunk
			if ep.quant != nil {
				step = batchQuantChunk
			}
			chi := clo + step
			if chi > hi {
				chi = hi
			}
			arena = s.searchChunk(ep, queries[clo:chi], k, opt, out[clo:chi], arena, scannedTail(scanned, clo, chi))
			clo = chi
		}
	})
	return out, nil
}

func scannedTail(scanned []int, lo, hi int) []int {
	if scanned == nil {
		return nil
	}
	return scanned[lo:hi]
}

// searchChunk runs the staged pipeline for one chunk against one epoch
// snapshot: stage the chunk's rows into the scratch matrix, run the batched
// routing forward pass (and, quantized, the batched ADC-table build), then
// gather + scan each query with the single-query scratch, appending results
// to the arena and reslicing out[i] from it.
func (s *Searcher) searchChunk(ep *epoch, queries [][]float32, k int, opt SearchOptions, out [][]Result, arena []Result, scanned []int) []Result {
	ix := s.ix
	probes := opt.Probes
	if probes <= 0 {
		probes = 1
	}
	mode := core.BestConfidence
	if opt.UnionEnsemble {
		mode = core.UnionProbe
	}
	start := time.Now()

	// Stage the chunk and run the whole chunk's routing inference at once.
	buf := s.bs.Stage(len(queries), ix.dim)
	for i, q := range queries {
		copy(buf[i*ix.dim:(i+1)*ix.dim], q)
	}
	if ep.hier != nil {
		ep.hier.RouteBatch(&s.bs)
	} else {
		ep.ens.RouteBatch(&s.bs, mode)
	}
	lutStride := 0
	if qv := ep.quant; qv != nil {
		lutStride = qv.pq.Subspaces * qv.pq.K
		s.lutArena = qv.pq.AppendLUTBatch(s.lutArena[:0], queries)
	}

	m := ix.tel
	binsProbed := uint64(ix.probedBins(probes, opt.UnionEnsemble))
	for i, q := range queries {
		s.cands = s.cands[:0]
		if ep.hier != nil {
			s.cands = ep.hier.AppendCandidatesRowBatch(s.cands, i, probes, &s.bs, ep.extra())
		} else {
			s.cands = ep.ens.AppendCandidatesRowBatch(s.cands, i, probes, mode, &s.bs, ep.data.N, ep.extra())
		}
		rerankDepth := 0
		if ep.quant != nil {
			rerankDepth = s.scanQuantizedLUT(ep, q, k, opt.RerankK, s.lutArena[i*lutStride:(i+1)*lutStride])
		} else {
			s.nbrs, s.skipped = knn.SearchSubsetIntoCounted(s.nbrs[:0], ep.data, s.cands, q, k, s.tk, ep.tombs)
		}
		mark := len(arena)
		for _, n := range s.nbrs {
			arena = append(arena, Result{ID: n.Index, Distance: n.Dist})
		}
		out[i] = arena[mark:len(arena):len(arena)]
		if scanned != nil {
			scanned[i] = len(s.cands)
		}
		m.queries.Inc()
		m.candidates.Add(uint64(len(s.cands)))
		m.binsProbed.Add(binsProbed)
		m.tombstonesSkipped.Add(uint64(s.skipped))
		if ep.quant != nil {
			m.adcQueries.Inc()
			m.rerankCandidates.Add(uint64(rerankDepth))
		}
	}
	// Latency telemetry: each query's recorded latency is its amortized
	// share of the chunk, keeping usp_query_latency's count aligned with
	// usp_queries_total while reflecting the batch's amortization.
	per := time.Since(start) / time.Duration(len(queries))
	for range queries {
		m.queryLatency.ObserveDuration(per)
	}
	return arena
}
