package vecmath

import (
	"math/rand"
	"testing"
)

// TestMergeSortedNeighbors cross-checks the bounded k-way merge against the
// reference construction a single process uses: push every candidate into
// one TopK and drain it. With tie-free distances (the real case — squared
// L2 over distinct float vectors) the two must agree bit-for-bit; that
// equivalence is what makes sharded fan-out results identical to
// single-process results.
func TestMergeSortedNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.Intn(5)
		k := 1 + rng.Intn(12)

		refTK := NewTopK(k)
		lists := make([][]Neighbor, nLists)
		nextID := 0
		for li := range lists {
			n := rng.Intn(3 * k)
			tk := NewTopK(k)
			for i := 0; i < n; i++ {
				d := rng.Float32() // continuous: exact ties have measure zero
				tk.Push(nextID, d)
				refTK.Push(nextID, d)
				nextID++
			}
			lists[li] = tk.AppendSorted(nil)
		}
		ref := refTK.AppendSorted(nil)

		got := MergeSortedNeighbors(nil, k, lists...)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: merged %d neighbors, want %d", trial, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: position %d: got %+v want %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestMergeSortedNeighborsTies pins the cross-list tie-break: equal
// distances resolve by ascending index, regardless of which list holds them.
func TestMergeSortedNeighborsTies(t *testing.T) {
	a := []Neighbor{{Index: 4, Dist: 1}, {Index: 9, Dist: 2}}
	b := []Neighbor{{Index: 2, Dist: 1}, {Index: 3, Dist: 2}}
	got := MergeSortedNeighbors(nil, 3, a, b)
	want := []Neighbor{{Index: 2, Dist: 1}, {Index: 4, Dist: 1}, {Index: 3, Dist: 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeSortedNeighborsEdges(t *testing.T) {
	if out := MergeSortedNeighbors(nil, 0, []Neighbor{{1, 1}}); len(out) != 0 {
		t.Fatal("k=0 must merge nothing")
	}
	if out := MergeSortedNeighbors(nil, 3); len(out) != 0 {
		t.Fatal("no lists must merge nothing")
	}
	dst := []Neighbor{{99, 0}}
	out := MergeSortedNeighbors(dst, 2, []Neighbor{{1, 1}, {2, 2}, {3, 3}})
	if len(out) != 3 || out[0] != (Neighbor{99, 0}) || out[1] != (Neighbor{1, 1}) || out[2] != (Neighbor{2, 2}) {
		t.Fatalf("append semantics wrong: %+v", out)
	}
	// Wide merge exercises the allocated-cursor path.
	lists := make([][]Neighbor, 20)
	for i := range lists {
		lists[i] = []Neighbor{{Index: i, Dist: float32(i)}}
	}
	out = MergeSortedNeighbors(nil, 5, lists...)
	if len(out) != 5 || out[0].Index != 0 || out[4].Index != 4 {
		t.Fatalf("wide merge wrong: %+v", out)
	}
}
