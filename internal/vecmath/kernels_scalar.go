package vecmath

// The portable kernel implementations. These are the universal fallback of
// the dispatch layer (see dispatch.go) and the reference implementation the
// SIMD ports are equivalence-tested against. The 4-way manual unrolling
// compiles to reasonably tight scalar loops on every architecture, and the
// fixed accumulator order makes results deterministic run to run.
//
// Contract shared by every implementation (scalar and assembly): the slices
// have equal length (the public wrappers enforce it), results depend only on
// the element values, and a length-0 input yields 0 / no-op.

func dotScalar(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

func squaredL2Scalar(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

func axpyScalar(alpha float32, x, y []float32) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// lutSumScalar gathers one float per code byte from a flat row-major M×k
// lookup table (row s spans lut[s*k:(s+1)*k]) and sums them — the ADC
// asymmetric-distance evaluation. Preconditions enforced by the public
// wrapper: len(lut) == len(code)*k and every code[s] < k.
func lutSumScalar(lut []float32, k int, code []uint8) float32 {
	var s0, s1, s2, s3 float32
	m := len(code)
	i, j := 0, 0 // j tracks i*k
	for ; i+4 <= m; i, j = i+4, j+4*k {
		s0 += lut[j+int(code[i])]
		s1 += lut[j+k+int(code[i+1])]
		s2 += lut[j+2*k+int(code[i+2])]
		s3 += lut[j+3*k+int(code[i+3])]
	}
	for ; i < m; i, j = i+1, j+k {
		s0 += lut[j+int(code[i])]
	}
	return s0 + s1 + s2 + s3
}
