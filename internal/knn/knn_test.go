package knn

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

func TestSearchMatchesSortedScan(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 20+rng.Intn(80), 1+rng.Intn(8)
		base := dataset.Uniform(n, d, rng)
		q := make([]float32, d)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		k := 1 + rng.Intn(10)
		got := Search(base, q, k)

		type pair struct {
			i int
			d float32
		}
		all := make([]pair, n)
		for i := 0; i < n; i++ {
			all[i] = pair{i, vecmath.SquaredL2(q, base.Row(i))}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].d != all[b].d {
				return all[a].d < all[b].d
			}
			return all[a].i < all[b].i
		})
		if k > n {
			k = n
		}
		for x := 0; x < k; x++ {
			if got[x].Index != all[x].i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchSubsetRestricts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := dataset.Uniform(50, 3, rng)
	q := base.Row(0)
	subset := []int{10, 20, 30}
	got := SearchSubset(base, subset, q, 2)
	for _, nb := range got {
		found := false
		for _, s := range subset {
			if nb.Index == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("result %d outside subset", nb.Index)
		}
	}
}

func TestBuildMatrixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := dataset.Uniform(60, 4, rng)
	k := 5
	m := BuildMatrix(base, k)
	if len(m.Neighbors) != base.N {
		t.Fatal("row count mismatch")
	}
	for i, row := range m.Neighbors {
		if len(row) != k {
			t.Fatalf("row %d has %d neighbors", i, len(row))
		}
		var prev float32 = -1
		for _, j := range row {
			if int(j) == i {
				t.Fatalf("point %d is its own neighbor", i)
			}
			d := vecmath.SquaredL2(base.Row(i), base.Row(int(j)))
			if d < prev {
				t.Fatalf("row %d not sorted by distance", i)
			}
			prev = d
		}
		// The worst retained neighbor must beat every excluded point.
		worst := vecmath.SquaredL2(base.Row(i), base.Row(int(row[k-1])))
		inRow := map[int32]bool{}
		for _, j := range row {
			inRow[j] = true
		}
		for j := 0; j < base.N; j++ {
			if j == i || inRow[int32(j)] {
				continue
			}
			if vecmath.SquaredL2(base.Row(i), base.Row(j)) < worst {
				t.Fatalf("point %d: excluded point %d closer than retained", i, j)
			}
		}
	}
}

func TestBuildMatrixPanicsOnBadK(t *testing.T) {
	base := dataset.Uniform(10, 2, rand.New(rand.NewSource(3)))
	for _, k := range []int{0, 10, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("k=%d should panic", k)
				}
			}()
			BuildMatrix(base, k)
		}()
	}
}

func TestGroundTruthSelfQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := dataset.Uniform(30, 3, rng)
	// Querying with base points: nearest neighbor of base.Row(i) is i itself.
	gt := GroundTruth(base, base, 1)
	for i, row := range gt {
		if row[0] != int32(i) {
			t.Fatalf("query %d: nearest is %d", i, row[0])
		}
	}
}

func TestRecall(t *testing.T) {
	truth := []int32{1, 2, 3, 4}
	if r := Recall([]int{1, 2, 3, 4}, truth); r != 1 {
		t.Fatalf("full recall = %v", r)
	}
	if r := Recall([]int{1, 2, 9, 8}, truth); r != 0.5 {
		t.Fatalf("half recall = %v", r)
	}
	if r := Recall(nil, truth); r != 0 {
		t.Fatalf("empty recall = %v", r)
	}
	if r := Recall([]int{1}, nil); r != 0 {
		t.Fatalf("empty truth recall = %v", r)
	}
	ns := []vecmath.Neighbor{{Index: 1}, {Index: 7}}
	if r := RecallNeighbors(ns, truth); r != 0.25 {
		t.Fatalf("neighbor recall = %v", r)
	}
}
