package vecmath

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzKernelEquivalence feeds arbitrary byte strings to every SIMD kernel
// and checks agreement with the scalar reference under the same forward
// error bound the deterministic equivalence tests use. The raw bytes decode
// into two equal-length float32 vectors (so lengths 0, 1 and every odd tail
// arise naturally from the input length); non-finite and extreme values are
// squashed to keep the error bound meaningful — NaN/Inf propagation is
// identical in all implementations but makes tolerances vacuous.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{}, float32(1.5))                                       // empty
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, float32(0))                   // length 1
	f.Add(make([]byte, 8*7), float32(-2))                               // odd tail
	f.Add(make([]byte, 8*8), float32(0.25))                             // one lane block
	f.Add(make([]byte, 8*129), float32(1e3))                            // big + tail
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0x80, 0x7f}, float32(1)) // NaN/Inf bits
	f.Fuzz(func(t *testing.T, raw []byte, alpha float32) {
		arch, ok := archKernels()
		if !ok {
			t.Skip("no SIMD kernels on this architecture")
		}
		n := len(raw) / 8
		a := make([]float32, n)
		b := make([]float32, n)
		for i := 0; i < n; i++ {
			a[i] = sanitize(binary.LittleEndian.Uint32(raw[i*8:]))
			b[i] = sanitize(binary.LittleEndian.Uint32(raw[i*8+4:]))
		}
		if !isFinite32(alpha) || math.Abs(float64(alpha)) > 1e6 {
			alpha = 1
		}

		var dotMass, sqMass float64
		for i := range a {
			dotMass += math.Abs(float64(a[i]) * float64(b[i]))
			d := float64(a[i]) - float64(b[i])
			sqMass += d * d
		}
		if got, want := float64(arch.dot(a, b)), float64(dotScalar(a, b)); math.Abs(got-want) > reductionTol(n, dotMass) {
			t.Fatalf("dot: %s=%v scalar=%v (n=%d)", arch.name, got, want, n)
		}
		if got, want := float64(arch.sqL2(a, b)), float64(squaredL2Scalar(a, b)); math.Abs(got-want) > reductionTol(n, sqMass) {
			t.Fatalf("sqL2: %s=%v scalar=%v (n=%d)", arch.name, got, want, n)
		}

		y1 := append([]float32(nil), b...)
		y2 := append([]float32(nil), b...)
		axpyScalar(alpha, a, y1)
		arch.axpy(alpha, a, y2)
		const eps = 1.1920929e-7
		for i := range y1 {
			tol := 4*eps*(math.Abs(float64(y1[i]))+math.Abs(float64(alpha)*float64(a[i]))) + 1e-12
			if d := math.Abs(float64(y1[i]) - float64(y2[i])); d > tol {
				t.Fatalf("axpy: y[%d] %s=%v scalar=%v alpha=%v", i, arch.name, y2[i], y1[i], alpha)
			}
		}

		// LUT-sum leg: reuse the decoded floats as an ADC table. The table
		// width k is derived from the raw bytes (1..256), the subspace count
		// from what the floats can fill, and codes from the raw bytes
		// reduced into range — so block boundaries, degenerate k=1 rows and
		// the k=256 ceiling all arise from fuzzed inputs.
		if n > 0 {
			k := 1 + int(raw[0])
			m := (2 * n) / k // a and b back-to-back form a 2n-float table
			if m > 0 {
				flat := make([]float32, 0, 2*n)
				flat = append(flat, a...)
				flat = append(flat, b...)
				lut := flat[:m*k]
				code := make([]uint8, m)
				for i := range code {
					code[i] = uint8(int(raw[i%len(raw)]) % k)
				}
				var lutMass float64
				for s, c := range code {
					lutMass += math.Abs(float64(lut[s*k+int(c)]))
				}
				if got, want := float64(arch.lutSum(lut, k, code)), float64(lutSumScalar(lut, k, code)); math.Abs(got-want) > reductionTol(m, lutMass) {
					t.Fatalf("lutSum: %s=%v scalar=%v (m=%d k=%d)", arch.name, got, want, m, k)
				}
			}
		}
	})
}

// sanitize maps arbitrary float32 bit patterns into a finite, moderate
// range so tolerance comparisons stay sharp.
func sanitize(bits uint32) float32 {
	v := math.Float32frombits(bits)
	if !isFinite32(v) {
		return 1
	}
	if av := math.Abs(float64(v)); av > 1e12 || (av != 0 && av < 1e-12) {
		return float32(math.Mod(av, 1000)) // fold extreme magnitudes down
	}
	return v
}

func isFinite32(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
