// Package bitset provides the immutable tombstone bitmap of the index
// lifecycle: an epoch-published Set is never mutated after it becomes
// visible to readers, so lock-free queries can test membership while a
// writer prepares the next epoch from a copy.
package bitset

import "math/bits"

// Set is a fixed-universe bitmap over non-negative integers. A nil *Set is
// the valid (and preferred) empty set: Has and Count are nil-safe, so hot
// paths can branch on `s == nil` once and skip per-element checks entirely.
//
// Sets reachable from more than one goroutine must be treated as immutable;
// derive updated sets with With.
type Set struct {
	words []uint64
	count int
}

// Has reports whether i is in the set. Safe on a nil receiver and for any
// i ≥ 0 (indices beyond the allocated universe are simply absent).
func (s *Set) Has(i int) bool {
	if s == nil {
		return false
	}
	w := i >> 6
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits. Safe on a nil receiver.
func (s *Set) Count() int {
	if s == nil {
		return 0
	}
	return s.count
}

// With returns a copy of s with bit i set (s itself is unchanged; a nil
// receiver acts as the empty set). Setting an already-present bit returns a
// copy equal to s.
func (s *Set) With(i int) *Set {
	if i < 0 {
		panic("bitset: negative index")
	}
	need := i>>6 + 1
	n := &Set{}
	if s != nil {
		n.count = s.count
		if len(s.words) > need {
			need = len(s.words)
		}
		n.words = make([]uint64, need)
		copy(n.words, s.words)
	} else {
		n.words = make([]uint64, need)
	}
	if n.words[i>>6]&(1<<(uint(i)&63)) == 0 {
		n.words[i>>6] |= 1 << (uint(i) & 63)
		n.count++
	}
	return n
}

// Union returns the set of bits present in either a or b, or nil when both
// are empty. The result may share storage with an argument; treat all three
// as immutable.
func Union(a, b *Set) *Set {
	if a == nil || a.count == 0 {
		return b
	}
	if b == nil || b.count == 0 {
		return a
	}
	long, short := a.words, b.words
	if len(short) > len(long) {
		long, short = short, long
	}
	words := make([]uint64, len(long))
	copy(words, long)
	count := 0
	for w := range words {
		if w < len(short) {
			words[w] |= short[w]
		}
		count += bits.OnesCount64(words[w])
	}
	return &Set{words: words, count: count}
}

// Diff returns the set of bits present in a but not in b, or nil when that
// difference is empty. Both arguments may be nil.
func Diff(a, b *Set) *Set {
	if a == nil || a.count == 0 {
		return nil
	}
	if b == nil || b.count == 0 {
		// Callers treat Sets as immutable, so sharing a is safe.
		return a
	}
	words := make([]uint64, len(a.words))
	count := 0
	for w, av := range a.words {
		v := av
		if w < len(b.words) {
			v &^= b.words[w]
		}
		words[w] = v
		count += bits.OnesCount64(v)
	}
	if count == 0 {
		return nil
	}
	return &Set{words: words, count: count}
}

// Slice returns the bits of s in [lo, hi) shifted down by lo — the bitmap a
// contiguous dataset shard inherits from its parent, renumbered to local
// ids — or nil when that window is empty. s is unchanged; nil-safe.
func (s *Set) Slice(lo, hi int) *Set {
	if s == nil || s.count == 0 || hi <= lo {
		return nil
	}
	words := make([]uint64, (hi-lo+63)>>6)
	count := 0
	for w := range words {
		base := lo + w<<6
		var v uint64
		// Assemble the shifted word from the (up to two) source words that
		// overlap it, then mask off bits at or beyond hi.
		if sw := base >> 6; sw < len(s.words) {
			v = s.words[sw] >> (uint(base) & 63)
			if off := uint(base) & 63; off != 0 && sw+1 < len(s.words) {
				v |= s.words[sw+1] << (64 - off)
			}
		}
		if rem := hi - base; rem < 64 {
			v &= 1<<uint(rem) - 1
		}
		words[w] = v
		count += bits.OnesCount64(v)
	}
	if count == 0 {
		return nil
	}
	return &Set{words: words, count: count}
}

// Words exposes the backing bitmap for serialization. The returned slice
// must not be modified. Nil-safe.
func (s *Set) Words() []uint64 {
	if s == nil {
		return nil
	}
	return s.words
}

// FromWords reconstructs a Set from a serialized bitmap, recomputing the
// cardinality. An empty bitmap yields nil.
func FromWords(words []uint64) *Set {
	count := 0
	for _, w := range words {
		count += bits.OnesCount64(w)
	}
	if count == 0 {
		return nil
	}
	return &Set{words: words, count: count}
}
