// Package tensor provides a dense row-major float32 matrix type and the
// blocked, parallel linear-algebra kernels (matmul variants, transpose,
// row/column reductions) that back the neural-network stack in internal/nn.
//
// This package is the replacement for the tensor core of the deep-learning
// framework the paper uses (PyTorch); the operation set is deliberately
// limited to what a sequential MLP with batch normalization needs.
//
// The matmul family is built on the dispatched vecmath microkernels (AXPY
// for the k-major variants, Dot for the contiguous-inner-product one), so
// it picks up the SIMD ports automatically and — critically — shares its
// accumulation arithmetic with the single-row inference path in internal/nn
// (nn.(*Dense).inferRow calls the same AXPY kernel), keeping batch and
// single-row results bit-identical per process whichever implementation is
// dispatched.
package tensor

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/vecmath"
)

// Matrix is a dense row-major matrix of float32.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// New allocates a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (row-major) in a Matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows copies a slice of equal-length rows into a new Matrix.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src's contents into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("tensor: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// T returns a newly allocated transpose of m.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatMul computes dst = a · b. dst must be a.Rows×b.Cols and must not alias a
// or b. The kernel parallelizes over rows of a and iterates k-major within a
// row so that the inner loop is a contiguous AXPY over b's rows (cache
// friendly for row-major operands), dispatched through vecmath to the SIMD
// port when one is active. Zero inputs are skipped — worthwhile for the
// sparse activations ReLU produces, and exactly mirrored by nn's single-row
// inference path.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	// Small operands run inline: par.ForChunks would execute them on the
	// calling goroutine anyway, and skipping it keeps the micro-batched
	// inference path free of the escaping-closure allocation (the batched
	// query path is 0-allocs/op-gated in CI).
	if a.Rows < seqRowThreshold || par.Workers() == 1 {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	par.ForChunks(a.Rows, func(lo, hi int) {
		matMulRows(dst, a, b, lo, hi)
	})
}

// seqRowThreshold mirrors par's sequential-fallback span: row counts below
// it would not be split across goroutines, so the parallel dispatch (and its
// closure) is pure overhead.
const seqRowThreshold = 1024

func matMulRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for x := range drow {
			drow[x] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			vecmath.AXPY(av, b.Row(k), drow)
		}
	}
}

// MatMulATB computes dst = aᵀ · b without materializing the transpose.
// Shapes: a is n×r, b is n×c, dst is r×c. Used for weight gradients
// (dW = Xᵀ·dY).
func MatMulATB(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulATB shape mismatch")
	}
	// Parallelize over the rows of dst (columns of a): each worker owns a
	// disjoint slice of output rows, so no synchronization is needed.
	par.ForChunks(dst.Rows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			drow := dst.Row(r)
			for x := range drow {
				drow[x] = 0
			}
			for n := 0; n < a.Rows; n++ {
				av := a.At(n, r)
				if av == 0 {
					continue
				}
				vecmath.AXPY(av, b.Row(n), drow)
			}
		}
	})
}

// MatMulABT computes dst = a · bᵀ without materializing the transpose.
// Shapes: a is n×c, b is m×c, dst is n×m. The inner product over c is
// contiguous in both operands. Used for input gradients (dX = dY·Wᵀ) and for
// batched distance/dot computations.
func MatMulABT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulABT shape mismatch")
	}
	par.ForChunks(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				drow[j] = vecmath.Dot(arow, b.Row(j))
			}
		}
	})
}

// AddRowVector adds vec to every row of m in place (broadcast bias add).
func AddRowVector(m *Matrix, vec []float32) {
	if len(vec) != m.Cols {
		panic("tensor: AddRowVector length mismatch")
	}
	if m.Rows < seqRowThreshold || par.Workers() == 1 {
		addRowVectorRows(m, vec, 0, m.Rows)
		return
	}
	par.ForChunks(m.Rows, func(lo, hi int) {
		addRowVectorRows(m, vec, lo, hi)
	})
}

func addRowVectorRows(m *Matrix, vec []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		for j, v := range vec {
			row[j] += v
		}
	}
}

// ColSums accumulates the per-column sums of m into dst (float64 accumulate,
// float32 result). dst must have length m.Cols.
func ColSums(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic("tensor: ColSums length mismatch")
	}
	acc := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			acc[j] += float64(v)
		}
	}
	for j := range dst {
		dst[j] = float32(acc[j])
	}
}

// Col extracts column j into a new slice.
func (m *Matrix) Col(j int) []float32 {
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Equalish reports whether a and b have identical shape and all elements
// within tol of each other. Intended for tests.
func Equalish(a, b *Matrix, tol float32) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		d := v - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}
