package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/nn"
	"repro/internal/vecmath"
)

// Hierarchy implements the recursive partitioning of §4.4.2: a root model
// splits the dataset into levels[0] bins, a child model per bin splits its
// subset into levels[1] bins, and so on, yielding ∏levels leaf bins. A
// query's leaf-bin probability is the product of the model probabilities
// along the root→leaf path.
type Hierarchy struct {
	Levels  []int
	NumBins int
	// Bins is the global leaf lookup table: Bins[g] lists dataset point
	// indices in leaf bin g (DFS / mixed-radix order).
	Bins [][]int32
	// ProbeTemp softens node probabilities (p_b ∝ p_b^{1/T}) before they
	// are multiplied down the tree. Cross-entropy-trained nodes become
	// overconfident as weights grow, which collapses the product ranking
	// deep trees rely on for multi-probe; T in the 2–8 range restores a
	// usable ordering. 0 or 1 disables softening.
	ProbeTemp float64
	root      *hnode
}

type hnode struct {
	part     *Partitioner
	children []*hnode // nil at the last level
	leafBase int      // first global leaf-bin id under this node
}

// TrainHierarchy trains the tree of models. levels gives the branching
// factor per level (the paper's 256-bin configuration is levels = [16, 16];
// the Fig. 6 logistic-regression trees are ten levels of 2). cfg.Bins is
// ignored (overridden per level). Subsets too small to train a model are
// split round-robin by an untrained model, which only arises at depths where
// candidate sets are already tiny.
func TrainHierarchy(ds *dataset.Dataset, levels []int, cfg Config) (*Hierarchy, []TrainStats, error) {
	if len(levels) == 0 {
		return nil, nil, fmt.Errorf("core: hierarchy needs at least one level")
	}
	numBins := 1
	for _, m := range levels {
		if m < 2 {
			return nil, nil, fmt.Errorf("core: branching factors must be ≥ 2, got %v", levels)
		}
		numBins *= m
	}
	h := &Hierarchy{Levels: levels, NumBins: numBins, Bins: make([][]int32, numBins)}
	all := make([]int32, ds.N)
	for i := range all {
		all[i] = int32(i)
	}
	var stats []TrainStats
	var err error
	nextLeaf := 0
	h.root, err = trainNode(ds, all, levels, cfg, &nextLeaf, h, &stats)
	if err != nil {
		return nil, nil, err
	}
	return h, stats, nil
}

// trainNode trains the model for one subset and recurses. idx holds global
// dataset indices of the subset.
func trainNode(ds *dataset.Dataset, idx []int32, levels []int, cfg Config,
	nextLeaf *int, h *Hierarchy, stats *[]TrainStats) (*hnode, error) {

	m := levels[0]
	node := &hnode{leafBase: *nextLeaf}
	local := make([]int, len(idx))
	for i, g := range idx {
		local[i] = int(g)
	}
	sub := ds.Subset(local)

	// localBins[b] lists positions within idx assigned to bin b.
	var localBins [][]int32
	if sub.N >= 2*m && sub.N > cfg.KPrime && sub.N >= 4 {
		ncfg := cfg
		ncfg.Bins = m
		ncfg.Seed = cfg.Seed + int64(*nextLeaf)*104729
		kp := ncfg.KPrime
		if kp >= sub.N {
			kp = sub.N - 1
		}
		mat := knn.BuildMatrix(sub, kp)
		ncfg.KPrime = kp
		p, st, err := Train(sub, mat, ncfg, nil)
		if err != nil {
			return nil, fmt.Errorf("core: hierarchy node: %w", err)
		}
		*stats = append(*stats, st)
		node.part = p
		localBins = p.BinLists()
	} else {
		// Degenerate subset: untrained router, round-robin assignment.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(*nextLeaf)))
		p := &Partitioner{Model: nn.NewLogistic(ds.Dim, m, rng), M: m}
		p.Assign = make([]int32, sub.N)
		for i := 0; i < sub.N; i++ {
			p.Assign[i] = int32(i % m)
		}
		p.buildCSRFromAssign()
		node.part = p
		localBins = p.BinLists()
	}

	if len(levels) == 1 {
		// Leaf level: local bins become consecutive global leaf bins.
		for b := 0; b < m; b++ {
			g := *nextLeaf + b
			for _, li := range localBins[b] {
				h.Bins[g] = append(h.Bins[g], idx[li])
			}
		}
		*nextLeaf += m
		return node, nil
	}

	node.children = make([]*hnode, m)
	for b := 0; b < m; b++ {
		childIdx := make([]int32, len(localBins[b]))
		for i, li := range localBins[b] {
			childIdx[i] = idx[li]
		}
		child, err := trainNode(ds, childIdx, levels[1:], cfg, nextLeaf, h, stats)
		if err != nil {
			return nil, err
		}
		node.children[b] = child
	}
	return node, nil
}

// LeafProbabilities returns the query's probability for every global leaf
// bin: the product of (temperature-softened) model outputs along each
// root→leaf path.
func (h *Hierarchy) LeafProbabilities(q []float32) []float32 {
	var qs QueryScratch
	return h.LeafProbabilitiesInto(nil, q, &qs)
}

// LeafProbabilitiesInto is the allocation-free LeafProbabilities: the leaf
// distribution is written into dst (grown as needed) and every node's
// forward pass runs through the scratch's per-depth buffers. Results are
// bit-identical to LeafProbabilities.
func (h *Hierarchy) LeafProbabilitiesInto(dst []float32, q []float32, qs *QueryScratch) []float32 {
	if cap(dst) < h.NumBins {
		dst = make([]float32, h.NumBins)
	}
	dst = dst[:h.NumBins]
	h.walkNode(dst, h.root, 0, 1, q, qs)
	return dst
}

// walkNode multiplies node distributions down the tree into out. Each depth
// owns one scratch buffer: a parent's distribution stays live while its
// children recurse, but siblings at the same depth can share.
func (h *Hierarchy) walkNode(out []float32, n *hnode, depth int, prob float32, q []float32, qs *QueryScratch) {
	probs := n.part.Model.PredictVecInto(qs.nodeBuf(depth), q, &qs.Infer)
	qs.nodeProbs[depth] = probs // retain the grown buffer
	if h.ProbeTemp > 1 {
		soften(probs, h.ProbeTemp)
	}
	if n.children == nil {
		for b, pb := range probs {
			out[n.leafBase+b] = prob * pb
		}
		return
	}
	for b, child := range n.children {
		h.walkNode(out, child, depth+1, prob*probs[b], q, qs)
	}
}

// QueryBins returns the mPrime globally most probable leaf bins.
func (h *Hierarchy) QueryBins(q []float32, mPrime int) []int {
	return vecmath.TopKIndices(h.LeafProbabilities(q), mPrime)
}

// AppendCandidates appends the union of the lookup lists of the mPrime most
// probable leaf bins to dst. Leaf bins are disjoint, so no dedup is needed;
// each bin contributes one contiguous copy. With a warmed scratch the call
// allocates nothing beyond growth of dst.
func (h *Hierarchy) AppendCandidates(dst []int32, q []float32, mPrime int, qs *QueryScratch) []int32 {
	return h.AppendCandidatesExtra(dst, q, mPrime, qs, nil)
}

// AppendCandidatesExtra is AppendCandidates for epoch-snapshotted indexes:
// after each probed leaf's frozen list it appends the leaf's post-epoch
// inserts from extra (nil when the epoch has none). The hierarchy is a
// single router, so extra is addressed with member 0 and bin = global leaf.
func (h *Hierarchy) AppendCandidatesExtra(dst []int32, q []float32, mPrime int, qs *QueryScratch, extra ExtraBins) []int32 {
	qs.leaf = h.LeafProbabilitiesInto(qs.leaf, q, qs)
	qs.bins = vecmath.TopKIndicesInto(qs.bins, qs.leaf, mPrime)
	for _, b := range qs.bins {
		dst = append(dst, h.Bins[b]...)
		if extra != nil {
			dst = extra.AppendExtra(dst, 0, b)
		}
	}
	return dst
}

// CandidatesWith returns the candidate set for q as a fresh []int while
// reusing the caller's scratch across queries (tree-walk and selection
// buffers stay warm).
func (h *Hierarchy) CandidatesWith(qs *QueryScratch, q []float32, mPrime int) []int {
	qs.cands = h.AppendCandidates(qs.cands[:0], q, mPrime, qs)
	return ToInts(qs.cands)
}

// Candidates returns the union of the lookup lists of the mPrime most
// probable leaf bins — a thin allocating wrapper over AppendCandidates for
// one-shot callers; loops should prefer CandidatesWith.
func (h *Hierarchy) Candidates(q []float32, mPrime int) []int {
	var qs QueryScratch
	return h.CandidatesWith(&qs, q, mPrime)
}

// soften raises probabilities to the power 1/temp and renormalizes
// (equivalent to dividing the logits by temp).
func soften(p []float32, temp float64) {
	var sum float64
	for i, v := range p {
		s := math.Pow(float64(v)+1e-12, 1/temp)
		p[i] = float32(s)
		sum += s
	}
	inv := float32(1 / sum)
	for i := range p {
		p[i] *= inv
	}
}

// Assignments returns each point's global leaf bin.
func (h *Hierarchy) Assignments(n int) []int32 {
	out := make([]int32, n)
	for g, pts := range h.Bins {
		for _, i := range pts {
			out[i] = int32(g)
		}
	}
	return out
}

// BinSizes returns the number of points per global leaf bin.
func (h *Hierarchy) BinSizes() []int {
	out := make([]int, h.NumBins)
	for g, pts := range h.Bins {
		out[g] = len(pts)
	}
	return out
}

// TotalParams sums learnable parameters over all models in the tree.
func (h *Hierarchy) TotalParams() int {
	total := 0
	var walk func(n *hnode)
	walk = func(n *hnode) {
		total += n.part.Model.NumParams()
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(h.root)
	return total
}
