// Quickstart: build a USP index over clustered vectors and answer a few
// approximate nearest-neighbor queries through the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	usp "repro"
)

func main() {
	// Synthesize 2000 vectors in 32 dimensions: 8 Gaussian clusters, the
	// kind of embedding geometry the index is designed for.
	rng := rand.New(rand.NewSource(42))
	const n, dim, clusters = 2000, 32, 8
	centers := make([][]float32, clusters)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for j := range centers[c] {
			centers[c][j] = float32(rng.NormFloat64()) * 3
		}
	}
	vectors := make([][]float32, n)
	for i := range vectors {
		c := centers[rng.Intn(clusters)]
		v := make([]float32, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64())*0.5
		}
		vectors[i] = v
	}

	// Offline phase: train the unsupervised partitioner (Algorithm 1).
	fmt.Println("training USP index (16 bins, single model)...")
	ix, err := usp.Build(vectors, usp.Options{
		Bins:   16,
		Epochs: 40,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index ready: %d vectors, %d bins, %d learnable parameters\n",
		ix.Len(), st.Bins, st.Params)

	// Online phase (Algorithm 2): probe the most probable bins.
	query := vectors[7]
	for _, probes := range []int{1, 2, 4} {
		cands, _ := ix.CandidateSet(query, usp.SearchOptions{Probes: probes})
		res, err := ix.Search(query, 5, usp.SearchOptions{Probes: probes})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nprobes=%d scanned %d of %d points; top-5:\n", probes, len(cands), ix.Len())
		for _, r := range res {
			fmt.Printf("  id=%-5d dist=%.4f\n", r.ID, r.Distance)
		}
	}
}
