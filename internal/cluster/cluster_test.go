package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestDBSCANOnMoons(t *testing.T) {
	l := dataset.Moons(400, 0.04, rand.New(rand.NewSource(1)))
	labels := DBSCAN(l.Dataset, 0.18, 5)
	// DBSCAN is the classical winner on moons: near-perfect ARI.
	if ari := ARI(labels, l.Labels); ari < 0.95 {
		t.Fatalf("DBSCAN moons ARI %.3f", ari)
	}
}

func TestDBSCANOnCircles(t *testing.T) {
	l := dataset.Circles(400, 0.5, 0.02, rand.New(rand.NewSource(2)))
	labels := DBSCAN(l.Dataset, 0.15, 4)
	if ari := ARI(labels, l.Labels); ari < 0.95 {
		t.Fatalf("DBSCAN circles ARI %.3f", ari)
	}
}

func TestDBSCANMarksIsolatedNoise(t *testing.T) {
	d := dataset.New(12, 2)
	// Tight 10-point cluster at origin plus two far isolated points.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		d.Row(i)[0] = float32(rng.NormFloat64()) * 0.01
		d.Row(i)[1] = float32(rng.NormFloat64()) * 0.01
	}
	d.Row(10)[0] = 100
	d.Row(11)[0] = -100
	labels := DBSCAN(d, 0.5, 3)
	if labels[10] != Noise || labels[11] != Noise {
		t.Fatalf("isolated points labeled %d, %d", labels[10], labels[11])
	}
	for i := 0; i < 10; i++ {
		if labels[i] != 0 {
			t.Fatalf("cluster point %d labeled %d", i, labels[i])
		}
	}
}

func TestSpectralOnCircles(t *testing.T) {
	l := dataset.Circles(240, 0.45, 0.02, rand.New(rand.NewSource(4)))
	labels, err := Spectral(l.Dataset, SpectralConfig{K: 2, Neighbors: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ari := ARI(labels, l.Labels); ari < 0.9 {
		t.Fatalf("spectral circles ARI %.3f", ari)
	}
}

func TestSpectralOnBlobs(t *testing.T) {
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 240, Dim: 2, Clusters: 3, ClusterStd: 0.08, CenterBox: 4,
	}, rand.New(rand.NewSource(6)))
	labels, err := Spectral(l.Dataset, SpectralConfig{K: 3, Neighbors: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ari := ARI(labels, l.Labels); ari < 0.9 {
		t.Fatalf("spectral blobs ARI %.3f", ari)
	}
}

func TestSpectralValidation(t *testing.T) {
	d := dataset.Uniform(20, 2, rand.New(rand.NewSource(8)))
	if _, err := Spectral(d, SpectralConfig{K: 1}); err == nil {
		t.Fatal("K=1 should fail")
	}
	if _, err := Spectral(d, SpectralConfig{K: 21}); err == nil {
		t.Fatal("K>n should fail")
	}
}

func TestARIProperties(t *testing.T) {
	// Identical labelings (up to renaming) score 1; independent random
	// labelings score ≈ 0.
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7}
	if ari := ARI(a, b); ari != 1 {
		t.Fatalf("renamed identical ARI = %v", ari)
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]int, 2000)
	y := make([]int, 2000)
	for i := range x {
		x[i] = rng.Intn(4)
		y[i] = rng.Intn(4)
	}
	if ari := ARI(x, y); ari < -0.05 || ari > 0.05 {
		t.Fatalf("random ARI = %v, want ≈0", ari)
	}
	if ARI([]int{1}, []int{1, 2}) != 0 {
		t.Fatal("length mismatch should score 0")
	}
}

func TestARIBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(5)
			b[i] = rng.Intn(5)
		}
		ari := ARI(a, b)
		return ari >= -1.000001 && ari <= 1.000001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNMIProperties(t *testing.T) {
	a := []int{0, 0, 1, 1}
	if nmi := NMI(a, []int{3, 3, 8, 8}); nmi < 0.999 {
		t.Fatalf("identical NMI = %v", nmi)
	}
	// Independent labelings have low NMI.
	rng := rand.New(rand.NewSource(10))
	x := make([]int, 3000)
	y := make([]int, 3000)
	for i := range x {
		x[i] = rng.Intn(3)
		y[i] = rng.Intn(3)
	}
	if nmi := NMI(x, y); nmi > 0.05 {
		t.Fatalf("random NMI = %v", nmi)
	}
}

func TestNMIBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4) - 1 // include noise labels
			b[i] = rng.Intn(4)
		}
		nmi := NMI(a, b)
		return nmi >= -1e-9 && nmi <= 1+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPurity(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{0, 0, 1, 1, 1, 1}
	// Cluster 0: majority class 0 (2/3); cluster 1: class 1 (3/3) → 5/6.
	if p := Purity(pred, truth); p < 0.83 || p > 0.84 {
		t.Fatalf("purity = %v", p)
	}
	if Purity(nil, nil) != 0 {
		t.Fatal("empty purity")
	}
}

func TestNoiseAsSingletonsConvention(t *testing.T) {
	// Two noise points must not count as the same cluster.
	a := []int{Noise, Noise, 0, 0}
	b := []int{0, 1, 2, 2}
	// Under noise-as-singletons both partitions are {x},{y},{z,w}: ARI 1.
	if ari := ARI(a, b); ari != 1 {
		t.Fatalf("noise singleton ARI = %v", ari)
	}
}
