// Command uspquery answers k-NN queries against an index written by
// cmd/usptrain. Queries come from an fvecs file; results are printed one
// line per query as "id:distance" pairs.
//
// Usage:
//
//	uspquery -index index.usp -data sift.fvecs -queries q.fvecs -k 10 -probes 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
)

func main() {
	var (
		indexPath = flag.String("index", "", "index file from usptrain (required)")
		dataPath  = flag.String("data", "", "the fvecs dataset the index was built on (required)")
		queryPath = flag.String("queries", "", "fvecs query file (required)")
		k         = flag.Int("k", 10, "neighbors to return")
		probes    = flag.Int("probes", 1, "bins to probe (m')")
		union     = flag.Bool("union", false, "union ensemble candidates instead of best-confidence")
	)
	flag.Parse()
	if *indexPath == "" || *dataPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	ens, hier, err := core.LoadIndexFile(*indexPath)
	if err != nil {
		log.Fatalf("loading index: %v", err)
	}
	ds, err := dataset.LoadFvecsFile(*dataPath)
	if err != nil {
		log.Fatalf("loading dataset: %v", err)
	}
	queries, err := dataset.LoadFvecsFile(*queryPath)
	if err != nil {
		log.Fatalf("loading queries: %v", err)
	}
	if queries.Dim != ds.Dim {
		log.Fatalf("query dim %d != dataset dim %d", queries.Dim, ds.Dim)
	}

	mode := core.BestConfidence
	if *union {
		mode = core.UnionProbe
	}
	var qs core.QueryScratch // one scratch across the whole query file
	candidates := func(q []float32) []int {
		if hier != nil {
			return hier.CandidatesWith(&qs, q, *probes)
		}
		return ens.CandidatesWith(&qs, q, *probes, mode)
	}
	start := time.Now()
	totalCands := 0
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		cands := candidates(q)
		totalCands += len(cands)
		ns := knn.SearchSubset(ds, cands, q, *k)
		fmt.Printf("q%d:", qi)
		for _, n := range ns {
			fmt.Printf(" %d:%.4f", n.Index, n.Dist)
		}
		fmt.Println()
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "%d queries in %s (%.1f us/query, avg |C| %.1f)\n",
		queries.N, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/float64(queries.N)/1e3,
		float64(totalCands)/float64(queries.N))
}
