package usp

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/vecmath"
)

// buildQuantizedPair builds two indexes over the same vectors with the same
// seed: a float-only baseline and a quantized twin. Model training ignores
// the quantizer, so the two gather identical candidate sets and differ only
// in how they scan them.
func buildQuantizedPair(t testing.TB, seed int64, n, dim int, q Quantization) (*Index, *Index, [][]float32) {
	t.Helper()
	vecs, _ := clusteredVectors(seed, n, dim, 4)
	base := Options{Bins: 4, Epochs: 30, Hidden: []int{16}, Seed: seed + 1}
	plain, err := Build(vecs, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Quantize = q
	base.Quantize.Enabled = true
	quantized, err := Build(vecs, base)
	if err != nil {
		t.Fatal(err)
	}
	return plain, quantized, vecs
}

// TestQuantizedFullRerankMatchesFloat: with RerankK at least the candidate
// count, phase 1 passes every candidate through and phase 2 re-scores all
// of them exactly — the quantized path must then reproduce the float-only
// scan (ids may swap only where true distances collide to float32 bits).
func TestQuantizedFullRerankMatchesFloat(t *testing.T) {
	plain, quantized, vecs := buildQuantizedPair(t, 61, 600, 16, Quantization{Subspaces: 4, K: 32})
	opt := SearchOptions{Probes: 2}
	qopt := opt
	qopt.RerankK = 1 << 20
	for qi := 0; qi < 50; qi++ {
		want, err := plain.Search(vecs[qi], 10, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := quantized.Search(vecs[qi], 10, qopt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q%d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID && got[i].Distance != want[i].Distance {
				t.Fatalf("q%d result %d: %+v, want %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestQuantizedRerankDepths: at practical re-rank depths the two-phase scan
// must return exact (re-scored) distances in sorted order and overlap the
// float-only top-k heavily.
func TestQuantizedRerankDepths(t *testing.T) {
	plain, quantized, vecs := buildQuantizedPair(t, 67, 600, 16, Quantization{Subspaces: 8, K: 64})
	opt := SearchOptions{Probes: 2}
	data := quantized.live.Load().data
	for _, tc := range []struct {
		rerankK int
		minOver float64
	}{
		// At depth k the ADC pass alone picks the survivors, so a few
		// borderline neighbors drop; 2×/4× depth recovers nearly all
		// (measured 0.76 / 0.97 / 1.00 — bars leave head-room).
		{10, 0.65}, {20, 0.90}, {40, 0.97},
	} {
		rerankK := tc.rerankK
		qopt := opt
		qopt.RerankK = rerankK
		var overlap, total float64
		for qi := 0; qi < 50; qi++ {
			q := vecs[qi]
			want, err := plain.Search(q, 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := quantized.Search(q, 10, qopt)
			if err != nil {
				t.Fatal(err)
			}
			wantIDs := make(map[int]bool, len(want))
			for _, r := range want {
				wantIDs[r.ID] = true
			}
			for i, r := range got {
				// The fused kernel reassociates ‖x‖²−2q·x+‖q‖², so "exact"
				// means float32 round-off, not bitwise.
				if !within(float64(r.Distance), float64(vecmath.SquaredL2(q, data.Row(r.ID))), 1e-4) {
					t.Fatalf("rerank %d q%d: distance %v is not the exact row distance", rerankK, qi, r.Distance)
				}
				if i > 0 && got[i].Distance < got[i-1].Distance {
					t.Fatalf("rerank %d q%d: results unsorted", rerankK, qi)
				}
				if wantIDs[r.ID] {
					overlap++
				}
			}
			total += float64(len(want))
		}
		if frac := overlap / total; frac < tc.minOver {
			t.Fatalf("rerank %d: only %.2f of float-only top-10 recovered, want ≥ %.2f", rerankK, frac, tc.minOver)
		}
	}
}

// TestQuantizedRecallAt10 pins the acceptance bar: at 8× compression
// (Subspaces = dim/2 byte codes vs 4·dim float bytes) the quantized path
// with default re-ranking must reach recall@10 ≥ 0.80 against exact ground
// truth when probing every bin.
func TestQuantizedRecallAt10(t *testing.T) {
	vecs, _ := clusteredVectors(71, 2000, 16, 8)
	ix, err := Build(vecs, Options{
		Bins: 4, Epochs: 30, Hidden: []int{16}, Seed: 72,
		Quantize: Quantization{Enabled: true, Subspaces: 8, K: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.FromRowsCopy(vecs)
	rng := rand.New(rand.NewSource(73))
	queries := dataset.New(50, 16)
	for i := 0; i < queries.N; i++ {
		copy(queries.Row(i), vecs[rng.Intn(len(vecs))])
		for j, v := range queries.Row(i) {
			queries.Row(i)[j] = v + float32(rng.NormFloat64())*0.05
		}
	}
	truth := knn.GroundTruth(ds, queries, 10)
	var sum float64
	for i := 0; i < queries.N; i++ {
		res, err := ix.Search(queries.Row(i), 10, SearchOptions{Probes: 4})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, len(res))
		for j, r := range res {
			ids[j] = r.ID
		}
		sum += knn.Recall(ids, truth[i])
	}
	if recall := sum / float64(queries.N); recall < 0.80 {
		t.Fatalf("recall@10 = %.3f, want ≥ 0.80 at 8× compression", recall)
	}
}

// TestSearcherADCAllocations: the quantized scan must preserve the engine's
// steady-state guarantee — SearchInto allocates nothing, on both the
// two-phase and the ADC-only paths.
func TestSearcherADCAllocations(t *testing.T) {
	_, ix, vecs := buildQuantizedPair(t, 79, 600, 16, Quantization{Subspaces: 8, K: 64})
	for _, tc := range []struct {
		name string
		opt  SearchOptions
	}{
		{"rerank", SearchOptions{Probes: 2}},
		{"adc-only", SearchOptions{Probes: 2, RerankK: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := ix.NewSearcher()
			for i := 0; i < 20; i++ { // warm every scratch buffer
				if _, err := s.Search(vecs[i], 10, tc.opt); err != nil {
					t.Fatal(err)
				}
			}
			q := vecs[3]
			dst := make([]Result, 0, 10)
			allocs := testing.AllocsPerRun(200, func() {
				var err error
				dst, err = s.SearchInto(dst[:0], q, 10, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("quantized SearchInto: %v allocs per query, want 0", allocs)
			}
		})
	}
}

// TestQuantizedDeleteHidesVector: tombstones must be honored by the ADC
// phase (they are filtered there, before re-ranking ever sees the id).
func TestQuantizedDeleteHidesVector(t *testing.T) {
	_, ix, vecs := buildQuantizedPair(t, 83, 600, 16, Quantization{Subspaces: 8, K: 64})
	dead := map[int]bool{}
	rng := rand.New(rand.NewSource(84))
	for len(dead) < 60 {
		id := rng.Intn(len(vecs))
		if !dead[id] {
			if err := ix.Delete(id); err != nil {
				t.Fatal(err)
			}
			dead[id] = true
		}
	}
	s := ix.NewSearcher()
	sawSkip := false
	for _, opt := range []SearchOptions{{Probes: 4}, {Probes: 4, RerankK: -1}} {
		for qi := 0; qi < 50; qi++ {
			res, err := s.Search(vecs[qi], 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				if dead[r.ID] {
					t.Fatalf("opt %+v q%d: tombstoned id %d returned", opt, qi, r.ID)
				}
			}
			if s.Skipped() > 0 {
				sawSkip = true
			}
		}
	}
	if !sawSkip {
		t.Fatal("no query ever skipped a tombstone — filter untested")
	}
}

// TestDropFloatsTightMode: after DropFloats the index keeps serving
// (pure-ADC) queries from codes alone while Add and Save are refused.
func TestDropFloatsTightMode(t *testing.T) {
	plain, ix, vecs := buildQuantizedPair(t, 89, 600, 16, Quantization{Subspaces: 8, K: 256})
	if err := plain.DropFloats(); err == nil {
		t.Fatal("DropFloats on an unquantized index should fail")
	}
	if err := ix.DropFloats(); err != nil {
		t.Fatal(err)
	}
	if err := ix.DropFloats(); err != nil {
		t.Fatalf("second DropFloats should be a no-op, got %v", err)
	}
	if _, err := ix.Add(vecs[0]); err == nil {
		t.Fatal("Add should fail in memory-tight mode")
	}
	if err := ix.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save should fail in memory-tight mode")
	}
	// Self-queries stay useful: the query's own code has near-zero ADC
	// distance, so it should surface in its own top-10 nearly always.
	hits := 0
	for qi := 0; qi < 100; qi++ {
		res, err := ix.Search(vecs[qi], 10, SearchOptions{Probes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 10 {
			t.Fatalf("q%d: %d results", qi, len(res))
		}
		for _, r := range res {
			if r.ID == qi {
				hits++
				break
			}
		}
	}
	if hits < 90 {
		t.Fatalf("only %d/100 self-queries recovered their own id from codes", hits)
	}
	// MemoryTight in build options drops floats before Build returns.
	tight, err := Build(vecs, Options{
		Bins: 4, Epochs: 20, Hidden: []int{16}, Seed: 90,
		Quantize: Quantization{Enabled: true, Subspaces: 8, MemoryTight: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.Add(vecs[0]); err == nil {
		t.Fatal("Add should fail on a MemoryTight-built index")
	}
}

// TestQuantizedSnapshotRoundTrip: a quantized index (including post-build
// adds and tombstones) must round-trip through the snapshot format and
// serve bit-identical results on both the quantized and re-rank paths.
func TestQuantizedSnapshotRoundTrip(t *testing.T) {
	_, ix, vecs := buildQuantizedPair(t, 97, 600, 16, Quantization{Subspaces: 8, K: 64})
	churn(t, ix, vecs, 40, 25, 98)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.pq == nil || len(loaded.codes) != loaded.live.Load().data.N*loaded.pq.Subspaces {
		t.Fatal("loaded index lost its quantizer state")
	}
	requireIdentical(t, ix, loaded, vecs[:30], "quantized")
	for qi := 0; qi < 30; qi++ {
		a, err := ix.Search(vecs[qi], 10, SearchOptions{Probes: 2, RerankK: -1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(vecs[qi], 10, SearchOptions{Probes: 2, RerankK: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("adc q%d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adc q%d result %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// TestQuantSectionForwardCompat: a reader that does not know the quant
// section id must skip it and load a float-only index that still serves
// bit-identically to an unquantized build. Simulated by masking the quant
// section's id to an unassigned value in the section table.
func TestQuantSectionForwardCompat(t *testing.T) {
	plain, ix, vecs := buildQuantizedPair(t, 101, 600, 16, Quantization{Subspaces: 8, K: 64})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	count := int(binary.LittleEndian.Uint32(raw[12:16]))
	masked := false
	for i := 0; i < count; i++ {
		off := snapHeaderFixed + i*snapSectionEntry
		if binary.LittleEndian.Uint32(raw[off:off+4]) == secQuant {
			binary.LittleEndian.PutUint32(raw[off:off+4], 0x7fffffff)
			masked = true
		}
	}
	if !masked {
		t.Fatal("snapshot of a quantized index carries no quant section")
	}
	loaded, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.pq != nil {
		t.Fatal("masked quant section still decoded")
	}
	if loaded.opt.Quantize.Enabled {
		t.Fatal("loaded index claims quantization without codebooks")
	}
	// The quantizer never influences model training, so the masked load
	// must serve exactly like a float-only build of the same seed.
	requireIdentical(t, plain, loaded, vecs[:30], "masked")
}

// TestCompactionRetrainsQuantizer: once the index grows past RetrainGrowth,
// compaction must refresh the codebooks and re-encode every row, keeping
// codes in lockstep with the dataset.
func TestCompactionRetrainsQuantizer(t *testing.T) {
	_, ix, vecs := buildQuantizedPair(t, 103, 600, 16, Quantization{Subspaces: 8, K: 64, RetrainGrowth: 0.1})
	before := ix.pq
	rng := rand.New(rand.NewSource(104))
	for i := 0; i < 120; i++ { // 20% growth > 10% threshold
		nv := append([]float32(nil), vecs[rng.Intn(len(vecs))]...)
		nv[0] += float32(rng.NormFloat64()) * 0.05
		if _, err := ix.Add(nv); err != nil {
			t.Fatal(err)
		}
	}
	ix.Compact()
	if ix.pq == before {
		t.Fatal("compaction past the growth threshold did not retrain the codebooks")
	}
	n := ix.live.Load().data.N
	if ix.qTrainedN != n {
		t.Fatalf("qTrainedN = %d, want %d", ix.qTrainedN, n)
	}
	if len(ix.codes) != n*ix.pq.Subspaces {
		t.Fatalf("codes cover %d bytes, want %d", len(ix.codes), n*ix.pq.Subspaces)
	}
	// Every code must equal a fresh encoding under the new books — the
	// raced-row re-encode path must not leave stale codes behind.
	data := ix.live.Load().data
	fresh := make([]uint8, 0, ix.pq.Subspaces)
	for id := 0; id < n; id++ {
		fresh = ix.pq.AppendCode(fresh[:0], data.Row(id))
		if !bytes.Equal(fresh, ix.codes[id*ix.pq.Subspaces:(id+1)*ix.pq.Subspaces]) {
			t.Fatalf("row %d code is stale after retrain", id)
		}
	}
	// And a no-growth compaction keeps the books.
	after := ix.pq
	ix.Compact()
	if ix.pq != after {
		t.Fatal("no-growth compaction retrained anyway")
	}
}
