package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	usp "repro"
	"repro/internal/dataset"
)

func testCorpus(t testing.TB, seed int64, n, dim int) *dataset.Labeled {
	t.Helper()
	return dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: 6, ClusterStd: 0.3, CenterBox: 3,
	}, rand.New(rand.NewSource(seed)))
}

func testIndex(t testing.TB, corpus *dataset.Labeled) *usp.Index {
	t.Helper()
	ix, err := usp.Build(corpus.Rows(), usp.Options{
		Bins: 4, Epochs: 20, Hidden: []int{16}, Seed: 3, CompactAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func post(t testing.TB, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t testing.TB, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEndpointValidation is the table-driven contract suite: every
// endpoint's accepted and rejected parameter shapes, with the exact
// status class the fan-out front keys its retry decision on.
func TestEndpointValidation(t *testing.T) {
	corpus := testCorpus(t, 41, 400, 8)
	srv := New(testIndex(t, corpus), Config{DataDir: t.TempDir()})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	q := corpus.Row(3)
	short := q[:4]

	for _, tc := range []struct {
		name string
		path string
		body any
		want int
	}{
		{"search ok", "/search", SearchRequest{Vector: q, K: 5, Probes: 2}, 200},
		{"search default probes", "/search", SearchRequest{Vector: q, K: 5}, 200},
		{"search k missing", "/search", SearchRequest{Vector: q}, 400},
		{"search k zero", "/search", SearchRequest{Vector: q, K: 0}, 400},
		{"search k negative", "/search", SearchRequest{Vector: q, K: -3}, 400},
		{"search probes negative", "/search", SearchRequest{Vector: q, K: 5, Probes: -1}, 400},
		{"search rerank adc-only", "/search", SearchRequest{Vector: q, K: 5, RerankK: -1}, 200},
		{"search rerank positive", "/search", SearchRequest{Vector: q, K: 5, RerankK: 40}, 200},
		{"search rerank invalid", "/search", SearchRequest{Vector: q, K: 5, RerankK: -2}, 400},
		{"search dim mismatch", "/search", SearchRequest{Vector: short, K: 5}, 400},
		{"search empty vector", "/search", SearchRequest{K: 5}, 400},
		{"batch ok", "/search/batch", BatchSearchRequest{Vectors: [][]float32{q, corpus.Row(7)}, K: 3, Probes: 2}, 200},
		{"batch k zero", "/search/batch", BatchSearchRequest{Vectors: [][]float32{q}}, 400},
		{"batch probes negative", "/search/batch", BatchSearchRequest{Vectors: [][]float32{q}, K: 3, Probes: -2}, 400},
		{"batch rerank invalid", "/search/batch", BatchSearchRequest{Vectors: [][]float32{q}, K: 3, RerankK: -7}, 400},
		{"batch dim mismatch", "/search/batch", BatchSearchRequest{Vectors: [][]float32{q, short}, K: 3}, 400},
		{"add ok", "/add", AddRequest{Vector: q}, 200},
		{"add dim mismatch", "/add", AddRequest{Vector: short}, 400},
		{"delete ok", "/delete", DeleteRequest{ID: 5}, 200},
		{"delete repeat", "/delete", DeleteRequest{ID: 5}, 404},
		{"delete out of range", "/delete", DeleteRequest{ID: 1 << 30}, 404},
		{"save escape", "/save", SaveRequest{Path: "../escape.usps"}, 400},
		{"save absolute", "/save", SaveRequest{Path: "/etc/owned.usps"}, 400},
		{"save empty", "/save", SaveRequest{}, 400},
		{"reload escape", "/reload", ReloadRequest{Path: "../../etc/passwd"}, 400},
		{"reload missing", "/reload", ReloadRequest{Path: "nope.usps"}, 404},
		{"reload empty", "/reload", ReloadRequest{}, 400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts, tc.path, tc.body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: HTTP %d, want %d", tc.path, tc.name, resp.StatusCode, tc.want)
			}
		})
	}

	// Malformed JSON is 400 on every POST endpoint.
	for _, path := range []string{"/search", "/search/batch", "/add", "/delete", "/save", "/reload"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with truncated JSON: HTTP %d, want 400", path, resp.StatusCode)
		}
	}

	// GET on a POST endpoint is 405.
	resp, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search: HTTP %d, want 405", resp.StatusCode)
	}
}

// TestSearchProbesDefaulting pins the one remaining defaulted parameter:
// probes:0 must behave exactly like probes:1.
func TestSearchProbesDefaulting(t *testing.T) {
	corpus := testCorpus(t, 43, 400, 8)
	srv := New(testIndex(t, corpus), Config{DataDir: t.TempDir()})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	q := corpus.Row(11)
	a := decode[SearchResponse](t, post(t, ts, "/search", SearchRequest{Vector: q, K: 5}))
	b := decode[SearchResponse](t, post(t, ts, "/search", SearchRequest{Vector: q, K: 5, Probes: 1}))
	if len(a.IDs) != len(b.IDs) {
		t.Fatalf("probes 0 vs 1: %d vs %d results", len(a.IDs), len(b.IDs))
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] || a.Distances[i] != b.Distances[i] {
			t.Fatalf("probes 0 vs 1 diverge at %d: %d/%v vs %d/%v",
				i, a.IDs[i], a.Distances[i], b.IDs[i], b.Distances[i])
		}
	}
}

// TestRerankDefaultResolution pins the server-default plumbing: with a
// configured RerankK of -1, an unset rerank_k serves ADC distances while
// an explicit positive depth still re-ranks exactly.
func TestRerankDefaultResolution(t *testing.T) {
	corpus := testCorpus(t, 47, 500, 16)
	ix, err := usp.Build(corpus.Rows(), usp.Options{
		Bins: 4, Epochs: 20, Hidden: []int{16}, Seed: 5,
		Quantize: usp.Quantization{Enabled: true, Subspaces: 8, K: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ix, Config{DataDir: t.TempDir(), RerankK: -1})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	q := corpus.Row(3)
	adc := decode[SearchResponse](t, post(t, ts, "/search", SearchRequest{Vector: q, K: 5, Probes: 2}))
	exact := decode[SearchResponse](t, post(t, ts, "/search", SearchRequest{Vector: q, K: 5, Probes: 2, RerankK: 1 << 20}))
	if len(adc.IDs) == 0 || len(exact.IDs) == 0 {
		t.Fatal("empty results")
	}
	// The exact top hit is the query row itself at distance ~0; the ADC
	// distance for the same row is quantized and differs.
	if exact.IDs[0] != 3 {
		t.Fatalf("exact top hit %d, want 3", exact.IDs[0])
	}
	if adc.Distances[0] == exact.Distances[0] {
		t.Fatalf("server-default ADC path returned exact distance %v — default rerank_k not applied", adc.Distances[0])
	}
}

// TestReloadSwapsIndex: /save then /reload from the data directory must
// swap the serving index (generation bump, healthz reflects it) without
// restarting the server.
func TestReloadSwapsIndex(t *testing.T) {
	corpus := testCorpus(t, 53, 400, 8)
	dir := t.TempDir()
	srv := New(testIndex(t, corpus), Config{DataDir: dir})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	// Snapshot the current state, mutate, then reload the snapshot: the
	// mutation must be rolled back.
	sv := decode[SaveResponse](t, post(t, ts, "/save", SaveRequest{Path: "snap.usps"}))
	if sv.Path != filepath.Join(dir, "snap.usps") {
		t.Fatalf("save landed at %s", sv.Path)
	}
	before := decode[HealthzResponse](t, mustGet(t, ts, "/healthz"))
	ar := decode[AddResponse](t, post(t, ts, "/add", AddRequest{Vector: corpus.Row(0)}))
	if ar.ID != before.Vectors {
		t.Fatalf("add assigned id %d, want %d", ar.ID, before.Vectors)
	}

	rr := decode[ReloadResponse](t, post(t, ts, "/reload", ReloadRequest{Path: "snap.usps"}))
	if rr.Generation != 1 || rr.Vectors != before.Vectors {
		t.Fatalf("reload response %+v, want generation 1 with %d vectors", rr, before.Vectors)
	}
	after := decode[HealthzResponse](t, mustGet(t, ts, "/healthz"))
	if after.Generation != 1 || after.Vectors != before.Vectors {
		t.Fatalf("healthz after reload %+v, want generation 1 with %d vectors", after, before.Vectors)
	}
}

// TestReloadUnderConcurrentLoad is the rolling-restart acceptance test:
// a stream of /search traffic runs while the index is reloaded many
// times, and not a single request may fail — in-flight queries finish on
// the engine they resolved, new ones land on the fresh engine.
func TestReloadUnderConcurrentLoad(t *testing.T) {
	corpus := testCorpus(t, 59, 400, 8)
	dir := t.TempDir()
	srv := New(testIndex(t, corpus), Config{DataDir: dir})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	if resp := post(t, ts, "/save", SaveRequest{Path: "snap.usps"}); resp.StatusCode != 200 {
		t.Fatalf("save: HTTP %d", resp.StatusCode)
	}

	const workers = 8
	var stop atomic.Bool
	var searches, failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !stop.Load() {
				q := corpus.Row((w * 37) % corpus.N)
				resp := post(t, ts, "/search", SearchRequest{Vector: q, K: 5, Probes: 2})
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				} else {
					r := decode[SearchResponse](t, resp)
					if len(r.IDs) != 5 {
						failures.Add(1)
					}
				}
				if resp.StatusCode == http.StatusOK {
					searches.Add(1)
				}
			}
		}(w)
	}

	const reloads = 25
	for i := 0; i < reloads; i++ {
		rr := post(t, ts, "/reload", ReloadRequest{Path: "snap.usps"})
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK {
			t.Errorf("reload %d: HTTP %d", i, rr.StatusCode)
		}
	}
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d searches failed during %d rolling reloads",
			failures.Load(), failures.Load()+searches.Load(), reloads)
	}
	if srv.Generation() != reloads {
		t.Fatalf("generation %d, want %d", srv.Generation(), reloads)
	}
	if searches.Load() == 0 {
		t.Fatal("no successful searches overlapped the reloads")
	}
	t.Logf("%d searches, 0 failures across %d reloads", searches.Load(), reloads)
}

// TestMetricsFollowReload: /metrics must expose the freshly loaded
// index's series, not the retired engine's.
func TestMetricsFollowReload(t *testing.T) {
	corpus := testCorpus(t, 61, 400, 8)
	dir := t.TempDir()
	srv := New(testIndex(t, corpus), Config{DataDir: dir})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	if resp := post(t, ts, "/save", SaveRequest{Path: "snap.usps"}); resp.StatusCode != 200 {
		t.Fatalf("save: HTTP %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/reload", ReloadRequest{Path: "snap.usps"}); resp.StatusCode != 200 {
		t.Fatalf("reload: HTTP %d", resp.StatusCode)
	}
	// Traffic after the swap must show up in the scrape (the new index's
	// registry starts at zero, so one search means count >= 1).
	resp := post(t, ts, "/search", SearchRequest{Vector: corpus.Row(1), K: 3, Probes: 1})
	resp.Body.Close()

	body := readAll(t, mustGet(t, ts, "/metrics"))
	for _, series := range []string{"usp_query_latency_seconds_count 1", "usp_live_vectors", "http_requests_total"} {
		if !strings.Contains(body, series) {
			t.Fatalf("series %q missing from post-reload scrape:\n%s", series, body)
		}
	}
}

func mustGet(t testing.TB, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return resp
}

func readAll(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
