// Write routing: the front forwards /add and /delete to the shard that
// should own the row, so clients can treat the whole fleet as one index.
//
// /add routes to the group currently holding the fewest rows (as last
// reported by /healthz, advanced optimistically on every routed add) —
// but only among groups with id headroom: a shard whose next global id
// (offset + dataset rows) has reached the next shard's offset would mint
// a global id already owned by that shard, breaking delete routing and
// result-id uniqueness, so it is ineligible. For Shard-produced packed
// ranges that leaves exactly the tail shard; for independently built
// backends (equal offsets, one shared id space) every group stays
// eligible and placement is pure least-rows. The vector is forwarded to
// EVERY sibling replica of the chosen group — replicas serve the same
// rows, so a write that skipped one would fork the shard. The reply is
// the backend's own AddResponse (local id + id offset), so the global id
// is ID + IDOffset, the same contract a direct backend add has.
//
// /delete takes a GLOBAL id and routes by the id-offset ranges learned
// from /healthz: the owning group is the one with the largest offset
// <= id, and the forwarded local id is global - offset.
//
// Error policy matches the query path: a backend 4xx verdict passes
// through verbatim (the write itself is invalid — same verdict on every
// sibling), anything else is a 502. Writes are never retried: a replayed
// add would assign a second id. Every routed write bumps the cache
// generation, invalidating the front's result cache.
package frontier

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/serve"
)

// rows is the group's best-known row count: the largest /healthz-reported
// count among its replicas (they agree when in sync), plus the adds this
// front has routed since the last probe.
func (g *group) rows() int64 {
	var n int64
	for _, b := range g.backends {
		if v := b.vectors.Load(); v > n {
			n = v
		}
	}
	return n
}

// offset is the group's global id base as last probed; replicas agree, so
// any healthy member's value serves.
func (g *group) offset() int {
	for _, b := range g.backends {
		if b.healthy.Load() {
			return int(b.idOffset.Load())
		}
	}
	return int(g.backends[0].idOffset.Load())
}

// nextID is the global id the group's next add would be assigned: its
// offset plus the largest dataset row count (including deleted rows)
// among its replicas, optimistically advanced by routed adds.
func (g *group) nextID() int64 {
	var n int64
	for _, b := range g.backends {
		if v := b.rows.Load(); v > n {
			n = v
		}
	}
	return int64(g.offset()) + n
}

// addTarget picks the group for a routed add: the fewest live rows (ties
// to the earliest group) among groups whose next global id stays below
// every higher shard offset. The group with the highest offset has no
// shard above it and is always eligible, so there is always a target.
func (f *Front) addTarget() *group {
	var target *group
	for _, g := range f.groups {
		ceiling := int64(-1)
		for _, h := range f.groups {
			if off := int64(h.offset()); off > int64(g.offset()) && (ceiling < 0 || off < ceiling) {
				ceiling = off
			}
		}
		if ceiling >= 0 && g.nextID() >= ceiling {
			continue
		}
		if target == nil || g.rows() < target.rows() {
			target = g
		}
	}
	return target
}

func (f *Front) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !f.acquire(w) {
		return
	}
	defer f.release()
	var req serve.AddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Vector) == 0 {
		http.Error(w, "bad request: empty vector", http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	target := f.addTarget()

	// Every replica must apply the write; the first failure stops the
	// walk (a 4xx is deterministic, so siblings before it cannot have
	// accepted what a later one rejected — dim checks precede append).
	var first serve.AddResponse
	for i, b := range target.backends {
		var ar serve.AddResponse
		if err := f.callBackend(r.Context(), b, "/add", body, &ar); err != nil {
			writeFanoutError(w, err)
			return
		}
		if i == 0 {
			first = ar
		} else if ar.ID != first.ID || ar.IDOffset != first.IDOffset {
			http.Error(w, fmt.Sprintf(
				"replica divergence: %s assigned id %d@%d, %s assigned id %d@%d",
				target.backends[0].url, first.ID, first.IDOffset, b.url, ar.ID, ar.IDOffset),
				http.StatusBadGateway)
			return
		}
		b.vectors.Add(1)
		b.rows.Add(1)
	}
	f.cacheGen.Add(1)
	writeJSON(w, first)
}

func (f *Front) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if !f.acquire(w) {
		return
	}
	defer f.release()
	var req serve.DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.ID < 0 {
		http.Error(w, "bad request: negative id", http.StatusBadRequest)
		return
	}

	// Owner = group with the largest id offset <= the global id.
	var target *group
	bestOff := -1
	for _, g := range f.groups {
		if off := g.offset(); off <= req.ID && off > bestOff {
			target, bestOff = g, off
		}
	}
	if target == nil {
		http.Error(w, fmt.Sprintf("bad request: id %d precedes every shard's id range", req.ID),
			http.StatusBadRequest)
		return
	}
	body, err := json.Marshal(serve.DeleteRequest{ID: req.ID - bestOff})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	var first serve.DeleteResponse
	for i, b := range target.backends {
		var dr serve.DeleteResponse
		if err := f.callBackend(r.Context(), b, "/delete", body, &dr); err != nil {
			writeFanoutError(w, err)
			return
		}
		if i == 0 {
			first = dr
		}
	}
	f.cacheGen.Add(1)
	writeJSON(w, first)
}
