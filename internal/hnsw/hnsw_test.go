package hnsw

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
)

func blobs(seed int64, n, dim int) *dataset.Dataset {
	return dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: 10, ClusterStd: 0.2, CenterBox: 3,
	}, rand.New(rand.NewSource(seed))).Dataset
}

func TestBuildAndExactSelfQuery(t *testing.T) {
	ds := blobs(1, 500, 16)
	ix, err := Build(ds, Config{M: 8, EfConstruction: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Levels() < 1 {
		t.Fatal("no levels")
	}
	// Self queries must return the point itself first.
	for i := 0; i < 100; i++ {
		ns := ix.Search(ds.Row(i), 1, 30)
		if len(ns) != 1 || ns[0].Index != i {
			t.Fatalf("self query %d returned %v", i, ns)
		}
	}
}

func TestRecallAtHighEf(t *testing.T) {
	ds := blobs(3, 1000, 16)
	ix, err := Build(ds, Config{M: 12, EfConstruction: 120, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := blobs(5, 50, 16)
	gt := knn.GroundTruth(ds, queries, 10)
	var recall float64
	for qi := 0; qi < queries.N; qi++ {
		ns := ix.Search(queries.Row(qi), 10, 200)
		recall += knn.RecallNeighbors(ns, gt[qi])
	}
	recall /= float64(queries.N)
	if recall < 0.9 {
		t.Fatalf("recall@ef=200 is %.3f, want ≥ 0.9", recall)
	}
}

func TestRecallImprovesWithEf(t *testing.T) {
	ds := blobs(6, 800, 12)
	ix, err := Build(ds, Config{M: 8, EfConstruction: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	queries := blobs(8, 40, 12)
	gt := knn.GroundTruth(ds, queries, 10)
	recallAt := func(ef int) float64 {
		var r float64
		for qi := 0; qi < queries.N; qi++ {
			r += knn.RecallNeighbors(ix.Search(queries.Row(qi), 10, ef), gt[qi])
		}
		return r / float64(queries.N)
	}
	lo, hi := recallAt(10), recallAt(150)
	if hi < lo-0.02 {
		t.Fatalf("recall did not improve with ef: %.3f -> %.3f", lo, hi)
	}
	if hi < 0.85 {
		t.Fatalf("recall@150 = %.3f", hi)
	}
}

func TestDegreeBounds(t *testing.T) {
	ds := blobs(9, 400, 8)
	cfg := Config{M: 6, EfConstruction: 40, Seed: 10}
	ix, err := Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l, layer := range ix.links {
		maxD := cfg.M
		if l == 0 {
			maxD = 2 * cfg.M
		}
		for v, nbrs := range layer {
			if len(nbrs) > maxD {
				t.Fatalf("layer %d vertex %d degree %d > %d", l, v, len(nbrs), maxD)
			}
			for _, nb := range nbrs {
				if nb == v {
					t.Fatalf("self edge at %d", v)
				}
			}
		}
	}
}

func TestBaseLayerReachability(t *testing.T) {
	// Every vertex must be reachable on layer 0 from the entry point
	// (undirected BFS over the bidirectional links).
	ds := blobs(11, 300, 8)
	ix, err := Build(ds, Config{M: 8, EfConstruction: 60, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	adj := make(map[int32][]int32)
	for v, nbrs := range ix.links[0] {
		for _, nb := range nbrs {
			adj[v] = append(adj[v], nb)
			adj[nb] = append(adj[nb], v)
		}
	}
	visited := map[int32]bool{ix.entry: true}
	queue := []int32{ix.entry}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(visited) != ds.N {
		t.Fatalf("only %d of %d vertices reachable on layer 0", len(visited), ds.N)
	}
}

func TestEmptyDatasetFails(t *testing.T) {
	if _, err := Build(dataset.New(0, 4), Config{}); err == nil {
		t.Fatal("empty dataset should fail")
	}
}

func TestSingletonDataset(t *testing.T) {
	d := dataset.New(1, 4)
	ix, err := Build(d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ns := ix.Search(d.Row(0), 3, 10)
	if len(ns) != 1 || ns[0].Index != 0 {
		t.Fatalf("singleton search = %v", ns)
	}
}
