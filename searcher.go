package usp

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/knn"
	"repro/internal/par"
	"repro/internal/vecmath"
)

// Searcher is a reusable query context over an Index: it owns every scratch
// buffer the online phase needs (model forward-pass buffers, candidate list,
// top-k selector, result staging), so repeated queries allocate nothing
// steady-state beyond the returned result slice. A Searcher is NOT safe for
// concurrent use — give each goroutine its own (NewSearcher is cheap, and the
// Index keeps an internal pool for the convenience entry points). Concurrent
// Searchers over one Index are safe, including concurrently with Add,
// Delete, and compaction: every query resolves the atomically published
// epoch once and runs lock-free against that immutable snapshot.
type Searcher struct {
	ix    *Index
	qs    core.QueryScratch
	cands []int32
	tk    *vecmath.TopK
	nbrs  []vecmath.Neighbor
	// routeBins stages Add's per-member routing decisions (Index.Add
	// borrows a pooled Searcher for its pre-lock forward passes).
	routeBins []int
}

// NewSearcher returns a fresh query context for the index. Buffers grow on
// first use and are retained across queries.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{ix: ix, tk: vecmath.NewTopK(1)}
}

// gatherCandidates fills s.cands for q against the given epoch: per probed
// bin, the frozen CSR range followed by the epoch's spill entries. The
// candidate list may still contain tombstoned ids — the scan filters them,
// so gathering stays branch-free.
func (s *Searcher) gatherCandidates(ep *epoch, q []float32, probes int, union bool) {
	s.cands = s.cands[:0]
	if ep.hier != nil {
		s.cands = ep.hier.AppendCandidatesExtra(s.cands, q, probes, &s.qs, ep.extra())
		return
	}
	mode := core.BestConfidence
	if union {
		mode = core.UnionProbe
	}
	s.cands = ep.ens.AppendCandidatesExtra(s.cands, q, probes, mode, &s.qs, ep.data.N, ep.extra())
}

// Search returns the k approximate nearest neighbors of q. Steady-state it
// performs a single allocation: the returned result slice. Use SearchInto
// with a recycled slice to eliminate that too.
func (s *Searcher) Search(q []float32, k int, opt SearchOptions) ([]Result, error) {
	return s.SearchInto(make([]Result, 0, k), q, k, opt)
}

// SearchInto appends the k approximate nearest neighbors of q to dst and
// returns it. With a recycled dst it allocates nothing steady-state. The
// query runs entirely against one epoch snapshot: it never blocks on
// writers and observes either all or none of any concurrent mutation.
func (s *Searcher) SearchInto(dst []Result, q []float32, k int, opt SearchOptions) ([]Result, error) {
	if k <= 0 {
		return nil, errors.New("usp: k must be positive")
	}
	ix := s.ix
	if len(q) != ix.dim {
		return nil, fmt.Errorf("usp: query dim %d, index dim %d", len(q), ix.dim)
	}
	probes := opt.Probes
	if probes <= 0 {
		probes = 1
	}
	ep := ix.live.Load()
	s.gatherCandidates(ep, q, probes, opt.UnionEnsemble)
	s.nbrs = knn.SearchSubsetInto(s.nbrs[:0], ep.data, s.cands, q, k, s.tk, ep.tombs)
	for _, n := range s.nbrs {
		dst = append(dst, Result{ID: n.Index, Distance: n.Dist})
	}
	return dst, nil
}

// Scanned reports the size of the candidate set |C(q)| of the most recent
// query — the computational-cost metric of the paper's figures — without
// re-deriving it. Tombstoned candidates count: they were gathered and
// skipped by the scan, which is exactly the work performed.
func (s *Searcher) Scanned() int { return len(s.cands) }

// getSearcher takes a pooled Searcher (the pool's zero value works: misses
// construct a fresh one).
func (ix *Index) getSearcher() *Searcher {
	if v := ix.searchers.Get(); v != nil {
		return v.(*Searcher)
	}
	return ix.NewSearcher()
}

func (ix *Index) putSearcher(s *Searcher) { ix.searchers.Put(s) }

// SearchBatch answers many queries in one call, fanning the batch out over
// the worker pool with one pooled Searcher per worker. Results align with
// queries by position and agree exactly with looped single Search calls.
// It is safe to call concurrently with Search, Add, Delete, and compaction;
// each query in the batch resolves its own epoch snapshot.
func (ix *Index) SearchBatch(queries [][]float32, k int, opt SearchOptions) ([][]Result, error) {
	if k <= 0 {
		return nil, errors.New("usp: k must be positive")
	}
	for i, q := range queries {
		if len(q) != ix.dim {
			return nil, fmt.Errorf("usp: query %d dim %d, index dim %d", i, len(q), ix.dim)
		}
	}
	out := make([][]Result, len(queries))
	var firstErr atomic.Pointer[error]
	par.ForChunksMin(len(queries), 1, func(lo, hi int) {
		s := ix.getSearcher()
		defer ix.putSearcher(s)
		for i := lo; i < hi; i++ {
			// k and every dim were validated above, so errors should be
			// impossible — but if Search ever grows a new failure mode,
			// propagate it rather than silently returning a nil row.
			res, err := s.Search(queries[i], k, opt)
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			out[i] = res
		}
	})
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}
	return out, nil
}
