// Package quant implements product quantization and the score-aware
// anisotropic vector quantization of ScaNN (Guo et al. 2020), plus the
// two-stage ScaNN search pipeline (quantized first-pass scoring with ADC
// lookup tables, exact re-ranking) that Fig. 7 of the paper composes with
// different partitioners.
package quant

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/kmeans"
	"repro/internal/par"
	"repro/internal/vecmath"
)

// Config controls codebook training.
type Config struct {
	// Subspaces is the number of PQ blocks M. It must divide Dim exactly
	// unless AllowUneven is set, in which case the trailing block absorbs
	// the remainder.
	Subspaces int
	// AllowUneven permits Subspaces that do not divide Dim; the last
	// subspace then covers Dim/Subspaces + Dim%Subspaces dimensions.
	AllowUneven bool
	// Codebook size per subspace (≤ 256; default 16).
	K int
	// Iters of (weighted) Lloyd refinement (default 15).
	Iters int
	// Anisotropic enables ScaNN's score-aware loss: quantization error
	// parallel to the data point is penalized EtaParallel times more than
	// orthogonal error. Zero EtaParallel with Anisotropic=true defaults
	// to 4 (ScaNN's T=0.2 regime on unit-norm data lands in this range).
	Anisotropic bool
	EtaParallel float64
	// Seed drives k-means seeding.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 16
	}
	if c.Iters == 0 {
		c.Iters = 15
	}
	if c.Anisotropic && c.EtaParallel == 0 {
		c.EtaParallel = 4
	}
	return c
}

// PQ is a trained product quantizer.
type PQ struct {
	Dim       int
	Subspaces int
	K         int
	// Bounds[s] and Bounds[s+1] delimit subspace s's dimensions.
	Bounds []int
	// Codebooks[s] is a K×subDim dataset of centroids.
	Codebooks []*dataset.Dataset
}

// Train fits the quantizer on ds.
func Train(ds *dataset.Dataset, cfg Config) (*PQ, error) {
	cfg = cfg.withDefaults()
	if ds == nil || ds.N == 0 || ds.Dim == 0 {
		return nil, fmt.Errorf("quant: cannot train on an empty dataset")
	}
	if cfg.Subspaces <= 0 || cfg.Subspaces > ds.Dim {
		return nil, fmt.Errorf("quant: Subspaces=%d invalid for dim %d", cfg.Subspaces, ds.Dim)
	}
	if !cfg.AllowUneven && ds.Dim%cfg.Subspaces != 0 {
		return nil, fmt.Errorf("quant: Subspaces=%d does not divide dim %d (set AllowUneven to absorb the remainder)", cfg.Subspaces, ds.Dim)
	}
	if cfg.K > 256 {
		return nil, fmt.Errorf("quant: K=%d exceeds uint8 code range", cfg.K)
	}
	if ds.N < cfg.K {
		return nil, fmt.Errorf("quant: need at least K=%d points, have %d", cfg.K, ds.N)
	}
	pq := &PQ{Dim: ds.Dim, Subspaces: cfg.Subspaces, K: cfg.K}
	base := ds.Dim / cfg.Subspaces
	pq.Bounds = make([]int, cfg.Subspaces+1)
	for s := 0; s <= cfg.Subspaces; s++ {
		pq.Bounds[s] = s * base
	}
	pq.Bounds[cfg.Subspaces] = ds.Dim // last block absorbs the remainder

	pq.Codebooks = make([]*dataset.Dataset, cfg.Subspaces)
	for s := 0; s < cfg.Subspaces; s++ {
		lo, hi := pq.Bounds[s], pq.Bounds[s+1]
		sub := dataset.New(ds.N, hi-lo)
		for i := 0; i < ds.N; i++ {
			copy(sub.Row(i), ds.Row(i)[lo:hi])
		}
		res, err := kmeans.Run(sub, cfg.K, kmeans.Options{
			Seed: cfg.Seed + int64(s), MaxIters: cfg.Iters,
		})
		if err != nil {
			return nil, fmt.Errorf("quant: subspace %d: %w", s, err)
		}
		cents := res.Centroids
		if cfg.Anisotropic {
			cents = anisotropicRefine(sub, cents, cfg, cfg.Seed+int64(s))
		}
		pq.Codebooks[s] = cents
	}
	return pq, nil
}

// Encode quantizes every row of ds into Subspaces byte codes.
func (pq *PQ) Encode(ds *dataset.Dataset) [][]uint8 {
	codes := make([][]uint8, ds.N)
	par.ForChunks(ds.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			codes[i] = pq.EncodeVec(ds.Row(i))
		}
	})
	return codes
}

// EncodeInto quantizes every row of ds into dst, a caller-provided flat
// row-major code buffer of length ds.N*Subspaces (row i's code occupies
// dst[i*Subspaces:(i+1)*Subspaces]). Unlike Encode it performs no per-row
// allocation; dst is grown (reallocating at most once) if too short.
func (pq *PQ) EncodeInto(dst []uint8, ds *dataset.Dataset) ([]uint8, error) {
	if ds == nil {
		return dst[:0], nil
	}
	if ds.Dim != pq.Dim {
		return nil, fmt.Errorf("quant: dataset dim %d != quantizer dim %d", ds.Dim, pq.Dim)
	}
	need := ds.N * pq.Subspaces
	if cap(dst) < need {
		dst = make([]uint8, need)
	}
	dst = dst[:need]
	m := pq.Subspaces
	par.ForChunks(ds.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pq.encodeVecInto(dst[i*m:(i+1)*m], ds.Row(i))
		}
	})
	return dst, nil
}

// AppendCode appends v's Subspaces-byte code to dst and returns the
// extended slice. It allocates only when dst lacks capacity, so a
// steady-state caller reusing its buffer pays zero allocations.
func (pq *PQ) AppendCode(dst []uint8, v []float32) []uint8 {
	n := len(dst)
	dst = append(dst, make([]uint8, pq.Subspaces)...)
	pq.encodeVecInto(dst[n:], v)
	return dst
}

// EncodeVec quantizes one vector.
func (pq *PQ) EncodeVec(v []float32) []uint8 {
	code := make([]uint8, pq.Subspaces)
	pq.encodeVecInto(code, v)
	return code
}

func (pq *PQ) encodeVecInto(code []uint8, v []float32) {
	for s := 0; s < pq.Subspaces; s++ {
		lo, hi := pq.Bounds[s], pq.Bounds[s+1]
		seg := v[lo:hi]
		cb := pq.Codebooks[s]
		best, bi := float32(math.MaxFloat32), 0
		for c := 0; c < cb.N; c++ {
			if d := vecmath.SquaredL2(seg, cb.Row(c)); d < best {
				best, bi = d, c
			}
		}
		code[s] = uint8(bi)
	}
}

// Decode reconstructs the vector a code represents.
func (pq *PQ) Decode(code []uint8) []float32 {
	out := make([]float32, pq.Dim)
	for s := 0; s < pq.Subspaces; s++ {
		lo, hi := pq.Bounds[s], pq.Bounds[s+1]
		copy(out[lo:hi], pq.Codebooks[s].Row(int(code[s])))
	}
	return out
}

// LUT is a per-query ADC lookup table: LUT[s][c] is the squared distance
// between the query's subspace-s segment and centroid c.
type LUT [][]float32

// BuildLUT precomputes the ADC table for q.
func (pq *PQ) BuildLUT(q []float32) LUT {
	lut := make(LUT, pq.Subspaces)
	for s := 0; s < pq.Subspaces; s++ {
		lo, hi := pq.Bounds[s], pq.Bounds[s+1]
		seg := q[lo:hi]
		cb := pq.Codebooks[s]
		row := make([]float32, cb.N)
		for c := 0; c < cb.N; c++ {
			row[c] = vecmath.SquaredL2(seg, cb.Row(c))
		}
		lut[s] = row
	}
	return lut
}

// AppendLUT appends the flat row-major ADC table for q to dst and returns
// the extended slice: entry [s*K+c] is the squared distance between the
// query's subspace-s segment and centroid c. Subspaces whose codebooks
// hold fewer than K centroids pad the tail of their row with zeros, so
// every row is exactly K wide and vecmath.LUTSum can index it uniformly.
// It allocates only when dst lacks capacity.
func (pq *PQ) AppendLUT(dst []float32, q []float32) []float32 {
	n := len(dst)
	dst = append(dst, make([]float32, pq.Subspaces*pq.K)...)
	flat := dst[n:]
	for s := 0; s < pq.Subspaces; s++ {
		lo, hi := pq.Bounds[s], pq.Bounds[s+1]
		seg := q[lo:hi]
		cb := pq.Codebooks[s]
		row := flat[s*pq.K : (s+1)*pq.K]
		for c := 0; c < cb.N; c++ {
			row[c] = vecmath.SquaredL2(seg, cb.Row(c))
		}
		for c := cb.N; c < pq.K; c++ {
			row[c] = 0
		}
	}
	return dst
}

// AppendLUTBatch appends the flat ADC tables of every query to dst back to
// back — query i's table occupies the Subspaces*K stride starting at
// i*Subspaces*K — and returns the extended slice. The batched build
// iterates centroid-major: each codebook row is scored against every
// query's segment before moving to the next centroid, so a centroid's
// cache lines are reused across the whole batch instead of being refetched
// per query. Every entry is the identical vecmath.SquaredL2 call AppendLUT
// performs, so each query's table is bit-identical to a per-query
// AppendLUT. It allocates only when dst lacks capacity.
func (pq *PQ) AppendLUTBatch(dst []float32, queries [][]float32) []float32 {
	n := len(dst)
	stride := pq.Subspaces * pq.K
	dst = append(dst, make([]float32, len(queries)*stride)...)
	flat := dst[n:] // pre-zeroed, so short codebooks need no explicit padding
	for s := 0; s < pq.Subspaces; s++ {
		lo, hi := pq.Bounds[s], pq.Bounds[s+1]
		cb := pq.Codebooks[s]
		for c := 0; c < cb.N; c++ {
			crow := cb.Row(c)
			for qi, q := range queries {
				flat[qi*stride+s*pq.K+c] = vecmath.SquaredL2(q[lo:hi], crow)
			}
		}
	}
	return dst
}

// Distance evaluates the asymmetric (query-to-code) squared distance via the
// lookup table: one add per subspace.
func (lut LUT) Distance(code []uint8) float32 {
	var d float32
	for s, c := range code {
		d += lut[s][c]
	}
	return d
}

// anisotropicRefine re-optimizes centroids under the score-aware loss
// h∥·‖r∥‖² + h⊥·‖r⊥‖² with h∥ = EtaParallel·h⊥, alternating weighted
// assignment with the closed-form weighted centroid update
// c = (Σ Aᵢ)⁻¹ Σ Aᵢ xᵢ, Aᵢ = I + (η−1)·uᵢuᵢᵀ (Guo et al. 2020, Thm 4.2).
func anisotropicRefine(sub *dataset.Dataset, cents *dataset.Dataset, cfg Config, seed int64) *dataset.Dataset {
	eta := cfg.EtaParallel
	d := sub.Dim
	k := cents.N
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, sub.N)
	units := make([][]float32, sub.N)
	for i := 0; i < sub.N; i++ {
		u := append([]float32(nil), sub.Row(i)...)
		if !vecmath.Normalize(u) {
			u = nil // zero segment: isotropic treatment
		}
		units[i] = u
	}

	anisoCost := func(x, c, u []float32) float32 {
		// r = x - c; cost = ‖r⊥‖² + η·‖r∥‖² = ‖r‖² + (η−1)(r·u)².
		var rr, ru float32
		for j := range x {
			r := x[j] - c[j]
			rr += r * r
			if u != nil {
				ru += r * u[j]
			}
		}
		return rr + float32(eta-1)*ru*ru
	}

	for iter := 0; iter < cfg.Iters; iter++ {
		// Weighted assignment.
		for i := 0; i < sub.N; i++ {
			x := sub.Row(i)
			best, bi := float32(math.MaxFloat32), 0
			for c := 0; c < k; c++ {
				if cost := anisoCost(x, cents.Row(c), units[i]); cost < best {
					best, bi = cost, c
				}
			}
			assign[i] = bi
		}
		// Closed-form update per centroid: accumulate A = Σ Aᵢ (d×d) and
		// b = Σ Aᵢ xᵢ, then solve A·c = b.
		for c := 0; c < k; c++ {
			A := make([]float64, d*d)
			b := make([]float64, d)
			count := 0
			for i := 0; i < sub.N; i++ {
				if assign[i] != c {
					continue
				}
				count++
				x := sub.Row(i)
				u := units[i]
				// Aᵢ = I + (η−1) u uᵀ ; Aᵢ xᵢ = xᵢ + (η−1)(u·xᵢ) u.
				var ux float64
				if u != nil {
					for j := range x {
						ux += float64(u[j]) * float64(x[j])
					}
				}
				for j := 0; j < d; j++ {
					A[j*d+j]++
					b[j] += float64(x[j])
					if u != nil {
						b[j] += (eta - 1) * ux * float64(u[j])
						for l := 0; l < d; l++ {
							A[j*d+l] += (eta - 1) * float64(u[j]) * float64(u[l])
						}
					}
				}
			}
			if count == 0 {
				copy(cents.Row(c), sub.Row(rng.Intn(sub.N)))
				continue
			}
			if sol, ok := solveLinear(A, b, d); ok {
				crow := cents.Row(c)
				for j := 0; j < d; j++ {
					crow[j] = float32(sol[j])
				}
			}
		}
	}
	return cents
}

// solveLinear solves the d×d system A·x = b by Gaussian elimination with
// partial pivoting. Returns ok=false for (near-)singular systems.
func solveLinear(A []float64, b []float64, d int) ([]float64, bool) {
	M := append([]float64(nil), A...)
	x := append([]float64(nil), b...)
	for col := 0; col < d; col++ {
		// Pivot.
		pivot, pv := col, math.Abs(M[col*d+col])
		for r := col + 1; r < d; r++ {
			if v := math.Abs(M[r*d+col]); v > pv {
				pivot, pv = r, v
			}
		}
		if pv < 1e-12 {
			return nil, false
		}
		if pivot != col {
			for j := 0; j < d; j++ {
				M[col*d+j], M[pivot*d+j] = M[pivot*d+j], M[col*d+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / M[col*d+col]
		for r := col + 1; r < d; r++ {
			f := M[r*d+col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < d; j++ {
				M[r*d+j] -= f * M[col*d+j]
			}
			x[r] -= f * x[col]
		}
	}
	for col := d - 1; col >= 0; col-- {
		s := x[col]
		for j := col + 1; j < d; j++ {
			s -= M[col*d+j] * x[j]
		}
		x[col] = s / M[col*d+col]
	}
	return x, true
}
