package trees

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// BoostedForest implements the Boosted Search Forest of Li et al. (2011):
// a sequence of hyperplane-partitioning trees where each node's hyperplane
// is *learned* by minimizing a weighted neighborhood-separation loss, and
// point weights are boosted between trees so later trees focus on points
// whose neighborhoods earlier trees split. Queries union the trees'
// candidate sets.
//
// Simplification vs. the original (documented in DESIGN.md): the per-node
// hyperplane is chosen from a candidate pool (top-PCA direction plus random
// directions, each with a median threshold) by exact evaluation of the
// weighted separation loss, rather than by the paper's spectral relaxation.
// Both procedures optimize the same objective family; candidate search is
// deterministic and dependency-free.
type BoostedForest struct {
	Trees []*Tree
}

// ForestConfig controls construction.
type ForestConfig struct {
	// NumTrees is the ensemble size (default 3).
	NumTrees int
	// Depth bounds each tree (2^Depth leaves).
	Depth int
	// Candidates is the hyperplane pool size per node (default 6).
	Candidates int
	// Seed drives all randomness.
	Seed int64
}

// boostFitter learns hyperplanes minimizing the weighted count of neighbor
// pairs the split separates.
type boostFitter struct {
	neighbors [][]int32
	weights   []float64
	nCand     int
}

// Name implements Fitter.
func (boostFitter) Name() string { return "boosted-search-forest" }

// Fit implements Fitter.
func (f *boostFitter) Fit(ds *dataset.Dataset, idx []int32, rng *rand.Rand) Splitter {
	inSubset := make(map[int32]bool, len(idx))
	for _, i := range idx {
		inSubset[i] = true
	}
	var best Splitter
	bestLoss := math.Inf(1)
	for c := 0; c < f.nCand; c++ {
		var sp Splitter
		if c == 0 {
			sp = PCAFitter{Iters: 15}.Fit(ds, idx, rng)
		} else {
			sp = RPFitter{}.Fit(ds, idx, rng)
		}
		if sp == nil {
			continue
		}
		// Weighted separated-neighbor loss plus a balance penalty.
		side := make(map[int32]int, len(idx))
		n1 := 0
		for _, i := range idx {
			s := sp.Side(ds.Row(int(i)))
			side[i] = s
			n1 += s
		}
		if n1 == 0 || n1 == len(idx) {
			continue
		}
		var loss float64
		for _, i := range idx {
			si := side[i]
			for _, j := range f.neighbors[i] {
				if inSubset[j] && side[j] != si {
					loss += f.weights[i]
				}
			}
		}
		// Balance penalty keeps leaves usable as fixed-size bins.
		imbalance := math.Abs(float64(2*n1-len(idx))) / float64(len(idx))
		loss *= 1 + imbalance
		if loss < bestLoss {
			bestLoss, best = loss, sp
		}
	}
	return best
}

// BuildBoostedForest constructs the forest over ds using the k′-NN adjacency
// (the same matrix the USP trainer consumes).
func BuildBoostedForest(ds *dataset.Dataset, neighbors [][]int32, cfg ForestConfig) *BoostedForest {
	if cfg.NumTrees == 0 {
		cfg.NumTrees = 3
	}
	if cfg.Candidates == 0 {
		cfg.Candidates = 6
	}
	weights := make([]float64, ds.N)
	for i := range weights {
		weights[i] = 1
	}
	forest := &BoostedForest{}
	kPrime := 1
	if ds.N > 0 && len(neighbors[0]) > 0 {
		kPrime = len(neighbors[0])
	}
	for t := 0; t < cfg.NumTrees; t++ {
		fitter := &boostFitter{neighbors: neighbors, weights: weights, nCand: cfg.Candidates}
		tree := Build(ds, cfg.Depth, fitter, cfg.Seed+int64(t)*4099)
		forest.Trees = append(forest.Trees, tree)
		if t == cfg.NumTrees-1 {
			break
		}
		// AdaBoost-style reweighting: exponential in the fraction of each
		// point's neighborhood this tree separated (smooth, never zero).
		leafOf := make([]int, ds.N)
		for l, pts := range tree.Leaves {
			for _, i := range pts {
				leafOf[i] = l
			}
		}
		for i := 0; i < ds.N; i++ {
			sep := 0
			for _, j := range neighbors[i] {
				if leafOf[j] != leafOf[i] {
					sep++
				}
			}
			weights[i] *= math.Exp(float64(sep) / float64(kPrime))
		}
		// Normalize to mean 1 to keep losses comparable across trees.
		var sum float64
		for _, w := range weights {
			sum += w
		}
		scale := float64(ds.N) / sum
		for i := range weights {
			weights[i] *= scale
		}
	}
	return forest
}

// Candidates unions each tree's mPrime best leaves (duplicate-free).
func (f *BoostedForest) Candidates(q []float32, mPrime int) []int {
	seen := make(map[int]struct{})
	var out []int
	for _, t := range f.Trees {
		leaves := vecmath.TopKIndices(t.LeafScores(q), mPrime)
		for _, l := range leaves {
			for _, i := range t.Leaves[l] {
				ii := int(i)
				if _, ok := seen[ii]; !ok {
					seen[ii] = struct{}{}
					out = append(out, ii)
				}
			}
		}
	}
	return out
}
