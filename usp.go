// Package usp is the public API of this repository: an implementation of
// "Unsupervised Space Partitioning for Nearest Neighbor Search" (Fahim, Ali
// & Cheema, EDBT 2023).
//
// The package trains a neural (or logistic-regression) model to partition a
// vector dataset into bins with the paper's unsupervised two-term loss — a
// quality cost keeping k′-NN neighborhoods together and a computational cost
// keeping bins balanced — and answers approximate k-NN queries by probing
// the most probable bins. Ensembles of complementary partitions and
// hierarchical (recursive) partitioning are supported, as are plain
// clustering labels (the paper's §5.5 usage).
//
// Quick start:
//
//	ix, err := usp.Build(vectors, usp.Options{Bins: 16, Ensemble: 3})
//	...
//	results, err := ix.Search(query, 10, usp.SearchOptions{Probes: 2})
//
// A built index is a live, mutable collection: Add routes new vectors in
// without retraining, Delete tombstones existing ones, a background
// compactor folds both back into the contiguous lookup tables, and
// Save/Load round-trip the whole index — models, tables, dataset, norm
// cache, tombstones — through a single self-contained snapshot file.
// Queries are lock-free: they resolve an atomically published immutable
// epoch, so readers never contend with writers or with compaction.
//
// The internal packages additionally contain every baseline the paper
// evaluates against (Neural LSH, K-means, LSH, partitioning trees, ScaNN,
// HNSW, IVF-PQ, DBSCAN, spectral clustering); see DESIGN.md.
package usp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/quant"
)

// ErrInvalid marks errors caused by an invalid caller-supplied argument
// (non-positive k, negative probes, a query or vector of the wrong
// dimension). HTTP layers map errors.Is(err, ErrInvalid) to 400 so clients
// — and the fan-out front's retry logic — can tell a request they must fix
// from a server fault worth retrying on a replica.
var ErrInvalid = errors.New("usp: invalid argument")

// ErrNotFound marks errors about an id that does not exist (or no longer
// exists) in the index, such as deleting an unknown or already-deleted id.
var ErrNotFound = errors.New("usp: not found")

// Options configures Build.
type Options struct {
	// Bins is the number of partition cells m (default 16). When
	// Hierarchy is non-empty it is ignored in favor of the level product.
	Bins int
	// KPrime is the neighborhood width k′ of the offline k′-NN matrix
	// (default 10, the paper's choice).
	KPrime int
	// Eta is the balance weight η of the loss. nil selects the paper's
	// default of 10; Float(0) disables the balance term explicitly (a
	// meaningful zero a plain float field could not express).
	Eta *float64
	// Epochs of training per model (default 60).
	Epochs int
	// BatchSize for mini-batch sampling (default max(64, n/25) ≈ 4%).
	BatchSize int
	// Hidden lists MLP hidden widths (default [128], the paper's network;
	// set Logistic to force a linear model instead).
	Hidden []int
	// Logistic selects the single-layer logistic-regression architecture.
	Logistic bool
	// Dropout probability on hidden layers. nil selects the paper's 0.1
	// when hidden layers exist; Float(0) disables dropout explicitly.
	Dropout *float64
	// Ensemble is the number of boosted models e (default 1).
	Ensemble int
	// Hierarchy, when non-empty, trains a recursive partition with the
	// given per-level branching factors (e.g. [16, 16] for 256 bins).
	// Mutually exclusive with Ensemble > 1.
	Hierarchy []int
	// Seed makes the build reproducible.
	Seed int64
	// Shards is the number of write shards pending mutations are striped
	// across (default 8). Shards bound the copy cost of publishing an
	// epoch after Add and let the compactor merge independent spill state;
	// they are also the unit a future multi-node split would distribute.
	Shards int
	// CompactAfter is the number of pending mutations (inserts plus
	// deletes since the last compaction) that triggers a background
	// compaction (default 1024). Negative disables automatic compaction;
	// Compact can still be invoked manually.
	CompactAfter int
	// Quantize configures the optional product-quantized (ADC) serving
	// path; the zero value leaves the index float-only.
	Quantize Quantization
	// Logf receives progress lines when set.
	Logf func(format string, args ...any)
}

// Quantization configures the ADC candidate-scan path: PQ codebooks are
// trained at build time (and retrained on compaction as the dataset
// grows), every row is stored as a Subspaces-byte code alongside the float
// rows, and queries scan candidates from the codes via a per-query lookup
// table, exactly re-ranking only the top SearchOptions.RerankK survivors.
type Quantization struct {
	// Enabled turns the quantized scan on.
	Enabled bool
	// Subspaces is the number of PQ blocks M — also the bytes per stored
	// code. It must divide the vector dimension. Default: the largest of
	// 64, 32, 16, 8, 4, 2, 1 that divides the dimension (128-d → 64,
	// an 8× compression of the float payload).
	Subspaces int
	// K is the per-subspace codebook size (≤ 256; default 256).
	K int
	// Iters of Lloyd refinement per subspace (default 15).
	Iters int
	// TrainSample caps the rows sampled for codebook training (default
	// 100000; 0 uses the default, negative trains on everything).
	TrainSample int
	// RetrainGrowth triggers codebook retraining during compaction when
	// the row count has grown by this fraction since the last training
	// (default 0.25; negative disables retraining).
	RetrainGrowth float64
	// MemoryTight drops the float rows (and norm cache) once codes are
	// built, shrinking memory to ~Subspaces bytes/vector. Queries then
	// serve pure-ADC results (no exact re-rank), and Add/Save become
	// unavailable — see Index.DropFloats.
	MemoryTight bool
}

func (q Quantization) withDefaults(dim int) Quantization {
	if !q.Enabled {
		return q
	}
	if q.Subspaces == 0 {
		for _, m := range []int{64, 32, 16, 8, 4, 2, 1} {
			if dim%m == 0 {
				q.Subspaces = m
				break
			}
		}
	}
	if q.K == 0 {
		q.K = 256
	}
	if q.Iters == 0 {
		q.Iters = 15
	}
	if q.TrainSample == 0 {
		q.TrainSample = 100000
	}
	if q.RetrainGrowth == 0 {
		q.RetrainGrowth = 0.25
	}
	return q
}

// Float returns a pointer to v — the way to set the optional float fields
// of Options (Eta, Dropout), including their meaningful zero values.
func Float(v float64) *float64 { return &v }

// withDefaults resolves unset fields. Optional floats use nil (not the zero
// value) as the "unset" sentinel so explicit zeros survive: Eta: Float(0)
// and Dropout: Float(0) are honored, not rewritten to the defaults.
func (o Options) withDefaults() Options {
	if o.Bins == 0 {
		o.Bins = 16
	}
	if o.KPrime == 0 {
		o.KPrime = 10
	}
	if o.Eta == nil {
		o.Eta = Float(10)
	}
	if o.Epochs == 0 {
		o.Epochs = 60
	}
	if o.Hidden == nil && !o.Logistic {
		o.Hidden = []int{128}
	}
	if o.Logistic {
		o.Hidden = nil
	}
	if o.Dropout == nil {
		if len(o.Hidden) > 0 {
			o.Dropout = Float(0.1)
		} else {
			o.Dropout = Float(0)
		}
	}
	if o.Ensemble == 0 {
		o.Ensemble = 1
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.CompactAfter == 0 {
		o.CompactAfter = 1024
	}
	return o
}

// coreConfig translates resolved Options into a training config.
func (o Options) coreConfig() core.Config {
	return core.Config{
		Bins:      o.Bins,
		KPrime:    o.KPrime,
		Eta:       *o.Eta,
		Epochs:    o.Epochs,
		BatchSize: o.BatchSize,
		Hidden:    o.Hidden,
		Dropout:   *o.Dropout,
		Seed:      o.Seed,
		Logf:      o.Logf,
	}
}

// Result is one returned neighbor.
type Result struct {
	ID       int
	Distance float32 // squared Euclidean distance
}

// BuildStats summarizes the offline phase.
type BuildStats struct {
	// Bins is the total number of partition cells.
	Bins int
	// Models is the number of trained models (ensemble members or
	// hierarchy nodes).
	Models int
	// Params is the total learnable parameter count (Table 2's metric).
	Params int
}

// SearchOptions configures a query.
type SearchOptions struct {
	// Probes is m′, the number of most-probable bins scanned (default 1).
	Probes int
	// UnionEnsemble unions every ensemble member's candidates instead of
	// the paper's best-confidence selection (Algorithm 4).
	UnionEnsemble bool
	// RerankK controls the quantized two-phase scan (ignored on
	// float-only indexes): the ADC pass keeps the RerankK best candidates
	// by approximate distance, and only those are exactly re-ranked from
	// the float rows. 0 defaults to 4·k (clamped up to k); negative skips
	// re-ranking entirely and returns pure-ADC results — the only mode
	// available once float rows are dropped (memory-tight).
	RerankK int
}

// Index is a built USP index over a dataset.
//
// Concurrency: queries (Search, SearchBatch, CandidateSet, Searcher entry
// points) are lock-free — each resolves the atomically published epoch,
// an immutable snapshot of the dataset view, lookup tables, pending-insert
// spill lists, and tombstones — so they may run concurrently with each
// other, with Add/Delete, and with compaction, and each query observes one
// consistent point-in-time state. Mutators serialize behind a short writer
// lock that never blocks readers; the heavy parts of Add (model routing)
// and Compact (table merging) run outside it.
type Index struct {
	dim   int
	opt   Options // resolved by withDefaults; retained for Save
	stats BuildStats

	// live is the epoch all reads resolve. Writers publish a successor
	// with an atomic store; readers load it once per query.
	live atomic.Pointer[epoch]

	// wmu serializes mutators: id assignment, dataset growth, spill
	// staging, tombstone derivation, and epoch publication.
	wmu  sync.Mutex
	data *dataset.Dataset // canonical growing storage (writer-owned)
	// Quantization state (writer-owned, guarded by wmu; epochs publish
	// length-capped views). pq is nil on float-only indexes; codes is the
	// flat row-major code buffer growing in lockstep with data; qtight
	// records that the float rows were dropped (memory-tight mode);
	// qTrainedN is the row count when codebooks were last trained, read
	// by the compaction retrain heuristic.
	pq        *quant.PQ
	codes     []uint8
	qtight    bool
	qTrainedN int
	// shards is the latest published per-shard spill state. Writers copy
	// a shard's slot table before changing it (copy-on-write), so slices
	// reachable from published epochs are never mutated.
	shards         []spillShard
	members        int          // ensemble size, or 1 for a hierarchy
	slotsPerMember int          // bins per member, or the hierarchy leaf count
	pendingOps     atomic.Int64 // inserts+deletes since last compaction

	// compactMu serializes compactions; compactQueued collapses redundant
	// background triggers while one is already pending.
	compactMu     sync.Mutex
	compactQueued atomic.Bool

	// searchers pools query contexts for the convenience entry points
	// (Search, SearchBatch, CandidateSet) so they stay allocation-lean
	// without the caller managing Searchers explicitly.
	searchers sync.Pool

	// tel is the per-index telemetry surface (metrics.go); publishedAt is
	// the UnixNano timestamp of the live epoch's publication, feeding the
	// epoch-age gauge and /healthz.
	tel         *indexMetrics
	publishedAt atomic.Int64

	// idOffset is the global id of local row 0 — set by Shard on the split
	// indexes (and restored from their snapshots) so a fan-out front can map
	// shard-local result ids back to the parent's id space. Immutable after
	// construction.
	idOffset int
}

// Build trains a USP index over the given vectors (all of equal length).
func Build(vectors [][]float32, opt Options) (*Index, error) {
	if len(vectors) < 4 {
		return nil, errors.New("usp: need at least 4 vectors")
	}
	opt = opt.withDefaults()
	if len(opt.Hierarchy) > 0 && opt.Ensemble > 1 {
		return nil, errors.New("usp: Hierarchy and Ensemble > 1 are mutually exclusive")
	}
	ds := dataset.FromRowsCopy(vectors)
	// Cache per-row squared norms so the candidate scan can use the fused
	// distance kernel; Append keeps the cache extended for Add.
	ds.EnsureSqNorms(false)
	opt.Quantize = opt.Quantize.withDefaults(ds.Dim)

	cfg := opt.coreConfig()

	var ens *core.Ensemble
	var hier *core.Hierarchy
	var bs BuildStats
	if len(opt.Hierarchy) > 0 {
		h, stats, err := core.TrainHierarchy(ds, opt.Hierarchy, cfg)
		if err != nil {
			return nil, fmt.Errorf("usp: %w", err)
		}
		hier = h
		bs = BuildStats{Bins: h.NumBins, Models: len(stats), Params: h.TotalParams()}
	} else {
		kp := cfg.KPrime
		if kp >= ds.N {
			kp = ds.N - 1
			cfg.KPrime = kp
		}
		mat := knn.BuildMatrix(ds, kp)
		e, stats, err := core.TrainEnsemble(ds, mat, cfg, opt.Ensemble)
		if err != nil {
			return nil, fmt.Errorf("usp: %w", err)
		}
		ens = e
		bs = BuildStats{Bins: opt.Bins, Models: e.Size(), Params: stats.TotalParams()}
	}

	var pq *quant.PQ
	var codes []uint8
	if opt.Quantize.Enabled {
		var err error
		pq, codes, err = trainQuantizer(ds, opt.Quantize, opt.Seed, opt.Logf)
		if err != nil {
			return nil, fmt.Errorf("usp: %w", err)
		}
	}
	ix := newIndex(ds, ens, hier, opt, bs, 0, nil, nil, pq, codes)
	if opt.Quantize.MemoryTight {
		if err := ix.DropFloats(); err != nil {
			return nil, fmt.Errorf("usp: %w", err)
		}
	}
	return ix, nil
}

// trainQuantizer fits PQ codebooks on (a sample of) ds and encodes every
// row. Training sees at most q.TrainSample rows (a seeded uniform sample —
// codebook quality saturates long before millions of rows) but encoding
// always covers the full dataset.
func trainQuantizer(ds *dataset.Dataset, q Quantization, seed int64, logf func(string, ...any)) (*quant.PQ, []uint8, error) {
	cfg := quant.Config{Subspaces: q.Subspaces, K: q.K, Iters: q.Iters, Seed: seed + 101}
	if q.K > ds.N {
		cfg.K = ds.N // tiny indexes: one centroid per row still works
	}
	sample := ds
	if q.TrainSample > 0 && ds.N > q.TrainSample {
		rng := rand.New(rand.NewSource(seed + 103))
		idx := rng.Perm(ds.N)[:q.TrainSample]
		sample = ds.Subset(idx)
	}
	if logf != nil {
		logf("usp: training PQ codebooks (M=%d K=%d on %d rows)", cfg.Subspaces, cfg.K, sample.N)
	}
	pq, err := quant.Train(sample, cfg)
	if err != nil {
		return nil, nil, err
	}
	codes, err := pq.EncodeInto(nil, ds)
	if err != nil {
		return nil, nil, err
	}
	return pq, codes, nil
}

// Stats reports offline-phase metrics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// Len returns the number of live (non-deleted) vectors. Lock-free; safe to
// call concurrently with any mutation.
func (ix *Index) Len() int {
	ep := ix.live.Load()
	return ep.data.N - ep.dead() - ep.tombs.Count()
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// CandidateSet returns the ids the index would scan for q (Algorithm 2,
// step 2) — exposed so callers can hand candidates to their own scorer
// (e.g. a ScaNN pipeline, as in §5.4.3). It is a thin wrapper over the
// batched engine's candidate gathering, using a pooled Searcher; deleted
// ids are filtered out.
func (ix *Index) CandidateSet(q []float32, opt SearchOptions) ([]int, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("%w: query dim %d, index dim %d", ErrInvalid, len(q), ix.dim)
	}
	probes := opt.Probes
	if probes <= 0 {
		probes = 1
	}
	s := ix.getSearcher()
	defer ix.putSearcher(s)
	ep := ix.live.Load()
	s.gatherCandidates(ep, q, probes, opt.UnionEnsemble)
	out := make([]int, 0, len(s.cands))
	for _, id := range s.cands {
		if !ep.tombs.Has(int(id)) {
			out = append(out, int(id))
		}
	}
	return out, nil
}

// Search returns the k approximate nearest neighbors of q. It is a thin
// wrapper over a pooled Searcher; callers issuing many queries from one
// goroutine should hold their own (NewSearcher) and use SearchInto, and
// callers with many queries in hand should prefer SearchBatch.
func (ix *Index) Search(q []float32, k int, opt SearchOptions) ([]Result, error) {
	s := ix.getSearcher()
	defer ix.putSearcher(s)
	return s.Search(q, k, opt)
}

// Cluster trains a single USP model with k bins and returns a cluster label
// per vector — the paper's use of the partitioner as an unsupervised
// clustering method (§5.5).
func Cluster(vectors [][]float32, k int, opt Options) ([]int, error) {
	if len(vectors) < k {
		return nil, fmt.Errorf("usp: %d vectors cannot form %d clusters", len(vectors), k)
	}
	opt = opt.withDefaults()
	ds := dataset.FromRowsCopy(vectors)
	cfg := opt.coreConfig()
	cfg.Bins = 0 // ClusterLabels sets Bins = k
	return core.ClusterLabels(ds, k, cfg)
}
