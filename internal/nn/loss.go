package nn

import (
	"repro/internal/tensor"
	"repro/internal/vecmath"
)

// LossResult bundles the scalar loss terms and the gradient of the total
// loss with respect to the model's logits.
type LossResult struct {
	Loss    float64 // total = Quality + Eta·Balance
	Quality float64 // weighted soft-target cross-entropy (Eq. 10)
	Balance float64 // computational-cost term S(R) (Eq. 13), normalized by batch size
	Grad    *tensor.Matrix
}

// USPLoss computes the paper's combined unsupervised partitioning loss
// (Eq. 5) over a batch.
//
//   - logits: batch×m model outputs before softmax.
//   - targets: batch×m soft labels B_{k′}(p_i) — the per-point bin histogram
//     of its k′ nearest neighbors (Eq. 9). Each row must sum to 1.
//   - weights: optional per-point ensemble weights w_i (Eq. 14); nil means
//     uniform. The quality term is the weight-normalized mean of per-point
//     cross-entropies.
//   - eta: the balance parameter η.
//
// The balance term follows Eqs. 12–13: with window size win = max(1, B/m),
// the win largest probabilities of each bin column are summed and negated,
// normalized by B so the term is batch-size invariant. Its gradient
// (−η/B routed to the selected entries) is chained through the softmax
// Jacobian analytically together with the cross-entropy gradient.
func USPLoss(logits, targets *tensor.Matrix, weights []float32, eta float64) LossResult {
	b, m := logits.Rows, logits.Cols
	if targets.Rows != b || targets.Cols != m {
		panic("nn: USPLoss target shape mismatch")
	}
	if weights != nil && len(weights) != b {
		panic("nn: USPLoss weights length mismatch")
	}

	// Probabilities (softmax of logits), kept separate from the logits.
	probs := logits.Clone()
	SoftmaxRows(probs)

	// ---- Quality term: weighted soft-target cross-entropy. ----
	var wsum float64
	if weights == nil {
		wsum = float64(b)
	} else {
		for _, w := range weights {
			wsum += float64(w)
		}
		if wsum <= 0 {
			wsum = 1 // degenerate all-zero weights: avoid division by zero
		}
	}
	var quality float64
	logRow := make([]float64, m)
	for i := 0; i < b; i++ {
		LogSoftmaxRow(logRow, logits.Row(i))
		trow := targets.Row(i)
		var ce float64
		for j, t := range trow {
			if t != 0 {
				ce -= float64(t) * logRow[j]
			}
		}
		w := 1.0
		if weights != nil {
			w = float64(weights[i])
		}
		quality += w * ce
	}
	quality /= wsum

	// dL_quality/dlogits = w_i (P_i - T_i) / Σw  (softmax+CE fused gradient).
	grad := tensor.New(b, m)
	for i := 0; i < b; i++ {
		w := 1.0
		if weights != nil {
			w = float64(weights[i])
		}
		scale := float32(w / wsum)
		prow, trow, grow := probs.Row(i), targets.Row(i), grad.Row(i)
		for j := range grow {
			grow[j] = scale * (prow[j] - trow[j])
		}
	}

	// ---- Balance term (only when eta != 0). ----
	var balance float64
	if eta != 0 {
		win := b / m
		if win < 1 {
			win = 1
		}
		// dS/dP has −1/B at the selected window entries. We materialize
		// dP then chain through the softmax Jacobian per row:
		// dZ_i = P_i ⊙ (dP_i − <dP_i, P_i>).
		dP := tensor.New(b, m)
		col := make([]float32, b)
		var winSum float64
		for j := 0; j < m; j++ {
			for i := 0; i < b; i++ {
				col[i] = probs.At(i, j)
			}
			tau := vecmath.SelectKthLargest(col, win)
			// Select entries > tau, then == tau until win entries total,
			// in row order for determinism under ties.
			remaining := win
			for i := 0; i < b && remaining > 0; i++ {
				if col[i] > tau {
					winSum += float64(col[i])
					dP.Set(i, j, -1)
					remaining--
				}
			}
			for i := 0; i < b && remaining > 0; i++ {
				if col[i] == tau {
					winSum += float64(col[i])
					dP.Set(i, j, -1)
					remaining--
				}
			}
		}
		balance = -winSum / float64(b)

		invB := float32(1.0 / float64(b))
		scale := float32(eta)
		for i := 0; i < b; i++ {
			prow, dprow, grow := probs.Row(i), dP.Row(i), grad.Row(i)
			var dot float32
			for j := range prow {
				dprow[j] *= invB
				dot += dprow[j] * prow[j]
			}
			for j := range grow {
				grow[j] += scale * prow[j] * (dprow[j] - dot)
			}
		}
	}

	return LossResult{
		Loss:    quality + eta*balance,
		Quality: quality,
		Balance: balance,
		Grad:    grad,
	}
}

// CrossEntropy computes mean hard-label cross-entropy over a batch of logits
// and its gradient with respect to the logits. It is the supervised loss
// used to train the Neural LSH baseline's classifier.
func CrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	b, m := logits.Rows, logits.Cols
	if len(labels) != b {
		panic("nn: CrossEntropy labels length mismatch")
	}
	grad := logits.Clone()
	SoftmaxRows(grad) // grad now holds P; adjust below
	var loss float64
	logRow := make([]float64, m)
	invB := float32(1.0 / float64(b))
	for i := 0; i < b; i++ {
		y := labels[i]
		if y < 0 || y >= m {
			panic("nn: CrossEntropy label out of range")
		}
		LogSoftmaxRow(logRow, logits.Row(i))
		loss -= logRow[y]
		grow := grad.Row(i)
		grow[y] -= 1
		for j := range grow {
			grow[j] *= invB
		}
	}
	return loss / float64(b), grad
}

// ArgmaxRows returns the index of the maximum entry of each row: the hard
// bin assignment derived from model outputs (footnote 2 in the paper).
func ArgmaxRows(m *tensor.Matrix) []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = vecmath.ArgMax(m.Row(i))
	}
	return out
}
