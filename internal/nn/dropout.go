package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Dropout implements inverted dropout (Srivastava et al. 2014): during
// training each activation is zeroed independently with probability P and the
// survivors are scaled by 1/(1-P), so inference is the identity. The paper
// uses P = 0.1 on the neural-network architecture.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask []float32
}

// NewDropout constructs a Dropout layer with drop probability p in [0, 1).
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.P == 0 {
		return x
	}
	y := tensor.New(x.Rows, x.Cols)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float32, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.P == 0 {
		return gradOut
	}
	dX := tensor.New(gradOut.Rows, gradOut.Cols)
	for i, v := range gradOut.Data {
		dX.Data[i] = v * d.mask[i]
	}
	return dX
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutDim implements Layer.
func (d *Dropout) OutDim(inDim int) int { return inDim }
