package knn

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestBuildMatrixApproxRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: 1500, Dim: 16, Clusters: 12, ClusterStd: 0.5, CenterBox: 3,
	}, rng)
	exact := BuildMatrix(l.Dataset, 10)
	approx := BuildMatrixApprox(l.Dataset, 10, ApproxConfig{Seed: 2})

	var recall float64
	for i := 0; i < l.N; i++ {
		if len(approx.Neighbors[i]) != 10 {
			t.Fatalf("point %d has %d neighbors", i, len(approx.Neighbors[i]))
		}
		recall += Recall(toIntSlice(approx.Neighbors[i]), exact.Neighbors[i])
	}
	recall /= float64(l.N)
	if recall < 0.9 {
		t.Fatalf("approximate k-NN recall %.3f vs exact, want ≥ 0.9", recall)
	}
}

func TestBuildMatrixApproxInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := dataset.Uniform(300, 8, rng)
	m := BuildMatrixApprox(ds, 5, ApproxConfig{Seed: 4, Trees: 4, Iters: 5})
	for i, row := range m.Neighbors {
		if len(row) != 5 {
			t.Fatalf("point %d: %d neighbors", i, len(row))
		}
		seen := map[int32]bool{}
		for _, j := range row {
			if int(j) == i {
				t.Fatalf("point %d is its own neighbor", i)
			}
			if seen[j] {
				t.Fatalf("point %d lists %d twice", i, j)
			}
			seen[j] = true
		}
	}
}

func TestBuildMatrixApproxPanicsOnBadK(t *testing.T) {
	ds := dataset.Uniform(10, 2, rand.New(rand.NewSource(5)))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	BuildMatrixApprox(ds, 10, ApproxConfig{})
}

func toIntSlice(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
