package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
)

// appendSample appends one Prometheus text-format sample line:
// name{labels} value\n.
func appendSample(b []byte, name, labels, value string) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = append(b, value...)
	return append(b, '\n')
}

// joinLabels combines two raw label-pair strings, either possibly empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// appendEscaped appends s with the Prometheus HELP escapes (backslash and
// newline) applied.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// AppendPrometheus renders every metric of the given registries in
// Prometheus text exposition format (version 0.0.4), grouped by family with
// one HELP/TYPE header each, families sorted by name. Registries are
// rendered in argument order; families must not span registries.
func AppendPrometheus(b []byte, regs ...*Registry) []byte {
	for _, r := range regs {
		prevFamily := ""
		for _, m := range r.snapshot() {
			d := m.meta()
			if d.name != prevFamily {
				prevFamily = d.name
				if d.help != "" {
					b = append(b, "# HELP "...)
					b = append(b, d.name...)
					b = append(b, ' ')
					b = appendEscaped(b, d.help)
					b = append(b, '\n')
				}
				b = append(b, "# TYPE "...)
				b = append(b, d.name...)
				b = append(b, ' ')
				b = append(b, m.kind()...)
				b = append(b, '\n')
			}
			b = m.writeSamples(b)
		}
	}
	return b
}

// WritePrometheus writes the Prometheus text exposition of the given
// registries to w.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	_, err := w.Write(AppendPrometheus(nil, regs...))
	return err
}

// JSONSnapshot returns every metric as a flat name{labels} → value map:
// counters as integers, gauges as floats, histograms as
// {count, sum, p50, p95, p99} objects in exported units.
func JSONSnapshot(regs ...*Registry) map[string]any {
	out := make(map[string]any)
	for _, r := range regs {
		for _, m := range r.snapshot() {
			out[m.meta().key()] = m.jsonValue()
		}
	}
	return out
}

// WriteJSON writes the JSONSnapshot of the given registries to w.
func WriteJSON(w io.Writer, regs ...*Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONSnapshot(regs...))
}

// Method forms of the exposition helpers. Code outside this module receives
// a *Registry from usp.Index.Telemetry() but cannot import this internal
// package to call the package-level functions; exported methods remain
// callable on the returned value.

// WritePrometheus writes this registry's Prometheus text exposition to w.
func (r *Registry) WritePrometheus(w io.Writer) error { return WritePrometheus(w, r) }

// JSON returns this registry's metrics as a flat name{labels} → value map.
func (r *Registry) JSON() map[string]any { return JSONSnapshot(r) }
