package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/nn"
)

// ensembleSpec is the gob-encodable snapshot of an Ensemble: each member's
// serialized network plus its lookup table.
type ensembleSpec struct {
	Parts []partSpec
}

type partSpec struct {
	Model  []byte
	M      int
	Assign []int32
	Bins   [][]int32
}

// SaveEnsemble writes a trained ensemble (models and lookup tables) to w.
func SaveEnsemble(w io.Writer, e *Ensemble) error {
	var spec ensembleSpec
	for _, p := range e.Parts {
		var buf bytes.Buffer
		if err := p.Model.Save(&buf); err != nil {
			return fmt.Errorf("core: serializing model: %w", err)
		}
		spec.Parts = append(spec.Parts, partSpec{
			Model: buf.Bytes(), M: p.M, Assign: p.Assign, Bins: p.BinLists(),
		})
	}
	return gob.NewEncoder(w).Encode(spec)
}

// Index files written by cmd/usptrain start with a magic line identifying
// the index kind, followed by the gob payload.
const (
	magicEnsemble  = "usp-index:ensemble\n"
	magicHierarchy = "usp-index:hierarchy\n"
)

// SaveIndexFile writes either an ensemble or a hierarchy (exactly one must
// be non-nil) to path with a kind header for LoadIndexFile.
func SaveIndexFile(path string, ens *Ensemble, hier *Hierarchy) error {
	if (ens == nil) == (hier == nil) {
		return fmt.Errorf("core: SaveIndexFile needs exactly one of ensemble/hierarchy")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if ens != nil {
		if _, err := io.WriteString(f, magicEnsemble); err != nil {
			return err
		}
		if err := SaveEnsemble(f, ens); err != nil {
			return err
		}
	} else {
		if _, err := io.WriteString(f, magicHierarchy); err != nil {
			return err
		}
		if err := SaveHierarchy(f, hier); err != nil {
			return err
		}
	}
	return f.Close()
}

// LoadIndexFile reads an index written by SaveIndexFile; exactly one of the
// returned pointers is non-nil.
func LoadIndexFile(path string) (*Ensemble, *Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.ReadString('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("core: reading index header: %w", err)
	}
	switch magic {
	case magicEnsemble:
		ens, err := LoadEnsemble(br)
		return ens, nil, err
	case magicHierarchy:
		hier, err := LoadHierarchy(br)
		return nil, hier, err
	default:
		return nil, nil, fmt.Errorf("core: unrecognized index header %q", magic)
	}
}

// hierSpec snapshots a Hierarchy: the node tree with serialized models plus
// the global leaf table.
type hierSpec struct {
	Levels    []int
	NumBins   int
	Bins      [][]int32
	ProbeTemp float64
	Root      hnodeSpec
}

type hnodeSpec struct {
	Model    []byte
	M        int
	Assign   []int32
	Bins     [][]int32
	LeafBase int
	Children []hnodeSpec
}

// SaveHierarchy writes a trained hierarchy to w.
func SaveHierarchy(w io.Writer, h *Hierarchy) error {
	spec := hierSpec{
		Levels: h.Levels, NumBins: h.NumBins, Bins: h.Bins, ProbeTemp: h.ProbeTemp,
	}
	var snap func(n *hnode) (hnodeSpec, error)
	snap = func(n *hnode) (hnodeSpec, error) {
		var buf bytes.Buffer
		if err := n.part.Model.Save(&buf); err != nil {
			return hnodeSpec{}, fmt.Errorf("core: serializing hierarchy model: %w", err)
		}
		ns := hnodeSpec{
			Model: buf.Bytes(), M: n.part.M,
			Assign: n.part.Assign, Bins: n.part.BinLists(), LeafBase: n.leafBase,
		}
		for _, c := range n.children {
			cs, err := snap(c)
			if err != nil {
				return hnodeSpec{}, err
			}
			ns.Children = append(ns.Children, cs)
		}
		return ns, nil
	}
	root, err := snap(h.root)
	if err != nil {
		return err
	}
	spec.Root = root
	return gob.NewEncoder(w).Encode(spec)
}

// LoadHierarchy reads a hierarchy previously written by SaveHierarchy.
func LoadHierarchy(r io.Reader) (*Hierarchy, error) {
	var spec hierSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decoding hierarchy: %w", err)
	}
	if spec.NumBins == 0 {
		return nil, fmt.Errorf("core: hierarchy snapshot is empty")
	}
	var restore func(ns hnodeSpec, depth int) (*hnode, error)
	restore = func(ns hnodeSpec, depth int) (*hnode, error) {
		model, err := nn.Load(bytes.NewReader(ns.Model), rand.New(rand.NewSource(int64(ns.LeafBase))))
		if err != nil {
			return nil, fmt.Errorf("core: decoding hierarchy model: %w", err)
		}
		part := &Partitioner{Model: model, M: ns.M, Assign: ns.Assign}
		part.setBinLists(ns.Bins)
		n := &hnode{part: part, leafBase: ns.LeafBase}
		for _, cs := range ns.Children {
			c, err := restore(cs, depth+1)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
		}
		return n, nil
	}
	root, err := restore(spec.Root, 0)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		Levels: spec.Levels, NumBins: spec.NumBins, Bins: spec.Bins,
		ProbeTemp: spec.ProbeTemp, root: root,
	}, nil
}

// LoadEnsemble reads an ensemble previously written by SaveEnsemble.
func LoadEnsemble(r io.Reader) (*Ensemble, error) {
	var spec ensembleSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("core: decoding ensemble: %w", err)
	}
	if len(spec.Parts) == 0 {
		return nil, fmt.Errorf("core: ensemble snapshot holds no models")
	}
	e := &Ensemble{}
	for i, ps := range spec.Parts {
		model, err := nn.Load(bytes.NewReader(ps.Model), rand.New(rand.NewSource(int64(i))))
		if err != nil {
			return nil, fmt.Errorf("core: decoding model %d: %w", i, err)
		}
		p := &Partitioner{Model: model, M: ps.M, Assign: ps.Assign}
		p.setBinLists(ps.Bins)
		e.Parts = append(e.Parts, p)
	}
	return e, nil
}
