package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hnsw"
	"repro/internal/ivfpq"
	"repro/internal/kmeans"
	"repro/internal/quant"
)

// fig7 reproduces Figure 7: end-to-end ANNS pipelines — USP+ScaNN (the
// paper's proposal), vanilla ScaNN (full quantized scan), K-means+ScaNN,
// HNSW, and IVF-PQ (the FAISS baseline) — measured as 10-NN accuracy vs
// points scored and wall-clock query time.
func fig7(sc Scale, logf logfn, ds string) (*Report, error) {
	const k = 10
	kPrime := 10
	bins := 16
	b := makeBench(ds, sc, k, kPrime)
	probes := probeSchedule(bins)

	subspaces := 16
	if b.base.Dim%16 != 0 {
		subspaces = 8
	}
	pqK := 64
	if b.base.N < 4*pqK {
		pqK = 16
	}
	pqCfg := quant.Config{Subspaces: subspaces, K: pqK, Seed: sc.Seed, Anisotropic: true}
	logf("fig7 %s: training shared ScaNN quantizer", ds)
	scann, err := quant.NewScaNN(b.base, pqCfg)
	if err != nil {
		return nil, err
	}

	var series []eval.Series

	// --- USP + ScaNN. ---
	logf("fig7 %s: training USP partitioner", ds)
	cfg := core.Config{
		Bins: bins, KPrime: kPrime, Eta: etaFor(ds, bins), Epochs: sc.Epochs,
		Hidden: []int{sc.Hidden}, Dropout: 0.1, Seed: sc.Seed,
	}
	ens, _, err := core.TrainEnsemble(b.base, b.mat, cfg, sc.Ensemble)
	if err != nil {
		return nil, err
	}
	var qs core.QueryScratch
	series = append(series, eval.SweepSearch(b.queries, b.gt, k, eval.SearchMethod{
		Name: "USP + ScaNN (ours)",
		Search: func(q []float32, k, p int) ([]int, int) {
			cands := ens.CandidatesWith(&qs, q, p, core.BestConfidence)
			return eval.NeighborIDs(scann.Search(q, k, cands)), len(cands)
		},
	}, probes))

	// --- Vanilla ScaNN: quantized scan of everything, no partitioner.
	// One point (no probe knob): the whole dataset is scored every query.
	logf("fig7 %s: vanilla ScaNN", ds)
	series = append(series, eval.SweepSearch(b.queries, b.gt, k, eval.SearchMethod{
		Name: "ScaNN (vanilla)",
		Search: func(q []float32, k, _ int) ([]int, int) {
			return eval.NeighborIDs(scann.Search(q, k, nil)), b.base.N
		},
	}, []int{1}))

	// --- K-means + ScaNN. ---
	logf("fig7 %s: K-means + ScaNN", ds)
	km, err := kmeans.NewIndex(b.base, bins, kmeans.Options{Seed: sc.Seed, Restarts: 3})
	if err != nil {
		return nil, err
	}
	series = append(series, eval.SweepSearch(b.queries, b.gt, k, eval.SearchMethod{
		Name: "K-means + ScaNN",
		Search: func(q []float32, k, p int) ([]int, int) {
			cands := km.Candidates(q, p)
			return eval.NeighborIDs(scann.Search(q, k, cands)), len(cands)
		},
	}, probes))

	// --- HNSW (probe knob = efSearch). ---
	logf("fig7 %s: building HNSW", ds)
	hn, err := hnsw.Build(b.base, hnsw.Config{M: 12, EfConstruction: 100, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	efs := []int{10, 20, 40, 80, 160}
	series = append(series, eval.SweepSearch(b.queries, b.gt, k, eval.SearchMethod{
		Name: "HNSW",
		Search: func(q []float32, k, ef int) ([]int, int) {
			return eval.NeighborIDs(hn.Search(q, k, ef)), ef
		},
	}, efs))

	// --- IVF-PQ (FAISS baseline; probe knob = nprobe). ---
	logf("fig7 %s: building IVF-PQ", ds)
	ivf, err := ivfpq.Build(b.base, ivfpq.Config{
		NList: bins, UsePQ: true, Seed: sc.Seed,
		PQ: quant.Config{Subspaces: subspaces, K: pqK, Seed: sc.Seed},
	})
	if err != nil {
		return nil, err
	}
	series = append(series, eval.SweepSearch(b.queries, b.gt, k, eval.SearchMethod{
		Name: "IVF-PQ (FAISS)",
		Search: func(q []float32, k, p int) ([]int, int) {
			return eval.NeighborIDs(ivf.Search(q, k, p)), ivf.CandidateCount(q, p)
		},
	}, probes))

	title := fmt.Sprintf("Fig 7 (%s): end-to-end ANNS, 10-NN accuracy vs points scored / query time (n=%d, q=%d)",
		ds, b.base.N, b.queries.N)
	return &Report{
		ID:     "fig7-" + ds,
		Text:   eval.RenderSeries(title, series),
		Series: series,
	}, nil
}
