// Package core implements the paper's primary contribution: unsupervised
// space partitioning (USP) for approximate nearest neighbor search.
//
// A model (MLP or logistic regression from internal/nn) is trained directly
// on the dataset with the custom loss of §4.2.2 — no ground-truth labels and
// no graph partitioning — so that it simultaneously (a) carves the space
// into m bins whose boundaries respect the k′-NN structure and (b) learns to
// route out-of-sample queries to bins. The package also implements the two
// enhancements of §4.4: AdaBoost-style ensembling of complementary
// partitions (Algorithms 3–4) and hierarchical (recursive) partitioning.
package core

import (
	"fmt"
	"math/rand"
)

// Config controls training of one USP partitioner model.
type Config struct {
	// Bins is m, the number of partition cells the model outputs.
	Bins int
	// KPrime is k′, the neighborhood width of the k′-NN matrix
	// (paper default 10).
	KPrime int
	// Eta is the balance parameter η of Eq. 5 trading quality against
	// partition balance.
	Eta float64
	// Epochs is the number of passes over the dataset (paper: ~100 for
	// the MLP, <50 for logistic regression).
	Epochs int
	// BatchSize is the mini-batch size; §4.2.2 reports ~4% of the dataset
	// suffices. 0 selects max(64, n/25).
	BatchSize int
	// LR is the Adam learning rate (default 1e-3 when 0).
	LR float64
	// Hidden lists MLP hidden-layer widths. Empty means a logistic
	// regression model (single dense layer), the architecture used in the
	// Fig. 6 tree experiments.
	Hidden []int
	// Dropout is the drop probability on hidden layers (paper: 0.1).
	Dropout float64
	// Seed drives all randomness (init, shuffling, dropout).
	Seed int64
	// SoftTargets switches the quality-loss target from the hard argmax
	// histogram of Eq. 9 to the mean of the neighbors' probability rows
	// (an ablation; the paper uses hard histograms).
	SoftTargets bool
	// EntropyBalance replaces the paper's top-window computational cost
	// (Eqs. 12–13) with the batch-mean entropy regularizer of
	// nn.USPLossEntropy — a design-choice ablation (see DESIGN.md and the
	// ablation_balance experiment). Only honored in the default
	// frozen-target training mode.
	EntropyBalance bool
	// TargetGrad implements Eq. 8 literally: the k′ neighbors of each
	// batch point are forwarded through the model *inside* the training
	// graph, so gradients flow into the quality target as well as the
	// prediction. This symmetric neighbor-agreement pull lets the model
	// escape the linear-cut local optima that frozen (stop-gradient)
	// targets lock in, and is required for the non-convex clustering
	// results of Table 5. It costs roughly (1+k′) forward work per batch;
	// the ANNS experiments use the cheaper frozen-target mode, which
	// reproduces their results.
	TargetGrad bool
	// Logf, when non-nil, receives per-epoch progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) validate(n int) error {
	if c.Bins < 2 {
		return fmt.Errorf("core: Bins must be ≥ 2, got %d", c.Bins)
	}
	if n < c.Bins {
		return fmt.Errorf("core: dataset of %d points cannot fill %d bins", n, c.Bins)
	}
	if c.KPrime < 1 {
		return fmt.Errorf("core: KPrime must be ≥ 1, got %d", c.KPrime)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("core: Epochs must be ≥ 1, got %d", c.Epochs)
	}
	if c.Eta < 0 {
		return fmt.Errorf("core: Eta must be ≥ 0, got %g", c.Eta)
	}
	return nil
}

// withDefaults returns a copy of c with zero fields resolved for a dataset
// of n points.
func (c Config) withDefaults(n int) Config {
	if c.BatchSize == 0 {
		c.BatchSize = n / 25
		if c.BatchSize < 64 {
			c.BatchSize = 64
		}
	}
	if c.BatchSize > n {
		c.BatchSize = n
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.KPrime >= n {
		c.KPrime = n - 1
	}
	return c
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }
