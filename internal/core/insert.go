package core

import "repro/internal/vecmath"

// Incremental insertion: new points are routed by the trained model to
// their most probable bin, exactly as queries are (Algorithm 2 step 2), and
// appended to the lookup table. The paper trains offline on a static
// dataset; insertion-by-routing is the natural online extension — the
// model's decision boundaries are fixed, so an inserted point lands in the
// bin whose candidates it will later be returned with.

// Insert routes a new point (with the given dataset id) into the partition.
func (p *Partitioner) Insert(id int, vec []float32) {
	b := int32(vecmath.ArgMax(p.Probabilities(vec)))
	p.Assign = append(p.Assign, b)
	p.Bins[b] = append(p.Bins[b], int32(id))
}

// Insert routes a new point into every member partition.
func (e *Ensemble) Insert(id int, vec []float32) {
	for _, p := range e.Parts {
		p.Insert(id, vec)
	}
}

// Insert routes a new point to its most probable leaf bin.
func (h *Hierarchy) Insert(id int, vec []float32) {
	g := vecmath.ArgMax(h.LeafProbabilities(vec))
	h.Bins[g] = append(h.Bins[g], int32(id))
}
