package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/knn"
	"repro/internal/vecmath"
)

func blobs(seed int64, n, dim int) *dataset.Dataset {
	return dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: 8, ClusterStd: 0.2, CenterBox: 3,
	}, rand.New(rand.NewSource(seed))).Dataset
}

func reconstructionMSE(pq *PQ, ds *dataset.Dataset) float64 {
	codes := pq.Encode(ds)
	var mse float64
	for i := 0; i < ds.N; i++ {
		rec := pq.Decode(codes[i])
		mse += float64(vecmath.SquaredL2(ds.Row(i), rec))
	}
	return mse / float64(ds.N)
}

func TestTrainEncodeDecodeRoundTrip(t *testing.T) {
	ds := blobs(1, 400, 16)
	pq, err := Train(ds, Config{Subspaces: 4, K: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	codes := pq.Encode(ds)
	if len(codes) != ds.N || len(codes[0]) != 4 {
		t.Fatalf("codes shape %dx%d", len(codes), len(codes[0]))
	}
	rec := pq.Decode(codes[0])
	if len(rec) != 16 {
		t.Fatalf("decode dim %d", len(rec))
	}
	// Reconstruction must be far better than quantizing to the global mean.
	mse := reconstructionMSE(pq, ds)
	mean := make([]float32, ds.Dim)
	for i := 0; i < ds.N; i++ {
		vecmath.AXPY(1/float32(ds.N), ds.Row(i), mean)
	}
	var meanMSE float64
	for i := 0; i < ds.N; i++ {
		meanMSE += float64(vecmath.SquaredL2(ds.Row(i), mean))
	}
	meanMSE /= float64(ds.N)
	if mse > meanMSE/4 {
		t.Fatalf("PQ MSE %v vs mean-baseline %v", mse, meanMSE)
	}
}

func TestMoreCentroidsLowerError(t *testing.T) {
	ds := blobs(3, 500, 16)
	var prev float64 = -1
	for _, k := range []int{4, 16, 64} {
		pq, err := Train(ds, Config{Subspaces: 4, K: k, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		mse := reconstructionMSE(pq, ds)
		if prev >= 0 && mse > prev*1.05 {
			t.Fatalf("MSE rose from %v to %v at K=%d", prev, mse, k)
		}
		prev = mse
	}
}

func TestLUTMatchesDecodedDistance(t *testing.T) {
	ds := blobs(5, 200, 12)
	pq, err := Train(ds, Config{Subspaces: 3, K: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	codes := pq.Encode(ds)
	rng := rand.New(rand.NewSource(7))
	q := make([]float32, 12)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	lut := pq.BuildLUT(q)
	for i := 0; i < 50; i++ {
		adc := float64(lut.Distance(codes[i]))
		exact := float64(vecmath.SquaredL2(q, pq.Decode(codes[i])))
		if math.Abs(adc-exact) > 1e-3*(1+exact) {
			t.Fatalf("point %d: ADC %v vs decoded %v", i, adc, exact)
		}
	}
}

func TestUnevenDimensionSplit(t *testing.T) {
	// 10 dims over 3 subspaces: bounds 0,3,6,10 (last absorbs remainder).
	// Uneven splits are opt-in; without AllowUneven Train must refuse.
	ds := blobs(8, 100, 10)
	if _, err := Train(ds, Config{Subspaces: 3, K: 4, Seed: 9}); err == nil {
		t.Fatal("uneven split without AllowUneven should fail")
	}
	pq, err := Train(ds, Config{Subspaces: 3, K: 4, Seed: 9, AllowUneven: true})
	if err != nil {
		t.Fatal(err)
	}
	if pq.Bounds[3] != 10 {
		t.Fatalf("bounds %v", pq.Bounds)
	}
	if got := len(pq.Codebooks[2].Row(0)); got != 4 {
		t.Fatalf("last subspace width %d", got)
	}
	rec := pq.Decode(pq.EncodeVec(ds.Row(0)))
	if len(rec) != 10 {
		t.Fatalf("decode width %d", len(rec))
	}
}

func TestTrainValidation(t *testing.T) {
	ds := blobs(10, 50, 8)
	if _, err := Train(ds, Config{Subspaces: 0}); err == nil {
		t.Fatal("Subspaces=0 should fail")
	}
	if _, err := Train(ds, Config{Subspaces: 9}); err == nil {
		t.Fatal("Subspaces>dim should fail")
	}
	if _, err := Train(ds, Config{Subspaces: 2, K: 300}); err == nil {
		t.Fatal("K>256 should fail")
	}
	if _, err := Train(ds, Config{Subspaces: 2, K: 64}); err == nil {
		t.Fatal("K>n should fail")
	}
	if _, err := Train(ds, Config{Subspaces: 3, K: 4}); err == nil {
		t.Fatal("dim not divisible by Subspaces should fail without AllowUneven")
	}
	if _, err := Train(nil, Config{Subspaces: 2, K: 4}); err == nil {
		t.Fatal("nil dataset should fail")
	}
	if _, err := Train(dataset.New(0, 8), Config{Subspaces: 2, K: 4}); err == nil {
		t.Fatal("empty dataset should fail")
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	ds := blobs(21, 300, 16)
	pq, err := Train(ds, Config{Subspaces: 4, K: 16, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	want := pq.Encode(ds)
	flat, err := pq.EncodeInto(nil, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != ds.N*pq.Subspaces {
		t.Fatalf("flat len %d, want %d", len(flat), ds.N*pq.Subspaces)
	}
	for i := 0; i < ds.N; i++ {
		for s := 0; s < pq.Subspaces; s++ {
			if flat[i*pq.Subspaces+s] != want[i][s] {
				t.Fatalf("row %d subspace %d: flat %d vs per-row %d", i, s, flat[i*pq.Subspaces+s], want[i][s])
			}
		}
	}
	// Reuse: a large-enough buffer must be written in place, not replaced.
	buf := make([]uint8, 0, ds.N*pq.Subspaces)
	out, err := pq.EncodeInto(buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("EncodeInto reallocated despite sufficient capacity")
	}
	// Dim mismatch must fail.
	if _, err := pq.EncodeInto(nil, blobs(23, 10, 8)); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestAppendCodeMatchesEncodeVec(t *testing.T) {
	ds := blobs(25, 200, 16)
	pq, err := Train(ds, Config{Subspaces: 4, K: 16, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	var codes []uint8
	for i := 0; i < 50; i++ {
		codes = pq.AppendCode(codes, ds.Row(i))
	}
	if len(codes) != 50*pq.Subspaces {
		t.Fatalf("appended len %d", len(codes))
	}
	for i := 0; i < 50; i++ {
		want := pq.EncodeVec(ds.Row(i))
		for s, c := range want {
			if codes[i*pq.Subspaces+s] != c {
				t.Fatalf("row %d subspace %d mismatch", i, s)
			}
		}
	}
}

func TestAppendLUTMatchesBuildLUT(t *testing.T) {
	ds := blobs(27, 200, 16)
	pq, err := Train(ds, Config{Subspaces: 4, K: 8, Seed: 28})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	q := make([]float32, 16)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	nested := pq.BuildLUT(q)
	flat := pq.AppendLUT(nil, q)
	if len(flat) != pq.Subspaces*pq.K {
		t.Fatalf("flat LUT len %d, want %d", len(flat), pq.Subspaces*pq.K)
	}
	for s := 0; s < pq.Subspaces; s++ {
		for c := 0; c < len(nested[s]); c++ {
			if flat[s*pq.K+c] != nested[s][c] {
				t.Fatalf("LUT[%d][%d]: flat %v vs nested %v", s, c, flat[s*pq.K+c], nested[s][c])
			}
		}
	}
	// The flat table drives the dispatched kernel; its distances must match
	// LUT.Distance exactly (same entries, float32 sum over ≤M terms).
	codes, err := pq.EncodeInto(nil, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		code := codes[i*pq.Subspaces : (i+1)*pq.Subspaces]
		got := float64(vecmath.LUTSum(flat, pq.K, code))
		want := float64(nested.Distance(code))
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("row %d: LUTSum %v vs Distance %v", i, got, want)
		}
	}
}

func TestAnisotropicRefineRuns(t *testing.T) {
	ds := blobs(11, 300, 16)
	iso, err := Train(ds, Config{Subspaces: 4, K: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	aniso, err := Train(ds, Config{Subspaces: 4, K: 8, Seed: 12, Anisotropic: true})
	if err != nil {
		t.Fatal(err)
	}
	// Anisotropic codebooks trade reconstruction MSE for score fidelity;
	// they must stay within a reasonable factor of the isotropic MSE.
	mi, ma := reconstructionMSE(iso, ds), reconstructionMSE(aniso, ds)
	if ma > mi*3 {
		t.Fatalf("anisotropic MSE %v vs isotropic %v", ma, mi)
	}
}

func TestSolveLinear(t *testing.T) {
	// 2x2 system: {{2,1},{1,3}} x = {5,10} → x = {1,3}.
	sol, ok := solveLinear([]float64{2, 1, 1, 3}, []float64{5, 10}, 2)
	if !ok {
		t.Fatal("solver failed")
	}
	if math.Abs(sol[0]-1) > 1e-9 || math.Abs(sol[1]-3) > 1e-9 {
		t.Fatalf("sol = %v", sol)
	}
	// Singular system.
	if _, ok := solveLinear([]float64{1, 1, 1, 1}, []float64{1, 2}, 2); ok {
		t.Fatal("singular system should fail")
	}
}

func TestScaNNSearchRecall(t *testing.T) {
	ds := blobs(13, 800, 16)
	s, err := NewScaNN(ds, Config{Subspaces: 4, K: 16, Seed: 14, Anisotropic: true})
	if err != nil {
		t.Fatal(err)
	}
	gt := knn.GroundTruth(ds, ds, 10)
	var recall float64
	for qi := 0; qi < 60; qi++ {
		ns := s.Search(ds.Row(qi), 10, nil)
		recall += knn.RecallNeighbors(ns, gt[qi])
	}
	recall /= 60
	if recall < 0.9 {
		t.Fatalf("full-scan ScaNN recall %.3f", recall)
	}
}

func TestScaNNSearchSubset(t *testing.T) {
	ds := blobs(15, 300, 12)
	s, err := NewScaNN(ds, Config{Subspaces: 3, K: 8, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	subset := []int{5, 10, 15, 20}
	ns := s.Search(ds.Row(5), 2, subset)
	for _, nb := range ns {
		ok := false
		for _, c := range subset {
			if nb.Index == c {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("result %d outside candidate set", nb.Index)
		}
	}
	if ns[0].Index != 5 {
		t.Fatalf("self query top-1 = %d", ns[0].Index)
	}
}
