package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/kmeans"
	"repro/internal/nn"
)

// table2 reproduces Table 2: learnable parameter counts of the
// space-partitioning methods when dividing the SIFT stand-in into 256 bins.
// Architectures follow the paper: Neural LSH uses a 512-wide hidden layer,
// USP a 128-wide one, and K-means "learns" only its centroids.
func table2(sc Scale, logf logfn) (*Report, error) {
	const dim, bins = 128, 256
	rng := rand.New(rand.NewSource(sc.Seed))

	nlshNet := nn.NewMLP(dim, []int{512}, bins, 0.1, rng)
	uspNet := nn.NewMLP(dim, []int{128}, bins, 0.1, rng)
	kmeansParams := bins * dim // centroid coordinates

	var b strings.Builder
	fmt.Fprintf(&b, "== Table 2: learnable parameters, SIFT-like, %d bins ==\n", bins)
	fmt.Fprintf(&b, "%-22s %12s %14s\n", "method", "hidden", "parameters")
	fmt.Fprintf(&b, "%-22s %12d %14d\n", "Neural LSH", 512, nlshNet.NumParams())
	fmt.Fprintf(&b, "%-22s %12d %14d\n", "USP (ours)", 128, uspNet.NumParams())
	fmt.Fprintf(&b, "%-22s %12s %14d\n", "K-means", "-", kmeansParams)
	fmt.Fprintf(&b, "\npaper reports: Neural LSH 729k, ours 183k, K-means 33k\n")
	fmt.Fprintf(&b, "(K-means matches exactly: 256x128 = 32768; the network counts\n")
	fmt.Fprintf(&b, "reflect single-hidden-layer MLPs with batch norm, the architecture\n")
	fmt.Fprintf(&b, "described in §5.2; the ordering NLSH >> ours >> K-means holds.)\n")
	return &Report{ID: "table2", Text: b.String()}, nil
}

// table3 reproduces Table 3: USP offline training time per (dataset, bins)
// configuration with the paper's η values, at the run's scale. The paper's
// absolute minutes are not comparable (K80 GPU, 60k–1M points); the report
// records measured wall-clock alongside the configuration.
func table3(sc Scale, logf logfn) (*Report, error) {
	type cfgRow struct {
		ds   string
		bins int
	}
	rows := []cfgRow{
		{"mnist", 16}, {"mnist", 256}, {"sift", 16}, {"sift", 256},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 3: offline training time (ensemble of %d) ==\n", sc.Ensemble)
	fmt.Fprintf(&b, "%-10s %8s %8s %6s %14s %10s\n", "dataset", "n", "bins", "eta", "train time", "per model")
	for _, row := range rows {
		bch := makeBench(row.ds, sc, 10, 10)
		eta := etaFor(row.ds, row.bins)
		cfg := core.Config{
			Bins: row.bins, KPrime: 10, Eta: eta, Epochs: sc.Epochs,
			Hidden: []int{sc.Hidden}, Dropout: 0.1, Seed: sc.Seed,
		}
		start := time.Now()
		if row.bins > 16 {
			if _, _, err := core.TrainHierarchy(bch.base, []int{16, row.bins / 16}, cfg); err != nil {
				return nil, err
			}
		} else {
			if _, _, err := core.TrainEnsemble(bch.base, bch.mat, cfg, sc.Ensemble); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		per := elapsed / time.Duration(sc.Ensemble)
		fmt.Fprintf(&b, "%-10s %8d %8d %6.0f %14s %10s\n",
			row.ds, bch.base.N, row.bins, eta,
			elapsed.Round(time.Millisecond), per.Round(time.Millisecond))
		logf("table3: %s/%d done in %s", row.ds, row.bins, elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "\npaper (1M SIFT / 60k MNIST on a K80): 2-40 minutes per configuration\n")
	return &Report{ID: "table3", Text: b.String()}, nil
}

// table4 reproduces Table 4: the relative decrease in candidate-set size of
// USP vs Neural LSH and K-means at a fixed 10-NN accuracy on the SIFT
// stand-in with 16 bins. The target accuracy adapts to the highest level all
// methods reach at this scale (the paper uses 85%).
func table4(sc Scale, logf logfn) (*Report, error) {
	rep, err := fig5(sc, logf, "sift", 16)
	if err != nil {
		return nil, err
	}
	series := rep.Series
	// Highest recall every method attains.
	target := 1.0
	for _, s := range series {
		best := 0.0
		for _, p := range s.Points {
			if p.Recall > best {
				best = p.Recall
			}
		}
		if best < target {
			target = best
		}
	}
	if target > 0.85 {
		target = 0.85
	} else {
		target *= 0.95 // stay below every curve's ceiling
	}

	var usp, nlsh, km float64
	var b strings.Builder
	fmt.Fprintf(&b, "== Table 4: |C| reduction at %.0f%% 10-NN accuracy (SIFT-like, 16 bins) ==\n", target*100)
	for _, s := range series {
		c, ok := eval.CandidatesAtRecall(s, target)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-28s |C| = %10.1f\n", s.Name, c)
		switch {
		case strings.HasPrefix(s.Name, "USP"):
			usp = c
		case s.Name == "Neural LSH":
			nlsh = c
		case s.Name == "K-means":
			km = c
		}
	}
	if usp > 0 && nlsh > 0 {
		fmt.Fprintf(&b, "\nreduction vs Neural LSH: %5.1f%%  (paper: 33%%)\n", 100*(1-usp/nlsh))
	}
	if usp > 0 && km > 0 {
		fmt.Fprintf(&b, "reduction vs K-means:    %5.1f%%  (paper: 38%%)\n", 100*(1-usp/km))
	}
	return &Report{ID: "table4", Text: b.String(), Series: series}, nil
}

// table5 reproduces Table 5: clustering quality on the scikit-learn toys
// (moons, circles, 4-cluster classification). The paper compares plots;
// we report ARI and NMI against the generating labels.
func table5(sc Scale, logf logfn) (*Report, error) {
	rng := rand.New(rand.NewSource(sc.Seed))
	n := 400
	type toy struct {
		name string
		data *dataset.Labeled
		k    int
		// DBSCAN parameters tuned per dataset, as is standard.
		eps    float64
		minPts int
	}
	toys := []toy{
		{"moons", dataset.Moons(n, 0.04, rng), 2, 0.18, 5},
		{"circles", dataset.Circles(n, 0.5, 0.02, rng), 2, 0.15, 4},
		{"blobs4", dataset.Classification4(n, rng), 4, 0.3, 5},
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== Table 5: clustering quality (ARI / NMI vs ground truth) ==\n")
	fmt.Fprintf(&b, "%-10s %-18s %8s %8s\n", "dataset", "method", "ARI", "NMI")
	for _, t := range toys {
		logf("table5: %s", t.name)
		// USP clustering (ours), using the Eq. 8 target-gradient mode
		// required for non-convex shapes (see DESIGN.md).
		uspLabels, err := core.ClusterLabels(t.data.Dataset, t.k, core.Config{
			KPrime: 10, Eta: 3, Epochs: 10 * sc.Epochs, Hidden: []int{sc.Hidden},
			Seed: sc.Seed, BatchSize: 128, TargetGrad: true, LR: 3e-3,
		})
		if err != nil {
			return nil, err
		}
		// DBSCAN.
		dbLabels := cluster.DBSCAN(t.data.Dataset, t.eps, t.minPts)
		// K-means.
		kmRes, err := kmeans.Run(t.data.Dataset, t.k, kmeans.Options{Seed: sc.Seed, Restarts: 5})
		if err != nil {
			return nil, err
		}
		kmLabels := make([]int, t.data.N)
		for i, a := range kmRes.Assign {
			kmLabels[i] = int(a)
		}
		// Spectral.
		spLabels, err := cluster.Spectral(t.data.Dataset, cluster.SpectralConfig{
			K: t.k, Seed: sc.Seed, PowerIters: 500,
		})
		if err != nil {
			return nil, err
		}
		for _, m := range []struct {
			name   string
			labels []int
		}{
			{"USP (ours)", uspLabels},
			{"DBSCAN", dbLabels},
			{"K-means", kmLabels},
			{"Spectral", spLabels},
		} {
			fmt.Fprintf(&b, "%-10s %-18s %8.3f %8.3f\n", t.name, m.name,
				cluster.ARI(m.labels, t.data.Labels), cluster.NMI(m.labels, t.data.Labels))
		}
	}
	fmt.Fprintf(&b, "\npaper: USP matches the natural clustering on all three; K-means\n")
	fmt.Fprintf(&b, "fails on moons/circles; spectral matches but does not scale.\n")
	return &Report{ID: "table5", Text: b.String()}, nil
}
