package knn

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/quant"
	"repro/internal/vecmath"
)

// adcFixture trains a PQ on a mixture dataset and returns the flat codes
// plus a query's flat LUT, the raw ingredients of the ADC scan.
func adcFixture(t testing.TB, seed int64, n, dim, m, k int) (*dataset.Dataset, *quant.PQ, []uint8, []float32, []float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := dataset.GaussianMixture(dataset.GaussianMixtureConfig{
		N: n, Dim: dim, Clusters: 8, ClusterStd: 0.4, CenterBox: 3,
	}, rng).Dataset
	pq, err := quant.Train(base, quant.Config{Subspaces: m, K: k, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	codes, err := pq.EncodeInto(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float32, dim)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	lut := pq.AppendLUT(nil, q)
	return base, pq, codes, lut, q
}

// TestSearchSubsetADCIntoMatchesLUTScan pins the ADC scan against an
// independent reference: a direct TopK pass over quant.LUT.Distance (the
// nested-table path the ScaNN baseline uses). Ids must agree exactly and
// distances to the kernel equivalence tolerance.
func TestSearchSubsetADCIntoMatchesLUTScan(t *testing.T) {
	base, pq, codes, lut, q := adcFixture(t, 41, 400, 16, 4, 16)
	nested := pq.BuildLUT(q)
	rng := rand.New(rand.NewSource(42))
	tk := vecmath.NewTopK(1)
	ref := vecmath.NewTopK(1)
	var dst []vecmath.Neighbor
	for trial := 0; trial < 30; trial++ {
		nsub := 1 + rng.Intn(base.N)
		subset := make([]int32, 0, nsub)
		for _, i := range rng.Perm(base.N)[:nsub] {
			subset = append(subset, int32(i))
		}
		k := 1 + rng.Intn(12)
		dst = SearchSubsetADCInto(dst[:0], codes, pq.Subspaces, pq.K, lut, subset, k, tk, nil)

		ref.SetK(k)
		for _, i := range subset {
			ref.Push(int(i), nested.Distance(codes[int(i)*pq.Subspaces:(int(i)+1)*pq.Subspaces]))
		}
		want := ref.AppendSorted(nil)
		if len(dst) != len(want) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(dst), len(want))
		}
		for i := range want {
			if dst[i].Index != want[i].Index {
				// Equal ADC distances may swap ranks between summation
				// orders; anything beyond rounding is a bug.
				d := float64(dst[i].Dist - want[i].Dist)
				if d < 0 {
					d = -d
				}
				if d > 1e-4*(1+float64(want[i].Dist)) {
					t.Fatalf("trial %d result[%d]: id %d (dist %v), want id %d (dist %v)",
						trial, i, dst[i].Index, dst[i].Dist, want[i].Index, want[i].Dist)
				}
			}
		}
	}
}

// TestSearchSubsetADCIntoCountedSkipParity: the ADC scan's tombstone
// accounting must agree exactly with the float scan's on the same subset
// and skip set — the lifecycle swaps one scan for the other and its
// compaction heuristics read this counter.
func TestSearchSubsetADCIntoCountedSkipParity(t *testing.T) {
	base, pq, codes, lut, q := adcFixture(t, 43, 300, 16, 4, 16)
	base.EnsureSqNorms(true)
	rng := rand.New(rand.NewSource(44))
	tk := vecmath.NewTopK(1)
	for trial := 0; trial < 20; trial++ {
		var skip *bitset.Set
		for i := 0; i < base.N; i++ {
			if rng.Float64() < 0.25 {
				skip = skip.With(i)
			}
		}
		subset := make([]int32, 0, 250)
		for j := 0; j < 250; j++ {
			subset = append(subset, int32(rng.Intn(base.N)))
		}
		adcRes, adcSkipped := SearchSubsetADCIntoCounted(nil, codes, pq.Subspaces, pq.K, lut, subset, 10, tk, skip)
		floatRes, floatSkipped := SearchSubsetIntoCounted(nil, base, subset, q, 10, tk, skip)
		if adcSkipped != floatSkipped {
			t.Fatalf("trial %d: ADC skipped %d, float skipped %d", trial, adcSkipped, floatSkipped)
		}
		for _, nb := range adcRes {
			if skip.Has(nb.Index) {
				t.Fatalf("trial %d: tombstoned id %d in ADC results", trial, nb.Index)
			}
		}
		_ = floatRes
		_, skipped := SearchSubsetADCIntoCounted(nil, codes, pq.Subspaces, pq.K, lut, subset, 10, tk, nil)
		if skipped != 0 {
			t.Fatalf("trial %d: nil skip set reported %d skipped", trial, skipped)
		}
	}
}

func TestSearchSubsetADCIntoAllocs(t *testing.T) {
	_, pq, codes, lut, _ := adcFixture(t, 45, 500, 16, 4, 16)
	subset := make([]int32, 500)
	for i := range subset {
		subset[i] = int32(i)
	}
	tk := vecmath.NewTopK(10)
	dst := make([]vecmath.Neighbor, 0, 10)
	dst = SearchSubsetADCInto(dst[:0], codes, pq.Subspaces, pq.K, lut, subset, 10, tk, nil) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		dst = SearchSubsetADCInto(dst[:0], codes, pq.Subspaces, pq.K, lut, subset, 10, tk, nil)
	})
	if allocs != 0 {
		t.Fatalf("SearchSubsetADCInto allocates %v per run", allocs)
	}
}
