package usp

import (
	"math/rand"
	"testing"
)

// requireBitIdentical compares a batch answer against looped single-query
// Search calls with exact equality — ids AND float32 distance bits. The
// staged batch pipeline shares its inference and scan kernels with the
// single-row path, so any divergence at all is a correctness bug.
func requireBitIdentical(t *testing.T, ix *Index, queries [][]float32, k int, opt SearchOptions, batch [][]Result) {
	t.Helper()
	if len(batch) != len(queries) {
		t.Fatalf("%d batch rows, want %d", len(batch), len(queries))
	}
	s := ix.NewSearcher()
	for i, q := range queries {
		single, err := s.Search(q, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d results, single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("query %d result %d: batch %+v, single %+v (must be bit-identical)",
					i, j, batch[i][j], single[j])
			}
		}
	}
}

// TestSearchBatchBitIdentical pins the tentpole invariant: the staged batch
// pipeline — batched routing forward pass, batched ADC-table build, per-query
// gather + scan — returns results bit-identical to looped single Search, in
// every routing mode, with live spill inserts and tombstones present.
func TestSearchBatchBitIdentical(t *testing.T) {
	t.Run("ensemble", func(t *testing.T) {
		ix, vecs := buildSmallIndex(t, 71, 2)
		// Live mutations so the batch path also exercises spill extras and
		// the tombstone filter against a non-compacted epoch.
		rng := rand.New(rand.NewSource(72))
		for i := 0; i < 40; i++ {
			nv := make([]float32, len(vecs[0]))
			copy(nv, vecs[rng.Intn(len(vecs))])
			nv[0] += float32(rng.NormFloat64()) * 0.01
			if _, err := ix.Add(nv); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			if err := ix.Delete(rng.Intn(600)); err != nil {
				t.Fatal(err)
			}
		}
		for _, opt := range []SearchOptions{
			{Probes: 1},
			{Probes: 2},
			{Probes: 2, UnionEnsemble: true},
		} {
			batch, err := ix.SearchBatch(vecs[:80], 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, ix, vecs[:80], 10, opt, batch)
		}
	})

	t.Run("hierarchy", func(t *testing.T) {
		vecs, _ := clusteredVectors(73, 600, 8, 4)
		ix, err := Build(vecs, Options{Hierarchy: []int{2, 2}, Epochs: 15, Hidden: []int{8}, Seed: 74})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := ix.Delete(i * 7); err != nil {
				t.Fatal(err)
			}
		}
		opt := SearchOptions{Probes: 2}
		batch, err := ix.SearchBatch(vecs[:60], 5, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, ix, vecs[:60], 5, opt, batch)
	})

	t.Run("quantized", func(t *testing.T) {
		_, ix, vecs := buildQuantizedPair(t, 75, 600, 16, Quantization{Subspaces: 4, K: 32})
		for _, opt := range []SearchOptions{
			{Probes: 2},              // ADC + exact re-rank
			{Probes: 2, RerankK: -1}, // ADC only
		} {
			batch, err := ix.SearchBatch(vecs[:60], 10, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, ix, vecs[:60], 10, opt, batch)
		}
	})
}

// TestSearchBatchScanned pins the per-query candidate-set sizes the serving
// tier reports: SearchBatchScanned must agree with the single-query
// Searcher.Scanned value row for row.
func TestSearchBatchScanned(t *testing.T) {
	ix, vecs := buildSmallIndex(t, 77, 2)
	opt := SearchOptions{Probes: 2}
	res, scanned, err := ix.SearchBatchScanned(vecs[:32], 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 32 || len(scanned) != 32 {
		t.Fatalf("got %d rows / %d scanned", len(res), len(scanned))
	}
	s := ix.NewSearcher()
	for i, q := range vecs[:32] {
		if _, err := s.Search(q, 10, opt); err != nil {
			t.Fatal(err)
		}
		if scanned[i] != s.Scanned() {
			t.Fatalf("query %d: scanned %d, want %d", i, scanned[i], s.Scanned())
		}
	}
}

// TestBatchRoutingAllocations gates the batched routing path at 0 allocs/op:
// with a warmed Searcher and a pre-capped arena, processing a staged chunk —
// batched forward pass, per-query gather, scan, arena reslice — allocates
// nothing. (The public SearchBatch additionally allocates the output rows
// and per-worker arenas, by design.)
func TestBatchRoutingAllocations(t *testing.T) {
	run := func(t *testing.T, ix *Index, queries [][]float32, opt SearchOptions) {
		t.Helper()
		const k = 5
		s := ix.NewSearcher()
		ep := ix.live.Load()
		out := make([][]Result, len(queries))
		arena := make([]Result, 0, len(queries)*k)
		// Warm every scratch buffer.
		s.searchChunk(ep, queries, k, opt, out, arena, nil)
		allocs := testing.AllocsPerRun(50, func() {
			s.searchChunk(ep, queries, k, opt, out, arena[:0], nil)
		})
		if allocs != 0 {
			t.Fatalf("batched routing path allocates %v allocs/op, want 0", allocs)
		}
	}
	t.Run("ensemble-best", func(t *testing.T) {
		ix, vecs := buildSmallIndex(t, 79, 2)
		run(t, ix, vecs[:24], SearchOptions{Probes: 2})
	})
	t.Run("ensemble-union", func(t *testing.T) {
		ix, vecs := buildSmallIndex(t, 79, 2)
		run(t, ix, vecs[:24], SearchOptions{Probes: 2, UnionEnsemble: true})
	})
	t.Run("hierarchy", func(t *testing.T) {
		vecs, _ := clusteredVectors(81, 600, 8, 4)
		ix, err := Build(vecs, Options{Hierarchy: []int{2, 2}, Epochs: 10, Hidden: []int{8}, Seed: 82})
		if err != nil {
			t.Fatal(err)
		}
		run(t, ix, vecs[:24], SearchOptions{Probes: 2})
	})
	t.Run("quantized", func(t *testing.T) {
		_, ix, vecs := buildQuantizedPair(t, 83, 600, 16, Quantization{Subspaces: 4, K: 32})
		run(t, ix, vecs[:24], SearchOptions{Probes: 2})
	})
}
