package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randInput(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		for i := range m.Data {
			m.Data[i] *= 10 // include large logits for stability check
		}
		SoftmaxRows(m)
		for i := 0; i < m.Rows; i++ {
			var s float64
			for _, v := range m.Row(i) {
				if v < 0 || v > 1 || math.IsNaN(float64(v)) {
					return false
				}
				s += float64(v)
			}
			if math.Abs(s-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSoftmaxConsistentWithSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	row := []float32{1.5, -2, 0.25, 3}
	dst := make([]float64, 4)
	LogSoftmaxRow(dst, row)
	m := tensor.FromRows([][]float32{row})
	SoftmaxRows(m)
	for j, lv := range dst {
		if math.Abs(math.Exp(lv)-float64(m.At(0, j))) > 1e-5 {
			t.Fatalf("exp(logsoftmax)[%d]=%v vs softmax %v", j, math.Exp(lv), m.At(0, j))
		}
	}
	_ = rng
}

func TestMLPShapesAndParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := NewMLP(128, []int{128}, 16, 0.1, rng)
	if got := model.OutDim(); got != 16 {
		t.Fatalf("OutDim = %d", got)
	}
	// Dense(128→128): 128*128+128; BN: 2*128; Dense(128→16): 128*16+16.
	want := 128*128 + 128 + 2*128 + 128*16 + 16
	if got := model.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	x := randInput(rng, 5, 128)
	logits := model.Forward(x, false)
	if logits.Rows != 5 || logits.Cols != 16 {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestLogisticIsSingleLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lr := NewLogistic(10, 2, rng)
	if got := lr.NumParams(); got != 10*2+2 {
		t.Fatalf("logistic params = %d", got)
	}
}

func TestPredictRowsAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := NewMLP(6, []int{8}, 4, 0.1, rng)
	x := randInput(rng, 9, 6)
	p := model.Predict(x)
	for i := 0; i < p.Rows; i++ {
		var s float64
		for _, v := range p.Row(i) {
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	pv := model.PredictVec(x.Row(0))
	for j, v := range pv {
		if math.Abs(float64(v-p.At(0, j))) > 1e-6 {
			t.Fatalf("PredictVec mismatch at %d", j)
		}
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(0.5, rng)
	x := randInput(rng, 50, 20)
	// Eval: identity (same underlying data).
	y := d.Forward(x, false)
	if y != x {
		t.Fatal("eval-mode dropout should be the identity")
	}
	// Train: some zeros, survivors scaled by 2.
	yt := d.Forward(x, true)
	zeros := 0
	for i, v := range yt.Data {
		if v == 0 {
			zeros++
		} else if math.Abs(float64(v-2*x.Data[i])) > 1e-6 {
			t.Fatalf("survivor not scaled: %v vs %v", v, x.Data[i])
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropped %d/1000, want ≈500", zeros)
	}
}

func TestDropoutPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDropout(1.0, rand.New(rand.NewSource(1)))
}

func TestBatchNormNormalizesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm(3)
	x := randInput(rng, 256, 3)
	for i := 0; i < x.Rows; i++ { // shift/scale the raw data
		row := x.Row(i)
		row[0] = row[0]*5 + 10
		row[1] = row[1]*0.1 - 3
	}
	y := bn.Forward(x, true)
	for j := 0; j < 3; j++ {
		var sum, sumSq float64
		for i := 0; i < y.Rows; i++ {
			v := float64(y.At(i, j))
			sum += v
			sumSq += v * v
		}
		mean := sum / float64(y.Rows)
		variance := sumSq/float64(y.Rows) - mean*mean
		if math.Abs(mean) > 1e-3 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("col %d: mean=%v var=%v after BN", j, mean, variance)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm(1)
	for it := 0; it < 200; it++ {
		x := tensor.New(64, 1)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64()*2 + 5)
		}
		bn.Forward(x, true)
	}
	if m := float64(bn.RunningMean.Data[0]); math.Abs(m-5) > 0.3 {
		t.Fatalf("running mean = %v, want ≈5", m)
	}
	if v := float64(bn.RunningVar.Data[0]); math.Abs(v-4) > 0.8 {
		t.Fatalf("running var = %v, want ≈4", v)
	}
}

func TestCrossEntropyDecreasesUnderTraining(t *testing.T) {
	// A small model must be able to overfit a tiny classification problem:
	// integration test of Forward/Backward/Adam working together.
	rng := rand.New(rand.NewSource(8))
	model := NewMLP(2, []int{16}, 3, 0, rng)
	opt := NewAdam(0.01)
	x := tensor.New(30, 2)
	labels := make([]int, 30)
	for i := 0; i < 30; i++ {
		c := i % 3
		labels[i] = c
		x.Set(i, 0, float32(c)*3+float32(rng.NormFloat64())*0.2)
		x.Set(i, 1, float32(c)*-2+float32(rng.NormFloat64())*0.2)
	}
	var first, last float64
	for epoch := 0; epoch < 150; epoch++ {
		model.ZeroGrads()
		logits := model.Forward(x, true)
		loss, grad := CrossEntropy(logits, labels)
		model.Backward(grad)
		opt.Step(model.Params())
		if epoch == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/10 || last > 0.2 {
		t.Fatalf("loss did not converge: first=%v last=%v", first, last)
	}
	// Training accuracy should be perfect on this separable toy set.
	pred := ArgmaxRows(model.Predict(x))
	for i, p := range pred {
		if p != labels[i] {
			t.Fatalf("point %d misclassified after training", i)
		}
	}
}

func TestSGDMomentumStep(t *testing.T) {
	p := newParam("w", 1, 1)
	p.Value.Data[0] = 1
	p.Grad.Data[0] = 0.5
	o := NewSGD(0.1, 0.9)
	o.Step([]*Param{p})
	if math.Abs(float64(p.Value.Data[0])-0.95) > 1e-6 {
		t.Fatalf("after step 1: %v", p.Value.Data[0])
	}
	p.Grad.Data[0] = 0.5
	o.Step([]*Param{p})
	// velocity = 0.9*0.5+0.5 = 0.95; value = 0.95 - 0.095 = 0.855
	if math.Abs(float64(p.Value.Data[0])-0.855) > 1e-6 {
		t.Fatalf("after step 2: %v", p.Value.Data[0])
	}
}

func TestAdamMovesTowardMinimum(t *testing.T) {
	// Minimize (w-3)^2 with gradient 2(w-3).
	p := newParam("w", 1, 1)
	o := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - 3)
		o.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.Data[0])-3) > 0.01 {
		t.Fatalf("Adam converged to %v, want 3", p.Value.Data[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := NewMLP(7, []int{12}, 5, 0.1, rng)
	// Push some training through so BN stats are nontrivial.
	x := randInput(rng, 32, 7)
	model.Forward(x, true)

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumParams() != model.NumParams() {
		t.Fatalf("param count mismatch: %d vs %d", loaded.NumParams(), model.NumParams())
	}
	q := randInput(rng, 4, 7)
	a, b := model.Predict(q.Clone()), loaded.Predict(q.Clone())
	if !tensor.Equalish(a, b, 1e-6) {
		t.Fatal("loaded model predictions differ")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model")), nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestUSPLossBalanceFavorsBalancedAssignments(t *testing.T) {
	// The balance term S must be lower (better) for a balanced hard
	// assignment than for a collapsed one.
	mk := func(assign []int, m int) *tensor.Matrix {
		logits := tensor.New(len(assign), m)
		for i, a := range assign {
			for j := 0; j < m; j++ {
				if j == a {
					logits.Set(i, j, 8)
				} else {
					logits.Set(i, j, -8)
				}
			}
		}
		return logits
	}
	targets := tensor.New(8, 2)
	for i := 0; i < 8; i++ {
		targets.Set(i, 0, 1)
	}
	balanced := USPLoss(mk([]int{0, 1, 0, 1, 0, 1, 0, 1}, 2), targets, nil, 1)
	collapsed := USPLoss(mk([]int{0, 0, 0, 0, 0, 0, 0, 0}, 2), targets, nil, 1)
	if balanced.Balance >= collapsed.Balance {
		t.Fatalf("balance term: balanced %v should beat collapsed %v",
			balanced.Balance, collapsed.Balance)
	}
}

func TestUSPLossPerfectPartitionNearZeroQuality(t *testing.T) {
	// If the model's distribution equals the target exactly and is
	// near-one-hot, the quality CE is near zero.
	logits := tensor.FromRows([][]float32{{20, 0}, {0, 20}})
	targets := tensor.FromRows([][]float32{{1, 0}, {0, 1}})
	r := USPLoss(logits, targets, nil, 0)
	if r.Quality > 1e-6 {
		t.Fatalf("quality = %v, want ≈0", r.Quality)
	}
}

func TestCrossEntropyLabelOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	CrossEntropy(tensor.New(1, 2), []int{5})
}

func TestArgmaxRows(t *testing.T) {
	m := tensor.FromRows([][]float32{{0.1, 0.9}, {0.8, 0.2}})
	got := ArgmaxRows(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestZeroWeightsDoNotNaN(t *testing.T) {
	logits := randInput(rand.New(rand.NewSource(11)), 3, 2)
	targets := randSoftTargets(rand.New(rand.NewSource(12)), 3, 2)
	r := USPLoss(logits, targets, []float32{0, 0, 0}, 1)
	if math.IsNaN(r.Loss) || math.IsInf(r.Loss, 0) {
		t.Fatalf("loss = %v with zero weights", r.Loss)
	}
}
