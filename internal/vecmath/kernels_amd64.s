// AVX2+FMA float32 microkernels. Selected at init by dispatch_amd64.go when
// the CPU supports AVX2, FMA and OS-enabled YMM state; the portable scalar
// kernels (kernels_scalar.go) remain the fallback.
//
// Reduction order is fixed and deterministic per kernel: two 8-lane FMA
// accumulators over 16-element blocks, one 8-lane block, a lane-ordered
// horizontal sum, then a scalar-FMA tail. Because the lane split and the
// FMA contractions differ from the scalar kernels' 4-way unroll, results
// may differ from scalar by normal float32 rounding (see DESIGN.md,
// "Kernel layer"); equivalence_test.go bounds the divergence.

#include "textflag.h"

// func dotAVX2(a, b []float32) float32
TEXT ·dotAVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPS Y0, Y0, Y0          // accumulator 0
	VXORPS Y1, Y1, Y1          // accumulator 1
	MOVQ CX, BX
	SHRQ $4, BX                // 16-element blocks
	JZ   dot8
dot16:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VFMADD231PS (DI), Y2, Y0   // Y0 += a[0:8] * b[0:8]
	VFMADD231PS 32(DI), Y3, Y1 // Y1 += a[8:16] * b[8:16]
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  dot16
dot8:
	TESTQ $8, CX
	JZ    dotreduce
	VMOVUPS (SI), Y2
	VFMADD231PS (DI), Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI
dotreduce:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0          // 4 lanes
	VSHUFPS $0xb1, X0, X0, X1  // [1 0 3 2]
	VADDPS X1, X0, X0
	VSHUFPS $0x4e, X0, X0, X1  // [2 3 0 1]
	VADDSS X1, X0, X0          // lane 0 = total
	ANDQ $7, CX
	JZ   dotdone
dottail:
	VMOVSS (SI), X2
	VMOVSS (DI), X3
	VFMADD231SS X3, X2, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dottail
dotdone:
	VZEROUPPER
	MOVSS X0, ret+48(FP)
	RET

// func sqL2AVX2(a, b []float32) float32
TEXT ·sqL2AVX2(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ b_base+24(FP), DI
	MOVQ a_len+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   sq8
sq16:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VSUBPS (DI), Y2, Y2        // Y2 = a - b
	VSUBPS 32(DI), Y3, Y3
	VFMADD231PS Y2, Y2, Y0     // Y0 += d*d
	VFMADD231PS Y3, Y3, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  sq16
sq8:
	TESTQ $8, CX
	JZ    sqreduce
	VMOVUPS (SI), Y2
	VSUBPS (DI), Y2, Y2
	VFMADD231PS Y2, Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI
sqreduce:
	VADDPS Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VSHUFPS $0xb1, X0, X0, X1
	VADDPS X1, X0, X0
	VSHUFPS $0x4e, X0, X0, X1
	VADDSS X1, X0, X0
	ANDQ $7, CX
	JZ   sqdone
sqtail:
	VMOVSS (SI), X2
	VSUBSS (DI), X2, X2
	VFMADD231SS X2, X2, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  sqtail
sqdone:
	VZEROUPPER
	MOVSS X0, ret+48(FP)
	RET

// Lane indices 0..7 for building the LUT row-offset ramp.
DATA lutsumLanes<>+0(SB)/4, $0
DATA lutsumLanes<>+4(SB)/4, $1
DATA lutsumLanes<>+8(SB)/4, $2
DATA lutsumLanes<>+12(SB)/4, $3
DATA lutsumLanes<>+16(SB)/4, $4
DATA lutsumLanes<>+20(SB)/4, $5
DATA lutsumLanes<>+24(SB)/4, $6
DATA lutsumLanes<>+28(SB)/4, $7
GLOBL lutsumLanes<>(SB), RODATA, $32

// func lutSumAVX2(lut []float32, k int, code []uint8) float32
//
// ADC lookup-table sum: Σ_s lut[s*k + code[s]]. Eight subspaces per
// iteration: the 8 code bytes are zero-extended to dwords (VPMOVZXBD),
// offset by the row ramp [0,k,...,7k] (advanced by 8k each block), and
// gathered in one VGATHERDPS. Pure float32 additions in lane order, so
// unlike the FMA kernels the result is bit-identical to the scalar
// reference whenever the adds associate identically — equivalence tests
// still use the shared tolerance model. Contract (enforced by the public
// wrapper / encoder): len(lut) == len(code)*k, code[s] < k, and dword
// offsets fit in int32.
TEXT ·lutSumAVX2(SB), NOSPLIT, $0-60
	MOVQ lut_base+0(FP), SI
	MOVQ k+24(FP), DX
	MOVQ code_base+32(FP), DI
	MOVQ code_len+40(FP), CX
	VXORPS Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $3, BX                // 8-code blocks
	JZ   lutreduce
	VMOVDQU lutsumLanes<>(SB), Y1
	VPBROADCASTD k+24(FP), Y5  // low 32 bits of k (k ≤ 256)
	VPMULLD Y5, Y1, Y1         // Y1 = [0,k,2k,...,7k]
	VPSLLD $3, Y5, Y5          // Y5 = broadcast(8k)
lut8:
	VPMOVZXBD (DI), Y2         // 8 code bytes → dwords
	VPADDD Y1, Y2, Y2          // + row offsets
	VPCMPEQD Y4, Y4, Y4        // gather consumes its mask; rebuild
	VGATHERDPS Y4, (SI)(Y2*4), Y3
	VADDPS Y3, Y0, Y0
	VPADDD Y5, Y1, Y1          // ramp advances 8 rows
	ADDQ $8, DI
	DECQ BX
	JNZ  lut8
lutreduce:
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VSHUFPS $0xb1, X0, X0, X1
	VADDPS X1, X0, X0
	VSHUFPS $0x4e, X0, X0, X1
	VADDSS X1, X0, X0
	MOVQ CX, AX
	ANDQ $-8, AX               // codes consumed by the vector loop
	IMULQ DX, AX
	SHLQ $2, AX                // byte offset of the first tail row
	ADDQ AX, SI
	MOVQ DX, R9
	SHLQ $2, R9                // row stride in bytes
	ANDQ $7, CX
	JZ   lutdone
luttail:
	MOVBQZX (DI), BX
	VADDSS (SI)(BX*4), X0, X0
	ADDQ R9, SI
	INCQ DI
	DECQ CX
	JNZ  luttail
lutdone:
	VZEROUPPER
	MOVSS X0, ret+56(FP)
	RET

// func axpyAVX2(alpha float32, x, y []float32)
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	VBROADCASTSS alpha+0(FP), Y3
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	MOVQ CX, BX
	SHRQ $4, BX
	JZ   ax8
ax16:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y5
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y6
	VFMADD231PS Y3, Y2, Y4     // y += alpha * x
	VFMADD231PS Y3, Y5, Y6
	VMOVUPS Y4, (DI)
	VMOVUPS Y6, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  ax16
ax8:
	TESTQ $8, CX
	JZ    axtail
	VMOVUPS (SI), Y2
	VMOVUPS (DI), Y4
	VFMADD231PS Y3, Y2, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
axtail:
	ANDQ $7, CX
	JZ   axdone
axtail1:
	VMOVSS (SI), X2
	VMOVSS (DI), X4
	VFMADD231SS X3, X2, X4
	VMOVSS X4, (DI)
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  axtail1
axdone:
	VZEROUPPER
	RET
