package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
)

// The ablations quantify the parameter discussion of §5.1.4: how k′, η, the
// ensemble size, the mini-batch fraction, and the model architecture move
// the accuracy-vs-candidates trade-off. Each sweeps one knob on the SIFT
// stand-in with 16 bins and reports recall at 1 and 2 probes.

// ablationRow trains one configuration and measures it.
func ablationRow(b *bench, cfg core.Config, ensemble int, label string) (eval.Series, error) {
	ens, _, err := core.TrainEnsemble(b.base, b.mat, cfg, ensemble)
	if err != nil {
		return eval.Series{}, err
	}
	var qs core.QueryScratch // sweeps are sequential: one scratch serves every query
	return eval.SweepCandidates(b.base, b.queries, b.gt, 10, eval.Method{
		Name: label,
		Candidates: func(q []float32, p int) []int {
			return ens.CandidatesWith(&qs, q, p, core.BestConfidence)
		},
	}, []int{1, 2, 4}), nil
}

func baseCfg(sc Scale) core.Config {
	return core.Config{
		Bins: 16, KPrime: 10, Eta: 7, Epochs: sc.Epochs,
		Hidden: []int{sc.Hidden}, Dropout: 0.1, Seed: sc.Seed,
	}
}

func renderAblation(id, title string, series []eval.Series) *Report {
	return &Report{ID: id, Text: eval.RenderSeries(title, series), Series: series}
}

// ablationKPrime varies the k′-NN matrix width (§5.1.4 item 1; paper:
// k′ = 10 suffices, larger values add little).
func ablationKPrime(sc Scale, logf logfn) (*Report, error) {
	b := makeBench("sift", sc, 10, 20)
	var series []eval.Series
	for _, kp := range []int{2, 5, 10, 20} {
		logf("ablation_kprime: k'=%d", kp)
		cfg := baseCfg(sc)
		cfg.KPrime = kp
		s, err := ablationRow(b, cfg, 1, fmt.Sprintf("k'=%d", kp))
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return renderAblation("ablation_kprime", "Ablation: k' (SIFT-like, 16 bins, single model)", series), nil
}

// ablationEta varies the balance weight (§5.1.4 item 5): low η lets bins
// collapse (tiny |C|, low recall at matched probes); high η fights the
// quality term.
func ablationEta(sc Scale, logf logfn) (*Report, error) {
	b := makeBench("sift", sc, 10, 10)
	var series []eval.Series
	for _, eta := range []float64{0, 1, 7, 30, 100} {
		logf("ablation_eta: eta=%g", eta)
		cfg := baseCfg(sc)
		cfg.Eta = eta
		s, err := ablationRow(b, cfg, 1, fmt.Sprintf("eta=%g", eta))
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return renderAblation("ablation_eta", "Ablation: eta (SIFT-like, 16 bins, single model)", series), nil
}

// ablationEnsemble varies e (§5.1.4 item 3; paper: ~10% gain by e=3).
func ablationEnsemble(sc Scale, logf logfn) (*Report, error) {
	b := makeBench("sift", sc, 10, 10)
	var series []eval.Series
	for _, e := range []int{1, 2, 3, 4} {
		logf("ablation_ensemble: e=%d", e)
		s, err := ablationRow(b, baseCfg(sc), e, fmt.Sprintf("e=%d", e))
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	// Also report the union-probe enhancement at e=3.
	ens, _, err := core.TrainEnsemble(b.base, b.mat, baseCfg(sc), 3)
	if err != nil {
		return nil, err
	}
	var qs core.QueryScratch // reuse the O(n) union-dedup array across the sweep
	series = append(series, eval.SweepCandidates(b.base, b.queries, b.gt, 10, eval.Method{
		Name: "e=3 (union probe)",
		Candidates: func(q []float32, p int) []int {
			return ens.CandidatesWith(&qs, q, p, core.UnionProbe)
		},
	}, []int{1, 2, 4}))
	return renderAblation("ablation_ensemble", "Ablation: ensemble size (SIFT-like, 16 bins)", series), nil
}

// ablationBatch varies the mini-batch fraction (§4.2.2: ≈4% of the dataset
// per batch suffices).
func ablationBatch(sc Scale, logf logfn) (*Report, error) {
	b := makeBench("sift", sc, 10, 10)
	var series []eval.Series
	for _, frac := range []float64{0.01, 0.04, 0.15, 0.5} {
		bs := int(frac * float64(b.base.N))
		if bs < 16 {
			bs = 16
		}
		logf("ablation_batch: %.0f%% (%d points)", frac*100, bs)
		cfg := baseCfg(sc)
		cfg.BatchSize = bs
		s, err := ablationRow(b, cfg, 1, fmt.Sprintf("batch=%.0f%%", frac*100))
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return renderAblation("ablation_batch", "Ablation: mini-batch fraction (SIFT-like, 16 bins)", series), nil
}

// ablationBalance is the design-choice ablation DESIGN.md calls out: the
// paper's top-window computational cost (Eqs. 12–13) against the smoother
// batch-entropy balance regularizer common in deep clustering, at matched η
// and a no-balance control.
func ablationBalance(sc Scale, logf logfn) (*Report, error) {
	b := makeBench("sift", sc, 10, 10)
	var series []eval.Series
	type variant struct {
		label   string
		eta     float64
		entropy bool
	}
	for _, v := range []variant{
		{"window eta=7", 7, false},
		{"entropy eta=7", 7, true},
		{"entropy eta=30", 30, true},
		{"no balance (eta=0)", 0, false},
	} {
		logf("ablation_balance: %s", v.label)
		cfg := baseCfg(sc)
		cfg.Eta = v.eta
		cfg.EntropyBalance = v.entropy
		s, err := ablationRow(b, cfg, 1, v.label)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return renderAblation("ablation_balance",
		"Ablation: balance term (window vs entropy, SIFT-like, 16 bins)", series), nil
}

// ablationArch compares model architectures (§5.1.4 item 4): logistic
// regression vs MLPs of growing width.
func ablationArch(sc Scale, logf logfn) (*Report, error) {
	b := makeBench("sift", sc, 10, 10)
	type arch struct {
		label  string
		hidden []int
	}
	archs := []arch{
		{"logistic", nil},
		{"mlp-32", []int{32}},
		{fmt.Sprintf("mlp-%d", sc.Hidden), []int{sc.Hidden}},
		{fmt.Sprintf("mlp-%d-%d", sc.Hidden, sc.Hidden), []int{sc.Hidden, sc.Hidden}},
	}
	var series []eval.Series
	var b2 strings.Builder
	for _, a := range archs {
		logf("ablation_arch: %s", a.label)
		cfg := baseCfg(sc)
		cfg.Hidden = a.hidden
		if a.hidden == nil {
			cfg.Dropout = 0
		}
		ens, stats, err := core.TrainEnsemble(b.base, b.mat, cfg, 1)
		if err != nil {
			return nil, err
		}
		var qs core.QueryScratch
		s := eval.SweepCandidates(b.base, b.queries, b.gt, 10, eval.Method{
			Name: a.label,
			Candidates: func(q []float32, p int) []int {
				return ens.CandidatesWith(&qs, q, p, core.BestConfidence)
			},
		}, []int{1, 2, 4})
		series = append(series, s)
		fmt.Fprintf(&b2, "%-14s params=%d\n", a.label, stats.TotalParams())
	}
	rep := renderAblation("ablation_arch", "Ablation: architecture (SIFT-like, 16 bins, single model)", series)
	rep.Text += b2.String()
	return rep, nil
}
