package usp

// Sharding: splitting one built index into disjoint, individually servable
// shard indexes for the horizontal fan-out serving tier (cmd/uspshard,
// cmd/uspfront).
//
// A shard is a contiguous row range [lo, hi) of the parent. Crucially the
// shards SHARE the parent's trained models — only the lookup tables and row
// storage are filtered and renumbered (core.FilterRemap) — so every shard
// routes a query to the same bins the parent would, and at equal probe
// settings the union of the shards' candidate sets reproduces the parent's
// candidate set exactly. Distances are computed by the same fused kernel
// over identical row bytes, so merging the per-shard top-k by (distance,
// global id) yields results bit-identical to the parent's (exact distance
// ties — only possible with duplicate vectors — may resolve to a different
// equal-distance id). Each shard records its global offset (IDOffset) so a
// fan-out front can map local result ids back.
//
// One quantized mode is the exception: a bounded two-phase re-rank
// (RerankK > 0) has each shard exactly re-score its own local ADC top-R — a
// superset of the single process's global ADC top-R — so the merged answer
// can only improve on the single-process one, not mirror it bit-for-bit.
// Pure-ADC and full re-rank decompose exactly.

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/quant"
)

// IDOffset returns the global id of this index's local row 0 — non-zero for
// shard indexes produced by Shard (and restored from their snapshots), zero
// otherwise. A serving front adds it to result ids; it composes across
// repeated sharding.
func (ix *Index) IDOffset() int { return ix.idOffset }

// Shard splits the index into m contiguous, disjoint shard indexes, each
// fully servable (and snapshot-able via Save) on its own. Pending inserts
// and tombstones of the source are folded in first, exactly as compaction
// would; the source index itself is left untouched and keeps serving. Shard
// operates on one published epoch, so it is safe concurrently with queries,
// Add, Delete, and compaction — mutations racing the split land in the
// source only.
//
// Shard i covers parent rows [i·n/m, (i+1)·n/m); its IDOffset records the
// range start (composed with the parent's own offset), and rows the parent
// had already compacted away stay dead in the shard. Memory-tight indexes
// cannot be sharded (the float rows are gone).
func (ix *Index) Shard(m int) ([]*Index, error) {
	ep := ix.live.Load()
	n := ep.data.N
	if m < 1 {
		return nil, fmt.Errorf("%w: shard count %d must be >= 1", ErrInvalid, m)
	}
	if n < m {
		return nil, fmt.Errorf("%w: cannot split %d rows into %d shards", ErrInvalid, n, m)
	}
	if ep.quant != nil && ep.quant.tight {
		return nil, errors.New("usp: cannot shard a memory-tight index (float rows were dropped)")
	}

	// Fold the epoch's pending spill and tombstones into clean merged tables
	// (the compaction merge, run privately — nothing is published).
	var ens *core.Ensemble
	var hier *core.Hierarchy
	if ep.hier != nil {
		hier = ep.hier.Rebuild(ep.extra(), ep.tombs)
	} else {
		ens = ep.ens.Rebuild(n, ep.extra(), ep.tombs)
	}
	dead := bitset.Union(ep.deadSet, ep.tombs)

	out := make([]*Index, m)
	for s := 0; s < m; s++ {
		lo, hi := s*n/m, (s+1)*n/m
		ds := &dataset.Dataset{N: hi - lo, Dim: ix.dim}
		ds.Data = append([]float32(nil), ep.data.Data[lo*ix.dim:hi*ix.dim]...)
		if ep.data.SqNorms != nil {
			// Copy the parent's norm cache rather than recomputing: same
			// bytes, and the shard serves bit-identical fused distances.
			ds.SqNorms = append([]float32(nil), ep.data.SqNorms[lo:hi]...)
		} else {
			ds.EnsureSqNorms(false)
		}

		var sens *core.Ensemble
		var shier *core.Hierarchy
		if hier != nil {
			shier = hier.FilterRemap(lo, hi)
		} else {
			sens = ens.FilterRemap(lo, hi)
		}

		var pq *quant.PQ
		var codes []uint8
		if qv := ep.quant; qv != nil {
			pq = qv.pq // codebooks are immutable and shared
			sub := qv.pq.Subspaces
			codes = append([]uint8(nil), qv.codes[lo*sub:hi*sub]...)
		}

		six := newIndex(ds, sens, shier, ix.opt, ix.stats, 0, nil, dead.Slice(lo, hi), pq, codes)
		six.idOffset = ix.idOffset + lo
		out[s] = six
	}
	return out, nil
}
