package core

import (
	"testing"

	"repro/internal/vecmath"
)

// referenceBins rebuilds the old [][]int32 lookup-table form straight from
// Assign — the layout the seed implementation stored — so CSR probing can be
// checked against it exactly.
func referenceBins(assign []int32, m int) [][]int32 {
	bins := make([][]int32, m)
	for i, b := range assign {
		bins[b] = append(bins[b], int32(i))
	}
	return bins
}

func TestCSRMatchesReferenceLayout(t *testing.T) {
	ds, mat := testData(t, 500, 8, 4, 30)
	p, _, err := Train(ds, mat, smallCfg(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceBins(p.Assign, p.M)
	for b := 0; b < p.M; b++ {
		got := p.BinList(b)
		if len(got) != len(ref[b]) {
			t.Fatalf("bin %d: %d ids, want %d", b, len(got), len(ref[b]))
		}
		for i := range got {
			if got[i] != ref[b][i] {
				t.Fatalf("bin %d[%d]: id %d, want %d", b, i, got[i], ref[b][i])
			}
		}
		if p.BinLen(b) != len(ref[b]) {
			t.Fatalf("BinLen(%d) = %d, want %d", b, p.BinLen(b), len(ref[b]))
		}
	}
}

func TestCSRSurvivesInserts(t *testing.T) {
	ds, mat := testData(t, 400, 8, 4, 31)
	p, _, err := Train(ds, mat, smallCfg(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Route a few new points in; the reference built from the extended
	// Assign must still match (CSR range followed by spill).
	for j := 0; j < 10; j++ {
		vec := ds.Row(j % ds.N)
		p.Insert(ds.N+j, vec)
	}
	ref := referenceBins(p.Assign, p.M)
	total := 0
	for b := 0; b < p.M; b++ {
		got := p.BinList(b)
		if len(got) != len(ref[b]) {
			t.Fatalf("bin %d after inserts: %d ids, want %d", b, len(got), len(ref[b]))
		}
		for i := range got {
			if got[i] != ref[b][i] {
				t.Fatalf("bin %d[%d] after inserts: id %d, want %d", b, i, got[i], ref[b][i])
			}
		}
		total += p.BinLen(b)
	}
	if total != ds.N+10 {
		t.Fatalf("bins hold %d ids, want %d", total, ds.N+10)
	}
	// BinLists (serialization form) must also include spill ids.
	lists := p.BinLists()
	count := 0
	for _, l := range lists {
		count += len(l)
	}
	if count != ds.N+10 {
		t.Fatalf("BinLists holds %d ids, want %d", count, ds.N+10)
	}
}

// TestAppendCandidatesMatchesLegacyPipeline recomputes the seed's candidate
// pipeline — PredictVec probabilities, TopKIndices bin selection, per-bin id
// copy — and requires the scratch-based AppendCandidates path to reproduce it
// id for id (the model inference fast path is bit-identical, so candidate
// sets must be too).
func TestAppendCandidatesMatchesLegacyPipeline(t *testing.T) {
	ds, mat := testData(t, 500, 8, 4, 32)
	ens, _, err := TrainEnsemble(ds, mat, smallCfg(4), 3)
	if err != nil {
		t.Fatal(err)
	}
	var qs QueryScratch
	var dst []int32
	for qi := 0; qi < 40; qi++ {
		q := ds.Row(qi)
		for _, mPrime := range []int{1, 2, 4} {
			// Legacy best-confidence reference.
			bestConf := float32(-1)
			var bestProbs []float32
			var bestPart *Partitioner
			for _, p := range ens.Parts {
				probs := p.Probabilities(q)
				if c := probs[vecmath.ArgMax(probs)]; c > bestConf {
					bestConf, bestProbs, bestPart = c, probs, p
				}
			}
			ref := referenceBins(bestPart.Assign, bestPart.M)
			var want []int32
			for _, b := range vecmath.TopKIndices(bestProbs, mPrime) {
				want = append(want, ref[b]...)
			}

			dst = ens.AppendCandidates(dst[:0], q, mPrime, BestConfidence, &qs)
			if len(dst) != len(want) {
				t.Fatalf("q%d m'=%d: %d candidates, want %d", qi, mPrime, len(dst), len(want))
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("q%d m'=%d: candidate[%d] = %d, want %d", qi, mPrime, i, dst[i], want[i])
				}
			}

			// Union mode must agree with the allocating wrapper.
			union := ens.Candidates(q, mPrime, UnionProbe)
			dst = ens.AppendCandidates(dst[:0], q, mPrime, UnionProbe, &qs)
			if len(dst) != len(union) {
				t.Fatalf("q%d m'=%d union: %d vs %d", qi, mPrime, len(dst), len(union))
			}
			for i := range union {
				if int(dst[i]) != union[i] {
					t.Fatalf("q%d m'=%d union[%d]: %d vs %d", qi, mPrime, i, dst[i], union[i])
				}
			}
		}
	}
}

func TestHierarchyAppendCandidatesMatchesCandidates(t *testing.T) {
	ds, _ := testData(t, 400, 8, 4, 34)
	cfg := Config{KPrime: 5, Eta: 5, Epochs: 10, BatchSize: 128, Hidden: []int{8}, Seed: 3}
	h, _, err := TrainHierarchy(ds, []int{2, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var qs QueryScratch
	var dst []int32
	for qi := 0; qi < 30; qi++ {
		q := ds.Row(qi)
		for _, mPrime := range []int{1, 2, 4} {
			want := h.Candidates(q, mPrime)
			dst = h.AppendCandidates(dst[:0], q, mPrime, &qs)
			if len(dst) != len(want) {
				t.Fatalf("q%d m'=%d: %d vs %d candidates", qi, mPrime, len(dst), len(want))
			}
			for i := range want {
				if int(dst[i]) != want[i] {
					t.Fatalf("q%d m'=%d: candidate[%d] = %d, want %d", qi, mPrime, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestAppendCandidatesNaNQueryDegradesGracefully: a query whose forward
// pass overflows produces all-NaN probabilities; every confidence
// comparison fails, so the engine must return an empty candidate set (the
// legacy behavior) rather than panic or reuse a stale distribution from a
// previous query on the same warm scratch.
func TestAppendCandidatesNaNQueryDegradesGracefully(t *testing.T) {
	ds, mat := testData(t, 300, 8, 4, 36)
	ens, _, err := TrainEnsemble(ds, mat, smallCfg(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	var qs QueryScratch
	// Warm the scratch with a normal query first so qs.best holds a real
	// distribution the NaN query must not inherit.
	warm := ens.AppendCandidates(nil, ds.Row(0), 2, BestConfidence, &qs)
	if len(warm) == 0 {
		t.Fatal("warm query returned no candidates")
	}
	huge := make([]float32, ds.Dim)
	for i := range huge {
		huge[i] = 3e38
	}
	got := ens.AppendCandidates(nil, huge, 2, BestConfidence, &qs)
	if len(got) != 0 {
		t.Fatalf("NaN-probability query returned %d candidates, want 0", len(got))
	}
	// The legacy wrapper must agree.
	if c := ens.Candidates(huge, 2, BestConfidence); len(c) != 0 {
		t.Fatalf("legacy wrapper returned %d candidates, want 0", len(c))
	}
	// And the scratch must still work for normal queries afterwards.
	after := ens.AppendCandidates(nil, ds.Row(0), 2, BestConfidence, &qs)
	if len(after) != len(warm) {
		t.Fatalf("scratch damaged by NaN query: %d vs %d candidates", len(after), len(warm))
	}
}

func TestQueryScratchSeenGenerationWrap(t *testing.T) {
	var qs QueryScratch
	qs.seen = make([]uint32, 4)
	qs.gen = ^uint32(0) - 1
	g1 := qs.beginSeen(4)
	qs.seen[2] = g1
	g2 := qs.beginSeen(4) // wraps to 0 → must reset stamps and restart at 1
	if g2 == 0 {
		t.Fatal("generation 0 must never be handed out")
	}
	if qs.seen[2] == g2 {
		t.Fatal("stale stamp survived generation wrap")
	}
}
